"""SGD training loop for the ResNet / ODENet / rODENet architectures.

The :class:`Trainer` reproduces the paper's training procedure (Section 4.3):
SGD with L2 regularisation 1e-4, 200 epochs, learning rate 0.01 divided by 10
at epochs 100 and 150.  On this CPU-only reproduction the loop is exercised
with the synthetic CIFAR substitute and shortened schedules; the point is
that every architecture trains through exactly the same code path the paper
describes (including backpropagation through the Euler-unrolled ODEBlocks or
the adjoint method).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..data.loader import DataLoader
from ..data.synthetic import SyntheticDataset
from ..nn import CrossEntropyLoss, Module, accuracy
from ..nn.tensor import Tensor, no_grad
from .metrics import EpochMetrics, RunningAverage, TrainingHistory
from .schedule import PaperTrainingSchedule, make_paper_optimizer

__all__ = ["Trainer", "evaluate"]


def evaluate(model: Module, dataset: SyntheticDataset, batch_size: int = 64) -> tuple:
    """Evaluate a model: returns ``(loss, accuracy)`` over the dataset."""

    model.eval()
    criterion = CrossEntropyLoss()
    loss_avg, acc_avg = RunningAverage(), RunningAverage()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False, augment=False)
    with no_grad():
        for images, labels in loader:
            logits = model(Tensor(images))
            loss = criterion(logits, labels)
            loss_avg.update(loss.item(), len(labels))
            acc_avg.update(accuracy(logits, labels), len(labels))
    return loss_avg.average, acc_avg.average


class Trainer:
    """Train a model with the paper's SGD recipe.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module` classifier.
    train_set / test_set:
        In-memory datasets (test_set optional).
    schedule:
        Training hyper-parameters; defaults to the paper's 200-epoch recipe —
        pass ``PaperTrainingSchedule().scaled(0.05)`` or an explicit short
        schedule for functional runs.
    augment:
        Apply the standard CIFAR augmentation to training batches.
    """

    def __init__(
        self,
        model: Module,
        train_set: SyntheticDataset,
        test_set: Optional[SyntheticDataset] = None,
        schedule: Optional[PaperTrainingSchedule] = None,
        augment: bool = False,
        seed: int = 0,
        on_epoch_end: Optional[Callable[[EpochMetrics], None]] = None,
    ) -> None:
        self.model = model
        self.train_set = train_set
        self.test_set = test_set
        self.schedule = schedule or PaperTrainingSchedule()
        self.augment = augment
        self.seed = seed
        self.on_epoch_end = on_epoch_end
        self.criterion = CrossEntropyLoss()
        self.optimizer, self.lr_scheduler = make_paper_optimizer(
            model.parameters(), self.schedule
        )
        self.history = TrainingHistory()

    def train_epoch(self, epoch: int) -> EpochMetrics:
        """Run one epoch of SGD and return its metrics."""

        model = self.model
        model.train()
        loader = DataLoader(
            self.train_set,
            batch_size=self.schedule.batch_size,
            shuffle=True,
            augment=self.augment,
            seed=self.seed + epoch,
        )
        loss_avg, acc_avg = RunningAverage(), RunningAverage()
        for images, labels in loader:
            logits = model(Tensor(images))
            loss = self.criterion(logits, labels)
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            loss_avg.update(loss.item(), len(labels))
            acc_avg.update(accuracy(logits, labels), len(labels))

        test_loss = test_acc = None
        if self.test_set is not None:
            test_loss, test_acc = evaluate(model, self.test_set, self.schedule.batch_size)

        lr = self.optimizer.lr
        self.lr_scheduler.step()
        metrics = EpochMetrics(
            epoch=epoch,
            train_loss=loss_avg.average,
            train_accuracy=acc_avg.average,
            test_loss=test_loss,
            test_accuracy=test_acc,
            learning_rate=lr,
        )
        self.history.append(metrics)
        if self.on_epoch_end is not None:
            self.on_epoch_end(metrics)
        return metrics

    def fit(self, epochs: Optional[int] = None) -> TrainingHistory:
        """Train for ``epochs`` (defaults to the schedule's epoch count)."""

        total = epochs if epochs is not None else self.schedule.epochs
        for epoch in range(1, total + 1):
            self.train_epoch(epoch)
        return self.history

"""Training substrate: the paper's SGD recipe, training loop and metrics."""

from .metrics import EpochMetrics, RunningAverage, TrainingHistory
from .schedule import PaperTrainingSchedule, make_paper_optimizer
from .trainer import Trainer, evaluate

__all__ = [
    "Trainer",
    "evaluate",
    "PaperTrainingSchedule",
    "make_paper_optimizer",
    "EpochMetrics",
    "TrainingHistory",
    "RunningAverage",
]

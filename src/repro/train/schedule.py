"""The paper's training schedule (Section 4.3).

"SGD is used as an optimization function.  As L2 regularization, 1e-4 is
added to each layer.  For the training process, the number of epochs is 200.
The learning rate is started with 0.01, and it is reduced by 1/10 when the
epoch becomes 100 and 150."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..nn.optim import SGD, MultiStepLR, Optimizer

__all__ = ["PaperTrainingSchedule", "make_paper_optimizer"]


@dataclass(frozen=True)
class PaperTrainingSchedule:
    """Hyper-parameters of the paper's training recipe."""

    epochs: int = 200
    base_lr: float = 0.01
    momentum: float = 0.9
    weight_decay: float = 1e-4
    milestones: Tuple[int, ...] = (100, 150)
    gamma: float = 0.1
    batch_size: int = 128

    def scaled(self, factor: float) -> "PaperTrainingSchedule":
        """A proportionally shortened schedule for small-scale functional runs.

        ``factor=0.1`` gives 20 epochs with milestones at 10 and 15 — the
        same shape as the paper's schedule, compressed.
        """

        if factor <= 0:
            raise ValueError("factor must be positive")
        epochs = max(1, int(round(self.epochs * factor)))
        milestones = tuple(max(1, int(round(m * factor))) for m in self.milestones)
        return PaperTrainingSchedule(
            epochs=epochs,
            base_lr=self.base_lr,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            milestones=milestones,
            gamma=self.gamma,
            batch_size=self.batch_size,
        )


def make_paper_optimizer(parameters, schedule: PaperTrainingSchedule | None = None):
    """Create the SGD optimiser and LR scheduler described in Section 4.3."""

    schedule = schedule or PaperTrainingSchedule()
    optimizer = SGD(
        parameters,
        lr=schedule.base_lr,
        momentum=schedule.momentum,
        weight_decay=schedule.weight_decay,
    )
    scheduler = MultiStepLR(optimizer, milestones=schedule.milestones, gamma=schedule.gamma)
    return optimizer, scheduler

"""Training/evaluation metric bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["EpochMetrics", "TrainingHistory", "RunningAverage"]


class RunningAverage:
    """Numerically simple streaming mean (weighted by batch size)."""

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def update(self, value: float, weight: int = 1) -> None:
        self.total += float(value) * weight
        self.count += weight

    @property
    def average(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass(frozen=True)
class EpochMetrics:
    """Metrics of one training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    test_loss: Optional[float] = None
    test_accuracy: Optional[float] = None
    learning_rate: Optional[float] = None

    def as_dict(self) -> Dict[str, float]:
        out = {
            "epoch": self.epoch,
            "train_loss": self.train_loss,
            "train_accuracy": self.train_accuracy,
        }
        if self.test_loss is not None:
            out["test_loss"] = self.test_loss
        if self.test_accuracy is not None:
            out["test_accuracy"] = self.test_accuracy
        if self.learning_rate is not None:
            out["learning_rate"] = self.learning_rate
        return out


@dataclass
class TrainingHistory:
    """Sequence of epoch metrics for one training run."""

    epochs: List[EpochMetrics] = field(default_factory=list)

    def append(self, metrics: EpochMetrics) -> None:
        self.epochs.append(metrics)

    def __len__(self) -> int:
        return len(self.epochs)

    def __iter__(self):
        return iter(self.epochs)

    @property
    def final(self) -> EpochMetrics:
        if not self.epochs:
            raise ValueError("history is empty")
        return self.epochs[-1]

    @property
    def best_test_accuracy(self) -> float:
        accs = [e.test_accuracy for e in self.epochs if e.test_accuracy is not None]
        if not accs:
            raise ValueError("no test accuracy recorded")
        return max(accs)

    def series(self, key: str) -> np.ndarray:
        """Extract one metric as an array (NaN where missing)."""

        values = [e.as_dict().get(key, np.nan) for e in self.epochs]
        return np.asarray(values, dtype=np.float64)

    def improved(self) -> bool:
        """Whether the train loss decreased between the first and last epoch."""

        if len(self.epochs) < 2:
            return False
        return self.epochs[-1].train_loss < self.epochs[0].train_loss

"""NumPy-based neural-network substrate (autograd, layers, optimisers).

This package is the stand-in for the PyTorch stack the paper's software
implementation relies on.  It provides just enough of a deep-learning
framework — reverse-mode autograd, 2-D convolution, batch normalisation,
pooling, linear layers, SGD and LR schedules — to express, train and evaluate
ResNet-N, ODENet-N, the rODENet variants and Hybrid-3-N.
"""

from . import functional, init
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
)
from .loss import CrossEntropyLoss, MSELoss, accuracy, top_k_accuracy
from .optim import SGD, Adam, CosineAnnealingLR, MultiStepLR, StepLR
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "functional",
    "init",
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "Parameter",
    "Module",
    "Sequential",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "Linear",
    "GlobalAvgPool2d",
    "AvgPool2d",
    "Flatten",
    "Identity",
    "SGD",
    "Adam",
    "MultiStepLR",
    "StepLR",
    "CosineAnnealingLR",
    "CrossEntropyLoss",
    "MSELoss",
    "accuracy",
    "top_k_accuracy",
]

"""Differentiable neural-network primitives used by ResNet/ODENet.

Every function here operates on :class:`repro.nn.tensor.Tensor` objects and
registers the corresponding backward closure, so networks built from these
primitives can be trained end to end (including through the ODE solver
unrolled in :mod:`repro.core.odeblock`).

The operations map one-to-one onto the five-step ODEBlock pipeline of the
paper: 3x3 convolution, batch normalisation, ReLU, 3x3 convolution, batch
normalisation.  Global average pooling, the fully-connected layer, softmax and
cross-entropy are needed by the pre/post-processing steps (conv1 / fc).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .im2col import col2im, conv_output_size, im2col
from .tensor import Tensor, as_tensor

__all__ = [
    "conv2d",
    "batch_norm2d",
    "relu",
    "linear",
    "avg_pool2d",
    "global_avg_pool2d",
    "max_pool2d",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "dropout",
]


# ---------------------------------------------------------------------------
# Convolution
# ---------------------------------------------------------------------------


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution in NCHW layout.

    Parameters
    ----------
    x:
        Input tensor of shape ``(N, C_in, H, W)``.
    weight:
        Kernel tensor of shape ``(C_out, C_in, KH, KW)``.
    bias:
        Optional bias of shape ``(C_out,)``.
    stride, padding:
        Stride and symmetric zero padding (the paper uses 3x3 kernels with
        stride 1 or 2 and padding 1).
    """

    x = as_tensor(x)
    weight = as_tensor(weight)
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(
            f"conv2d channel mismatch: input has {c_in}, weight expects {c_in_w}"
        )

    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    cols = im2col(x.data, kh, kw, stride, padding)  # (N*oh*ow, C_in*kh*kw)
    w_mat = weight.data.reshape(c_out, -1)  # (C_out, C_in*kh*kw)

    out = cols @ w_mat.T  # (N*oh*ow, C_out)
    if bias is not None:
        out = out + bias.data.reshape(1, -1)
    out = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        # grad: (N, C_out, out_h, out_w)
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, c_out)  # (N*oh*ow, C_out)
        if weight.requires_grad:
            gw = grad_mat.T @ cols  # (C_out, C_in*kh*kw)
            weight._accumulate(gw.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_mat.sum(axis=0))
        if x.requires_grad:
            gcols = grad_mat @ w_mat  # (N*oh*ow, C_in*kh*kw)
            gx = col2im(gcols, (n, c_in, h, w), kh, kw, stride, padding)
            x._accumulate(gx)

    return Tensor._make(out, parents, backward)


# ---------------------------------------------------------------------------
# Batch normalisation
# ---------------------------------------------------------------------------


def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Per-channel batch normalisation over an NCHW tensor.

    In training mode the batch statistics are used and ``running_mean`` /
    ``running_var`` are updated in place (exponential moving average with the
    given momentum).  In evaluation mode the running statistics are used,
    which matches what the FPGA implementation stores in BRAM.
    """

    x = as_tensor(x)
    n, c, h, w = x.shape
    axes = (0, 2, 3)
    count = n * h * w

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        # Unbiased variance for the running estimate (torch convention).
        unbiased = var * count / max(count - 1, 1)
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    mean_r = mean.reshape(1, c, 1, 1)
    var_r = var.reshape(1, c, 1, 1)
    inv_std = 1.0 / np.sqrt(var_r + eps)
    x_hat = (x.data - mean_r) * inv_std
    out = gamma.data.reshape(1, c, 1, 1) * x_hat + beta.data.reshape(1, c, 1, 1)

    def backward(grad: np.ndarray) -> None:
        g = gamma.data.reshape(1, c, 1, 1)
        if gamma.requires_grad:
            gamma._accumulate((grad * x_hat).sum(axis=axes))
        if beta.requires_grad:
            beta._accumulate(grad.sum(axis=axes))
        if x.requires_grad:
            if training:
                # Full batch-norm backward through the batch statistics.
                dxhat = grad * g
                dvar = (dxhat * (x.data - mean_r) * -0.5 * inv_std ** 3).sum(
                    axis=axes, keepdims=True
                )
                dmean = (dxhat * -inv_std).sum(axis=axes, keepdims=True) + dvar * (
                    -2.0 * (x.data - mean_r)
                ).mean(axis=axes, keepdims=True)
                gx = (
                    dxhat * inv_std
                    + dvar * 2.0 * (x.data - mean_r) / count
                    + dmean / count
                )
            else:
                gx = grad * g * inv_std
            x._accumulate(gx)

    return Tensor._make(out, (x, gamma, beta), backward)


# ---------------------------------------------------------------------------
# Activations and simple layers
# ---------------------------------------------------------------------------


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""

    return as_tensor(x).relu()


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias`` (torch.nn.Linear semantics)."""

    x = as_tensor(x)
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Non-overlapping average pooling (kernel == stride by default)."""

    x = as_tensor(x)
    stride = stride or kernel
    n, c, h, w = x.shape
    if h % stride or w % stride:
        raise ValueError("avg_pool2d requires input divisible by the stride")
    out_h, out_w = h // stride, w // stride
    reshaped = x.reshape(n, c, out_h, stride, out_w, stride)
    return reshaped.mean(axis=(3, 5))


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Global average pooling producing an ``(N, C)`` tensor (paper's fc step)."""

    x = as_tensor(x)
    return x.mean(axis=(2, 3))


def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Non-overlapping max pooling."""

    x = as_tensor(x)
    stride = stride or kernel
    n, c, h, w = x.shape
    if h % stride or w % stride:
        raise ValueError("max_pool2d requires input divisible by the stride")
    out_h, out_w = h // stride, w // stride
    reshaped = x.reshape(n, c, out_h, stride, out_w, stride)
    return reshaped.max(axis=5).max(axis=3)


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout (identity in evaluation mode)."""

    x = as_tensor(x)
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(mask)


# ---------------------------------------------------------------------------
# Classification losses
# ---------------------------------------------------------------------------


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax."""

    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""

    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, classes) and integer targets."""

    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    n = logits.shape[0]
    logp = log_softmax(logits, axis=1)
    picked = logp[np.arange(n), targets]
    return -picked.mean()

"""Weight initialisation schemes.

The networks in the paper are standard CIFAR ResNets, so He (Kaiming) normal
initialisation for convolutions and uniform fan-in initialisation for the
fully-connected classifier are used, mirroring the usual PyTorch defaults.
All initialisers accept an explicit ``numpy.random.Generator`` so that the
experiments are reproducible.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_uniform",
    "uniform_fan_in",
    "zeros",
    "ones",
]


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in / fan-out for dense or convolutional weight shapes."""

    if len(shape) == 2:  # (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # (out_c, in_c, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def kaiming_normal(shape, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He normal initialisation (gain for ReLU)."""

    rng = rng or np.random.default_rng()
    fan_in, _ = _fan_in_out(tuple(shape))
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He uniform initialisation (gain for ReLU)."""

    rng = rng or np.random.default_rng()
    fan_in, _ = _fan_in_out(tuple(shape))
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot uniform initialisation."""

    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fan_in_out(tuple(shape))
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def uniform_fan_in(shape, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """PyTorch-default uniform(-1/sqrt(fan_in), 1/sqrt(fan_in)) initialisation."""

    rng = rng or np.random.default_rng()
    fan_in, _ = _fan_in_out(tuple(shape))
    bound = 1.0 / math.sqrt(fan_in)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape) -> np.ndarray:
    """All-zero initialisation (bias / BN beta)."""

    return np.zeros(shape)


def ones(shape) -> np.ndarray:
    """All-one initialisation (BN gamma)."""

    return np.ones(shape)

"""Reverse-mode automatic differentiation on NumPy arrays.

This module provides the :class:`Tensor` class used throughout the
reproduction.  It is intentionally small but complete enough to train the
CIFAR-style convolutional networks used by the paper (ResNet-N, ODENet-N and
the rODENet variants): it supports broadcasting-aware element-wise arithmetic,
matrix multiplication, reductions, reshaping/transposition, indexing and the
usual activation non-linearities.  Convolution, batch normalisation and
pooling are built on top of these primitives in :mod:`repro.nn.functional`.

Design notes
------------
* Gradients are accumulated into ``Tensor.grad`` (a plain ``numpy.ndarray``)
  by a topological-order backward sweep, mirroring the classic
  define-by-run autograd structure.
* Only float arrays participate in differentiation; integer tensors may be
  used as indices but never require gradients.
* The implementation follows the HPC guidance for NumPy code: all heavy
  operations are expressed as vectorised array expressions (no Python loops
  over elements), and in-place accumulation (``+=``) is used when summing
  gradients to avoid temporary copies.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]

# ---------------------------------------------------------------------------
# Global gradient-mode switch (mirrors torch.no_grad)
# ---------------------------------------------------------------------------

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables graph construction.

    Inside a ``with no_grad():`` block, all operations produce tensors with
    ``requires_grad=False`` and no backward closures are recorded.  Used by
    the evaluation loop and by the fixed-point hardware model (which never
    back-propagates).
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""

    return _GRAD_ENABLED


# ---------------------------------------------------------------------------
# Broadcasting helpers
# ---------------------------------------------------------------------------


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    NumPy broadcasting expands operands; the corresponding gradient must be
    summed over the broadcast axes.  This helper handles both prepended axes
    and axes of size one.
    """

    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over broadcast (size-1) dimensions.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value: ArrayLike, dtype=np.float64) -> "Tensor":
    """Coerce ``value`` into a :class:`Tensor` (no copy when already one)."""

    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=dtype))


# ---------------------------------------------------------------------------
# Tensor
# ---------------------------------------------------------------------------


class Tensor:
    """A NumPy-backed array node in a dynamically built autograd graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # -- basic properties ---------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""

        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""

        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- graph construction helpers -----------------------------------------

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        parents = tuple(parents)
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Accumulate ``grad`` into ``self.grad`` (in place when possible)."""

        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # -- backward -----------------------------------------------------------

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ones (and must be provided for non-scalar outputs in
            the general case; for convenience a tensor of ones is used).
        """

        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            grad = np.broadcast_to(grad, self.data.shape).astype(np.float64)

        # Topological sort (iterative DFS to avoid recursion limits on deep
        # ODENet graphs where a single block is unrolled many times).
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(-grad)

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data ** 2))

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
            elif a.ndim == 2 and b.ndim == 2:
                self._accumulate(grad @ b.T)
                other._accumulate(a.T @ grad)
            elif a.ndim == 1 and b.ndim == 2:
                self._accumulate(grad @ b.T)
                other._accumulate(np.outer(a, grad))
            elif a.ndim == 2 and b.ndim == 1:
                self._accumulate(np.outer(grad, b))
                other._accumulate(a.T @ grad)
            else:
                # Batched matmul: rely on einsum for generality.
                ga = np.matmul(grad, np.swapaxes(b, -1, -2))
                gb = np.matmul(np.swapaxes(a, -1, -2), grad)
                self._accumulate(ga)
                other._accumulate(gb)

        return Tensor._make(data, (self, other), backward)

    # -- comparisons (no gradient) -------------------------------------------

    def __gt__(self, other: ArrayLike) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other: ArrayLike) -> np.ndarray:
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other

    # -- reductions -----------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = data
            g = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(np.asarray(data), axis=axis)
                g = np.expand_dims(g, axis=axis)
            mask = (self.data == expanded).astype(np.float64)
            # Split gradient equally among ties (matches numpy semantics well
            # enough for ReLU-style use; exact tie handling is unimportant).
            denom = mask.sum(axis=axis, keepdims=True)
            denom = np.where(denom == 0, 1.0, denom)
            self._accumulate(mask * g / denom)

        return Tensor._make(data, (self,), backward)

    # -- shape manipulation ----------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.data.shape
        new_shape = shape[:start_dim] + (-1,)
        return self.reshape(new_shape)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    def pad(self, pad_width, constant: float = 0.0) -> "Tensor":
        """Zero/constant padding with gradient support (NCHW friendly)."""

        data = np.pad(self.data, pad_width, mode="constant", constant_values=constant)
        slices = tuple(
            slice(before, before + dim)
            for (before, _after), dim in zip(pad_width, self.data.shape)
        )

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad[slices])

        return Tensor._make(data, (self,), backward)

    # -- elementwise non-linearities -------------------------------------------

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / data)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    # -- convenience constructors ------------------------------------------------

    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            pieces = np.split(grad, len(tensors), axis=axis)
            for t, piece in zip(tensors, pieces):
                t._accumulate(np.squeeze(piece, axis=axis))

        return Tensor._make(data, tensors, backward)

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [as_tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                t._accumulate(grad[tuple(index)])

        return Tensor._make(data, tensors, backward)

"""Optimisers and learning-rate schedules.

The paper trains every architecture with SGD, L2 regularisation of 1e-4, 200
epochs, and a learning rate that starts at 0.01 and is divided by 10 at
epochs 100 and 150 (Section 4.3).  :class:`SGD` plus :class:`MultiStepLR`
reproduce that recipe exactly; :class:`CosineAnnealingLR` is provided for the
ablation experiments.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "LRScheduler", "MultiStepLR", "StepLR", "CosineAnnealingLR"]


class Optimizer:
    """Base optimiser: owns a parameter list and a learning rate."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and decoupled L2 weight decay.

    Matches the paper's training configuration (``weight_decay=1e-4``).
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 1e-4,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                v = self._velocity[i]
                v *= self.momentum
                v += grad
                if self.nesterov:
                    grad = grad + self.momentum * v
                else:
                    grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (used by the spiral Neural-ODE example, not the paper)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1 ** self._t
        b2t = 1.0 - self.beta2 ** self._t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad * grad
            m_hat = self._m[i] / b1t
            v_hat = self._v[i] / b2t
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class LRScheduler:
    """Base learning-rate scheduler; call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self, epoch: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        self.epoch += 1
        lr = self.get_lr(self.epoch)
        self.optimizer.lr = lr
        return lr


class MultiStepLR(LRScheduler):
    """Divide the learning rate by ``gamma`` at each milestone epoch.

    The paper uses milestones ``(100, 150)`` with ``gamma=0.1``.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        milestones: Sequence[int] = (100, 150),
        gamma: float = 0.1,
    ) -> None:
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        passed = sum(1 for m in self.milestones if epoch >= m)
        return self.base_lr * (self.gamma ** passed)


class StepLR(LRScheduler):
    """Divide the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class CosineAnnealingLR(LRScheduler):
    """Cosine-annealed learning rate over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self, epoch: int) -> float:
        epoch = min(epoch, self.t_max)
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + math.cos(math.pi * epoch / self.t_max)
        )

"""Loss functions.

Cross-entropy (softmax + negative log likelihood) is the loss used for all
CIFAR-100 experiments in the paper.  MSE is provided for the spiral
Neural-ODE regression example and for the adjoint-method unit tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .tensor import Tensor, as_tensor

__all__ = ["CrossEntropyLoss", "MSELoss", "accuracy", "top_k_accuracy"]


class CrossEntropyLoss:
    """Mean cross-entropy over a batch of logits and integer class targets."""

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets)


class MSELoss:
    """Mean squared error."""

    def __call__(self, prediction: Tensor, target) -> Tensor:
        prediction = as_tensor(prediction)
        target = as_tensor(target)
        diff = prediction - target
        return (diff * diff).mean()


def accuracy(logits, targets: np.ndarray) -> float:
    """Top-1 accuracy of ``logits`` (Tensor or ndarray) against integer targets."""

    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    predictions = data.argmax(axis=1)
    targets = np.asarray(targets)
    return float((predictions == targets).mean())


def top_k_accuracy(logits, targets: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy (the CIFAR-100 literature often reports top-5 as well)."""

    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    targets = np.asarray(targets)
    top_k = np.argsort(-data, axis=1)[:, :k]
    hits = (top_k == targets[:, None]).any(axis=1)
    return float(hits.mean())

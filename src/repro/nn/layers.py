"""Module system and the layers needed by ResNet / ODENet.

The :class:`Module` base class provides parameter registration, named
traversal, train/eval switching and state-dict save/restore — the minimal
feature set needed to express the paper's seven network architectures and
train them with SGD.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "Linear",
    "GlobalAvgPool2d",
    "AvgPool2d",
    "Flatten",
    "Identity",
]


class Parameter(Tensor):
    """A trainable tensor (always requires gradients)."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for layers and networks.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are discovered automatically for optimisation, state
    saving and recursive train/eval switching.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # -- attribute registration ------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. BN running stats)."""

        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ---------------------------------------------------------------

    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters of this module and its children."""

        return [p for _, p in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}{name}", buf)
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # -- parameter accounting ------------------------------------------------------

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""

        return sum(p.size for p in self.parameters())

    def parameter_bytes(self, bytes_per_param: int = 4) -> int:
        """Parameter memory footprint assuming ``bytes_per_param`` (paper: 4)."""

        return self.num_parameters() * bytes_per_param

    # -- train / eval --------------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- state dict -----------------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat name → array mapping of parameters and buffers."""

        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters/buffers produced by :meth:`state_dict` (in place)."""

        for name, param in self.named_parameters():
            if name in state:
                param.data[...] = state[name]
        for name, buf in self.named_buffers():
            if name in state:
                buf[...] = state[name]

    # -- call -----------------------------------------------------------------------

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for i, module in enumerate(modules):
            name = f"m{i}"
            setattr(self, name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = f"m{len(self._order)}"
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self):
        return (getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._order[index])

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x


class Conv2d(Module):
    """3x3 (or general) convolution layer in NCHW layout."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng), name="conv.weight")
        self.bias: Optional[Parameter]
        if bias:
            self.bias = Parameter(init.zeros(out_channels), name="conv.bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def extra_repr(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


class BatchNorm2d(Module):
    """Per-channel batch normalisation with running statistics."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones(num_features), name="bn.gamma")
        self.beta = Parameter(init.zeros(num_features), name="bn.beta")
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm2d(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Linear(Module):
    """Fully-connected layer (used by the paper's ``fc`` post-processing step)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.uniform_fan_in((out_features, in_features), rng), name="fc.weight"
        )
        self.bias: Optional[Parameter]
        if bias:
            self.bias = Parameter(init.zeros(out_features), name="fc.bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class GlobalAvgPool2d(Module):
    """Global average pooling, reducing (N, C, H, W) to (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class AvgPool2d(Module):
    """Fixed-window average pooling."""

    def __init__(self, kernel: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride or kernel

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel, self.stride)


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Identity(Module):
    """No-op module (used when a layer group is removed in an rODENet variant)."""

    def forward(self, x: Tensor) -> Tensor:
        return x

"""im2col / col2im utilities for vectorised convolution.

Convolutions in :mod:`repro.nn.functional` are lowered to matrix
multiplication through the classical im2col transformation so that the heavy
lifting is done by BLAS (``@``) rather than Python loops, following the
"vectorise your loops" guidance for scientific Python code.

Layout convention: all feature maps are NCHW (batch, channel, height, width),
matching the paper's description of 32x32/16x16/8x8 feature maps with 16/32/64
channels.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["conv_output_size", "im2col", "col2im"]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""

    return (size + 2 * padding - kernel) // stride + 1


def im2col(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
    *,
    dtype=None,
    out: np.ndarray = None,
) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel_h, kernel_w:
        Kernel spatial size.
    stride, padding:
        Convolution stride and symmetric zero padding.
    dtype:
        Target dtype of the column matrix (default: ``x.dtype``).  The
        gather and the cast happen in one fused copy, so e.g. the int64
        fixed-point path can materialise float64 GEMM input directly
        without first paying an int64 copy of the expanded matrix.
    out:
        Preallocated ``(N * out_h * out_w, C * kernel_h * kernel_w)``
        C-contiguous destination — lets chunked callers reuse one buffer
        instead of allocating per chunk.  Mutually exclusive with ``dtype``
        disagreeing with ``out.dtype``.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``.
    """

    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    rows = n * out_h * out_w
    cols_per_row = c * kernel_h * kernel_w

    if padding > 0:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )

    # Strided view: (N, C, KH, KW, out_h, out_w) without copying.
    sn, sc, sh, sw = x.strides
    shape = (n, c, kernel_h, kernel_w, out_h, out_w)
    strides = (sn, sc, sh, sw, sh * stride, sw * stride)
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)

    if out is None:
        out = np.empty((rows, cols_per_row), dtype=x.dtype if dtype is None else dtype)
    else:
        if out.shape != (rows, cols_per_row):
            raise ValueError(
                f"out has shape {out.shape}, expected {(rows, cols_per_row)}"
            )
        if dtype is not None and out.dtype != np.dtype(dtype):
            raise ValueError(f"out dtype {out.dtype} conflicts with dtype={np.dtype(dtype)}")
        if not out.flags.c_contiguous:
            raise ValueError("out must be C-contiguous")
    # One fused gather+cast: the expanded C*KH*KW matrix is materialised
    # exactly once, already in the dtype the downstream GEMM wants.
    np.copyto(
        out.reshape(n, out_h, out_w, c, kernel_h, kernel_w),
        patches.transpose(0, 4, 5, 1, 2, 3),
    )
    return out


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Inverse of :func:`im2col` (scatter-add of column gradients).

    Parameters
    ----------
    cols:
        Array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``.
    input_shape:
        The original ``(N, C, H, W)`` shape.

    Returns
    -------
    numpy.ndarray
        Gradient image of shape ``input_shape``.
    """

    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)

    cols = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(
        0, 3, 4, 5, 1, 2
    )
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)

    # Scatter-add each kernel offset back into the padded image.  The two
    # small loops run kernel_h*kernel_w (= 9) times; the body is vectorised.
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]

    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded

"""Hardware/software partitioning description.

A :class:`Partition` names, for one concrete network, which layer groups run
on the PL part (as :class:`~repro.fpga.odeblock_hw.HardwareODEBlock`
instances) and which stay on the PS part (as the software modules of the
:class:`~repro.core.architectures.OdeNetModel`).  It is consumed by
:class:`repro.hwsw.runtime.HwSwRuntime`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from ..core.network_spec import LAYER_ORDER, OFFLOADABLE_LAYER_NAMES

__all__ = ["Partition"]


@dataclass(frozen=True)
class Partition:
    """Assignment of layer groups to PS (software) or PL (hardware)."""

    pl_layers: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for layer in self.pl_layers:
            if layer not in OFFLOADABLE_LAYER_NAMES:
                raise ValueError(
                    f"layer '{layer}' cannot be offloaded; only {OFFLOADABLE_LAYER_NAMES} "
                    "are implemented on the PL part (Section 3.1)"
                )

    @classmethod
    def software_only(cls) -> "Partition":
        """Everything on the PS part (the paper's pure-software baseline)."""

        return cls(pl_layers=())

    @classmethod
    def offload(cls, *layers: str) -> "Partition":
        """Offload the named layer groups to the PL part."""

        return cls(pl_layers=tuple(layers))

    def runs_on_pl(self, layer: str) -> bool:
        return layer in self.pl_layers

    def placement(self) -> Dict[str, str]:
        """Layer -> "PL" / "PS" map over the whole network."""

        return {
            layer: ("PL" if self.runs_on_pl(layer) else "PS") for layer in LAYER_ORDER
        }

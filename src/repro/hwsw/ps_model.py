"""Software execution-time model of the PS part (board-parametric).

Table 5's "w/o PL" columns are wall-clock times of a pure software execution
on the PYNQ-Z2's Cortex-A9.  This module models that software cost as

    time = (MACs · cycles_per_mac + elements · passes · cycles_per_element)
           / f_PS  + per-image overhead

where

* ``cycles_per_mac``  (7.6)  covers the inner convolution loops,
* ``cycles_per_element`` (64) covers one software pass over a feature map
  (batch-norm statistics/normalisation, ReLU, or the residual addition), and
* ``per_image_overhead_s`` (0.028 s) covers framework bookkeeping, pooling,
  softmax and data handling that do not scale with depth.

The constants were fitted to the four published ResNet-N totals
(0.54 / 0.89 / 1.24 / 1.58 s for N = 20 / 32 / 44 / 56) and cross-checked
against the per-layer "Target w/o PL" columns of Table 5; the model
reproduces all of them within a few percent (see
``tests/hwsw/test_ps_model.py``).

The clock comes from the board (:meth:`PsModelConfig.for_board`): the cycle
counts are treated as board-independent work, executed at the board's PS
clock, and the fixed per-image overhead scales inversely with that clock
(it is CPU work too).  Per-ISA IPC differences (Cortex-A53 vs the A9 the
constants were fitted on) are deliberately not modelled — see ROADMAP.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..platform import BoardSpec, DEFAULT_BOARD

__all__ = ["PsModelConfig", "SoftwareCostModel", "work_time_kernel", "work_cycles_kernel"]


def work_cycles_kernel(macs, elements, passes, cycles_per_mac, cycles_per_element):
    """Array-capable kernel: PS cycles of convolution + element-wise work.

    The clock-independent half of :func:`work_time_kernel`; the batch engine
    evaluates it once per layer and divides by a per-scenario clock column.
    """

    return macs * cycles_per_mac + elements * passes * cycles_per_element


def work_time_kernel(macs, elements, passes, cycles_per_mac, cycles_per_element, clock_hz):
    """Array-capable kernel: seconds of software work on the PS part.

    Shared by :meth:`SoftwareCostModel.work_time` and the batch-evaluation
    engine (:mod:`repro.api.batch`); inputs may be scalars or NumPy arrays.
    """

    cycles = work_cycles_kernel(macs, elements, passes, cycles_per_mac, cycles_per_element)
    return cycles / clock_hz


@dataclass(frozen=True)
class PsModelConfig:
    """Calibration constants of the PS software-execution model."""

    #: PS clock frequency in Hz (default: the reference board's 650 MHz A9).
    clock_hz: float = DEFAULT_BOARD.ps_clock_hz

    #: CPU cycles per convolution multiply-accumulate.
    cycles_per_mac: float = 7.6

    #: CPU cycles per feature-map element for one element-wise pass
    #: (batch-norm, ReLU or residual add).
    cycles_per_element: float = 64.0

    #: Fixed per-image overhead (framework bookkeeping, pooling, softmax), s.
    per_image_overhead_s: float = 0.028

    @classmethod
    def for_board(cls, board: BoardSpec) -> "PsModelConfig":
        """Calibration constants re-clocked for a board.

        The cycle costs are kept (board-independent work); the clock becomes
        the board's PS clock, and the fixed overhead — CPU work too — scales
        by the reference-to-board clock ratio.  For the reference board the
        ratio is exactly 1.0, so the result equals the fitted defaults
        bit-for-bit.
        """

        base = cls()
        scale = DEFAULT_BOARD.ps_clock_hz / board.ps_clock_hz
        return cls(
            clock_hz=board.ps_clock_hz,
            per_image_overhead_s=base.per_image_overhead_s * scale,
        )


class SoftwareCostModel:
    """Estimate software execution time of convolutional work on the PS part."""

    def __init__(self, config: PsModelConfig | None = None) -> None:
        self.config = config or PsModelConfig()

    def work_cycles(self, macs: float, elements: float = 0.0, passes: float = 0.0) -> float:
        """Clock-independent PS cycles of ``macs`` MACs plus element passes."""

        cfg = self.config
        return float(
            work_cycles_kernel(macs, elements, passes, cfg.cycles_per_mac, cfg.cycles_per_element)
        )

    def work_time(self, macs: float, elements: float = 0.0, passes: float = 0.0) -> float:
        """Seconds to execute ``macs`` MACs plus ``passes`` passes over ``elements``."""

        cfg = self.config
        return float(
            work_time_kernel(
                macs, elements, passes, cfg.cycles_per_mac, cfg.cycles_per_element, cfg.clock_hz
            )
        )

    def block_time(self, macs: float, out_elements: float, elementwise_passes: int) -> float:
        """Seconds for one building-block (or layer-group) execution."""

        return self.work_time(macs, out_elements, elementwise_passes)

    def per_image_overhead(self) -> float:
        """Fixed per-image software overhead in seconds."""

        return self.config.per_image_overhead_s

    def describe(self) -> Dict[str, float]:
        cfg = self.config
        return {
            "clock_mhz": cfg.clock_hz / 1e6,
            "cycles_per_mac": cfg.cycles_per_mac,
            "cycles_per_element": cfg.cycles_per_element,
            "per_image_overhead_s": cfg.per_image_overhead_s,
        }

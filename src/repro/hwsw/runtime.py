"""Hardware/software co-execution runtime (Figure 3 of the paper).

:class:`HwSwRuntime` runs prediction for one of the executable networks with
some layer groups offloaded to the simulated PL part:

* software layer groups execute through the :mod:`repro.nn` modules of the
  :class:`~repro.core.architectures.OdeNetModel` (the PS part);
* offloaded ODEBlock layer groups execute through a
  :class:`~repro.fpga.odeblock_hw.HardwareODEBlock` built from the *same*
  trained weights, quantised to Q20 — i.e. the identical computation, but in
  fixed point and with cycle/transfer accounting.

The runtime therefore answers two questions at once: "does offloading change
the prediction?" (functional fidelity) and "what does the offloaded execution
cost?" (the modelled wall-clock of Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from typing import TYPE_CHECKING

from .. import nn
from ..core.architectures import OdeNetModel
from ..core.odeblock import ODEBlock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime uses lazy import)
    from ..core.execution_model import ExecutionTimeModel
from ..fixedpoint import Q20, QFormat
from ..fpga.device import PYNQ_Z2, BoardSpec
from ..fpga.geometry import BlockGeometry
from ..fpga.odeblock_hw import BlockWeights, HardwareODEBlock
from ..nn.tensor import Tensor, no_grad
from .partition import Partition

__all__ = ["PredictionReport", "HwSwRuntime"]


@dataclass
class PredictionReport:
    """Accounting of one batch prediction through the co-execution runtime."""

    batch_size: int
    pl_layers: Tuple[str, ...]
    pl_invocations: Dict[str, int] = field(default_factory=dict)
    pl_compute_seconds: float = 0.0
    pl_transfer_seconds: float = 0.0
    modeled_total_without_pl: float = 0.0
    modeled_total_with_pl: float = 0.0

    @property
    def pl_seconds(self) -> float:
        return self.pl_compute_seconds + self.pl_transfer_seconds

    @property
    def modeled_speedup(self) -> float:
        if self.modeled_total_with_pl == 0.0:
            return 1.0
        return self.modeled_total_without_pl / self.modeled_total_with_pl


class HwSwRuntime:
    """Run an OdeNetModel with selected ODEBlock layers on the PL simulator."""

    def __init__(
        self,
        model: OdeNetModel,
        partition: Partition,
        board: BoardSpec = PYNQ_Z2,
        n_units: int = 16,
        qformat: QFormat = Q20,
        execution_model: Optional["ExecutionTimeModel"] = None,
    ) -> None:
        # Imported lazily to avoid a circular import with repro.core.
        from ..core.execution_model import ExecutionTimeModel

        self.model = model
        self.partition = partition
        self.board = board
        self.n_units = n_units
        self.qformat = qformat
        self.execution_model = execution_model or ExecutionTimeModel(board, n_units=n_units)
        self.hardware_blocks: Dict[str, HardwareODEBlock] = {}
        self._build_hardware_blocks()

    # -- construction -------------------------------------------------------------

    def _build_hardware_blocks(self) -> None:
        # Hardware blocks are created lazily (at the first prediction) because
        # the feature-map spatial size depends on the input image size; here we
        # only validate that the requested layers are actually ODEBlocks.
        for layer in self.partition.pl_layers:
            module = self.model.stage_module(layer)
            if not isinstance(module, ODEBlock):
                raise TypeError(
                    f"layer '{layer}' is not realised as an ODEBlock in "
                    f"{self.model.spec.full_name}; only ODEBlock layer groups are "
                    "offloaded in the paper's design"
                )

    def _hardware_block_from(self, module: ODEBlock, layer: str, height: int, width: int) -> HardwareODEBlock:
        dyn = module.dynamics
        channels = module.channels
        geometry = BlockGeometry(
            name=layer,
            in_channels=channels,
            out_channels=channels,
            height=height,
            width=width,
        )
        weights = BlockWeights(
            conv1_weight=dyn.conv1.weight.data.copy(),
            bn1_gamma=dyn.bn1.gamma.data.copy(),
            bn1_beta=dyn.bn1.beta.data.copy(),
            conv2_weight=dyn.conv2.weight.data.copy(),
            bn2_gamma=dyn.bn2.gamma.data.copy(),
            bn2_beta=dyn.bn2.beta.data.copy(),
            bn1_mean=dyn.bn1.running_mean.copy(),
            bn1_var=dyn.bn1.running_var.copy(),
            bn2_mean=dyn.bn2.running_mean.copy(),
            bn2_var=dyn.bn2.running_var.copy(),
        )
        return HardwareODEBlock(
            geometry,
            weights,
            n_units=self.n_units,
            qformat=self.qformat,
            board=self.board,
            dynamic_bn_stats=False,
            time_concat=True,
        )

    # -- prediction ------------------------------------------------------------------

    def predict(self, x: np.ndarray) -> Tuple[np.ndarray, PredictionReport]:
        """Predict class logits for a batch, with the partition applied.

        Parameters
        ----------
        x:
            Input batch of shape ``(N, C, H, W)`` (float).

        Returns
        -------
        (logits, report):
            ``logits`` is an ``(N, num_classes)`` array; ``report`` carries
            the PL invocation counts and the modelled execution times.
        """

        model = self.model
        model.eval()
        x_t = Tensor(np.asarray(x, dtype=np.float64))
        report = PredictionReport(batch_size=x_t.shape[0], pl_layers=self.partition.pl_layers)

        with no_grad():
            h = model.bn1(model.conv1(x_t)).relu()
            h = self._run_stage("layer1", h, report)
            h = model.layer2_1(h)
            h = self._run_stage("layer2_2", h, report)
            h = model.layer3_1(h)
            h = self._run_stage("layer3_2", h, report)
            pooled = model.pool(h)
            logits = model.fc(pooled)

        modeled = self.execution_model.report(
            model.spec.name if model.spec.name != "ODENet" else "ODENet-3",
            model.spec.depth,
            offload_targets=self.partition.pl_layers,
        )
        report.modeled_total_without_pl = modeled.total_without_pl * report.batch_size
        report.modeled_total_with_pl = modeled.total_with_pl * report.batch_size
        return logits.data, report

    def _run_stage(self, layer: str, h: Tensor, report: PredictionReport) -> Tensor:
        module = self.model.stage_module(layer)
        if not self.partition.runs_on_pl(layer):
            return module(h)

        if layer not in self.hardware_blocks:
            _, _, height, width = h.shape
            self.hardware_blocks[layer] = self._hardware_block_from(module, layer, height, width)
        hw_block = self.hardware_blocks[layer]
        ode: ODEBlock = module  # type: ignore[assignment]
        step = ode.integration_time / ode.num_steps
        outputs: List[np.ndarray] = []
        for image in h.data:
            state, seconds, reports = hw_block.run_iterations(
                image, iterations=ode.num_steps, step_size=step
            )
            outputs.append(np.maximum(state, 0.0))  # trailing ReLU stays on the PS part
            report.pl_invocations[layer] = report.pl_invocations.get(layer, 0) + len(reports)
            report.pl_compute_seconds += sum(r.compute_seconds for r in reports)
            report.pl_transfer_seconds += sum(r.transfer_seconds for r in reports)
        return Tensor(np.stack(outputs, axis=0))

    # -- fidelity ---------------------------------------------------------------------

    def fidelity(self, x: np.ndarray) -> Dict[str, float]:
        """Compare offloaded prediction against the pure-software prediction.

        Returns the max absolute logit difference and the top-1 agreement rate
        between the two execution paths on the given batch.
        """

        logits_hw, _ = self.predict(x)
        self.model.eval()
        with no_grad():
            logits_sw = self.model(Tensor(np.asarray(x, dtype=np.float64))).data
        max_diff = float(np.max(np.abs(logits_hw - logits_sw)))
        agreement = float(np.mean(logits_hw.argmax(axis=1) == logits_sw.argmax(axis=1)))
        return {"max_logit_diff": max_diff, "top1_agreement": agreement}

"""Hardware/software co-execution substrate (the PS+PL system of Figure 3)."""

from .partition import Partition
from .ps_model import PsModelConfig, SoftwareCostModel
from .runtime import HwSwRuntime, PredictionReport

__all__ = [
    "Partition",
    "PsModelConfig",
    "SoftwareCostModel",
    "HwSwRuntime",
    "PredictionReport",
]

"""Conformance runner: drive iverilog over an emitted bundle when present.

The simulator is strictly optional — :func:`iverilog_available` gates every
caller (tests skip, the CLI reports ``simulation: skipped``) so the
conformance loop degrades to the pure-Python structural check on machines
without a Verilog toolchain.  When ``iverilog``/``vvp`` exist, the emitted
testbench replays every stimulus record against the DUT and the run passes
only if **every** output word is bit-identical to the FxArray expectation.
"""

from __future__ import annotations

import re
import shutil
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from .emit import TB_FILE

__all__ = ["SimulationResult", "iverilog_available", "run_conformance"]

_PASS_RE = re.compile(r"CONFORMANCE PASS (\d+) vectors (\d+) words")
_FAIL_RE = re.compile(r"CONFORMANCE FAIL")
_MISMATCH_RE = re.compile(r"MISMATCH", re.IGNORECASE)


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one iverilog conformance run."""

    available: bool
    passed: bool = False
    vectors: int = 0
    words: int = 0
    mismatches: int = 0
    stdout: str = ""

    @property
    def skipped(self) -> bool:
        return not self.available


def iverilog_available() -> bool:
    """True when both ``iverilog`` and ``vvp`` are on PATH."""

    return shutil.which("iverilog") is not None and shutil.which("vvp") is not None


def run_conformance(
    bundle_dir: Union[str, Path],
    *,
    sources: Optional[List[str]] = None,
    timeout: float = 300.0,
) -> SimulationResult:
    """Compile and simulate the bundle's testbench, parsing the verdict.

    ``bundle_dir`` must hold the emitted sources, the ROM ``.hex`` images,
    the testbench (``tb_odeblock.v``) and the vector files it reads.  When
    no simulator is installed the call returns ``available=False`` without
    touching the filesystem — callers treat that as a skip, never a failure.
    """

    bundle = Path(bundle_dir)
    if not iverilog_available():
        return SimulationResult(available=False)

    if sources is None:
        sources = [TB_FILE, "odeblock_top.v", "conv_pe.v", "bn_unit.v", "weight_rom.v"]
    missing = [s for s in sources if not (bundle / s).is_file()]
    if missing:
        raise FileNotFoundError(
            f"bundle {bundle} is missing sources for simulation: {', '.join(missing)}"
        )

    compile_cmd = ["iverilog", "-g2005", "-o", "sim.vvp"] + sources
    proc = subprocess.run(
        compile_cmd, cwd=bundle, capture_output=True, text=True, timeout=timeout
    )
    if proc.returncode != 0:
        return SimulationResult(
            available=True,
            passed=False,
            stdout=f"iverilog compile failed:\n{proc.stdout}{proc.stderr}",
        )

    run = subprocess.run(
        ["vvp", "sim.vvp"], cwd=bundle, capture_output=True, text=True, timeout=timeout
    )
    output = run.stdout + run.stderr
    match = _PASS_RE.search(output)
    if match and run.returncode == 0 and not _FAIL_RE.search(output):
        return SimulationResult(
            available=True,
            passed=True,
            vectors=int(match.group(1)),
            words=int(match.group(2)),
            stdout=output,
        )
    return SimulationResult(
        available=True,
        passed=False,
        mismatches=len(_MISMATCH_RE.findall(output)),
        stdout=output,
    )

"""Pure-Python structural checker for emitted RTL bundles.

No Verilog toolchain needed: the checker re-derives what the bundle *must*
look like from the same models that drove emission — the
:class:`~repro.fixedpoint.qformat.QFormat` (port widths), the BRAM plan of
:func:`~repro.fpga.bram.plan_block_allocation` (ROM depths) and the
:class:`~repro.fpga.resources.ResourceEstimator` DSP model (PE instance
counts) — and verifies the emitted text against them.

Every failure mode raises its own named exception (all subclasses of
:class:`StructuralCheckError`) so a regression pinpoints *what* drifted:

* :class:`ManifestError` — manifest missing/unreadable/inconsistent, or a
  listed file absent from the bundle;
* :class:`PortWidthError` — a top-level data port is not
  ``QFormat.word_length`` bits wide;
* :class:`RomDepthError` — a ROM init image does not hold exactly the words
  the BRAM plan (and the weight-image layout) requires;
* :class:`InstanceCountError` — the PE/ROM/BN instance counts disagree with
  the resource model.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..fixedpoint import QFormat
from ..fpga.bram import plan_block_allocation
from ..fpga.geometry import BlockGeometry
from ..fpga.resources import ResourceEstimator
from ..platform import PYNQ_Z2
from ..platform.registry import BOARDS
from .emit import BN_ROM_FILE, MANIFEST_FILE, MANIFEST_VERSION, TOP_FILE

__all__ = [
    "StructuralCheckError",
    "ManifestError",
    "PortWidthError",
    "RomDepthError",
    "InstanceCountError",
    "check_bundle",
]


class StructuralCheckError(ValueError):
    """Base class of every structural-checker failure.

    Subclasses ``ValueError`` so the CLI maps check failures onto its
    standard exit-code-2 error path.
    """


class ManifestError(StructuralCheckError):
    """The manifest is missing, unreadable, or lists files that are absent."""


class PortWidthError(StructuralCheckError):
    """A top-level port width disagrees with ``QFormat.word_length``."""


class RomDepthError(StructuralCheckError):
    """A ROM init image's depth disagrees with the BRAM plan."""


class InstanceCountError(StructuralCheckError):
    """Instance counts disagree with the resource model."""


#: Top-level ports that must be exactly ``word_length`` bits wide.
_DATA_PORTS = ("in_data", "t_fx", "out_data")

_PORT_RE = {
    "in_data": re.compile(r"input\s+signed\s+\[(\d+):0\]\s+in_data\b"),
    "t_fx": re.compile(r"input\s+signed\s+\[(\d+):0\]\s+t_fx\b"),
    "out_data": re.compile(r"output\s+reg\s+signed\s+\[(\d+):0\]\s+out_data\b"),
}

_WROM_INST_RE = re.compile(
    r"weight_rom\s*#\(\s*\.WORD\((\d+)\),\s*\.DEPTH\((\d+)\),\s*\.AW\(\d+\),"
    r"\s*\.INIT_FILE\(\"([^\"]+)\"\)\)",
)
_CONV_PE_RE = re.compile(r"\bconv_pe\s*#")
_BN_UNIT_RE = re.compile(r"\bbn_unit\s*#")


def _load_manifest(bundle: Path) -> Dict:
    path = bundle / MANIFEST_FILE
    if not path.is_file():
        raise ManifestError(f"bundle has no {MANIFEST_FILE} (looked in {bundle})")
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ManifestError(f"{MANIFEST_FILE} is not valid JSON: {exc}") from exc
    for key in ("version", "block", "qformat", "n_units", "n_banks", "roms", "sources", "top"):
        if key not in manifest:
            raise ManifestError(f"{MANIFEST_FILE} is missing required key '{key}'")
    if manifest["version"] != MANIFEST_VERSION:
        raise ManifestError(
            f"unsupported manifest version {manifest['version']} "
            f"(this checker expects {MANIFEST_VERSION})"
        )
    return manifest


def _geometry_from(manifest: Dict) -> BlockGeometry:
    b = manifest["block"]
    return BlockGeometry(
        name=b["name"],
        in_channels=b["in_channels"],
        out_channels=b["out_channels"],
        height=b["height"],
        width=b["width"],
        kernel=b.get("kernel", 3),
        stride=b.get("stride", 1),
    )


def _hex_words(text: str) -> List[str]:
    return [line.strip() for line in text.splitlines() if line.strip()]


def check_bundle(bundle_dir: Union[str, Path]) -> Dict:
    """Structurally verify an emitted bundle against the analytic models.

    Returns ``{"ok": True, "checks": [...]}`` on success; raises a named
    :class:`StructuralCheckError` subclass on the first violation.
    """

    bundle = Path(bundle_dir)
    manifest = _load_manifest(bundle)
    checks: List[Dict] = []

    geometry = _geometry_from(manifest)
    qf = manifest["qformat"]
    qformat = QFormat(qf["word_length"], qf["fraction_bits"])
    n_units = int(manifest["n_units"])
    n_banks = int(manifest["n_banks"])
    time_concat = bool(manifest.get("time_concat", False))
    word = qformat.word_length
    digits = (word + 3) // 4

    # -- 1. every listed file exists -------------------------------------------
    listed = list(manifest["sources"]) + sorted(manifest["roms"])
    missing = [name for name in listed if not (bundle / name).is_file()]
    if missing:
        raise ManifestError(
            f"manifest lists files absent from the bundle: {', '.join(missing)}"
        )
    checks.append({"check": "files_present", "files": len(listed)})

    # -- 2. port widths match QFormat.word_length ------------------------------
    top_text = (bundle / manifest["top"]).read_text()
    for port in _DATA_PORTS:
        match = _PORT_RE[port].search(top_text)
        if match is None:
            raise PortWidthError(
                f"{manifest['top']} does not declare port '{port}' "
                f"with the expected signed [{word - 1}:0] shape"
            )
        declared = int(match.group(1)) + 1
        if declared != word:
            raise PortWidthError(
                f"port '{port}' is {declared} bits wide, "
                f"expected QFormat word_length {word}"
            )
    checks.append({"check": "port_widths", "word_length": word, "ports": list(_DATA_PORTS)})

    # -- 3. ROM depths match the BRAM plan and the weight-image layout ---------
    plan = plan_block_allocation(geometry, n_units=n_units, qformat=qformat)
    bpv = qformat.bytes_per_value
    plan_conv_words = (
        plan.region("conv1_weights").num_bytes + plan.region("conv2_weights").num_bytes
    ) // bpv
    # The BRAM plan sizes the geometry's own channels; time concat adds one
    # input channel (C*K*K extra words per conv layer) on top of the plan.
    extra = 2 * geometry.out_channels * geometry.kernel ** 2 if time_concat else 0
    expected_conv_words = plan_conv_words + extra
    expected_bn_words = plan.region("bn_parameters").num_bytes // bpv

    conv_total = 0
    for name, info in sorted(manifest["roms"].items()):
        lines = _hex_words((bundle / name).read_text())
        if len(lines) != info["words"]:
            raise RomDepthError(
                f"ROM init {name} holds {len(lines)} words, "
                f"manifest says {info['words']} (truncated or padded image)"
            )
        bad = [ln for ln in lines if len(ln) != digits]
        if bad:
            raise RomDepthError(
                f"ROM init {name} has words of width {len(bad[0])} hex digits, "
                f"expected {digits} for a {word}-bit Q-format"
            )
        if info["kind"] == "conv_weights":
            conv_total += info["words"]
    if conv_total != expected_conv_words:
        raise RomDepthError(
            f"conv weight ROMs hold {conv_total} words across banks, "
            f"the BRAM plan requires {expected_conv_words}"
        )
    bn_info = manifest["roms"].get(BN_ROM_FILE)
    if bn_info is None or bn_info["words"] != expected_bn_words:
        raise RomDepthError(
            f"BN parameter ROM holds {bn_info['words'] if bn_info else 0} words, "
            f"the BRAM plan requires {expected_bn_words} (8 per channel)"
        )
    # ROM instance DEPTH parameters in the top must match the init images.
    for word_p, depth, init_file in _WROM_INST_RE.findall(top_text):
        if init_file not in manifest["roms"]:
            raise RomDepthError(
                f"{manifest['top']} instantiates a ROM from '{init_file}' "
                f"which the manifest does not describe"
            )
        if int(depth) != manifest["roms"][init_file]["words"]:
            raise RomDepthError(
                f"ROM instance for '{init_file}' declares DEPTH={depth}, "
                f"its init image holds {manifest['roms'][init_file]['words']} words"
            )
        if int(word_p) != word:
            raise RomDepthError(
                f"ROM instance for '{init_file}' declares WORD={word_p}, expected {word}"
            )
    checks.append(
        {
            "check": "rom_depths",
            "conv_words": conv_total,
            "bn_words": expected_bn_words,
            "banks": n_banks,
        }
    )

    # -- 4. instance counts match the resource model ---------------------------
    n_conv_pe = len(_CONV_PE_RE.findall(top_text))
    if n_conv_pe != n_units:
        raise InstanceCountError(
            f"{manifest['top']} instantiates {n_conv_pe} conv_pe units, "
            f"manifest n_units is {n_units}"
        )
    board_name = manifest.get("board", {}).get("name")
    board = BOARDS.get(board_name, PYNQ_Z2)
    estimate = ResourceEstimator(board.fpga, qformat).estimate(geometry, n_units=n_units)
    model_units = (int(estimate.resources.dsp) - 4) // 4
    if n_conv_pe != model_units:
        raise InstanceCountError(
            f"{n_conv_pe} conv_pe instances disagree with the DSP model "
            f"({int(estimate.resources.dsp)} DSPs -> {model_units} units)"
        )
    n_wrom = len(_WROM_INST_RE.findall(top_text))
    if n_wrom != n_banks + 1:
        raise InstanceCountError(
            f"{manifest['top']} instantiates {n_wrom} weight_rom blocks, "
            f"expected {n_banks} weight banks plus 1 BN parameter ROM"
        )
    n_bn = len(_BN_UNIT_RE.findall(top_text))
    if n_bn != 1:
        raise InstanceCountError(
            f"{manifest['top']} instantiates {n_bn} bn_unit blocks, expected exactly 1"
        )
    checks.append(
        {
            "check": "instance_counts",
            "conv_pe": n_conv_pe,
            "weight_rom": n_wrom,
            "bn_unit": n_bn,
            "dsp": int(estimate.resources.dsp),
        }
    )

    return {"ok": True, "checks": checks}

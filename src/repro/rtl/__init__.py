"""``repro.rtl`` — ODEBlock RTL emission pinned by bit-exact conformance.

The package closes the loop between the repo's analytic accelerator models
and actual hardware artifacts:

* :mod:`repro.rtl.emit` — template-based Verilog emission parameterised by
  ``QFormat`` × ``BlockGeometry`` × board-derived unit count;
* :mod:`repro.rtl.vectors` — stimulus/expected dumps from the batched
  ``FxArray`` engine (the Python bit-truth);
* :mod:`repro.rtl.check` — toolchain-free structural verification against
  the BRAM plan and the resource estimator;
* :mod:`repro.rtl.simrun` — optional iverilog conformance runs
  (auto-skipped when no simulator is installed).
"""

from .check import (
    InstanceCountError,
    ManifestError,
    PortWidthError,
    RomDepthError,
    StructuralCheckError,
    check_bundle,
)
from .emit import (
    BN_ROM_FILE,
    MANIFEST_FILE,
    MANIFEST_VERSION,
    SOURCE_FILES,
    TB_FILE,
    TOP_FILE,
    RtlBundle,
    default_n_units,
    emit_odeblock,
    emit_testbench,
    random_block_weights,
)
from .simrun import SimulationResult, iverilog_available, run_conformance
from .vectors import (
    EXPECTED_HEX,
    GOLDEN_CASES,
    STIMULUS_HEX,
    VECTORS_MANIFEST,
    GoldenCase,
    VectorRecord,
    VectorSet,
    generate_vectors,
    golden_vectors,
    write_vector_files,
)

__all__ = [
    "RtlBundle",
    "emit_odeblock",
    "emit_testbench",
    "default_n_units",
    "random_block_weights",
    "SOURCE_FILES",
    "TOP_FILE",
    "TB_FILE",
    "MANIFEST_FILE",
    "MANIFEST_VERSION",
    "BN_ROM_FILE",
    "VectorRecord",
    "VectorSet",
    "GoldenCase",
    "GOLDEN_CASES",
    "generate_vectors",
    "golden_vectors",
    "write_vector_files",
    "STIMULUS_HEX",
    "EXPECTED_HEX",
    "VECTORS_MANIFEST",
    "StructuralCheckError",
    "ManifestError",
    "PortWidthError",
    "RomDepthError",
    "InstanceCountError",
    "check_bundle",
    "SimulationResult",
    "iverilog_available",
    "run_conformance",
]

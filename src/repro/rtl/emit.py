"""Template-based Verilog emission of the ODEBlock datapath.

:func:`emit_odeblock` turns the same specifications that drive the analytic
models — a :class:`~repro.fpga.geometry.BlockGeometry`, a
:class:`~repro.fixedpoint.qformat.QFormat` and the board's
:class:`~repro.platform.BoardSpec`-derived MAC-unit count — into a
self-contained RTL bundle:

* ``odeblock_top.v`` + ``conv_pe.v`` + ``bn_unit.v`` + ``weight_rom.v`` +
  ``fx_ops.vh`` — the datapath (one conv PE instance per MAC unit, weight
  words interleaved across the banks of the BRAM plan);
* ``wbank_<u>.hex`` / ``bn_params.hex`` — ROM images sliced from the
  :func:`repro.fpga.export.export_block_weights` byte image, so the RTL and
  the deployment format share one source of truth;
* ``rtl_manifest.json`` — machine-readable description of the bundle that
  the structural checker (:mod:`repro.rtl.check`) verifies against the BRAM
  plan and the resource estimator.

The unit count defaults to :func:`default_n_units`: the largest power-of-two
conv_xN configuration that both fits the board's FPGA and meets timing at
the board's PL clock — i.e. it is derived from the ``BoardSpec``, not a
constant.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..fixedpoint import Q20, QFormat
from ..fpga.bram import plan_block_allocation
from ..fpga.export import WeightImageHeader, _dtype_for, export_block_weights
from ..fpga.geometry import BlockGeometry, block_geometry
from ..fpga.odeblock_hw import BlockWeights
from ..fpga.resources import ResourceEstimator
from ..fpga.timing import TimingModel
from ..platform import PYNQ_Z2, BoardSpec
from . import templates

__all__ = [
    "RtlBundle",
    "emit_odeblock",
    "emit_testbench",
    "default_n_units",
    "random_block_weights",
    "SOURCE_FILES",
    "TOP_FILE",
    "TB_FILE",
    "MANIFEST_FILE",
    "BN_ROM_FILE",
    "MANIFEST_VERSION",
]

#: Verilog sources of every bundle, in compile order (testbench excluded).
TOP_FILE = "odeblock_top.v"
TB_FILE = "tb_odeblock.v"
MANIFEST_FILE = "rtl_manifest.json"
BN_ROM_FILE = "bn_params.hex"
SOURCE_FILES = ("fx_ops.vh", "weight_rom.v", "conv_pe.v", "bn_unit.v", TOP_FILE)

MANIFEST_VERSION = 1

#: conv_xN candidates for the board-derived default unit count.
_UNIT_CANDIDATES = (64, 32, 16, 8, 4, 2, 1)

#: The BN epsilon of repro.fpga.ops.hw_batch_norm.
_BN_EPS = 1e-5


def _aw(depth: int) -> int:
    """Address width covering ``depth`` words (at least 1 bit)."""

    return max(1, (max(int(depth), 1) - 1).bit_length()) if depth > 1 else 1


def _sv_int64(value: int) -> str:
    """A 64-bit signed Verilog literal (negative values need a real minus)."""

    v = int(value)
    return f"-64'sd{-v}" if v < 0 else f"64'sd{v}"


def _hex_lines(values: np.ndarray, word_length: int) -> str:
    """Two's-complement hex dump, one word per line (``$readmemh`` format)."""

    mask = (1 << word_length) - 1
    digits = (word_length + 3) // 4
    return "\n".join(format(int(v) & mask, f"0{digits}x") for v in np.asarray(values).ravel()) + "\n"


def _owned_channels(out_channels: int, n_units: int, unit: int) -> List[int]:
    """Output channels computed by PE ``unit`` (interleaved modulo n_units)."""

    return list(range(unit, out_channels, n_units))


def random_block_weights(
    geometry: BlockGeometry,
    *,
    time_concat: bool = False,
    seed: int = 0,
    scale: float = 0.1,
) -> BlockWeights:
    """Seeded random weights, with the extra time-concat input channel."""

    rng = np.random.default_rng(seed)
    c = geometry.out_channels
    k = geometry.kernel
    c_in = geometry.in_channels + (1 if time_concat else 0)
    shape = (c, c_in, k, k)
    return BlockWeights(
        conv1_weight=rng.normal(0.0, scale, size=shape),
        bn1_gamma=np.ones(c),
        bn1_beta=np.zeros(c),
        conv2_weight=rng.normal(0.0, scale, size=shape),
        bn2_gamma=np.ones(c),
        bn2_beta=np.zeros(c),
    )


def default_n_units(
    board: BoardSpec = PYNQ_Z2,
    geometry: Union[str, BlockGeometry] = "layer3_2",
    qformat: QFormat = Q20,
) -> int:
    """Board-derived MAC-unit count: the largest conv_xN that fits and closes.

    Walks the power-of-two candidates downward and returns the first one
    whose :class:`~repro.fpga.resources.ResourceEstimator` estimate fits the
    board's FPGA *and* whose :class:`~repro.fpga.timing.TimingModel` report
    meets timing at the board's PL clock.
    """

    geometry = geometry if isinstance(geometry, BlockGeometry) else block_geometry(geometry)
    estimator = ResourceEstimator(board.fpga, qformat)
    timing = TimingModel.for_board(board)
    for n in _UNIT_CANDIDATES:
        fits = estimator.estimate(geometry, n_units=n).fits(board.fpga)
        closes = timing.analyze(n, target_hz=board.pl_clock_hz).meets_timing
        if fits and closes:
            return n
    return 1


@dataclass(frozen=True)
class RtlBundle:
    """One emitted RTL design: sources, ROM images and the manifest."""

    geometry: BlockGeometry
    qformat: QFormat
    n_units: int
    board_name: str
    files: Mapping[str, str] = field(default_factory=dict)
    manifest: Dict = field(default_factory=dict)

    def write(self, out_dir: Union[str, Path]) -> List[Path]:
        """Write every bundle file under ``out_dir`` (created if missing)."""

        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        written = []
        for name, text in self.files.items():
            path = out / name
            path.write_text(text)
            written.append(path)
        return written

    @property
    def verilog_sources(self) -> List[str]:
        """The synthesisable sources in compile order (no testbench)."""

        return [n for n in SOURCE_FILES if n != "fx_ops.vh"]


def _rom_images(
    weights: BlockWeights, qformat: QFormat, n_units: int
) -> Tuple[Dict[str, str], Dict[str, Dict], WeightImageHeader, int]:
    """Slice the export image into per-bank weight ROMs and the BN ROM.

    Returns ``(hex_files, rom_manifest, header, n_banks)``.  The ROM words
    are read back from the :func:`export_block_weights` byte image — not
    re-quantised from the float weights — so the RTL initialisation and the
    deployment format cannot drift apart.
    """

    image = export_block_weights(weights, qformat)
    header = WeightImageHeader.unpack(image)
    dtype = _dtype_for(qformat)
    words = np.frombuffer(image, dtype=dtype, offset=header.size).astype(np.int64)

    c = header.out_channels
    c_inc = header.in_channels + (1 if header.time_concat else 0)
    k = header.kernel
    conv_count = c * c_inc * k * k
    conv1 = words[:conv_count].reshape(c, c_inc, k, k)
    conv2 = words[conv_count : 2 * conv_count].reshape(c, c_inc, k, k)
    bn = words[2 * conv_count : 2 * conv_count + 8 * c]

    n_banks = max(1, min(n_units, c))
    hex_files: Dict[str, str] = {}
    rom_manifest: Dict[str, Dict] = {}
    for u in range(n_banks):
        owned = _owned_channels(c, n_units, u)
        bank = np.concatenate(
            [conv1[co].ravel() for co in owned] + [conv2[co].ravel() for co in owned]
        )
        name = f"wbank_{u}.hex"
        hex_files[name] = _hex_lines(bank, qformat.word_length)
        rom_manifest[name] = {
            "kind": "conv_weights",
            "bank": u,
            "channels": owned,
            "words": int(bank.size),
            "conv1_words": int(len(owned) * c_inc * k * k),
            "conv2_words": int(len(owned) * c_inc * k * k),
        }
    hex_files[BN_ROM_FILE] = _hex_lines(bn, qformat.word_length)
    rom_manifest[BN_ROM_FILE] = {"kind": "bn_parameters", "words": int(bn.size)}
    return hex_files, rom_manifest, header, n_banks


def _cycle_guess(geometry: BlockGeometry, n_units: int, time_concat: bool) -> int:
    """Rough per-record cycle count (testbench watchdog sizing only)."""

    c = geometry.out_channels
    hw = geometry.height * geometry.width
    chw = c * hw
    c_inc = geometry.in_channels + (1 if time_concat else 0)
    conv = -(-c // min(n_units, c)) * hw * c_inc * geometry.kernel * geometry.kernel
    bn = c * (3 * hw + 8)
    return hw + 2 * (conv + chw + bn + 16) + 3 * chw + 64


def emit_odeblock(
    block: Union[str, BlockGeometry],
    weights: Optional[BlockWeights] = None,
    *,
    qformat: QFormat = Q20,
    n_units: Optional[int] = None,
    board: BoardSpec = PYNQ_Z2,
    time_concat: bool = False,
    step_size: float = 1.0,
    seed: int = 0,
    weight_scale: float = 0.1,
) -> RtlBundle:
    """Emit the Verilog bundle of one ODEBlock configuration.

    Parameters mirror :class:`~repro.fpga.odeblock_hw.HardwareODEBlock`;
    ``weights=None`` draws seeded random weights (tests/benches).  Raises
    :class:`ValueError` for configurations the emitter does not model
    (stride > 1, word lengths above 32 bits, non-square kernels).
    """

    geometry = block if isinstance(block, BlockGeometry) else block_geometry(block)
    if geometry.stride != 1:
        raise ValueError("RTL emission supports stride-1 blocks only (all offloadable blocks)")
    if geometry.in_channels != geometry.out_channels:
        raise ValueError("RTL emission requires in_channels == out_channels (residual block)")
    if geometry.kernel % 2 == 0:
        raise ValueError("RTL emission requires an odd kernel (same-size zero padding)")
    if qformat.word_length > 32:
        raise ValueError(
            "RTL emission supports word lengths up to 32 bits "
            "(the datapath accumulates in 64-bit registers)"
        )
    if n_units is None:
        n_units = default_n_units(board, geometry, qformat)
    if n_units < 1:
        raise ValueError("n_units must be at least 1")
    if weights is None:
        weights = random_block_weights(
            geometry, time_concat=time_concat, seed=seed, scale=weight_scale
        )

    c = geometry.out_channels
    k = geometry.kernel
    pad = (k - 1) // 2
    h, w = geometry.height, geometry.width
    hw = h * w
    chw = c * hw
    c_inc = geometry.in_channels + (1 if time_concat else 0)
    expected_shape = (c, c_inc, k, k)
    if weights.conv1_weight.shape != expected_shape:
        raise ValueError(
            f"conv1 weight shape {weights.conv1_weight.shape} does not match "
            f"the emitted datapath {expected_shape} (time_concat={time_concat})"
        )

    hex_files, rom_manifest, header, n_banks = _rom_images(weights, qformat, n_units)
    plan = plan_block_allocation(geometry, n_units=n_units, qformat=qformat)
    estimate = ResourceEstimator(board.fpga, qformat).estimate(geometry, n_units=n_units)

    word = qformat.word_length
    frac = qformat.fraction_bits
    in_words = c_inc * hw
    max_local = max(len(_owned_channels(c, n_units, u)) for u in range(n_banks))
    aw_in = _aw(in_words)
    aw_out = _aw(max_local * hw)
    aw_x = _aw(chw)
    aw_r = _aw(8 * c)
    h_fx = int(qformat.to_fixed(float(step_size)))
    eps_fx = int(qformat.to_fixed(_BN_EPS))
    h_is_one = 1 if step_size == 1.0 else 0

    common = dict(
        word=word,
        frac=frac,
        wm1=word - 1,
        c=c,
        c_inc=c_inc,
        h=h,
        w=w,
        k=k,
        pad=pad,
        hw=hw,
        chw=chw,
        chw_m1=chw - 1,
        in_words_m1=in_words - 1,
        aw_in=aw_in,
        aw_in_m1=aw_in - 1,
        aw_out=aw_out,
        aw_out_m1=aw_out - 1,
        aw_x=aw_x,
        aw_x_m1=aw_x - 1,
        aw_r=aw_r,
        aw_r_m1=aw_r - 1,
    )

    pe_blocks = []
    mux_cases = []
    for u in range(n_units):
        owned = _owned_channels(c, n_units, u)
        if owned:
            bank_words = rom_manifest[f"wbank_{u}.hex"]["words"]
            pe_blocks.append(
                templates.PE_BLOCK_TEMPLATE.format(
                    u=u,
                    owned=",".join(str(co) for co in owned),
                    n_ch=len(owned),
                    bank_words=bank_words,
                    aw_w=_aw(bank_words),
                    aw_w_m1=_aw(bank_words) - 1,
                    **common,
                )
            )
        else:
            pe_blocks.append(
                templates.PE_BLOCK_IDLE_TEMPLATE.format(
                    u=u, aw_w=1, aw_w_m1=0, **common
                )
            )
        mux_cases.append(f"            {u}: pe_rd_mux = pe{u}_rd_data;\n")

    top_text = templates.TOP_TEMPLATE.format(
        block_comment=(
            f"Block {geometry.name}: {c} channels, {h}x{w} feature map, "
            f"{k}x{k} kernel, conv_x{n_units}, Q{frac} ({word}-bit), "
            f"board {board.name}"
        ),
        n_pe=n_units,
        tc=1 if time_concat else 0,
        h_is_one=h_is_one,
        hfx=_sv_int64(h_fx),
        eps_fx=_sv_int64(eps_fx),
        bn_words=8 * c,
        bn_hex=BN_ROM_FILE,
        pe_blocks="\n".join(pe_blocks),
        all_pe_done_expr=" && ".join(f"pe{u}_done" for u in range(n_units)),
        pe_rd_mux_cases="".join(mux_cases),
        **common,
    )

    files: Dict[str, str] = {
        "fx_ops.vh": templates.FX_OPS_VH,
        "weight_rom.v": templates.WEIGHT_ROM_V,
        "conv_pe.v": templates.CONV_PE_V,
        "bn_unit.v": templates.BN_UNIT_V,
        TOP_FILE: top_text,
    }
    files.update(hex_files)

    manifest = {
        "generator": "repro.rtl",
        "version": MANIFEST_VERSION,
        "block": {
            "name": geometry.name,
            "in_channels": geometry.in_channels,
            "out_channels": geometry.out_channels,
            "height": h,
            "width": w,
            "kernel": k,
            "stride": geometry.stride,
        },
        "qformat": {"word_length": word, "fraction_bits": frac},
        "board": {"name": board.name, "pl_clock_hz": board.pl_clock_hz},
        "n_units": n_units,
        "n_banks": n_banks,
        "time_concat": time_concat,
        "bn_mode": "dynamic",
        "step_size": step_size,
        "h_fx": h_fx,
        "eps_fx": eps_fx,
        "sources": list(SOURCE_FILES),
        "top": TOP_FILE,
        "roms": rom_manifest,
        "weight_image": {
            "magic": "ODEW",
            "word_length": header.word_length,
            "fraction_bits": header.fraction_bits,
            "time_concat": header.time_concat,
        },
        "resources": {
            "dsp": int(estimate.resources.dsp),
            "bram_tiles": int(plan.total_tiles),
            "lut": float(estimate.resources.lut),
            "ff": float(estimate.resources.ff),
        },
        "bram_plan": [r.as_dict() for r in plan.regions],
        "cycle_guess": _cycle_guess(geometry, n_units, time_concat),
        "not_emitted": ["axi_dma_frontend", "replica_scheduling_fsm", "running_stats_bn"],
    }
    files[MANIFEST_FILE] = json.dumps(manifest, indent=2, sort_keys=True) + "\n"

    return RtlBundle(
        geometry=geometry,
        qformat=qformat,
        n_units=n_units,
        board_name=board.name,
        files=files,
        manifest=manifest,
    )


def emit_testbench(bundle: RtlBundle, n_records: int, stim_hex: str, exp_hex: str) -> str:
    """Emit the conformance testbench for ``n_records`` vector records."""

    geometry = bundle.geometry
    chw = geometry.out_channels * geometry.height * geometry.width
    guard = 4 * bundle.manifest["cycle_guess"] + 10000
    return templates.TB_TEMPLATE.format(
        word=bundle.qformat.word_length,
        chw=chw,
        nrec=n_records,
        stim_hex=stim_hex,
        exp_hex=exp_hex,
        guard_cycles=guard,
    )

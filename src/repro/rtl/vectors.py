"""Testbench-vector generation from the batched ``FxArray`` engine.

:func:`generate_vectors` Euler-iterates a seeded batch through
:meth:`~repro.fpga.odeblock_hw.HardwareODEBlock.execute_batch` — the same
loop :meth:`~repro.fpga.odeblock_hw.HardwareODEBlock.run_iterations_batch`
runs — and records one (stimulus, t, expected) triple per image per
iteration.  Each record is an independent single-step check: record *i*'s
expected state is record *i+1*'s stimulus (exactly, in integers), so
verifying every record verifies the whole iterated trajectory.

All serialisations are integer-only and platform-pinned:

* the ``.hex`` files hold two's-complement words at the Q-format's width
  (the ``$readmemh`` input of the emitted testbench);
* :meth:`VectorSet.to_bytes` is a little-endian ``<i8`` byte image with a
  self-describing header (magic ``ODEV``) — **no float round-trip**, so the
  dump is byte-identical across runs and platforms for a given seed.

The saturation-heavy Q4.2 / Q6.4 golden cases of ``tests/rtl/goldens`` are
described by :data:`GOLDEN_CASES` and regenerated bit-for-bit by
:func:`golden_vectors`.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..fixedpoint import QFormat
from ..fpga.geometry import BlockGeometry
from ..fpga.odeblock_hw import BlockWeights, HardwareODEBlock
from .emit import _hex_lines, random_block_weights

__all__ = [
    "VectorRecord",
    "VectorSet",
    "GoldenCase",
    "GOLDEN_CASES",
    "generate_vectors",
    "golden_vectors",
    "write_vector_files",
    "STIMULUS_HEX",
    "EXPECTED_HEX",
    "VECTORS_MANIFEST",
]

STIMULUS_HEX = "stimulus.hex"
EXPECTED_HEX = "expected.hex"
VECTORS_MANIFEST = "vectors.json"

_VECTOR_MAGIC = b"ODEV"
_VECTOR_VERSION = 1
#: Little-endian header: magic, version, word, frac, C, H, W, time_concat,
#: then the record count as a 32-bit field.
_VECTOR_HEADER = struct.Struct("<4sHHHHHHHI")


@dataclass(frozen=True)
class VectorRecord:
    """One single-step conformance check (integer representations)."""

    stimulus: np.ndarray  # flat C*H*W int64 raws of the input state
    t_fx: int  # quantised integration time
    expected: np.ndarray  # flat C*H*W int64 raws of z + h*f(z, t)


@dataclass(frozen=True)
class VectorSet:
    """A bit-exact stimulus/expected dump of the FxArray engine."""

    qformat: QFormat
    channels: int
    height: int
    width: int
    time_concat: bool
    step_size: float
    records: Tuple[VectorRecord, ...] = field(default_factory=tuple)

    @property
    def words_per_map(self) -> int:
        return self.channels * self.height * self.width

    def stimulus_hex(self) -> str:
        """``$readmemh`` stimulus: C*H*W words then one t word per record."""

        chunks = []
        for rec in self.records:
            chunks.append(_hex_lines(rec.stimulus, self.qformat.word_length))
            chunks.append(_hex_lines(np.asarray([rec.t_fx]), self.qformat.word_length))
        return "".join(chunks)

    def expected_hex(self) -> str:
        """``$readmemh`` expected outputs: C*H*W words per record."""

        return "".join(
            _hex_lines(rec.expected, self.qformat.word_length) for rec in self.records
        )

    def to_bytes(self) -> bytes:
        """Canonical little-endian byte image (fixed endianness, ints only)."""

        head = _VECTOR_HEADER.pack(
            _VECTOR_MAGIC,
            _VECTOR_VERSION,
            self.qformat.word_length,
            self.qformat.fraction_bits,
            self.channels,
            self.height,
            self.width,
            1 if self.time_concat else 0,
            len(self.records),
        )
        pieces = [head]
        for rec in self.records:
            pieces.append(np.asarray([rec.t_fx], dtype="<i8").tobytes())
            pieces.append(np.asarray(rec.stimulus, dtype="<i8").tobytes())
            pieces.append(np.asarray(rec.expected, dtype="<i8").tobytes())
        return b"".join(pieces)

    @classmethod
    def from_bytes(cls, data: bytes) -> "VectorSet":
        """Parse a :meth:`to_bytes` image back (inverse, bit-exact)."""

        magic, version, word, frac, c, h, w, tc, n = _VECTOR_HEADER.unpack(
            data[: _VECTOR_HEADER.size]
        )
        if magic != _VECTOR_MAGIC:
            raise ValueError(f"not a testbench-vector image (magic {magic!r})")
        if version != _VECTOR_VERSION:
            raise ValueError(f"unsupported vector image version {version}")
        chw = c * h * w
        offset = _VECTOR_HEADER.size
        records = []
        for _ in range(n):
            t_fx = int(np.frombuffer(data, dtype="<i8", count=1, offset=offset)[0])
            offset += 8
            stim = np.frombuffer(data, dtype="<i8", count=chw, offset=offset).astype(np.int64)
            offset += 8 * chw
            exp = np.frombuffer(data, dtype="<i8", count=chw, offset=offset).astype(np.int64)
            offset += 8 * chw
            records.append(VectorRecord(stimulus=stim, t_fx=t_fx, expected=exp))
        return cls(
            qformat=QFormat(word, frac),
            channels=c,
            height=h,
            width=w,
            time_concat=bool(tc),
            step_size=1.0,  # not stored; informational only
            records=tuple(records),
        )

    def manifest(self) -> Dict:
        """Deterministic JSON-able description of the vector set."""

        return {
            "magic": "ODEV",
            "version": _VECTOR_VERSION,
            "word_length": self.qformat.word_length,
            "fraction_bits": self.qformat.fraction_bits,
            "channels": self.channels,
            "height": self.height,
            "width": self.width,
            "time_concat": self.time_concat,
            "step_size": self.step_size,
            "records": len(self.records),
            "words_per_map": self.words_per_map,
            "t_fx": [rec.t_fx for rec in self.records],
            "files": {"stimulus": STIMULUS_HEX, "expected": EXPECTED_HEX},
        }


def generate_vectors(
    block: BlockGeometry,
    weights: BlockWeights,
    *,
    qformat: QFormat,
    images: int = 2,
    iterations: int = 2,
    seed: int = 7,
    input_scale: float = 0.5,
    step_size: float = 1.0,
    t0: float = 0.0,
    time_concat: bool = False,
    n_units: int = 4,
) -> VectorSet:
    """Dump stimulus/expected pairs from the batched FxArray engine.

    The batch flows through :meth:`HardwareODEBlock.execute_batch` exactly
    as :meth:`run_iterations_batch` drives it (``t_i = t0 + i*h``, residual
    Euler update per step); the recorded raws are the quantised states at
    each step boundary.  ``n_units`` never changes the numbers (the batch
    engine is bit-exact in the unit count) — any emitted design point can be
    checked against the same vectors.
    """

    hw_block = HardwareODEBlock(
        block,
        weights,
        n_units=n_units,
        qformat=qformat,
        time_concat=time_concat,
    )
    rng = np.random.default_rng(seed)
    shape = (images, block.out_channels, block.height, block.width)
    state = np.asarray(rng.normal(0.0, input_scale, size=shape), dtype=np.float64)

    records: List[VectorRecord] = []
    for i in range(iterations):
        t = t0 + i * step_size
        t_fx = int(qformat.to_fixed(float(t)))
        stim_raw = qformat.to_fixed(state)
        state, _ = hw_block.execute_batch(state, step_size=step_size, residual=True, t=t)
        exp_raw = qformat.to_fixed(state)
        for n in range(images):
            records.append(
                VectorRecord(
                    stimulus=stim_raw[n].ravel().copy(),
                    t_fx=t_fx,
                    expected=exp_raw[n].ravel().copy(),
                )
            )
    return VectorSet(
        qformat=qformat,
        channels=block.out_channels,
        height=block.height,
        width=block.width,
        time_concat=time_concat,
        step_size=step_size,
        records=tuple(records),
    )


def write_vector_files(vectors: VectorSet, out_dir: Union[str, Path]) -> Dict[str, Path]:
    """Write ``stimulus.hex`` / ``expected.hex`` / ``vectors.json``."""

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = {
        STIMULUS_HEX: out / STIMULUS_HEX,
        EXPECTED_HEX: out / EXPECTED_HEX,
        VECTORS_MANIFEST: out / VECTORS_MANIFEST,
    }
    paths[STIMULUS_HEX].write_text(vectors.stimulus_hex())
    paths[EXPECTED_HEX].write_text(vectors.expected_hex())
    paths[VECTORS_MANIFEST].write_text(
        json.dumps(vectors.manifest(), indent=2, sort_keys=True) + "\n"
    )
    return paths


# -- golden cases ------------------------------------------------------------------


@dataclass(frozen=True)
class GoldenCase:
    """Full recipe of one committed golden vector set (regenerable)."""

    name: str
    word_length: int
    fraction_bits: int
    channels: int = 4
    size: int = 4
    images: int = 2
    iterations: int = 3
    seed: int = 20240
    weight_seed: int = 99
    weight_scale: float = 3.0
    input_scale: float = 3.0
    time_concat: bool = False
    step_size: float = 1.0

    @property
    def qformat(self) -> QFormat:
        return QFormat(self.word_length, self.fraction_bits)

    @property
    def geometry(self) -> BlockGeometry:
        return BlockGeometry(
            name=f"golden_{self.channels}ch_{self.size}px",
            in_channels=self.channels,
            out_channels=self.channels,
            height=self.size,
            width=self.size,
        )


#: The PR 4 saturation edge cases: pathological Q4.2 and hard-saturating
#: Q6.4 (weight/input scale 3.0 drives the datapath deep into clipping).
GOLDEN_CASES: Dict[str, GoldenCase] = {
    "q4_2_saturation": GoldenCase(name="q4_2_saturation", word_length=4, fraction_bits=2),
    "q6_4_saturation": GoldenCase(name="q6_4_saturation", word_length=6, fraction_bits=4),
}


def golden_vectors(case: Union[str, GoldenCase]) -> Tuple[GoldenCase, VectorSet, BlockWeights]:
    """Regenerate one golden vector set bit-for-bit from its recipe."""

    if isinstance(case, str):
        case = GOLDEN_CASES[case]
    weights = random_block_weights(
        case.geometry,
        time_concat=case.time_concat,
        seed=case.weight_seed,
        scale=case.weight_scale,
    )
    vectors = generate_vectors(
        case.geometry,
        weights,
        qformat=case.qformat,
        images=case.images,
        iterations=case.iterations,
        seed=case.seed,
        input_scale=case.input_scale,
        step_size=case.step_size,
        time_concat=case.time_concat,
    )
    return case, vectors, weights

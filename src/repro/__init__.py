"""repro — reproduction of "Accelerating ODE-Based Neural Networks on Low-Cost FPGAs".

The package is organised as the paper's system is:

* :mod:`repro.core` — the contribution: ODEBlocks, the rODENet variants
  (Table 4), executable network builders, the parameter-size model
  (Table 2 / Figure 5), the execution-time model (Table 5) and the offload
  planner.
* :mod:`repro.nn` — NumPy autograd CNN substrate (the PyTorch stand-in).
* :mod:`repro.ode` — ODE solvers (Euler / RK2 / RK4 / adaptive) and the
  adjoint method (the torchdiffeq stand-in).
* :mod:`repro.fixedpoint` — 32-bit Q20 fixed-point arithmetic.
* :mod:`repro.fpga` — the simulated PYNQ-Z2 / Zynq XC7Z020: cycle model,
  resource model, timing model, AXI transfers, and a bit-accurate fixed-point
  ODEBlock engine.
* :mod:`repro.hwsw` — PS software cost model and the hardware/software
  co-execution runtime.
* :mod:`repro.data`, :mod:`repro.train` — dataset and training substrates.
* :mod:`repro.analysis` — regeneration of every table and figure.
* :mod:`repro.api` — the unified ``Scenario -> Evaluator -> Result`` entry
  point and the design-space sweep engine behind the CLI.
* :mod:`repro.sim` — discrete-event simulation of multi-request serving:
  arrival processes, PS/AXI/PL resource contention, replicated accelerators,
  dispatch policies and latency/utilisation/energy metrics.
"""

from . import analysis, api, core, data, fixedpoint, fpga, hwsw, nn, ode, sim, train

__version__ = "1.2.0"

__all__ = [
    "api",
    "sim",
    "core",
    "nn",
    "ode",
    "fixedpoint",
    "fpga",
    "hwsw",
    "data",
    "train",
    "analysis",
    "__version__",
]

"""Fixed-point arithmetic substrate (the paper's 32-bit Q20 datapath format)."""

from . import arithmetic
from .errors import QuantizationReport, analyze_quantization, error_report, sqnr_db, sweep_wordlengths
from .fxarray import FxArray
from .qformat import Q8, Q12, Q16, Q20, OverflowMode, QFormat

__all__ = [
    "QFormat",
    "OverflowMode",
    "Q20",
    "Q16",
    "Q12",
    "Q8",
    "FxArray",
    "arithmetic",
    "QuantizationReport",
    "analyze_quantization",
    "error_report",
    "sweep_wordlengths",
    "sqnr_db",
]

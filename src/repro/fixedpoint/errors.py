"""Quantisation-error analysis utilities.

Used by the word-length ablation (EXPERIMENTS.md, E11) to quantify how the
choice of fixed-point format affects numerical fidelity of the ODEBlock
datapath, supporting the paper's footnote that 16-bit or smaller formats
would fit more layers into BRAM at some accuracy cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from .qformat import QFormat

__all__ = [
    "QuantizationReport",
    "analyze_quantization",
    "error_report",
    "sweep_wordlengths",
    "sqnr_db",
    "conv_error_bound",
    "batch_norm_error_bound",
    "odeblock_error_bound",
    "OdeBlockErrorBound",
]


@dataclass(frozen=True)
class QuantizationReport:
    """Summary statistics of quantising a signal with a given format."""

    fmt: QFormat
    max_abs_error: float
    mean_abs_error: float
    rms_error: float
    sqnr_db: float
    overflow_fraction: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "word_length": self.fmt.word_length,
            "fraction_bits": self.fmt.fraction_bits,
            "max_abs_error": self.max_abs_error,
            "mean_abs_error": self.mean_abs_error,
            "rms_error": self.rms_error,
            "sqnr_db": self.sqnr_db,
            "overflow_fraction": self.overflow_fraction,
        }


def sqnr_db(signal: np.ndarray, error: np.ndarray) -> float:
    """Signal-to-quantisation-noise ratio in decibels."""

    signal_power = float(np.mean(np.square(signal)))
    noise_power = float(np.mean(np.square(error)))
    if noise_power == 0.0:
        return float("inf")
    if signal_power == 0.0:
        return float("-inf")
    return 10.0 * np.log10(signal_power / noise_power)


def analyze_quantization(values: np.ndarray, fmt: QFormat) -> QuantizationReport:
    """Quantise ``values`` with ``fmt`` and report error statistics."""

    values = np.asarray(values, dtype=np.float64)
    quantized = fmt.quantize(values)
    error = quantized - values
    representable = fmt.representable(values)
    return QuantizationReport(
        fmt=fmt,
        max_abs_error=float(np.max(np.abs(error))) if values.size else 0.0,
        mean_abs_error=float(np.mean(np.abs(error))) if values.size else 0.0,
        rms_error=float(np.sqrt(np.mean(np.square(error)))) if values.size else 0.0,
        sqnr_db=sqnr_db(values, error),
        overflow_fraction=float(1.0 - representable.mean()) if values.size else 0.0,
    )


def error_report(reference: np.ndarray, actual: np.ndarray, fmt: QFormat) -> QuantizationReport:
    """Error statistics of an *already-computed* signal against a reference.

    Unlike :func:`analyze_quantization` (which quantises the input itself),
    this compares two given signals — e.g. a fixed-point datapath's output
    versus its float64 reference — and reports the same statistics.  The
    overflow fraction counts reference values outside the format's
    representable range (the saturation regime).  Used by the
    accuracy-vs-format sweep (:func:`repro.api.accuracy.accuracy_sweep`).
    """

    reference = np.asarray(reference, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if reference.shape != actual.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {actual.shape}")
    error = actual - reference
    representable = fmt.representable(reference)
    return QuantizationReport(
        fmt=fmt,
        max_abs_error=float(np.max(np.abs(error))) if reference.size else 0.0,
        mean_abs_error=float(np.mean(np.abs(error))) if reference.size else 0.0,
        rms_error=float(np.sqrt(np.mean(np.square(error)))) if reference.size else 0.0,
        sqnr_db=sqnr_db(reference, error),
        overflow_fraction=float(1.0 - representable.mean()) if reference.size else 0.0,
    )


def sweep_wordlengths(
    values: np.ndarray,
    formats: Sequence[QFormat],
) -> Dict[str, QuantizationReport]:
    """Analyse quantisation of the same signal under several formats."""

    return {fmt.name: analyze_quantization(values, fmt) for fmt in formats}


# -- analytic error bounds of the ODEBlock datapath --------------------------------------
#
# These bound the deviation of the bit-accurate fixed-point pipeline
# (:mod:`repro.fpga.ops` / :class:`repro.fpga.odeblock_hw.HardwareODEBlock`)
# from an exact floating-point execution of the same mathematics, by
# propagating worst-case per-stage errors (interval arithmetic, first order
# in the format resolution, with a 2x safety factor on the division terms).
# The bounds are parameterised by magnitudes of the *float reference* signal
# — max |input|, max |weight|, the per-channel sigma floor — which the
# differential test (``tests/fpga/test_odeblock_differential.py``) measures
# from the reference run.  They assume the signal stays inside the
# representable range (no saturation) and that the sigma error is small
# against ``sigma_min`` (true whenever ``sigma_min >> resolution``, the
# regime of every practical Q-format here).


def conv_error_bound(
    fmt: QFormat,
    fan_in: int,
    weight_max: float,
    input_max: float,
    input_error: float,
) -> float:
    """Worst-case output error of one fixed-point convolution.

    ``fan_in`` is the number of accumulated products per output element
    (``C_in * K * K``).  Each product contributes the cross terms of the
    weight and input quantisation errors; the wide accumulator adds no error
    and the single renormalising right-shift truncates by at most one LSB.
    """

    weight_error = fmt.resolution / 2.0  # weights are quantised by rounding
    per_term = (
        weight_max * input_error + input_max * weight_error + weight_error * input_error
    )
    return fan_in * per_term + fmt.resolution


def batch_norm_error_bound(
    fmt: QFormat,
    input_error: float,
    centered_max,
    sigma_min,
    gamma_max: float = 1.0,
) -> float:
    """Worst-case output error of one fixed-point batch-normalisation.

    Propagates the input error through the dynamic-statistics datapath: mean
    (truncating divide), variance (truncating multiply + divide), sigma
    (integer Newton square root, error <= one resolution step), the
    normalising division and the gamma/beta affine step.  ``centered_max``
    bounds ``|x - mean|`` and ``sigma_min`` is a lower bound on the true
    ``sqrt(var + eps)``; both may be *per-channel arrays* — pairing each
    channel's amplitude with its own sigma floor gives a much tighter bound
    than the global worst pair, and the result is the max over channels.
    """

    r = fmt.resolution
    centered_max = np.asarray(centered_max, dtype=np.float64)
    sigma_min = np.asarray(sigma_min, dtype=np.float64)
    mean_error = input_error + r
    centered_error = input_error + mean_error
    square_error = 2.0 * centered_max * centered_error + centered_error**2 + r
    var_error = square_error + r
    # var + eps: quantising eps adds at most half a resolution step.
    sigma_error = (var_error + r / 2.0) / (2.0 * sigma_min) + r
    normalized_max = centered_max / sigma_min
    normalized_error = (
        2.0 * centered_error / sigma_min
        + 2.0 * normalized_max * sigma_error / sigma_min
        + r
    )
    gamma_error = r / 2.0
    scaled_error = (
        gamma_max * normalized_error
        + normalized_max * gamma_error
        + gamma_error * normalized_error
        + r
    )
    beta_error = r / 2.0
    return float(np.max(scaled_error + beta_error))


@dataclass(frozen=True)
class OdeBlockErrorBound:
    """Per-stage cumulative error bounds of the five-step ODEBlock pipeline."""

    fmt: QFormat
    input_error: float
    conv1_error: float
    bn1_error: float
    conv2_error: float
    bn2_error: float

    @property
    def total(self) -> float:
        """Bound on the final output error (ReLU is non-expansive)."""

        return self.bn2_error


def odeblock_error_bound(
    fmt: QFormat,
    fan_in1: int,
    weight1_max: float,
    input_max: float,
    centered1_max: float,
    sigma1_min: float,
    fan_in2: int,
    weight2_max: float,
    hidden_max: float,
    centered2_max: float,
    sigma2_min: float,
    gamma1_max: float = 1.0,
    gamma2_max: float = 1.0,
) -> OdeBlockErrorBound:
    """Analytic error bound of one ODEBlock dynamics evaluation.

    Composes :func:`conv_error_bound` and :func:`batch_norm_error_bound`
    along the conv -> BN -> ReLU -> conv -> BN pipeline.  ``hidden_max``
    bounds the float reference after the ReLU (the second convolution's
    input); the remaining magnitude parameters follow the per-stage
    functions.  The bound scales with ``2**-fraction_bits``, making explicit
    how word-length choices trade BRAM against fidelity (the paper's
    footnote 2).
    """

    input_error = fmt.resolution / 2.0
    conv1 = conv_error_bound(fmt, fan_in1, weight1_max, input_max, input_error)
    bn1 = batch_norm_error_bound(fmt, conv1, centered1_max, sigma1_min, gamma1_max)
    # ReLU is 1-Lipschitz: the error entering conv2 is at most bn1's.
    conv2 = conv_error_bound(fmt, fan_in2, weight2_max, hidden_max, bn1)
    bn2 = batch_norm_error_bound(fmt, conv2, centered2_max, sigma2_min, gamma2_max)
    return OdeBlockErrorBound(
        fmt=fmt,
        input_error=input_error,
        conv1_error=conv1,
        bn1_error=bn1,
        conv2_error=conv2,
        bn2_error=bn2,
    )

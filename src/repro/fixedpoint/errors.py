"""Quantisation-error analysis utilities.

Used by the word-length ablation (EXPERIMENTS.md, E11) to quantify how the
choice of fixed-point format affects numerical fidelity of the ODEBlock
datapath, supporting the paper's footnote that 16-bit or smaller formats
would fit more layers into BRAM at some accuracy cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from .qformat import QFormat

__all__ = ["QuantizationReport", "analyze_quantization", "sweep_wordlengths", "sqnr_db"]


@dataclass(frozen=True)
class QuantizationReport:
    """Summary statistics of quantising a signal with a given format."""

    fmt: QFormat
    max_abs_error: float
    mean_abs_error: float
    rms_error: float
    sqnr_db: float
    overflow_fraction: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "word_length": self.fmt.word_length,
            "fraction_bits": self.fmt.fraction_bits,
            "max_abs_error": self.max_abs_error,
            "mean_abs_error": self.mean_abs_error,
            "rms_error": self.rms_error,
            "sqnr_db": self.sqnr_db,
            "overflow_fraction": self.overflow_fraction,
        }


def sqnr_db(signal: np.ndarray, error: np.ndarray) -> float:
    """Signal-to-quantisation-noise ratio in decibels."""

    signal_power = float(np.mean(np.square(signal)))
    noise_power = float(np.mean(np.square(error)))
    if noise_power == 0.0:
        return float("inf")
    if signal_power == 0.0:
        return float("-inf")
    return 10.0 * np.log10(signal_power / noise_power)


def analyze_quantization(values: np.ndarray, fmt: QFormat) -> QuantizationReport:
    """Quantise ``values`` with ``fmt`` and report error statistics."""

    values = np.asarray(values, dtype=np.float64)
    quantized = fmt.quantize(values)
    error = quantized - values
    representable = fmt.representable(values)
    return QuantizationReport(
        fmt=fmt,
        max_abs_error=float(np.max(np.abs(error))) if values.size else 0.0,
        mean_abs_error=float(np.mean(np.abs(error))) if values.size else 0.0,
        rms_error=float(np.sqrt(np.mean(np.square(error)))) if values.size else 0.0,
        sqnr_db=sqnr_db(values, error),
        overflow_fraction=float(1.0 - representable.mean()) if values.size else 0.0,
    )


def sweep_wordlengths(
    values: np.ndarray,
    formats: Sequence[QFormat],
) -> Dict[str, QuantizationReport]:
    """Analyse quantisation of the same signal under several formats."""

    return {fmt.name: analyze_quantization(values, fmt) for fmt in formats}

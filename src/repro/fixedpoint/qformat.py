"""Q-format fixed-point number specifications.

The paper's PL implementation uses a *32-bit Q20* fixed-point format: a signed
32-bit integer whose 20 least-significant bits hold the fractional part,
leaving 11 integer bits plus the sign.  :class:`QFormat` captures word length
and fraction length and provides conversion, range and resolution queries.
It is the single source of truth used by :mod:`repro.fixedpoint.fxarray`
(vectorised arrays), :mod:`repro.fpga.ops` (the hardware ODEBlock arithmetic)
and the word-length ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["QFormat", "Q20", "Q16", "Q12", "Q8", "OverflowMode"]


class OverflowMode:
    """Overflow handling policies for fixed-point conversion."""

    SATURATE = "saturate"
    WRAP = "wrap"

    ALL = (SATURATE, WRAP)


@dataclass(frozen=True)
class QFormat:
    """A signed fixed-point format with ``word_length`` total bits.

    Attributes
    ----------
    word_length:
        Total number of bits including the sign bit (the paper uses 32).
    fraction_bits:
        Number of fractional bits (the paper uses 20, i.e. "Q20").
    """

    word_length: int = 32
    fraction_bits: int = 20

    def __post_init__(self) -> None:
        if self.word_length < 2 or self.word_length > 64:
            raise ValueError("word_length must be between 2 and 64 bits")
        if not (0 <= self.fraction_bits < self.word_length):
            raise ValueError("fraction_bits must satisfy 0 <= f < word_length")

    # -- derived quantities ----------------------------------------------------

    @property
    def integer_bits(self) -> int:
        """Number of integer (non-sign, non-fraction) bits."""

        return self.word_length - self.fraction_bits - 1

    @property
    def scale(self) -> int:
        """Integer representation of 1.0 (i.e. ``2**fraction_bits``)."""

        return 1 << self.fraction_bits

    @property
    def resolution(self) -> float:
        """Smallest representable increment."""

        return 1.0 / self.scale

    @property
    def min_int(self) -> int:
        return -(1 << (self.word_length - 1))

    @property
    def max_int(self) -> int:
        return (1 << (self.word_length - 1)) - 1

    @property
    def min_value(self) -> float:
        """Most negative representable real value."""

        return self.min_int / self.scale

    @property
    def max_value(self) -> float:
        """Most positive representable real value."""

        return self.max_int / self.scale

    @property
    def range(self) -> Tuple[float, float]:
        return (self.min_value, self.max_value)

    @property
    def bytes_per_value(self) -> int:
        """Storage bytes per value (rounded up to whole bytes)."""

        return (self.word_length + 7) // 8

    @property
    def name(self) -> str:
        return f"Q{self.fraction_bits} ({self.word_length}-bit)"

    # -- conversion --------------------------------------------------------------

    def to_fixed(self, values, mode: str = OverflowMode.SATURATE) -> np.ndarray:
        """Quantise real ``values`` to their integer fixed-point representation."""

        scaled = np.round(np.asarray(values, dtype=np.float64) * self.scale)
        if mode == OverflowMode.SATURATE:
            scaled = np.clip(scaled, self.min_int, self.max_int)
        elif mode == OverflowMode.WRAP:
            span = 1 << self.word_length
            scaled = np.mod(scaled - self.min_int, span) + self.min_int
        else:
            raise ValueError(f"unknown overflow mode '{mode}'")
        return scaled.astype(np.int64)

    def to_float(self, fixed) -> np.ndarray:
        """Convert integer fixed-point representations back to floats."""

        return np.asarray(fixed, dtype=np.float64) / self.scale

    def quantize(self, values, mode: str = OverflowMode.SATURATE) -> np.ndarray:
        """Round-trip real values through the fixed-point representation."""

        return self.to_float(self.to_fixed(values, mode))

    def quantization_error(self, values) -> np.ndarray:
        """Element-wise quantisation error ``quantize(x) - x``."""

        values = np.asarray(values, dtype=np.float64)
        return self.quantize(values) - values

    def representable(self, values) -> np.ndarray:
        """Boolean mask of values that fit in the representable range."""

        values = np.asarray(values, dtype=np.float64)
        return (values >= self.min_value) & (values <= self.max_value)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: The paper's production format: 32-bit word, 20 fractional bits.
Q20 = QFormat(32, 20)

#: Reduced-precision formats referenced by footnote 2 ("using reduced bit
#: widths (e.g., 16-bit or less) can implement more layers in PL part").
Q16 = QFormat(16, 8)
Q12 = QFormat(12, 6)
Q8 = QFormat(8, 4)

"""Vectorised fixed-point array type.

:class:`FxArray` wraps an integer NumPy array together with its
:class:`~repro.fixedpoint.qformat.QFormat` and overloads arithmetic so that
quantised tensors can be manipulated with normal operator syntax.  It is the
data type flowing through the simulated PL datapath in
:mod:`repro.fpga.ops` and :mod:`repro.fpga.odeblock_hw`.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from . import arithmetic as fx
from .qformat import OverflowMode, QFormat, Q20

__all__ = ["FxArray"]

Number = Union[int, float, np.ndarray, "FxArray"]


class FxArray:
    """An n-dimensional fixed-point array."""

    __slots__ = ("raw", "fmt", "overflow")

    def __init__(
        self,
        raw: np.ndarray,
        fmt: QFormat = Q20,
        overflow: str = OverflowMode.SATURATE,
    ) -> None:
        self.raw = np.asarray(raw, dtype=np.int64)
        self.fmt = fmt
        self.overflow = overflow

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_float(
        cls,
        values,
        fmt: QFormat = Q20,
        overflow: str = OverflowMode.SATURATE,
    ) -> "FxArray":
        """Quantise floating-point ``values`` into an :class:`FxArray`."""

        return cls(fmt.to_fixed(values, overflow), fmt, overflow)

    @classmethod
    def zeros(cls, shape, fmt: QFormat = Q20) -> "FxArray":
        return cls(np.zeros(shape, dtype=np.int64), fmt)

    @classmethod
    def stack(cls, arrays: "list[FxArray]") -> "FxArray":
        """Stack same-format arrays along a new leading (batch) axis.

        The inverse of :meth:`split`; used to assemble multi-image batches
        for the batched PL datapath without re-quantising.
        """

        if not arrays:
            raise ValueError("cannot stack an empty list of FxArrays")
        fmt = arrays[0].fmt
        for a in arrays[1:]:
            if a.fmt != fmt:
                raise ValueError(f"format mismatch: {fmt.name} vs {a.fmt.name}")
        return cls(np.stack([a.raw for a in arrays]), fmt, arrays[0].overflow)

    def split(self) -> "list[FxArray]":
        """Split along the leading axis into per-item arrays (no copies)."""

        return [FxArray(self.raw[i], self.fmt, self.overflow) for i in range(len(self.raw))]

    # -- conversion -------------------------------------------------------------

    def to_float(self) -> np.ndarray:
        """Dequantise back to float64."""

        return self.fmt.to_float(self.raw)

    def astype(self, fmt: QFormat) -> "FxArray":
        """Re-quantise to another format (via the real value)."""

        return FxArray.from_float(self.to_float(), fmt, self.overflow)

    # -- array protocol ----------------------------------------------------------

    @property
    def shape(self):
        return self.raw.shape

    @property
    def size(self) -> int:
        return self.raw.size

    @property
    def ndim(self) -> int:
        return self.raw.ndim

    def reshape(self, *shape) -> "FxArray":
        return FxArray(self.raw.reshape(*shape), self.fmt, self.overflow)

    def __getitem__(self, index) -> "FxArray":
        return FxArray(np.asarray(self.raw[index]), self.fmt, self.overflow)

    def __len__(self) -> int:
        return len(self.raw)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FxArray(shape={self.shape}, fmt={self.fmt.name})"

    # -- helpers -------------------------------------------------------------------

    def _coerce(self, other: Number) -> np.ndarray:
        if isinstance(other, FxArray):
            if other.fmt != self.fmt:
                raise ValueError(
                    f"format mismatch: {self.fmt.name} vs {other.fmt.name}"
                )
            return other.raw
        return self.fmt.to_fixed(other, self.overflow)

    # -- arithmetic ------------------------------------------------------------------

    def __add__(self, other: Number) -> "FxArray":
        return FxArray(fx.fx_add(self.raw, self._coerce(other), self.fmt, self.overflow), self.fmt, self.overflow)

    __radd__ = __add__

    def __sub__(self, other: Number) -> "FxArray":
        return FxArray(fx.fx_sub(self.raw, self._coerce(other), self.fmt, self.overflow), self.fmt, self.overflow)

    def __rsub__(self, other: Number) -> "FxArray":
        return FxArray(fx.fx_sub(self._coerce(other), self.raw, self.fmt, self.overflow), self.fmt, self.overflow)

    def __mul__(self, other: Number) -> "FxArray":
        return FxArray(fx.fx_mul(self.raw, self._coerce(other), self.fmt, self.overflow), self.fmt, self.overflow)

    __rmul__ = __mul__

    def __truediv__(self, other: Number) -> "FxArray":
        return FxArray(fx.fx_div(self.raw, self._coerce(other), self.fmt, self.overflow), self.fmt, self.overflow)

    def __neg__(self) -> "FxArray":
        return FxArray(fx.fx_sub(0, self.raw, self.fmt, self.overflow), self.fmt, self.overflow)

    # -- element-wise functions ---------------------------------------------------------

    def relu(self) -> "FxArray":
        return FxArray(fx.fx_relu(self.raw, self.fmt), self.fmt, self.overflow)

    def sqrt(self) -> "FxArray":
        return FxArray(fx.fx_sqrt(self.raw, self.fmt), self.fmt, self.overflow)

    def mean(self, axis=None) -> "FxArray":
        return FxArray(np.asarray(fx.fx_mean(self.raw, self.fmt, axis=axis)), self.fmt, self.overflow)

    def var(self, axis=None) -> "FxArray":
        return FxArray(np.asarray(fx.fx_var(self.raw, self.fmt, axis=axis)), self.fmt, self.overflow)

    def sum(self, axis=None) -> "FxArray":
        total = self.raw.sum(axis=axis, dtype=np.int64)
        clipped = np.clip(total, self.fmt.min_int, self.fmt.max_int)
        return FxArray(np.asarray(clipped), self.fmt, self.overflow)

    def matmul(self, other: "FxArray") -> "FxArray":
        """Fixed-point matrix product ``self @ other``.

        Accumulation happens in a wide accumulator before a single
        renormalisation (the DSP48 MAC behaviour).  2-D operands route
        through the exact split-limb GEMM of :mod:`repro.fpga.gemm`, which
        is bit-identical to the plain int64 matmul but runs at BLAS speed
        whenever the operands' actual magnitudes admit a mantissa-exact
        limb decomposition.
        """

        if not isinstance(other, FxArray):
            raise TypeError("matmul expects an FxArray operand")
        if self.fmt != other.fmt:
            raise ValueError("operand formats must match")
        a = self.raw.astype(np.int64)
        b = other.raw.astype(np.int64)
        if a.ndim == 2 and b.ndim == 2:
            from ..fpga.gemm import gemm_exact  # local: fpga imports fixedpoint

            acc = gemm_exact(a, b)
        else:
            acc = a @ b
        renorm = acc >> self.fmt.fraction_bits
        clipped = np.clip(renorm, self.fmt.min_int, self.fmt.max_int)
        return FxArray(clipped, self.fmt, self.overflow)

    __matmul__ = matmul

    def matmul_float(self, weights: np.ndarray) -> "FxArray":
        """Multiply-accumulate against a float weight matrix.

        The weights are quantised to the array's format first; accumulation
        happens in a wide accumulator before renormalisation (the DSP48 MAC
        behaviour).
        """

        w_fx = self.fmt.to_fixed(weights, self.overflow)
        return self.matmul(FxArray(w_fx.T, self.fmt, self.overflow))

    # -- comparisons --------------------------------------------------------------------

    def __eq__(self, other) -> bool:  # type: ignore[override]
        if not isinstance(other, FxArray):
            return NotImplemented
        return self.fmt == other.fmt and np.array_equal(self.raw, other.raw)

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("FxArray is unhashable")

    def max_abs_error(self, reference: np.ndarray) -> float:
        """Maximum absolute error of the dequantised values vs a float reference."""

        return float(np.max(np.abs(self.to_float() - np.asarray(reference))))

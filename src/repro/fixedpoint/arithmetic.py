"""Integer fixed-point arithmetic primitives.

These model the datapath operators instantiated on the PL part of the FPGA:
multiply-add units (convolution and ReLU steps), and the divide and
square-root units used by the batch-normalisation step to compute the mean,
variance and standard deviation (Section 3.1).  All functions operate on the
*integer* representation (as :func:`QFormat.to_fixed` produces) and return
integer representations, so rounding/overflow behaviour matches a hardware
implementation rather than floating point.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .qformat import OverflowMode, QFormat

__all__ = [
    "fx_add",
    "fx_sub",
    "fx_mul",
    "fx_mac",
    "fx_div",
    "fx_sqrt",
    "fx_relu",
    "fx_mean",
    "fx_var",
]

IntArray = Union[int, np.ndarray]


def _apply_overflow(values: np.ndarray, fmt: QFormat, mode: str) -> np.ndarray:
    if mode == OverflowMode.SATURATE:
        return np.clip(values, fmt.min_int, fmt.max_int)
    if mode == OverflowMode.WRAP:
        span = 1 << fmt.word_length
        return np.mod(values - fmt.min_int, span) + fmt.min_int
    raise ValueError(f"unknown overflow mode '{mode}'")


def fx_add(a: IntArray, b: IntArray, fmt: QFormat, mode: str = OverflowMode.SATURATE) -> np.ndarray:
    """Fixed-point addition."""

    result = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
    return _apply_overflow(result, fmt, mode)


def fx_sub(a: IntArray, b: IntArray, fmt: QFormat, mode: str = OverflowMode.SATURATE) -> np.ndarray:
    """Fixed-point subtraction."""

    result = np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64)
    return _apply_overflow(result, fmt, mode)


def fx_mul(a: IntArray, b: IntArray, fmt: QFormat, mode: str = OverflowMode.SATURATE) -> np.ndarray:
    """Fixed-point multiplication with truncation of the extra fraction bits.

    A hardware multiplier produces a double-width product; shifting right by
    ``fraction_bits`` renormalises it.  An arithmetic right shift truncates
    toward negative infinity, which is what a simple DSP48-based datapath
    does.
    """

    product = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
    result = product >> fmt.fraction_bits
    return _apply_overflow(result, fmt, mode)


def fx_mac(
    acc: IntArray,
    a: IntArray,
    b: IntArray,
    fmt: QFormat,
    mode: str = OverflowMode.SATURATE,
) -> np.ndarray:
    """Multiply-accumulate: ``acc + a*b`` (one clock of a MAC unit)."""

    return fx_add(acc, fx_mul(a, b, fmt, mode), fmt, mode)


def fx_div(a: IntArray, b: IntArray, fmt: QFormat, mode: str = OverflowMode.SATURATE) -> np.ndarray:
    """Fixed-point division (used to normalise by the standard deviation)."""

    a64 = np.asarray(a, dtype=np.int64)
    b64 = np.asarray(b, dtype=np.int64)
    if np.any(b64 == 0):
        raise ZeroDivisionError("fixed-point division by zero")
    numerator = a64 << fmt.fraction_bits
    # Truncating integer division toward zero, like a restoring divider.
    result = (np.sign(numerator) * np.sign(b64)) * (np.abs(numerator) // np.abs(b64))
    return _apply_overflow(result, fmt, mode)


def fx_sqrt(a: IntArray, fmt: QFormat) -> np.ndarray:
    """Fixed-point square root via integer Newton iteration.

    Models the square-root unit of the batch-normalisation datapath.  The
    input must be non-negative (it is a variance plus epsilon).  The result
    satisfies ``|sqrt_fx(x) - sqrt(x)| <= resolution`` for representable x.
    """

    a64 = np.atleast_1d(np.asarray(a, dtype=np.int64))
    if np.any(a64 < 0):
        raise ValueError("fx_sqrt requires non-negative inputs")
    # sqrt(v / S) * S == sqrt(v * S); compute integer sqrt of (v << f).
    radicand = a64.astype(object) << fmt.fraction_bits  # python ints: no overflow
    result = np.empty_like(a64)
    flat_rad = radicand.reshape(-1)
    flat_res = result.reshape(-1)
    for i, value in enumerate(flat_rad):
        flat_res[i] = _isqrt(int(value))
    out = _apply_overflow(result, fmt, OverflowMode.SATURATE)
    if np.isscalar(a) or np.asarray(a).ndim == 0:
        return out.reshape(()).astype(np.int64)
    return out.reshape(np.asarray(a).shape)


def _isqrt(value: int) -> int:
    """Integer square root (floor)."""

    if value < 0:
        raise ValueError("negative value")
    return int(np.floor(np.sqrt(value))) if value < (1 << 52) else _isqrt_newton(value)


def _isqrt_newton(value: int) -> int:
    x = value
    y = (x + 1) // 2
    while y < x:
        x = y
        y = (x + value // x) // 2
    return x


def fx_relu(a: IntArray, fmt: QFormat) -> np.ndarray:
    """Fixed-point ReLU (clamp negatives to zero)."""

    return np.maximum(np.asarray(a, dtype=np.int64), 0)


def fx_mean(a: np.ndarray, fmt: QFormat, axis=None, keepdims: bool = False) -> np.ndarray:
    """Fixed-point mean along ``axis`` (sum then divide, as the BN unit does).

    The accumulator is wider than the word length (hardware uses a wide
    accumulator register); only the final quotient is renormalised to the
    target format.  ``axis`` may be an int or a tuple of ints (the batched
    datapath reduces each image's spatial axes at once); each reduced group
    sums exactly the elements a per-image reduction would, so batched and
    per-image results are bit-identical.
    """

    a64 = np.asarray(a, dtype=np.int64)
    if axis is None:
        count = a64.size
    else:
        count = int(np.prod([a64.shape[ax] for ax in np.atleast_1d(axis)]))
    total = a64.sum(axis=axis, dtype=np.int64, keepdims=keepdims)
    # total and the result are both in fixed representation, so a plain
    # truncating integer division by the (unscaled) element count suffices.
    result = (np.sign(total)) * (np.abs(total) // count)
    return _apply_overflow(result, fmt, OverflowMode.SATURATE)


def fx_var(a: np.ndarray, fmt: QFormat, axis=None, keepdims: bool = False) -> np.ndarray:
    """Fixed-point (biased) variance along ``axis`` (int or tuple of ints)."""

    mean = fx_mean(a, fmt, axis=axis, keepdims=axis is not None)
    centered = fx_sub(a, mean, fmt)
    squared = fx_mul(centered, centered, fmt)
    return fx_mean(squared, fmt, axis=axis, keepdims=keepdims)

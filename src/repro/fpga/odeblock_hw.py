"""The PL-part ODEBlock engine: functional + performance model in one object.

:class:`HardwareODEBlock` is the simulated counterpart of the Verilog module
the paper implements on the PYNQ-Z2's programmable logic.  It bundles:

* the quantised weights of the two convolutions and two batch-normalisation
  steps (stored in the simulated BRAM plan),
* the bit-accurate fixed-point forward pass (conv → BN → ReLU → conv → BN),
* the cycle/time model of one invocation (:mod:`repro.fpga.cycles`),
* the PS↔PL transfer cost (:mod:`repro.fpga.axi`), and
* the resource estimate and timing check of the chosen conv_xN configuration.

It is used by the hardware/software co-execution runtime
(:mod:`repro.hwsw.runtime`) to replace the software building block of an
offloaded layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..fixedpoint import FxArray, QFormat, Q20
from .axi import AxiTransferConfig, AxiTransferModel, TransferEstimate
from .bram import BramPlan, plan_block_allocation
from .cycles import CycleBreakdown, CycleModelConfig, OdeBlockCycleModel
from .device import BoardSpec, PYNQ_Z2
from .geometry import BlockGeometry, block_geometry
from .ops import hw_batch_norm, hw_conv2d, hw_relu, hw_residual_add
from .resources import ResourceEstimate, ResourceEstimator
from .timing import TimingModel, TimingReport

__all__ = ["BlockWeights", "HardwareExecutionReport", "HardwareODEBlock"]


@dataclass
class BlockWeights:
    """Floating-point weights of one building block (before quantisation)."""

    conv1_weight: np.ndarray
    bn1_gamma: np.ndarray
    bn1_beta: np.ndarray
    conv2_weight: np.ndarray
    bn2_gamma: np.ndarray
    bn2_beta: np.ndarray
    bn1_mean: Optional[np.ndarray] = None
    bn1_var: Optional[np.ndarray] = None
    bn2_mean: Optional[np.ndarray] = None
    bn2_var: Optional[np.ndarray] = None

    @classmethod
    def random(cls, geometry: BlockGeometry, rng: Optional[np.random.Generator] = None, scale: float = 0.1) -> "BlockWeights":
        """Random weights with a sensible magnitude for Q20 (for tests/benches)."""

        rng = rng or np.random.default_rng(0)
        c = geometry.out_channels
        k = geometry.kernel
        shape = (c, geometry.in_channels, k, k)
        return cls(
            conv1_weight=rng.normal(0.0, scale, size=shape),
            bn1_gamma=np.ones(c),
            bn1_beta=np.zeros(c),
            conv2_weight=rng.normal(0.0, scale, size=shape),
            bn2_gamma=np.ones(c),
            bn2_beta=np.zeros(c),
        )


@dataclass(frozen=True)
class HardwareExecutionReport:
    """Performance accounting of one HardwareODEBlock invocation."""

    cycles: CycleBreakdown
    transfer: TransferEstimate
    compute_seconds: float
    transfer_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.transfer_seconds

    def as_dict(self) -> Dict[str, float]:
        out = {
            "compute_seconds": self.compute_seconds,
            "transfer_seconds": self.transfer_seconds,
            "total_seconds": self.total_seconds,
        }
        out.update(self.cycles.as_dict())
        return out


class HardwareODEBlock:
    """Simulated PL implementation of one ODEBlock (conv_xN configuration)."""

    def __init__(
        self,
        block: str | BlockGeometry,
        weights: BlockWeights,
        n_units: int = 16,
        qformat: QFormat = Q20,
        board: BoardSpec = PYNQ_Z2,
        dynamic_bn_stats: bool = True,
        cycle_config: Optional[CycleModelConfig] = None,
        time_concat: bool = False,
        conv_row_chunk: Optional[int] = None,
    ) -> None:
        self.geometry = block if isinstance(block, BlockGeometry) else block_geometry(block)
        self.n_units = n_units
        self.qformat = qformat
        self.board = board
        self.dynamic_bn_stats = dynamic_bn_stats
        #: im2col rows per GEMM chunk in the conv lowering (None = the
        #: default bound); purely a host-memory knob, bit-identical always.
        self.conv_row_chunk = conv_row_chunk
        #: When True the block implements ODE dynamics with the integration
        #: time concatenated as one extra (constant) input channel to both
        #: convolutions, matching the software ODEBlockFunction.
        self.time_concat = time_concat

        self.cycle_model = OdeBlockCycleModel(cycle_config)
        # Board-derived defaults (for the reference board these equal the
        # calibrated defaults bit-for-bit).
        self.transfer_model = AxiTransferModel(AxiTransferConfig.for_board(board))
        self.resource_estimator = ResourceEstimator(board.fpga, qformat)
        self.timing_model = TimingModel.for_board(board)

        # Quantise and "store" the weights in BRAM.
        self._load_weights(weights)
        self.bram_plan: BramPlan = plan_block_allocation(self.geometry, n_units, qformat)
        self.invocations = 0

    # -- configuration reports ----------------------------------------------------

    def resource_estimate(self) -> ResourceEstimate:
        """Analytical resource estimate of this configuration."""

        return self.resource_estimator.estimate(self.geometry, n_units=self.n_units)

    def timing_report(self) -> TimingReport:
        """Timing closure report at the board's PL clock."""

        return self.timing_model.analyze(self.n_units, target_hz=self.board.pl_clock_hz)

    def cycle_breakdown(self) -> CycleBreakdown:
        """Cycles of one invocation (independent of the data)."""

        return self.cycle_model.block_cycles(self.geometry, self.n_units)

    # -- weights -------------------------------------------------------------------

    def _load_weights(self, weights: BlockWeights) -> None:
        q = self.qformat
        self.weights = weights
        self._conv1_w = FxArray.from_float(weights.conv1_weight, q)
        self._conv2_w = FxArray.from_float(weights.conv2_weight, q)
        self._bn1_gamma = FxArray.from_float(weights.bn1_gamma, q)
        self._bn1_beta = FxArray.from_float(weights.bn1_beta, q)
        self._bn2_gamma = FxArray.from_float(weights.bn2_gamma, q)
        self._bn2_beta = FxArray.from_float(weights.bn2_beta, q)
        self._bn1_mean = FxArray.from_float(weights.bn1_mean, q) if weights.bn1_mean is not None else None
        self._bn1_var = FxArray.from_float(weights.bn1_var, q) if weights.bn1_var is not None else None
        self._bn2_mean = FxArray.from_float(weights.bn2_mean, q) if weights.bn2_mean is not None else None
        self._bn2_var = FxArray.from_float(weights.bn2_var, q) if weights.bn2_var is not None else None

    # -- execution -------------------------------------------------------------------

    def dynamics(self, z: np.ndarray, t: float = 0.0) -> np.ndarray:
        """Evaluate ``f(z, t, θ)`` (the five-step pipeline) in fixed point.

        Accepts and returns float arrays of shape ``(C, H, W)``; the
        quantisation to/from Q20 happens at the boundary, mirroring the DMA
        transfer of float32 feature maps described by the paper.
        """

        x = FxArray.from_float(np.asarray(z, dtype=np.float64), self.qformat)
        out = self._forward_fixed(x, t)
        return out.to_float()

    def _with_time_channel(self, x: FxArray, t: float) -> FxArray:
        """Append the constant integration-time channel (time-concat mode).

        Works for a single image ``(C, H, W)`` and a batch ``(N, C, H, W)``;
        the constant plane is identical for every image, so batching stays
        bit-exact.
        """

        if not self.time_concat:
            return x
        h, w = x.shape[-2:]
        t_fx = self.qformat.to_fixed(float(t))
        plane_shape = (1, h, w) if x.ndim == 3 else (x.shape[0], 1, h, w)
        t_plane = np.full(plane_shape, int(t_fx), dtype=np.int64)
        return FxArray(np.concatenate([x.raw, t_plane], axis=-3), self.qformat)

    def _forward_fixed(self, x: FxArray, t: float = 0.0) -> FxArray:
        h = hw_conv2d(
            self._with_time_channel(x, t),
            self._conv1_w,
            stride=self.geometry.stride,
            padding=1,
            row_chunk=self.conv_row_chunk,
        )
        h = hw_batch_norm(
            h,
            self._bn1_gamma,
            self._bn1_beta,
            running_mean=self._bn1_mean,
            running_var=self._bn1_var,
            dynamic_stats=self.dynamic_bn_stats,
        )
        h = hw_relu(h)
        h = hw_conv2d(
            self._with_time_channel(h, t),
            self._conv2_w,
            stride=1,
            padding=1,
            row_chunk=self.conv_row_chunk,
        )
        h = hw_batch_norm(
            h,
            self._bn2_gamma,
            self._bn2_beta,
            running_mean=self._bn2_mean,
            running_var=self._bn2_var,
            dynamic_stats=self.dynamic_bn_stats,
        )
        return h

    def dynamics_batch(self, z: np.ndarray, t: float = 0.0) -> np.ndarray:
        """Evaluate ``f(z, t, θ)`` for a whole ``(N, C, H, W)`` batch at once.

        The batch is quantised once and flows through the datapath as one
        :class:`FxArray` tensor; the result is bit-identical to calling
        :meth:`dynamics` on each image (the board evaluates images serially,
        so a batch is a throughput construct, not a semantic one).
        """

        z = np.asarray(z, dtype=np.float64)
        if z.ndim != 4:
            raise ValueError("dynamics_batch expects an (N, C, H, W) batch")
        x = FxArray.from_float(z, self.qformat)
        return self._forward_fixed(x, t).to_float()

    def execute(
        self, z: np.ndarray, step_size: float = 1.0, residual: bool = True, t: float = 0.0
    ) -> tuple:
        """Run one ODEBlock invocation: compute and account for its cost.

        Returns ``(z_next, HardwareExecutionReport)`` where ``z_next`` is
        ``z + h·f(z, t)`` when ``residual`` is True (one Euler step) and plain
        ``f(z, t)`` otherwise.
        """

        z = np.asarray(z, dtype=np.float64)
        out, report = self.execute_batch(z[None], step_size=step_size, residual=residual, t=t)
        return out[0], report

    def execute_batch(
        self, z: np.ndarray, step_size: float = 1.0, residual: bool = True, t: float = 0.0
    ) -> tuple:
        """Run one invocation per image of an ``(N, C, H, W)`` batch.

        Returns ``(z_next, report)`` where ``report`` accounts for **one**
        image (the PL processes images serially, so a batch of N costs
        ``N * report.total_seconds``).  The outputs are bit-identical to N
        :meth:`execute` calls; ``invocations`` advances by N.
        """

        z = np.asarray(z, dtype=np.float64)
        if z.ndim != 4:
            raise ValueError("execute_batch expects an (N, C, H, W) batch")
        x = FxArray.from_float(z, self.qformat)
        f_out = self._forward_fixed(x, t)
        out = hw_residual_add(x, f_out, step_size) if residual else f_out

        cycles = self.cycle_breakdown()
        transfer = self.transfer_model.block_round_trip(self.geometry)
        report = HardwareExecutionReport(
            cycles=cycles,
            transfer=transfer,
            compute_seconds=cycles.time_seconds(self.board.pl_clock_hz),
            transfer_seconds=transfer.seconds,
        )
        self.invocations += len(z)
        return out.to_float(), report

    def run_iterations_batch(
        self, z: np.ndarray, iterations: int, step_size: float = 1.0, t0: float = 0.0
    ) -> tuple:
        """Euler-iterate a whole batch: ``z <- z + h·f(z, t_i)`` per image.

        Returns ``(z_final, total_seconds, reports)`` where ``total_seconds``
        covers all ``N * iterations`` serial invocations.  Bit-identical to
        :meth:`run_iterations` applied per image.
        """

        reports = []
        total = 0.0
        state = np.asarray(z, dtype=np.float64)
        n = len(state)
        for i in range(iterations):
            t = t0 + i * step_size
            state, report = self.execute_batch(state, step_size=step_size, residual=True, t=t)
            reports.append(report)
            total += n * report.total_seconds
        return state, total, reports

    def run_iterations(
        self, z: np.ndarray, iterations: int, step_size: float = 1.0, t0: float = 0.0
    ) -> tuple:
        """Execute the block ``iterations`` times (the ODENet repeated use).

        Each iteration is one Euler step ``z <- z + h·f(z, t_i)`` with
        ``t_i = t0 + i·h``.  Returns ``(z_final, total_seconds, reports)``.
        """

        reports = []
        total = 0.0
        state = np.asarray(z, dtype=np.float64)
        for i in range(iterations):
            t = t0 + i * step_size
            state, report = self.execute(state, step_size=step_size, residual=True, t=t)
            reports.append(report)
            total += report.total_seconds
        return state, total, reports

    def quantization_error(self, z: np.ndarray, reference_fn, t: float = 0.0) -> float:
        """Max abs difference between the fixed-point output and a float reference."""

        hw_out = self.dynamics(z, t)
        ref_out = np.asarray(reference_fn(z))
        return float(np.max(np.abs(hw_out - ref_out)))

"""Compatibility shim: device/board specifications moved to ``repro.platform``.

The seed repository kept the PYNQ-Z2 board spec here; the platform layer
(:mod:`repro.platform`) now owns every board-parametric value plus the board
registry.  This module re-exports the original names so existing imports
(``from repro.fpga.device import PYNQ_Z2, BoardSpec, ...``) keep working.
"""

from __future__ import annotations

from ..platform import (
    BoardSpec,
    FpgaDevice,
    PowerProfile,
    PYNQ_Z2,
    ResourceVector,
    ZYNQ_XC7Z020,
)

__all__ = [
    "ResourceVector",
    "FpgaDevice",
    "PowerProfile",
    "BoardSpec",
    "ZYNQ_XC7Z020",
    "PYNQ_Z2",
]

"""FPGA device and board specifications.

The paper targets the TUL PYNQ-Z2 board (Table 1): a Xilinx Zynq XC7Z020 SoC
whose processing system (PS) has two ARM Cortex-A9 cores at 650 MHz and
512 MB of DDR3, and whose programmable logic (PL) runs the ODEBlock circuits
at 100 MHz.  The resource totals of the XC7Z020 fabric are needed to convert
absolute resource counts into the utilisation percentages of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["ResourceVector", "FpgaDevice", "BoardSpec", "ZYNQ_XC7Z020", "PYNQ_Z2"]


@dataclass(frozen=True)
class ResourceVector:
    """A bundle of FPGA resource counts (BRAM36 tiles, DSP48 slices, LUTs, FFs)."""

    bram: float = 0.0
    dsp: float = 0.0
    lut: float = 0.0
    ff: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            bram=self.bram + other.bram,
            dsp=self.dsp + other.dsp,
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
        )

    def scale(self, factor: float) -> "ResourceVector":
        return ResourceVector(
            bram=self.bram * factor,
            dsp=self.dsp * factor,
            lut=self.lut * factor,
            ff=self.ff * factor,
        )

    def utilization(self, device: "FpgaDevice") -> Dict[str, float]:
        """Utilisation percentages against a device's totals."""

        return {
            "bram": 100.0 * self.bram / device.bram36,
            "dsp": 100.0 * self.dsp / device.dsp,
            "lut": 100.0 * self.lut / device.lut,
            "ff": 100.0 * self.ff / device.ff,
        }

    def fits(self, device: "FpgaDevice") -> bool:
        """Whether the resources fit within the device."""

        return (
            self.bram <= device.bram36
            and self.dsp <= device.dsp
            and self.lut <= device.lut
            and self.ff <= device.ff
        )

    def as_dict(self) -> Dict[str, float]:
        return {"bram": self.bram, "dsp": self.dsp, "lut": self.lut, "ff": self.ff}


@dataclass(frozen=True)
class FpgaDevice:
    """Totals of the programmable-logic fabric of a device."""

    name: str
    bram36: int
    dsp: int
    lut: int
    ff: int
    bram36_bytes: int = 4096  # usable data bytes per BRAM36 tile

    @property
    def bram_bytes_total(self) -> int:
        """Total BRAM capacity in bytes."""

        return self.bram36 * self.bram36_bytes

    def headroom(self, used: ResourceVector) -> ResourceVector:
        """Remaining resources after ``used`` is placed."""

        return ResourceVector(
            bram=self.bram36 - used.bram,
            dsp=self.dsp - used.dsp,
            lut=self.lut - used.lut,
            ff=self.ff - used.ff,
        )


@dataclass(frozen=True)
class BoardSpec:
    """A PS + PL SoC board (Figure 3 / Table 1 of the paper)."""

    name: str
    fpga: FpgaDevice
    ps_clock_hz: float
    ps_cores: int
    dram_mb: int
    pl_clock_hz: float
    os_name: str = "PYNQ Linux (Ubuntu 18.04)"

    @property
    def ps_clock_mhz(self) -> float:
        return self.ps_clock_hz / 1e6

    @property
    def pl_clock_mhz(self) -> float:
        return self.pl_clock_hz / 1e6


#: Xilinx Zynq XC7Z020-1CLG400C programmable logic totals.
ZYNQ_XC7Z020 = FpgaDevice(
    name="Zynq XC7Z020",
    bram36=140,
    dsp=220,
    lut=53200,
    ff=106400,
)

#: TUL PYNQ-Z2 board (Table 1 of the paper).
PYNQ_Z2 = BoardSpec(
    name="PYNQ-Z2",
    fpga=ZYNQ_XC7Z020,
    ps_clock_hz=650e6,
    ps_cores=2,
    dram_mb=512,
    pl_clock_hz=100e6,
)

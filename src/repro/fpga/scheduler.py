"""Cycle-approximate schedule simulation of the PL conv/BN datapath.

The analytical cycle model (:mod:`repro.fpga.cycles`) expresses the execution
time of the five-step ODEBlock as closed-form expressions calibrated against
the paper's published counts.  This module provides an *operational*
cross-check: it simulates the schedule the hardware actually follows —
output channels assigned to multiply-add units, each unit issuing one
multiply-accumulate per cycle over the receptive field, followed by the
element-serial batch-normalisation passes — and counts cycles by stepping
that schedule, not by formula.

The simulator is intentionally simple (no memory-port contention beyond the
issue rate, no pipeline fill/drain modelling) but it is derived from the
*structure* of the datapath rather than from the fitted constants, so
agreement between the two models (see ``tests/fpga/test_scheduler.py``)
increases confidence that the calibrated constants mean what they claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from .geometry import BlockGeometry

__all__ = ["ScheduleTrace", "UnitTrace", "DatapathScheduler", "schedule_cycles_kernel"]


def schedule_cycles_kernel(
    geometry: BlockGeometry,
    n_units,
    issue_interval: int = 5,
    bn_passes: int = 3,
    bn_cycles_per_element_pass: int = 7,
    relu_fused: bool = True,
):
    """Closed-form total cycles of the simulated schedule, over ``n_units`` axes.

    The stepped simulation's per-pass makespan is set by the most-loaded MAC
    unit, which under round-robin channel assignment owns
    ``ceil(out_channels / units)`` output channels.  This expresses that
    directly as integer array arithmetic, so sweeping a million unit counts
    costs one vector op instead of a million schedule walks.  Equality with
    :meth:`DatapathScheduler.simulate_block` is pinned by
    ``tests/fpga/test_plan_kernels.py``.
    """

    units = np.minimum(np.maximum(np.asarray(n_units, dtype=np.int64), 1), geometry.out_channels)
    pixels = geometry.out_height * geometry.out_width
    max_channels = -(-geometry.out_channels // units)  # most-loaded unit
    conv_cycles = np.zeros_like(units, dtype=np.float64)
    for conv_index in range(geometry.num_convs):
        in_channels = geometry.in_channels if conv_index == 0 else geometry.out_channels
        per_output_macs = in_channels * geometry.kernel * geometry.kernel
        conv_cycles = conv_cycles + max_channels * pixels * per_output_macs * issue_interval
    bn_cycles = (
        geometry.num_batch_norms
        * geometry.output_elements
        * bn_passes
        * bn_cycles_per_element_pass
    )
    relu_cycles = 0.0 if relu_fused else geometry.output_elements / units
    return conv_cycles + bn_cycles + relu_cycles


@dataclass(frozen=True)
class UnitTrace:
    """Work performed by one multiply-add unit during one convolution pass."""

    unit: int
    output_channels: Tuple[int, ...]
    macs_issued: int
    busy_cycles: int


@dataclass
class ScheduleTrace:
    """Full record of one simulated ODEBlock execution."""

    block: str
    n_units: int
    conv_passes: List[List[UnitTrace]] = field(default_factory=list)
    conv_cycles: float = 0.0
    bn_cycles: float = 0.0
    relu_cycles: float = 0.0

    @property
    def total_cycles(self) -> float:
        return self.conv_cycles + self.bn_cycles + self.relu_cycles

    def utilization(self) -> float:
        """Average MAC-unit utilisation across the convolution passes.

        1.0 means every unit was busy every cycle of every pass; lower values
        indicate load imbalance (output channels not divisible by the unit
        count).
        """

        busy = 0
        capacity = 0
        for pass_traces in self.conv_passes:
            pass_cycles = max(t.busy_cycles for t in pass_traces)
            busy += sum(t.busy_cycles for t in pass_traces)
            capacity += pass_cycles * len(pass_traces)
        return busy / capacity if capacity else 1.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "conv_cycles": self.conv_cycles,
            "bn_cycles": self.bn_cycles,
            "relu_cycles": self.relu_cycles,
            "total_cycles": self.total_cycles,
            "mac_utilization": self.utilization(),
        }


class DatapathScheduler:
    """Simulate the MAC-unit schedule of the PL ODEBlock.

    Parameters
    ----------
    issue_interval:
        Clock cycles between successive multiply-accumulates issued by one
        unit.  The paper's datapath is not fully pipelined (a BRAM read, a
        DSP48 multiply and an accumulate share the loop), which is what the
        calibrated value of 5 cycles per MAC reflects.
    bn_passes:
        Element-serial passes each batch-normalisation step performs:
        mean accumulation, variance accumulation, and the normalise/scale
        pass (3 by default).
    bn_cycles_per_element_pass:
        Cycles per element for each of those passes (7 by default: read,
        subtract, multiply, divide-step, write and loop control), chosen so
        that 3 passes x 7 cycles = 21 cycles/element, the calibrated constant.
    """

    def __init__(
        self,
        issue_interval: int = 5,
        bn_passes: int = 3,
        bn_cycles_per_element_pass: int = 7,
        relu_fused: bool = True,
    ) -> None:
        if issue_interval < 1:
            raise ValueError("issue_interval must be >= 1")
        self.issue_interval = issue_interval
        self.bn_passes = bn_passes
        self.bn_cycles_per_element_pass = bn_cycles_per_element_pass
        self.relu_fused = relu_fused

    # -- convolution ------------------------------------------------------------

    def assign_output_channels(self, out_channels: int, n_units: int) -> List[Tuple[int, ...]]:
        """Round-robin assignment of output channels to MAC units."""

        units = max(1, min(n_units, out_channels))
        assignment: List[List[int]] = [[] for _ in range(units)]
        for channel in range(out_channels):
            assignment[channel % units].append(channel)
        return [tuple(chs) for chs in assignment]

    def simulate_conv_pass(self, geometry: BlockGeometry, n_units: int, in_channels: int) -> List[UnitTrace]:
        """Simulate one convolution step (all output pixels, all channels)."""

        per_output_macs = in_channels * geometry.kernel * geometry.kernel
        pixels = geometry.out_height * geometry.out_width
        traces = []
        for unit, channels in enumerate(self.assign_output_channels(geometry.out_channels, n_units)):
            macs = len(channels) * pixels * per_output_macs
            traces.append(
                UnitTrace(
                    unit=unit,
                    output_channels=channels,
                    macs_issued=macs,
                    busy_cycles=macs * self.issue_interval,
                )
            )
        return traces

    # -- batch normalisation ------------------------------------------------------

    def simulate_bn_pass(self, geometry: BlockGeometry) -> float:
        """Cycles of one batch-normalisation step (element-serial)."""

        return geometry.output_elements * self.bn_passes * self.bn_cycles_per_element_pass

    # -- whole block -----------------------------------------------------------------

    def simulate_block(self, geometry: BlockGeometry, n_units: int) -> ScheduleTrace:
        """Simulate the five-step pipeline: conv, BN, ReLU, conv, BN."""

        trace = ScheduleTrace(block=geometry.name, n_units=n_units)

        # First convolution reads the block input; the second reads the
        # intermediate feature map (same channel count for the repeated
        # blocks the paper offloads).
        for conv_index in range(geometry.num_convs):
            in_channels = geometry.in_channels if conv_index == 0 else geometry.out_channels
            pass_traces = self.simulate_conv_pass(geometry, n_units, in_channels)
            trace.conv_passes.append(pass_traces)
            trace.conv_cycles += max(t.busy_cycles for t in pass_traces)

        trace.bn_cycles = geometry.num_batch_norms * self.simulate_bn_pass(geometry)
        if not self.relu_fused:
            units = max(1, min(n_units, geometry.out_channels))
            trace.relu_cycles = geometry.output_elements / units
        return trace

    def sweep(self, geometry: BlockGeometry, unit_counts=(1, 4, 8, 16, 32)) -> Dict[int, ScheduleTrace]:
        """Simulate a sweep of MAC-unit counts (the paper's conv_xN designs)."""

        return {n: self.simulate_block(geometry, n) for n in unit_counts}

    def total_cycles_batch(self, geometry: BlockGeometry, n_units) -> np.ndarray:
        """Total cycles over a whole ``n_units`` axis, without stepping.

        Equal to ``simulate_block(geometry, n).total_cycles`` for every entry
        (the closed form of the same schedule).
        """

        return np.asarray(
            schedule_cycles_kernel(
                geometry,
                n_units,
                issue_interval=self.issue_interval,
                bn_passes=self.bn_passes,
                bn_cycles_per_element_pass=self.bn_cycles_per_element_pass,
                relu_fused=self.relu_fused,
            ),
            dtype=np.float64,
        )

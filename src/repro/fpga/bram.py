"""Block-RAM allocation model.

The PL-part ODEBlock stores the weight parameters of its two convolutions and
the input/intermediate/output feature maps in on-chip Block RAM (Section 3.1:
"Weight parameters θ of the two convolution steps are stored in Block RAM
(BRAM) of the FPGA. Input and output feature maps for all the channels are
also stored in the BRAM.").  This module turns byte requirements into BRAM36
tile counts and produces a named allocation plan that the resource estimator
and the offload-feasibility check consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Dict, List

from ..fixedpoint.qformat import QFormat, Q20
from .device import FpgaDevice, ZYNQ_XC7Z020
from .geometry import BlockGeometry

__all__ = ["BramRegion", "BramPlan", "tiles_for_bytes", "plan_block_allocation"]


#: Usable data bytes of one BRAM36 tile (4 KiB of data; the parity bits are
#: not usable for packed 32-bit words).
BRAM36_BYTES = 4096


def tiles_for_bytes(num_bytes: int, tile_bytes: int = BRAM36_BYTES) -> int:
    """Number of BRAM36 tiles needed to hold ``num_bytes`` of data."""

    if num_bytes < 0:
        raise ValueError("num_bytes must be non-negative")
    if num_bytes == 0:
        return 0
    return ceil(num_bytes / tile_bytes)


@dataclass(frozen=True)
class BramRegion:
    """One named region of the BRAM allocation (e.g. 'conv1 weights')."""

    name: str
    num_bytes: int
    tiles: int
    banks: int = 1

    def as_dict(self) -> Dict[str, int]:
        return {"name": self.name, "bytes": self.num_bytes, "tiles": self.tiles, "banks": self.banks}


@dataclass
class BramPlan:
    """Complete BRAM allocation of one PL ODEBlock instance."""

    block: str
    regions: List[BramRegion] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(r.num_bytes for r in self.regions)

    @property
    def total_tiles(self) -> int:
        return sum(r.tiles for r in self.regions)

    def fits(self, device: FpgaDevice = ZYNQ_XC7Z020) -> bool:
        """Whether the plan fits in the device's BRAM."""

        return self.total_tiles <= device.bram36

    def utilization_percent(self, device: FpgaDevice = ZYNQ_XC7Z020) -> float:
        return 100.0 * self.total_tiles / device.bram36

    def region(self, name: str) -> BramRegion:
        for r in self.regions:
            if r.name == name:
                return r
        raise KeyError(f"no BRAM region named '{name}'")


def plan_block_allocation(
    geometry: BlockGeometry,
    n_units: int = 16,
    qformat: QFormat = Q20,
    feature_map_buffers: int = 3,
) -> BramPlan:
    """Plan the BRAM allocation of one ODEBlock.

    Parameters
    ----------
    geometry:
        The block geometry (layer1 / layer2_2 / layer3_2).
    n_units:
        Number of multiply-add units.  Each unit needs concurrent access to a
        weight word, so the weight storage is spread over at least ``n_units``
        banks, which can increase the tile count for small layers (this is
        what pushes layer1's conv_x16 BRAM count above the conv_x8 one in
        Table 3).
    qformat:
        Fixed-point format of the stored values (32-bit Q20 by default; the
        word-length ablation passes narrower formats here).
    feature_map_buffers:
        Number of full feature-map buffers held on chip (input, intermediate
        and output by default).
    """

    bpv = qformat.bytes_per_value
    regions: List[BramRegion] = []

    per_conv_weights = geometry.weight_count // geometry.num_convs
    per_conv_bytes = per_conv_weights * bpv
    banks = max(1, min(n_units, geometry.out_channels))
    for i in range(geometry.num_convs):
        # Weight words are interleaved across `banks` banks for parallel
        # access.  The tile count is driven by capacity; banking mainly
        # affects how the words are distributed, so at least one tile per
        # bank is required only when capacity alone would give fewer tiles
        # than there are banks.
        tiles = max(tiles_for_bytes(per_conv_bytes), 0)
        regions.append(
            BramRegion(name=f"conv{i + 1}_weights", num_bytes=per_conv_bytes, tiles=tiles, banks=banks)
        )

    bn_bytes = geometry.bn_parameter_count * bpv
    regions.append(BramRegion(name="bn_parameters", num_bytes=bn_bytes, tiles=tiles_for_bytes(bn_bytes)))

    fmap_bytes = geometry.output_elements * bpv
    for i in range(feature_map_buffers):
        name = ("input_fmap", "intermediate_fmap", "output_fmap")[i] if i < 3 else f"fmap_buffer_{i}"
        regions.append(BramRegion(name=name, num_bytes=fmap_bytes, tiles=tiles_for_bytes(fmap_bytes)))

    return BramPlan(block=geometry.name, regions=regions)

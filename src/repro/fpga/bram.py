"""Block-RAM allocation model.

The PL-part ODEBlock stores the weight parameters of its two convolutions and
the input/intermediate/output feature maps in on-chip Block RAM (Section 3.1:
"Weight parameters θ of the two convolution steps are stored in Block RAM
(BRAM) of the FPGA. Input and output feature maps for all the channels are
also stored in the BRAM.").  This module turns byte requirements into BRAM36
tile counts and produces a named allocation plan that the resource estimator
and the offload-feasibility check consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..fixedpoint.qformat import QFormat, Q20
from .device import FpgaDevice, ZYNQ_XC7Z020
from .geometry import BlockGeometry

__all__ = [
    "BramRegion",
    "BramPlan",
    "tiles_for_bytes",
    "plan_block_allocation",
    "tiles_for_bytes_kernel",
    "bram_tiles_kernel",
    "bram_fits_kernel",
]


#: Usable data bytes of one BRAM36 tile (4 KiB of data; the parity bits are
#: not usable for packed 32-bit words).
BRAM36_BYTES = 4096


# -- array-capable kernels ---------------------------------------------------------------
#
# Shared by the scalar planner below and the batch-evaluation engine
# (:mod:`repro.api.batch`), which evaluates them over whole Q-format /
# word-length axes at once.  Tile counts are exact integer arithmetic in both
# paths, so scalar and array results are identical by construction
# (pinned by ``tests/fpga/test_plan_kernels.py``).


def tiles_for_bytes_kernel(num_bytes, tile_bytes: int = BRAM36_BYTES):
    """BRAM36 tiles needed per byte count (ceil division; 0 bytes -> 0 tiles).

    Accepts scalars or integer arrays; the arithmetic stays in int64.
    """

    b = np.asarray(num_bytes, dtype=np.int64)
    return -(-b // int(tile_bytes))


def bram_tiles_kernel(
    geometry: BlockGeometry,
    bytes_per_value,
    feature_map_buffers: int = 3,
    tile_bytes: int = BRAM36_BYTES,
):
    """Total BRAM36 tiles of one block's allocation plan, vectorized.

    ``bytes_per_value`` may be a scalar or an integer array (e.g. one entry
    per scenario of a word-length sweep).  Matches
    ``plan_block_allocation(geometry, qformat=...).total_tiles`` exactly:
    one capacity-driven region per convolution's weights, one for the BN
    parameters and ``feature_map_buffers`` full feature-map buffers.  The
    tile count is independent of ``n_units`` (banking redistributes words,
    it does not add tiles).
    """

    bpv = np.asarray(bytes_per_value, dtype=np.int64)
    per_conv_weights = geometry.weight_count // geometry.num_convs
    conv_tiles = tiles_for_bytes_kernel(per_conv_weights * bpv, tile_bytes)
    bn_tiles = tiles_for_bytes_kernel(geometry.bn_parameter_count * bpv, tile_bytes)
    fmap_tiles = tiles_for_bytes_kernel(geometry.output_elements * bpv, tile_bytes)
    return geometry.num_convs * conv_tiles + bn_tiles + feature_map_buffers * fmap_tiles


def bram_fits_kernel(total_tiles, device: FpgaDevice = ZYNQ_XC7Z020):
    """Boolean fits/overflow mask of tile counts against a device's BRAM."""

    return np.asarray(total_tiles, dtype=np.int64) <= device.bram36


def tiles_for_bytes(num_bytes: int, tile_bytes: int = BRAM36_BYTES) -> int:
    """Number of BRAM36 tiles needed to hold ``num_bytes`` of data."""

    if num_bytes < 0:
        raise ValueError("num_bytes must be non-negative")
    return int(tiles_for_bytes_kernel(num_bytes, tile_bytes))


@dataclass(frozen=True)
class BramRegion:
    """One named region of the BRAM allocation (e.g. 'conv1 weights')."""

    name: str
    num_bytes: int
    tiles: int
    banks: int = 1

    def as_dict(self) -> Dict[str, int]:
        return {"name": self.name, "bytes": self.num_bytes, "tiles": self.tiles, "banks": self.banks}


@dataclass
class BramPlan:
    """Complete BRAM allocation of one PL ODEBlock instance."""

    block: str
    regions: List[BramRegion] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(r.num_bytes for r in self.regions)

    @property
    def total_tiles(self) -> int:
        return sum(r.tiles for r in self.regions)

    def fits(self, device: FpgaDevice = ZYNQ_XC7Z020) -> bool:
        """Whether the plan fits in the device's BRAM."""

        return self.total_tiles <= device.bram36

    def utilization_percent(self, device: FpgaDevice = ZYNQ_XC7Z020) -> float:
        return 100.0 * self.total_tiles / device.bram36

    def region(self, name: str) -> BramRegion:
        for r in self.regions:
            if r.name == name:
                return r
        available = ", ".join(r.name for r in self.regions) or "(none)"
        raise KeyError(f"no BRAM region named '{name}'; available regions: {available}")


def plan_block_allocation(
    geometry: BlockGeometry,
    n_units: int = 16,
    qformat: QFormat = Q20,
    feature_map_buffers: int = 3,
) -> BramPlan:
    """Plan the BRAM allocation of one ODEBlock.

    Parameters
    ----------
    geometry:
        The block geometry (layer1 / layer2_2 / layer3_2).
    n_units:
        Number of multiply-add units.  Each unit needs concurrent access to a
        weight word, so the weight words are interleaved across up to
        ``n_units`` banks — recorded as the regions' ``banks`` attribute.
        In this model banking only redistributes words; the tile count stays
        capacity-driven and is therefore independent of ``n_units`` (which
        is what lets :func:`bram_tiles_kernel` drop the unit axis).  The
        published Table 3 shows layer1's conv_x16 BRAM slightly above
        conv_x8 — a banking-granularity effect this capacity model
        deliberately does not reproduce (see ``tests/fpga/test_resources.py``
        for the published-vs-model comparison).
    qformat:
        Fixed-point format of the stored values (32-bit Q20 by default; the
        word-length ablation passes narrower formats here).
    feature_map_buffers:
        Number of full feature-map buffers held on chip (input, intermediate
        and output by default).
    """

    bpv = qformat.bytes_per_value
    regions: List[BramRegion] = []

    per_conv_weights = geometry.weight_count // geometry.num_convs
    per_conv_bytes = per_conv_weights * bpv
    banks = max(1, min(n_units, geometry.out_channels))
    for i in range(geometry.num_convs):
        # Weight words are interleaved across `banks` banks for parallel
        # access.  The tile count is driven by capacity; banking mainly
        # affects how the words are distributed, so at least one tile per
        # bank is required only when capacity alone would give fewer tiles
        # than there are banks.
        tiles = max(tiles_for_bytes(per_conv_bytes), 0)
        regions.append(
            BramRegion(name=f"conv{i + 1}_weights", num_bytes=per_conv_bytes, tiles=tiles, banks=banks)
        )

    bn_bytes = geometry.bn_parameter_count * bpv
    regions.append(BramRegion(name="bn_parameters", num_bytes=bn_bytes, tiles=tiles_for_bytes(bn_bytes)))

    fmap_bytes = geometry.output_elements * bpv
    for i in range(feature_map_buffers):
        name = ("input_fmap", "intermediate_fmap", "output_fmap")[i] if i < 3 else f"fmap_buffer_{i}"
        regions.append(BramRegion(name=name, num_bytes=fmap_bytes, tiles=tiles_for_bytes(fmap_bytes)))

    return BramPlan(block=geometry.name, regions=regions)

"""FPGA hardware-model substrate (PYNQ-Z2 / Zynq XC7Z020 simulation).

This package stands in for the physical board and the Vivado toolchain: it
models the PL-part ODEBlock's fixed-point arithmetic, execution cycles,
resource utilisation, timing closure, and the PS<->PL AXI transfers, all
calibrated against the numbers published in the paper.
"""

from .axi import AxiTransferConfig, AxiTransferModel, TransferEstimate
from .bram import (
    BRAM36_BYTES,
    BramPlan,
    BramRegion,
    bram_fits_kernel,
    bram_tiles_kernel,
    plan_block_allocation,
    tiles_for_bytes,
    tiles_for_bytes_kernel,
)
from .cycles import (
    PAPER_LAYER3_2_CYCLES,
    CycleBreakdown,
    CycleModelConfig,
    OdeBlockCycleModel,
)
from .device import PYNQ_Z2, ZYNQ_XC7Z020, BoardSpec, FpgaDevice, PowerProfile, ResourceVector
from .geometry import (
    LAYER1,
    LAYER2_2,
    LAYER3_2,
    OFFLOADABLE_BLOCKS,
    BlockGeometry,
    block_geometry,
)
from .export import (
    WeightImageError,
    WeightImageHeader,
    WeightImageMagicError,
    WeightImageVersionError,
    export_block_weights,
    import_block_weights,
)
from .gemm import (
    FLOAT_MANTISSA_BITS,
    MAX_LIMBS,
    GemmPlan,
    PlannedGemm,
    gemm_exact,
    plan_gemm,
)
from .odeblock_hw import BlockWeights, HardwareExecutionReport, HardwareODEBlock
from .ops import DEFAULT_ROW_CHUNK, hw_batch_norm, hw_conv2d, hw_relu, hw_residual_add
from .power import EnergyEstimate, PowerModel, PowerModelConfig
from .resources import PUBLISHED_TABLE3, ResourceEstimate, ResourceEstimator, published_table3
from .scheduler import DatapathScheduler, ScheduleTrace, UnitTrace, schedule_cycles_kernel
from .timing import (
    DEFAULT_TIMING_MODEL,
    TimingModel,
    TimingModelConfig,
    TimingReport,
    critical_path_ns_kernel,
    fmax_hz_kernel,
    meets_timing_kernel,
    slack_ns_kernel,
)

__all__ = [
    "BoardSpec",
    "FpgaDevice",
    "PowerProfile",
    "ResourceVector",
    "PYNQ_Z2",
    "ZYNQ_XC7Z020",
    "BlockGeometry",
    "block_geometry",
    "LAYER1",
    "LAYER2_2",
    "LAYER3_2",
    "OFFLOADABLE_BLOCKS",
    "BramPlan",
    "BramRegion",
    "BRAM36_BYTES",
    "plan_block_allocation",
    "tiles_for_bytes",
    "tiles_for_bytes_kernel",
    "bram_tiles_kernel",
    "bram_fits_kernel",
    "CycleModelConfig",
    "CycleBreakdown",
    "OdeBlockCycleModel",
    "PAPER_LAYER3_2_CYCLES",
    "ResourceEstimator",
    "ResourceEstimate",
    "PUBLISHED_TABLE3",
    "published_table3",
    "TimingModel",
    "TimingModelConfig",
    "TimingReport",
    "DEFAULT_TIMING_MODEL",
    "critical_path_ns_kernel",
    "fmax_hz_kernel",
    "slack_ns_kernel",
    "meets_timing_kernel",
    "schedule_cycles_kernel",
    "AxiTransferModel",
    "AxiTransferConfig",
    "TransferEstimate",
    "FLOAT_MANTISSA_BITS",
    "MAX_LIMBS",
    "GemmPlan",
    "PlannedGemm",
    "gemm_exact",
    "plan_gemm",
    "DEFAULT_ROW_CHUNK",
    "hw_conv2d",
    "hw_batch_norm",
    "hw_relu",
    "hw_residual_add",
    "BlockWeights",
    "HardwareODEBlock",
    "HardwareExecutionReport",
    "DatapathScheduler",
    "ScheduleTrace",
    "UnitTrace",
    "PowerModel",
    "PowerModelConfig",
    "EnergyEstimate",
    "WeightImageHeader",
    "WeightImageError",
    "WeightImageMagicError",
    "WeightImageVersionError",
    "export_block_weights",
    "import_block_weights",
]

"""Exact integer GEMM at BLAS speed: the split-limb kernel.

NumPy has no BLAS backend for integer matrix multiplication, so the
``int64`` matmul at the heart of the bit-accurate forward path
(:func:`repro.fpga.ops.hw_conv2d`, :meth:`repro.fixedpoint.FxArray.matmul`)
runs through a slow generic inner loop.  This module reaches BLAS speed
without sacrificing a single bit by decomposing **one** operand into
two's-complement limbs sized so that every partial product *and* its whole
K-term accumulation is an integer below :data:`FLOAT_MANTISSA_LIMIT` — i.e.
exactly representable in a float64 mantissa.  Each limb GEMM then runs
through float64 BLAS, is converted back to ``int64`` (exact, no rounding),
shifted into place and accumulated with ordinary wrapping ``int64``
arithmetic.

Why the result is bit-identical to ``a @ b`` on ``int64``:

* Let ``lb`` be the limb width and ``s = 53 - a_bits - k_bits`` the mantissa
  headroom (``a_bits`` bounds the un-split operand's magnitudes, ``k_bits =
  ceil(log2 K)`` the reduction depth).  With ``lb <= s`` every partial sum of
  ``K`` products ``|a_ik| * |limb_kj| < 2**(a_bits + lb)`` stays strictly
  below ``2**53``, so float64 addition is exact **in any order** — the
  result does not depend on BLAS blocking or threading.
* The limbs reconstruct the operand exactly (``x = sum_j limb_j << (j*lb)``
  with unsigned low limbs and an arithmetic-shifted, sign-carrying top
  limb), and the recombination shift/add wraps modulo ``2**64`` exactly as
  NumPy's ``int64`` matmul does, so even deliberately-overflowing inputs
  (the RTL testbench's wrapping accumulators) recombine bit-identically.

When no single-operand split satisfies the bound within
:data:`MAX_LIMBS` limb GEMMs — very wide word lengths, e.g. both operands
near 64 bits — :func:`plan_gemm` returns the ``int64`` fallback and the
kernel degrades to the original exact-but-slow matmul.  The plan is
computed per call from the operands' **actual** magnitudes (not their
storage width), so e.g. Q20 weights drawn at scale 0.1 occupy ~17 bits and
often need just one or two limbs.

:class:`PlannedGemm` is the hot-loop interface: plan once against a fixed
right-hand operand (a conv weight matrix), then run many left-hand chunks
through it — :func:`repro.fpga.ops.hw_conv2d` feeds it ``im2col`` chunks
written directly in the dtype the plan wants (float64 for the BLAS path),
so the expanded patch matrix is materialised exactly once per chunk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = [
    "FLOAT_MANTISSA_BITS",
    "MAX_LIMBS",
    "GemmPlan",
    "plan_gemm",
    "gemm_exact",
    "PlannedGemm",
]

#: float64 mantissa width: integers of magnitude < 2**53 are exact.
FLOAT_MANTISSA_BITS = 53

#: Largest number of limb GEMMs worth running before the BLAS advantage is
#: eaten by the decomposition; beyond this the int64 fallback wins.
MAX_LIMBS = 4


def _magnitude(x: np.ndarray) -> int:
    """Largest absolute value of an int64 array, as an exact Python int.

    ``np.abs`` wraps on ``-2**63``; taking the two extrema separately and
    negating in Python-int arithmetic is exact for the whole int64 range.
    """

    if x.size == 0:
        return 0
    return max(int(x.max()), -int(x.min()))


@dataclass(frozen=True)
class GemmPlan:
    """How one exact GEMM will run.

    ``split`` names the decomposed operand: ``"a"`` (left), ``"b"`` (right)
    or ``"int64"`` (no feasible split — exact fallback matmul).  For a split
    plan, ``n_limbs`` float64 GEMMs of ``limb_bits``-wide limbs run and
    recombine; ``n_limbs == 1`` is the pure float64 fast path (the whole
    operand already fits the mantissa headroom).
    """

    split: str
    limb_bits: int
    n_limbs: int
    a_bits: int
    b_bits: int
    k_bits: int

    @property
    def uses_blas(self) -> bool:
        return self.split != "int64"

    @property
    def a_dtype(self) -> np.dtype:
        """The dtype the left operand should be materialised in.

        float64 when the *right* operand is the one split (the left flows
        straight into BLAS); int64 otherwise (it is decomposed, or the plan
        fell back to the integer matmul).
        """

        return np.dtype(np.float64) if self.split == "b" else np.dtype(np.int64)


def plan_gemm(a_max: int, b_max: int, k: int, max_limbs: int = MAX_LIMBS) -> GemmPlan:
    """Choose the exact split for ``a @ b`` from actual operand magnitudes.

    Parameters
    ----------
    a_max, b_max:
        Largest absolute values of the left/right operand (exact ints).
    k:
        Reduction depth (the shared dimension, ``C*KH*KW`` for im2col conv).
    max_limbs:
        Limb budget before falling back to the int64 matmul.

    The exactness bound per candidate: splitting ``b`` into ``lb``-bit limbs
    is exact iff ``a_bits + lb + k_bits <= 53`` (and symmetrically for
    ``a``), because every float64 partial sum is then an integer strictly
    below ``2**53``.  Between feasible candidates the one with fewer limb
    GEMMs wins; ties prefer splitting ``b`` (the small, reusable weight
    operand in the conv lowering).
    """

    a_bits = int(a_max).bit_length()
    b_bits = int(b_max).bit_length()
    k_bits = (max(int(k), 1) - 1).bit_length()

    def candidate(split: str, fixed_bits: int, split_bits: int) -> Optional[GemmPlan]:
        headroom = FLOAT_MANTISSA_BITS - fixed_bits - k_bits
        if headroom < 1:
            return None
        limb_bits = min(headroom, max(split_bits, 1))
        n_limbs = max(1, -(-split_bits // limb_bits))
        if n_limbs > max_limbs:
            return None
        return GemmPlan(split, limb_bits, n_limbs, a_bits, b_bits, k_bits)

    options = [
        plan
        for plan in (candidate("b", a_bits, b_bits), candidate("a", b_bits, a_bits))
        if plan is not None
    ]
    if not options:
        return GemmPlan("int64", 0, 0, a_bits, b_bits, k_bits)
    # Fewest limb GEMMs wins; the listed order makes "b" the tie-break.
    return min(options, key=lambda p: p.n_limbs)


def _split_limbs(x: np.ndarray, limb_bits: int, n_limbs: int) -> List[np.ndarray]:
    """Two's-complement limb decomposition, each limb as exact float64.

    Low limbs are unsigned ``limb_bits``-bit fields; the top limb is the
    arithmetic-shifted remainder and carries the sign, so
    ``x == sum_j limbs[j] << (j * limb_bits)`` exactly.
    """

    mask = np.int64((1 << limb_bits) - 1)
    limbs = [
        ((x >> np.int64(j * limb_bits)) & mask).astype(np.float64)
        for j in range(n_limbs - 1)
    ]
    limbs.append((x >> np.int64((n_limbs - 1) * limb_bits)).astype(np.float64))
    return limbs


class PlannedGemm:
    """Exact GEMM against a fixed right-hand ``(K, N)`` operand.

    Plans once (from ``a_max``, the guaranteed magnitude bound of every
    future left operand) and pre-decomposes the right operand, so the hot
    loop pays only the limb GEMM and the recombination.  The limbs are
    *stacked* — columns ``[limb0 | limb1 | ...]`` for a ``b`` split, rows
    for an ``a`` split — so all limbs run as **one** BLAS call that streams
    the large operand through memory once instead of once per limb.  Feed
    left chunks materialised as :attr:`a_dtype`
    (:func:`repro.nn.im2col.im2col` can write them directly).
    """

    def __init__(self, b: np.ndarray, a_max: int, max_limbs: int = MAX_LIMBS) -> None:
        b = np.asarray(b)
        if b.ndim != 2:
            raise ValueError(f"right operand must be 2-D, got shape {b.shape}")
        if b.dtype != np.int64:
            raise ValueError(f"right operand must be int64, got {b.dtype}")
        self.plan = plan_gemm(a_max, _magnitude(b), b.shape[0], max_limbs=max_limbs)
        self._b = b if self.plan.split == "int64" else None
        self._b_float = b.astype(np.float64) if self.plan.split == "a" else None
        self._b_stack = (
            np.concatenate(_split_limbs(b, self.plan.limb_bits, self.plan.n_limbs), axis=1)
            if self.plan.split == "b"
            else None
        )
        self.shape = b.shape

    @property
    def a_dtype(self) -> np.dtype:
        return self.plan.a_dtype

    def __call__(self, a: np.ndarray) -> np.ndarray:
        """``a @ b`` as wrapping int64, bit-identical to the int64 matmul."""

        if a.ndim != 2 or a.shape[1] != self.shape[0]:
            raise ValueError(f"left operand shape {a.shape} incompatible with {self.shape}")
        plan = self.plan
        n = self.shape[1]
        if plan.split == "b":
            if a.dtype != np.float64:
                a = a.astype(np.float64)
            parts = a @ self._b_stack  # (M, n_limbs * N), exact integers
            acc = parts[:, :n].astype(np.int64)
            for j in range(1, plan.n_limbs):
                # Partials are integers < 2**53, exact in int64; shift and
                # addition wrap modulo 2**64 exactly like the int64 matmul.
                acc += parts[:, j * n : (j + 1) * n].astype(np.int64) << np.int64(
                    j * plan.limb_bits
                )
            return acc
        if plan.split == "a":
            limbs = _split_limbs(np.asarray(a, dtype=np.int64), plan.limb_bits, plan.n_limbs)
            parts = np.concatenate(limbs, axis=0) @ self._b_float  # (n_limbs * M, N)
            m = a.shape[0]
            acc = parts[:m].astype(np.int64)
            for j in range(1, plan.n_limbs):
                acc += parts[j * m : (j + 1) * m].astype(np.int64) << np.int64(
                    j * plan.limb_bits
                )
            return acc
        return np.asarray(a, dtype=np.int64) @ self._b


def gemm_exact(a: np.ndarray, b: np.ndarray, max_limbs: int = MAX_LIMBS) -> np.ndarray:
    """Exact ``a @ b`` of two int64 matrices, bit-identical to ``a @ b``.

    Plans from the operands' actual magnitudes, runs the 1–``max_limbs``
    split-limb BLAS GEMMs when the exactness bound can be met, and falls
    back to the plain int64 matmul otherwise — so the output (including any
    deliberate int64 wraparound) never differs from ``a @ b`` by a single
    bit, it only arrives faster.
    """

    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(f"gemm_exact expects 2-D operands, got {a.shape} @ {b.shape}")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    planned = PlannedGemm(b, a_max=_magnitude(a), max_limbs=max_limbs)
    if planned.plan.split == "b":
        return planned(a.astype(np.float64))
    return planned(a)

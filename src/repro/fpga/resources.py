"""FPGA resource-utilisation model (Table 3 of the paper).

Two views are provided:

* :func:`published_table3` — the exact Vivado post-implementation utilisations
  reported by the paper for layer1 / layer2_2 / layer3_2 at conv_x1 / x4 / x8 /
  x16.  These are measured numbers (the ground truth the reproduction is
  compared against).
* :class:`ResourceEstimator` — an analytical model of the same quantities:
  BRAM from the capacity plan of :mod:`repro.fpga.bram`, DSP slices as
  ``4 + 4·n_units`` (four DSP48 slices per 32-bit multiply-add unit plus the
  shared divide/sqrt datapath of the BN step, an exact match to Table 3),
  and LUT / FF counts from a linear per-unit cost model fitted to Table 3.

The estimator is used by the offload-feasibility check
(:mod:`repro.core.offload`) and by the word-length ablation, where no
published numbers exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

import numpy as np

from ..fixedpoint.qformat import QFormat, Q20
from .bram import BramPlan, bram_tiles_kernel, plan_block_allocation
from .device import FpgaDevice, ResourceVector, ZYNQ_XC7Z020
from .geometry import BlockGeometry, OFFLOADABLE_BLOCKS, block_geometry

__all__ = [
    "ResourceEstimate",
    "ResourceEstimator",
    "published_table3",
    "PUBLISHED_TABLE3",
    "dsp_count_kernel",
    "lut_count_kernel",
    "ff_count_kernel",
]


# -- array-capable kernels ---------------------------------------------------------------
#
# Shared by the scalar estimator methods below and the batch-evaluation engine
# (:mod:`repro.api.batch`), which evaluates them over whole ``n_units`` axes.


def dsp_count_kernel(n_units, dsp_base, dsp_per_unit):
    """DSP48 slices: the shared BN divide/sqrt unit plus slices per MAC unit."""

    return dsp_base + dsp_per_unit * n_units


def lut_count_kernel(n_units, out_channels, lut_base, lut_per_unit, lut_per_unit_per_channel):
    """LUTs: fixed control/BN part plus a per-unit datapath part."""

    return lut_base + n_units * (lut_per_unit + lut_per_unit_per_channel * out_channels)


def ff_count_kernel(n_units, out_channels, ff_base, ff_per_unit, ff_per_unit_per_channel):
    """Flip-flops: fixed control/BN part plus a per-unit datapath part."""

    return ff_base + n_units * (ff_per_unit + ff_per_unit_per_channel * out_channels)


#: Table 3 of the paper: absolute counts for (layer, n_units) -> (BRAM, DSP, LUT, FF).
PUBLISHED_TABLE3: Dict[Tuple[str, int], ResourceVector] = {
    ("layer1", 1): ResourceVector(bram=56, dsp=8, lut=1486, ff=835),
    ("layer1", 4): ResourceVector(bram=56, dsp=20, lut=2992, ff=1358),
    ("layer1", 8): ResourceVector(bram=56, dsp=36, lut=4740, ff=2058),
    ("layer1", 16): ResourceVector(bram=64, dsp=68, lut=8994, ff=4145),
    ("layer2_2", 1): ResourceVector(bram=56, dsp=8, lut=1482, ff=833),
    ("layer2_2", 4): ResourceVector(bram=56, dsp=20, lut=2946, ff=1346),
    ("layer2_2", 8): ResourceVector(bram=56, dsp=36, lut=4737, ff=2032),
    ("layer2_2", 16): ResourceVector(bram=56, dsp=68, lut=8844, ff=4873),
    ("layer3_2", 1): ResourceVector(bram=140, dsp=8, lut=1692, ff=927),
    ("layer3_2", 4): ResourceVector(bram=140, dsp=20, lut=3048, ff=1411),
    ("layer3_2", 8): ResourceVector(bram=140, dsp=36, lut=4907, ff=2059),
    ("layer3_2", 16): ResourceVector(bram=140, dsp=68, lut=12720, ff=6378),
}


def published_table3(device: FpgaDevice = ZYNQ_XC7Z020) -> Dict[Tuple[str, int], Dict[str, float]]:
    """Table 3 as absolute counts plus utilisation percentages."""

    table: Dict[Tuple[str, int], Dict[str, float]] = {}
    for key, vec in PUBLISHED_TABLE3.items():
        entry = vec.as_dict()
        entry.update({f"{k}_pct": v for k, v in vec.utilization(device).items()})
        table[key] = entry
    return table


@dataclass(frozen=True)
class ResourceEstimate:
    """Analytical resource estimate of one PL ODEBlock instance."""

    block: str
    n_units: int
    resources: ResourceVector
    bram_plan: BramPlan

    def utilization(self, device: FpgaDevice = ZYNQ_XC7Z020) -> Dict[str, float]:
        return self.resources.utilization(device)

    def fits(self, device: FpgaDevice = ZYNQ_XC7Z020) -> bool:
        return self.resources.fits(device)


@dataclass(frozen=True)
class ResourceModelConfig:
    """Calibration constants of the analytical LUT/FF/DSP model.

    The LUT and FF costs are modelled as a fixed control/BN part plus a
    per-MAC-unit datapath part; the constants below are least-squares fits to
    Table 3 (conv_x1..x16 across the three layers).
    """

    dsp_base: int = 4
    dsp_per_unit: int = 4
    lut_base: float = 1000.0
    lut_per_unit: float = 500.0
    ff_base: float = 700.0
    ff_per_unit: float = 220.0
    #: Extra LUT/FF per MAC unit for wide-channel blocks (layer3_2's 64-input
    #: adder tree is deeper, which shows up in its conv_x16 LUT count).
    lut_per_unit_per_channel: float = 1.2
    ff_per_unit_per_channel: float = 0.6


class ResourceEstimator:
    """Analytical resource model for a PL ODEBlock instance."""

    def __init__(
        self,
        device: FpgaDevice = ZYNQ_XC7Z020,
        qformat: QFormat = Q20,
        config: ResourceModelConfig | None = None,
    ) -> None:
        self.device = device
        self.qformat = qformat
        self.config = config or ResourceModelConfig()

    def dsp_count(self, n_units: int) -> int:
        """DSP48 slices: 4 per multiply-add unit plus the BN divide/sqrt unit."""

        return int(dsp_count_kernel(n_units, self.config.dsp_base, self.config.dsp_per_unit))

    def lut_count(self, geometry: BlockGeometry, n_units: int) -> float:
        c = self.config
        return float(
            lut_count_kernel(
                n_units, geometry.out_channels, c.lut_base, c.lut_per_unit, c.lut_per_unit_per_channel
            )
        )

    def ff_count(self, geometry: BlockGeometry, n_units: int) -> float:
        c = self.config
        return float(
            ff_count_kernel(
                n_units, geometry.out_channels, c.ff_base, c.ff_per_unit, c.ff_per_unit_per_channel
            )
        )

    def estimate(self, block: str | BlockGeometry, n_units: int = 16) -> ResourceEstimate:
        """Estimate the resources of one block implemented with ``n_units`` MACs."""

        geometry = block if isinstance(block, BlockGeometry) else block_geometry(block)
        plan = plan_block_allocation(geometry, n_units=n_units, qformat=self.qformat)
        resources = ResourceVector(
            bram=plan.total_tiles,
            dsp=self.dsp_count(n_units),
            lut=self.lut_count(geometry, n_units),
            ff=self.ff_count(geometry, n_units),
        )
        return ResourceEstimate(
            block=geometry.name, n_units=n_units, resources=resources, bram_plan=plan
        )

    def estimate_batch(
        self,
        block: str | BlockGeometry,
        n_units,
        bytes_per_value=None,
    ) -> Dict[str, np.ndarray]:
        """Resource arrays of one block over whole ``n_units``/Q-format axes.

        ``n_units`` and ``bytes_per_value`` may be scalars or broadcastable
        arrays; the result holds one array per resource class plus the
        device fits mask.  Element-for-element identical to looping
        :meth:`estimate` over the axes (same kernels in both paths).
        """

        geometry = block if isinstance(block, BlockGeometry) else block_geometry(block)
        bpv = self.qformat.bytes_per_value if bytes_per_value is None else bytes_per_value
        c = self.config
        units = np.asarray(n_units, dtype=np.int64)
        bram = np.broadcast_to(
            np.asarray(bram_tiles_kernel(geometry, bpv)), np.broadcast_shapes(units.shape, np.shape(bpv))
        )
        dsp = dsp_count_kernel(units, c.dsp_base, c.dsp_per_unit)
        lut = lut_count_kernel(
            units, geometry.out_channels, c.lut_base, c.lut_per_unit, c.lut_per_unit_per_channel
        )
        ff = ff_count_kernel(
            units, geometry.out_channels, c.ff_base, c.ff_per_unit, c.ff_per_unit_per_channel
        )
        d = self.device
        fits = (bram <= d.bram36) & (dsp <= d.dsp) & (lut <= d.lut) & (ff <= d.ff)
        return {"bram": bram, "dsp": dsp, "lut": lut, "ff": ff, "fits_device": fits}

    def estimate_combination(
        self, blocks: Iterable[str | BlockGeometry], n_units: int = 16
    ) -> ResourceVector:
        """Total resources of several blocks placed on the PL at once.

        Used for the rODENet-1+2 configuration where layer1 *and* layer2_2
        are both implemented on the PL part (Section 3.2, case 3).
        """

        total = ResourceVector()
        for block in blocks:
            total = total + self.estimate(block, n_units=n_units).resources
        return total

    def feasible_blocks(self, n_units: int = 16) -> Dict[str, bool]:
        """Which single-block configurations fit on the device."""

        return {
            name: self.estimate(name, n_units=n_units).fits(self.device)
            for name in OFFLOADABLE_BLOCKS
        }

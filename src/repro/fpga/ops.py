"""Bit-accurate fixed-point operators of the PL datapath.

These functions model the arithmetic performed by the Verilog ODEBlock
described in Section 3.1: 3x3 convolution and ReLU executed by multiply-add
units, and batch normalisation executed by multiply-add, division and
square-root units, all in 32-bit Q20 fixed point.  They operate on
:class:`~repro.fixedpoint.fxarray.FxArray` data, either a single image
(``(C, H, W)``, the board's one-image-at-a-time prediction flow) or a batch
(``(N, C, H, W)``).  A batch is **bit-identical** to N single-image calls:
every integer operation is exact and the batch-normalisation statistics are
reduced per image, never across the batch (enforced by
``tests/fpga/test_batched_odeblock.py``).

The integer arithmetic follows the hardware conventions: products are
computed at double width and renormalised by an arithmetic right shift,
accumulation happens in a wide accumulator, and the variance/σ path uses the
integer divide and Newton square-root units from
:mod:`repro.fixedpoint.arithmetic`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..fixedpoint import FxArray, QFormat, Q20
from ..fixedpoint import arithmetic as fx
from ..nn.im2col import conv_output_size, im2col
from .gemm import PlannedGemm, _magnitude

__all__ = ["hw_conv2d", "hw_batch_norm", "hw_relu", "hw_residual_add", "DEFAULT_ROW_CHUNK"]

#: im2col rows fed to one GEMM call: bounds the peak size of the expanded
#: C*KH*KW patch matrix (at 16,384 rows the widest offloadable block,
#: layer3_2 with K = 577, peaks at ~75 MB of float64) independently of the
#: batch size N.
DEFAULT_ROW_CHUNK = 16384


def hw_conv2d(
    x: FxArray,
    weight: FxArray,
    stride: int = 1,
    padding: int = 1,
    row_chunk: Optional[int] = None,
) -> FxArray:
    """Fixed-point 3x3 convolution of a single image or a batch.

    Lowered to im2col + the exact split-limb GEMM of
    :mod:`repro.fpga.gemm`: the weight matrix is decomposed once per call
    (planned from the operands' actual magnitudes), image chunks stream
    through one BLAS call each, and the recombined int64 accumulator goes
    through the same ``>> fraction_bits`` renormalisation and clip as a MAC
    unit with a wide accumulator register.  Bit-identical to the plain
    int64 matmul lowering for every input — including deliberately
    wrapping ones — and to any chunk size.

    Parameters
    ----------
    x:
        Input feature map of shape ``(C_in, H, W)`` or a batch
        ``(N, C_in, H, W)``.
    weight:
        Kernel of shape ``(C_out, C_in, KH, KW)``.
    row_chunk:
        im2col rows per GEMM chunk (default :data:`DEFAULT_ROW_CHUNK`);
        peak memory is bounded by the chunk, not by ``N * out_h * out_w``.
    """

    if x.ndim not in (3, 4):
        raise ValueError("hw_conv2d expects a (C, H, W) image or an (N, C, H, W) batch")
    if x.fmt != weight.fmt:
        raise ValueError("input and weight formats must match")
    fmt = x.fmt
    batched = x.ndim == 4
    raw = x.raw if batched else x.raw[None, ...]
    n, c_in, h, w = raw.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: {c_in} vs {c_in_w}")

    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    rows_per_image = out_h * out_w
    k = c_in * kh * kw

    # Plan the exact GEMM from actual magnitudes: weights are decomposed
    # once; every image chunk then runs as a single stacked-limb BLAS call.
    w_mat = np.ascontiguousarray(weight.raw.reshape(c_out, k).T)
    gemm = PlannedGemm(w_mat, a_max=_magnitude(raw))

    if row_chunk is None:
        row_chunk = DEFAULT_ROW_CHUNK
    if row_chunk < 1:
        raise ValueError("row_chunk must be a positive integer")
    images_per_chunk = min(n, max(1, row_chunk // rows_per_image))

    out_mat = np.empty((n * rows_per_image, c_out), dtype=np.int64)
    cols_buf = np.empty((images_per_chunk * rows_per_image, k), dtype=gemm.a_dtype)
    for start in range(0, n, images_per_chunk):
        stop = min(start + images_per_chunk, n)
        chunk_rows = (stop - start) * rows_per_image
        # im2col gathers straight into the GEMM's operand dtype: the
        # expanded patch matrix is materialised once, in one buffer reused
        # across chunks (zero padding is exact in fixed point).
        cols = im2col(
            raw[start:stop], kh, kw, stride, padding, out=cols_buf[:chunk_rows]
        )
        acc = gemm(cols)
        # Wide accumulation followed by a single renormalisation, matching a
        # MAC unit with a wide accumulator register.  Integer arithmetic is
        # exact, so neither batching nor chunking changes any image's result.
        renorm = acc >> fmt.fraction_bits
        np.clip(renorm, fmt.min_int, fmt.max_int, out=renorm)
        out_mat[start * rows_per_image : stop * rows_per_image] = renorm

    out = out_mat.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
    return FxArray(out if batched else out[0], fmt)


def hw_batch_norm(
    x: FxArray,
    gamma: FxArray,
    beta: FxArray,
    running_mean: Optional[FxArray] = None,
    running_var: Optional[FxArray] = None,
    eps: float = 1e-5,
    dynamic_stats: bool = True,
) -> FxArray:
    """Fixed-point batch normalisation of a single image or a batch.

    The paper's hardware computes the mean, variance and standard deviation
    on the fly with multiply-add, divide and square-root units
    (``dynamic_stats=True``, the default).  Alternatively the trained running
    statistics can be applied (``dynamic_stats=False``), which is the
    standard inference-time behaviour of software BN.

    A batched input ``(N, C, H, W)`` reduces the statistics **per image**
    (the board normalises one prediction at a time), so the result is
    bit-identical to N single-image calls.
    """

    if x.ndim not in (3, 4):
        raise ValueError("hw_batch_norm expects a (C, H, W) image or an (N, C, H, W) batch")
    fmt = x.fmt
    batched = x.ndim == 4
    raw = x.raw if batched else x.raw[None, ...]
    n, c = raw.shape[:2]
    if gamma.shape != (c,) or beta.shape != (c,):
        raise ValueError("gamma/beta must have shape (C,)")

    eps_fx = fmt.to_fixed(eps)

    if dynamic_stats:
        flat = raw.reshape(n, c, -1)
        mean = fx.fx_mean(flat, fmt, axis=2)
        var = fx.fx_var(flat, fmt, axis=2)
    else:
        if running_mean is None or running_var is None:
            raise ValueError("running statistics required when dynamic_stats=False")
        mean = np.broadcast_to(running_mean.raw, (n, c))
        var = np.broadcast_to(running_var.raw, (n, c))

    std = fx.fx_sqrt(fx.fx_add(var, eps_fx, fmt), fmt)
    # A hardware divider cannot divide by zero; clamp σ to one LSB (relevant
    # only for very narrow word lengths where small variances quantise to 0).
    std = np.maximum(std, 1)

    centered = fx.fx_sub(raw, mean.reshape(n, c, 1, 1), fmt)
    normalized = fx.fx_div(centered, std.reshape(n, c, 1, 1), fmt)
    scaled = fx.fx_mul(normalized, gamma.raw.reshape(1, c, 1, 1), fmt)
    shifted = fx.fx_add(scaled, beta.raw.reshape(1, c, 1, 1), fmt)
    return FxArray(shifted if batched else shifted[0], fmt)


def hw_relu(x: FxArray) -> FxArray:
    """Fixed-point ReLU."""

    return x.relu()


def hw_residual_add(x: FxArray, fx_out: FxArray, step_size: float = 1.0) -> FxArray:
    """Euler update ``z + h * f(z)`` in fixed point.

    The multiplication by the step size ``h`` is exact when ``h`` is 1 (the
    paper's configuration, one building block per step); other step sizes are
    quantised to the array's format first.
    """

    if x.fmt != fx_out.fmt:
        raise ValueError("operand formats must match")
    fmt = x.fmt
    if step_size == 1.0:
        scaled = fx_out.raw
    else:
        h_fx = fmt.to_fixed(step_size)
        scaled = fx.fx_mul(fx_out.raw, h_fx, fmt)
    return FxArray(fx.fx_add(x.raw, scaled, fmt), fmt)

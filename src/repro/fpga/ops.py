"""Bit-accurate fixed-point operators of the PL datapath.

These functions model the arithmetic performed by the Verilog ODEBlock
described in Section 3.1: 3x3 convolution and ReLU executed by multiply-add
units, and batch normalisation executed by multiply-add, division and
square-root units, all in 32-bit Q20 fixed point.  They operate on a single
image (``(C, H, W)``), matching the board's one-image-at-a-time prediction
flow, and on :class:`~repro.fixedpoint.fxarray.FxArray` data.

The integer arithmetic follows the hardware conventions: products are
computed at double width and renormalised by an arithmetic right shift,
accumulation happens in a wide accumulator, and the variance/σ path uses the
integer divide and Newton square-root units from
:mod:`repro.fixedpoint.arithmetic`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..fixedpoint import FxArray, QFormat, Q20
from ..fixedpoint import arithmetic as fx
from ..nn.im2col import conv_output_size, im2col

__all__ = ["hw_conv2d", "hw_batch_norm", "hw_relu", "hw_residual_add"]


def hw_conv2d(
    x: FxArray,
    weight: FxArray,
    stride: int = 1,
    padding: int = 1,
) -> FxArray:
    """Fixed-point 3x3 convolution of a single image.

    Parameters
    ----------
    x:
        Input feature map of shape ``(C_in, H, W)``.
    weight:
        Kernel of shape ``(C_out, C_in, KH, KW)``.
    """

    if x.ndim != 3:
        raise ValueError("hw_conv2d expects a single (C, H, W) image")
    if x.fmt != weight.fmt:
        raise ValueError("input and weight formats must match")
    fmt = x.fmt
    c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: {c_in} vs {c_in_w}")

    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    # im2col on the raw integer representation; zero padding is exact in
    # fixed point, so reusing the float helper on int64 data is safe.
    cols = im2col(x.raw[None, ...].astype(np.int64), kh, kw, stride, padding)
    w_mat = weight.raw.reshape(c_out, -1).astype(np.int64)

    # Wide accumulation followed by a single renormalisation, matching a MAC
    # unit with a wide accumulator register.
    acc = cols @ w_mat.T
    renorm = acc >> fmt.fraction_bits
    renorm = np.clip(renorm, fmt.min_int, fmt.max_int)
    out = renorm.reshape(out_h, out_w, c_out).transpose(2, 0, 1)
    return FxArray(out, fmt)


def hw_batch_norm(
    x: FxArray,
    gamma: FxArray,
    beta: FxArray,
    running_mean: Optional[FxArray] = None,
    running_var: Optional[FxArray] = None,
    eps: float = 1e-5,
    dynamic_stats: bool = True,
) -> FxArray:
    """Fixed-point batch normalisation of a single image.

    The paper's hardware computes the mean, variance and standard deviation
    on the fly with multiply-add, divide and square-root units
    (``dynamic_stats=True``, the default).  Alternatively the trained running
    statistics can be applied (``dynamic_stats=False``), which is the
    standard inference-time behaviour of software BN.
    """

    if x.ndim != 3:
        raise ValueError("hw_batch_norm expects a single (C, H, W) image")
    fmt = x.fmt
    c = x.shape[0]
    if gamma.shape != (c,) or beta.shape != (c,):
        raise ValueError("gamma/beta must have shape (C,)")

    eps_fx = fmt.to_fixed(eps)

    if dynamic_stats:
        mean = fx.fx_mean(x.raw.reshape(c, -1), fmt, axis=1)
        var = fx.fx_var(x.raw.reshape(c, -1), fmt, axis=1)
    else:
        if running_mean is None or running_var is None:
            raise ValueError("running statistics required when dynamic_stats=False")
        mean = running_mean.raw
        var = running_var.raw

    std = fx.fx_sqrt(fx.fx_add(var, eps_fx, fmt), fmt)
    # A hardware divider cannot divide by zero; clamp σ to one LSB (relevant
    # only for very narrow word lengths where small variances quantise to 0).
    std = np.maximum(std, 1)

    centered = fx.fx_sub(x.raw, mean.reshape(c, 1, 1), fmt)
    normalized = fx.fx_div(centered, std.reshape(c, 1, 1), fmt)
    scaled = fx.fx_mul(normalized, gamma.raw.reshape(c, 1, 1), fmt)
    shifted = fx.fx_add(scaled, beta.raw.reshape(c, 1, 1), fmt)
    return FxArray(shifted, fmt)


def hw_relu(x: FxArray) -> FxArray:
    """Fixed-point ReLU."""

    return x.relu()


def hw_residual_add(x: FxArray, fx_out: FxArray, step_size: float = 1.0) -> FxArray:
    """Euler update ``z + h * f(z)`` in fixed point.

    The multiplication by the step size ``h`` is exact when ``h`` is 1 (the
    paper's configuration, one building block per step); other step sizes are
    quantised to the array's format first.
    """

    if x.fmt != fx_out.fmt:
        raise ValueError("operand formats must match")
    fmt = x.fmt
    if step_size == 1.0:
        scaled = fx_out.raw
    else:
        h_fx = fmt.to_fixed(step_size)
        scaled = fx.fx_mul(fx_out.raw, h_fx, fmt)
    return FxArray(fx.fx_add(x.raw, scaled, fmt), fmt)

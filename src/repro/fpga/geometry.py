"""Geometry of the convolutional building blocks implemented on the PL part.

A :class:`BlockGeometry` captures everything the hardware model needs to know
about one ODEBlock / ResNet building block: channel count, feature-map size,
kernel size and stride.  The three blocks the paper implements on the FPGA
(Section 3.1) are provided as constants:

=========  =========  ================  ======
name       channels   feature map       stride
=========  =========  ================  ======
layer1     16         32 x 32           1
layer2_2   32         16 x 16           1
layer3_2   64         8 x 8             1
=========  =========  ================  ======

(Table 2 lists the *output* size of each layer group; the strided
down-sampling blocks layer2_1 / layer3_1 halve the spatial size, so the
repeated blocks operate at the sizes above.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "BlockGeometry",
    "LAYER1",
    "LAYER2_2",
    "LAYER3_2",
    "OFFLOADABLE_BLOCKS",
    "block_geometry",
]


@dataclass(frozen=True)
class BlockGeometry:
    """Shape of one building block (two 3x3 convolutions + 2 BN + ReLU)."""

    name: str
    in_channels: int
    out_channels: int
    height: int
    width: int
    kernel: int = 3
    stride: int = 1
    num_convs: int = 2
    num_batch_norms: int = 2

    @property
    def out_height(self) -> int:
        return self.height // self.stride

    @property
    def out_width(self) -> int:
        return self.width // self.stride

    @property
    def input_elements(self) -> int:
        """Number of values in the input feature map."""

        return self.in_channels * self.height * self.width

    @property
    def output_elements(self) -> int:
        """Number of values in the output feature map."""

        return self.out_channels * self.out_height * self.out_width

    @property
    def macs_per_conv(self) -> int:
        """Multiply-accumulate operations of one 3x3 convolution."""

        return (
            self.out_channels
            * self.in_channels
            * self.kernel
            * self.kernel
            * self.out_height
            * self.out_width
        )

    @property
    def total_macs(self) -> int:
        """MACs of the whole block (both convolutions)."""

        return self.macs_per_conv * self.num_convs

    @property
    def bn_elements(self) -> int:
        """Elements processed by the batch-normalisation steps (both BNs)."""

        return self.output_elements * self.num_batch_norms

    @property
    def weight_count(self) -> int:
        """Number of weight parameters of the two convolutions."""

        per_conv = self.out_channels * self.in_channels * self.kernel * self.kernel
        return per_conv * self.num_convs

    @property
    def bn_parameter_count(self) -> int:
        """Gamma/beta (and running statistics) of the two BN steps."""

        return 4 * self.out_channels * self.num_batch_norms

    def weight_bytes(self, bytes_per_value: int = 4) -> int:
        """Weight storage in bytes (paper: 32-bit values, i.e. 4 bytes)."""

        return (self.weight_count + self.bn_parameter_count) * bytes_per_value

    def feature_map_bytes(self, bytes_per_value: int = 4) -> int:
        """Bytes of one feature-map buffer (output-sized)."""

        return self.output_elements * bytes_per_value


LAYER1 = BlockGeometry(name="layer1", in_channels=16, out_channels=16, height=32, width=32)
LAYER2_2 = BlockGeometry(name="layer2_2", in_channels=32, out_channels=32, height=16, width=16)
LAYER3_2 = BlockGeometry(name="layer3_2", in_channels=64, out_channels=64, height=8, width=8)

#: Blocks the paper implements on the PL part (Section 3.1).
OFFLOADABLE_BLOCKS: Dict[str, BlockGeometry] = {
    "layer1": LAYER1,
    "layer2_2": LAYER2_2,
    "layer3_2": LAYER3_2,
}


def block_geometry(name: str) -> BlockGeometry:
    """Look up one of the offloadable block geometries by layer name."""

    try:
        return OFFLOADABLE_BLOCKS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown offloadable block '{name}'; expected one of {sorted(OFFLOADABLE_BLOCKS)}"
        ) from exc

"""Timing-closure model for the PL ODEBlock.

Section 3.1: "since only conv_x32 could not satisfy a timing constraint of
our target FPGA board (i.e., 100MHz), we mainly use conv_x16 in this paper."

The achievable clock frequency of the conv/ReLU datapath is modelled as the
reciprocal of a critical path consisting of a fixed logic delay (multiplier,
BRAM access, control) plus one adder-tree level per doubling of the MAC-unit
count.  The constants are chosen so that configurations up to conv_x16 close
timing at 100 MHz and conv_x32 does not — matching the paper's observation —
while remaining a smooth, monotone model usable in the parallelism ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable

__all__ = ["TimingModelConfig", "TimingReport", "TimingModel", "DEFAULT_TIMING_MODEL"]


@dataclass(frozen=True)
class TimingModelConfig:
    """Critical-path model constants."""

    #: Fixed delay of the MAC datapath (DSP48 multiply + BRAM read + control), ns.
    base_delay_ns: float = 5.0

    #: Additional delay per adder-tree level (log2 of the unit count), ns.
    per_level_delay_ns: float = 1.2

    #: Target clock period used by the paper (100 MHz -> 10 ns).
    target_clock_hz: float = 100e6


@dataclass(frozen=True)
class TimingReport:
    """Outcome of timing analysis for one parallelism configuration."""

    n_units: int
    critical_path_ns: float
    fmax_hz: float
    target_hz: float
    meets_timing: bool
    slack_ns: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "n_units": self.n_units,
            "critical_path_ns": self.critical_path_ns,
            "fmax_mhz": self.fmax_hz / 1e6,
            "target_mhz": self.target_hz / 1e6,
            "meets_timing": float(self.meets_timing),
            "slack_ns": self.slack_ns,
        }


class TimingModel:
    """Estimate fmax and timing closure versus MAC-unit count."""

    def __init__(self, config: TimingModelConfig | None = None) -> None:
        self.config = config or TimingModelConfig()

    def critical_path_ns(self, n_units: int) -> float:
        """Critical-path delay of the conv datapath with ``n_units`` MAC units."""

        if n_units < 1:
            raise ValueError("n_units must be >= 1")
        levels = math.log2(n_units) if n_units > 1 else 0.0
        return self.config.base_delay_ns + self.config.per_level_delay_ns * levels

    def fmax_hz(self, n_units: int) -> float:
        """Maximum achievable clock frequency."""

        return 1e9 / self.critical_path_ns(n_units)

    def analyze(self, n_units: int, target_hz: float | None = None) -> TimingReport:
        """Full timing report against the target clock (default 100 MHz)."""

        target = target_hz if target_hz is not None else self.config.target_clock_hz
        path = self.critical_path_ns(n_units)
        period = 1e9 / target
        return TimingReport(
            n_units=n_units,
            critical_path_ns=path,
            fmax_hz=self.fmax_hz(n_units),
            target_hz=target,
            meets_timing=path <= period,
            slack_ns=period - path,
        )

    def sweep(self, unit_counts: Iterable[int] = (1, 4, 8, 16, 32)) -> Dict[int, TimingReport]:
        """Timing reports for a sweep of MAC-unit counts."""

        return {n: self.analyze(n) for n in unit_counts}

    def max_units_meeting_timing(self, candidates: Iterable[int] = (1, 2, 4, 8, 16, 32, 64)) -> int:
        """Largest candidate unit count that closes timing at the target clock."""

        feasible = [n for n in candidates if self.analyze(n).meets_timing]
        if not feasible:
            raise RuntimeError("no candidate parallelism meets timing")
        return max(feasible)


#: Shared default instance (constants per the module docstring).
DEFAULT_TIMING_MODEL = TimingModel()

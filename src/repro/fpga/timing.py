"""Timing-closure model for the PL ODEBlock.

Section 3.1: "since only conv_x32 could not satisfy a timing constraint of
our target FPGA board (i.e., 100MHz), we mainly use conv_x16 in this paper."

The achievable clock frequency of the conv/ReLU datapath is modelled as the
reciprocal of a critical path consisting of a fixed logic delay (multiplier,
BRAM access, control) plus one adder-tree level per doubling of the MAC-unit
count.  The constants are chosen so that configurations up to conv_x16 close
timing at 100 MHz and conv_x32 does not — matching the paper's observation —
while remaining a smooth, monotone model usable in the parallelism ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

import numpy as np

from ..platform import BoardSpec, DEFAULT_BOARD

__all__ = [
    "TimingModelConfig",
    "TimingReport",
    "TimingModel",
    "DEFAULT_TIMING_MODEL",
    "critical_path_ns_kernel",
    "fmax_hz_kernel",
    "slack_ns_kernel",
    "meets_timing_kernel",
]


@dataclass(frozen=True)
class TimingModelConfig:
    """Critical-path model constants."""

    #: Fixed delay of the MAC datapath (DSP48 multiply + BRAM read + control), ns.
    base_delay_ns: float = 5.0

    #: Additional delay per adder-tree level (log2 of the unit count), ns.
    per_level_delay_ns: float = 1.2

    #: Target clock used by the paper (default: the reference board's PL
    #: clock — the single source of truth is ``BoardSpec.pl_clock_hz``).
    target_clock_hz: float = DEFAULT_BOARD.pl_clock_hz

    @classmethod
    def for_board(cls, board: BoardSpec) -> "TimingModelConfig":
        """The critical-path model re-targeted at a board.

        Both delay constants scale by the board's ``fabric_delay_scale``
        (UltraScale+ fabrics switch faster than the 7-series the constants
        were calibrated on) and the target becomes the board's PL clock.
        The reference board's scale is exactly 1.0, so its config equals
        the calibrated defaults bit-for-bit.
        """

        base = cls()
        return cls(
            base_delay_ns=base.base_delay_ns * board.fabric_delay_scale,
            per_level_delay_ns=base.per_level_delay_ns * board.fabric_delay_scale,
            target_clock_hz=board.pl_clock_hz,
        )


# -- array-capable kernels ---------------------------------------------------------------
#
# The batch-evaluation engine (:mod:`repro.api.batch`) evaluates timing
# closure over whole ``n_units`` x clock axes at once.  The scalar
# :class:`TimingModel` methods delegate to the same kernels, so both paths
# execute the same IEEE-754 operations and agree bit-for-bit.


def critical_path_ns_kernel(n_units, base_delay_ns, per_level_delay_ns):
    """Critical-path delay: fixed datapath delay plus one adder-tree level
    per doubling of the MAC-unit count (``n_units`` may be an array)."""

    units = np.asarray(n_units, dtype=np.float64)
    levels = np.where(units > 1.0, np.log2(np.maximum(units, 1.0)), 0.0)
    return base_delay_ns + per_level_delay_ns * levels


def fmax_hz_kernel(critical_path_ns):
    """Maximum achievable clock frequency from the critical path."""

    return 1e9 / np.asarray(critical_path_ns, dtype=np.float64)


def slack_ns_kernel(critical_path_ns, target_hz):
    """Timing slack against a target clock (positive means closure)."""

    period = 1e9 / np.asarray(target_hz, dtype=np.float64)
    return period - np.asarray(critical_path_ns, dtype=np.float64)


def meets_timing_kernel(critical_path_ns, target_hz):
    """Boolean closure mask: the critical path fits inside the target period."""

    period = 1e9 / np.asarray(target_hz, dtype=np.float64)
    return np.asarray(critical_path_ns, dtype=np.float64) <= period


@dataclass(frozen=True)
class TimingReport:
    """Outcome of timing analysis for one parallelism configuration."""

    n_units: int
    critical_path_ns: float
    fmax_hz: float
    target_hz: float
    meets_timing: bool
    slack_ns: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "n_units": self.n_units,
            "critical_path_ns": self.critical_path_ns,
            "fmax_mhz": self.fmax_hz / 1e6,
            "target_mhz": self.target_hz / 1e6,
            "meets_timing": float(self.meets_timing),
            "slack_ns": self.slack_ns,
        }

    def __str__(self) -> str:
        """One-line closure summary (the CLI ``timing`` table row)."""

        verdict = "met" if self.meets_timing else "FAILED"
        return (
            f"conv_x{self.n_units}: critical path {self.critical_path_ns:.2f} ns, "
            f"fmax {self.fmax_hz / 1e6:.1f} MHz vs target {self.target_hz / 1e6:.1f} MHz "
            f"-> {verdict} (slack {self.slack_ns:+.2f} ns)"
        )


class TimingModel:
    """Estimate fmax and timing closure versus MAC-unit count."""

    def __init__(self, config: TimingModelConfig | None = None) -> None:
        self.config = config or TimingModelConfig()

    @classmethod
    def for_board(cls, board: BoardSpec) -> "TimingModel":
        """A timing model with the board's fabric scale and clock target."""

        return cls(TimingModelConfig.for_board(board))

    def critical_path_ns(self, n_units: int) -> float:
        """Critical-path delay of the conv datapath with ``n_units`` MAC units."""

        if n_units < 1:
            raise ValueError("n_units must be >= 1")
        return float(
            critical_path_ns_kernel(
                n_units, self.config.base_delay_ns, self.config.per_level_delay_ns
            )
        )

    def fmax_hz(self, n_units: int) -> float:
        """Maximum achievable clock frequency."""

        return float(fmax_hz_kernel(self.critical_path_ns(n_units)))

    def analyze(self, n_units: int, target_hz: float | None = None) -> TimingReport:
        """Full timing report against the target clock (default 100 MHz)."""

        target = target_hz if target_hz is not None else self.config.target_clock_hz
        path = self.critical_path_ns(n_units)
        return TimingReport(
            n_units=n_units,
            critical_path_ns=path,
            fmax_hz=self.fmax_hz(n_units),
            target_hz=target,
            meets_timing=bool(meets_timing_kernel(path, target)),
            slack_ns=float(slack_ns_kernel(path, target)),
        )

    def analyze_batch(self, n_units, target_hz=None) -> Dict[str, np.ndarray]:
        """Timing closure over whole ``n_units`` / target-clock axes.

        Returns arrays (broadcast over the inputs) for the critical path,
        achievable frequency, slack and the closure mask — the column shapes
        the batch-evaluation engine consumes.  Element-for-element identical
        to :meth:`analyze` (same kernels in both paths).
        """

        units = np.asarray(n_units, dtype=np.int64)
        if units.size and units.min() < 1:
            raise ValueError("n_units must be >= 1")
        target = (
            np.asarray(target_hz, dtype=np.float64)
            if target_hz is not None
            else self.config.target_clock_hz
        )
        path = critical_path_ns_kernel(
            units, self.config.base_delay_ns, self.config.per_level_delay_ns
        )
        return {
            "critical_path_ns": path,
            "fmax_hz": fmax_hz_kernel(path),
            "slack_ns": slack_ns_kernel(path, target),
            "meets_timing": meets_timing_kernel(path, target),
        }

    def sweep(self, unit_counts: Iterable[int] = (1, 4, 8, 16, 32)) -> Dict[int, TimingReport]:
        """Timing reports for a sweep of MAC-unit counts."""

        return {n: self.analyze(n) for n in unit_counts}

    def max_units_meeting_timing(self, candidates: Iterable[int] = (1, 2, 4, 8, 16, 32, 64)) -> int:
        """Largest candidate unit count that closes timing at the target clock."""

        feasible = [n for n in candidates if self.analyze(n).meets_timing]
        if not feasible:
            raise RuntimeError("no candidate parallelism meets timing")
        return max(feasible)


#: Shared default instance (constants per the module docstring).
DEFAULT_TIMING_MODEL = TimingModel()

"""PS <-> PL data-transfer model (AXI / DMA).

Section 4.4 of the paper: "PS and PL parts are typically connected via AXI
bus and DMA transfer is used for their communication though not fully
implemented in our design.  We assume that data transfer latency between PS
and PL parts is 1 cycle per float32."

This module reproduces that assumption (1 PL clock cycle per 32-bit word) and
additionally exposes a more detailed burst model (setup latency + words per
beat) for the transfer-sensitivity ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..platform import BoardSpec, DEFAULT_BOARD
from .geometry import BlockGeometry

__all__ = ["AxiTransferConfig", "TransferEstimate", "AxiTransferModel", "transfer_cycles_kernel"]


def transfer_cycles_kernel(num_words, setup_cycles, cycles_per_word):
    """Array-capable kernel: cycles to move ``num_words`` words over AXI.

    Zero-word transfers cost nothing (no DMA descriptor is set up).  Accepts
    scalars or NumPy arrays; the scalar model method wraps it in ``float()``
    so both paths share one formula (see :mod:`repro.api.batch`).
    """

    words = np.asarray(num_words)
    return np.where(words == 0, 0.0, setup_cycles + words * cycles_per_word)


@dataclass(frozen=True)
class AxiTransferConfig:
    """Transfer model parameters."""

    #: Cycles per 32-bit word (the paper's optimistic assumption is 1).
    cycles_per_word: float = 1.0

    #: Fixed per-transfer setup cycles (DMA descriptor setup, interrupt).
    setup_cycles: float = 0.0

    #: PL clock the transfers are counted against (default: the reference
    #: board's — the single source of truth is ``BoardSpec.pl_clock_hz``).
    clock_hz: float = DEFAULT_BOARD.pl_clock_hz

    #: Bytes per transferred word.
    bytes_per_word: int = 4

    @classmethod
    def for_board(cls, board: BoardSpec) -> "AxiTransferConfig":
        """The paper's transfer assumption clocked at a board's PL clock."""

        return cls(clock_hz=board.pl_clock_hz)


@dataclass(frozen=True)
class TransferEstimate:
    """Cycles/time needed to move one block's input and output feature maps."""

    words_in: int
    words_out: int
    cycles: float
    seconds: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "words_in": self.words_in,
            "words_out": self.words_out,
            "cycles": self.cycles,
            "seconds": self.seconds,
        }


class AxiTransferModel:
    """Estimate PS<->PL transfer cost for ODEBlock offloading."""

    def __init__(self, config: AxiTransferConfig | None = None) -> None:
        self.config = config or AxiTransferConfig()

    def transfer_cycles(self, num_words: int) -> float:
        """Cycles to move ``num_words`` 32-bit words across the AXI bus."""

        if num_words < 0:
            raise ValueError("num_words must be non-negative")
        return float(
            transfer_cycles_kernel(num_words, self.config.setup_cycles, self.config.cycles_per_word)
        )

    def transfer_seconds(self, num_words: int) -> float:
        return self.transfer_cycles(num_words) / self.config.clock_hz

    def block_round_trip(
        self, geometry: BlockGeometry, include_input: bool = True, include_output: bool = True
    ) -> TransferEstimate:
        """Transfer estimate for one ODEBlock invocation.

        The input feature map is sent PS->PL and the output feature map is
        returned PL->PS.  When the same block is executed repeatedly (the
        ODENet iteration), the intermediate states can stay in BRAM, so
        callers may disable either direction.
        """

        words_in = geometry.input_elements if include_input else 0
        words_out = geometry.output_elements if include_output else 0
        cycles = self.transfer_cycles(words_in) + self.transfer_cycles(words_out)
        return TransferEstimate(
            words_in=words_in,
            words_out=words_out,
            cycles=cycles,
            seconds=cycles / self.config.clock_hz,
        )

    def weights_load(self, geometry: BlockGeometry) -> TransferEstimate:
        """One-time weight upload into BRAM (not part of the per-image time)."""

        words = geometry.weight_count + geometry.bn_parameter_count
        cycles = self.transfer_cycles(words)
        return TransferEstimate(
            words_in=words,
            words_out=0,
            cycles=cycles,
            seconds=cycles / self.config.clock_hz,
        )

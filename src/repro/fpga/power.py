"""Power and energy model of the PS + PL system.

The paper motivates FPGAs as "an energy-efficient solution" for edge
machine-learning but does not report power numbers.  This module adds the
missing energy analysis so the repository can answer the natural follow-up
question — *does the offload also save energy, or only time?* — using
publicly documented figures.  The wattages live in each board's
:class:`~repro.platform.device.PowerProfile` (PS active/idle draw, PL
static power, per-DSP/per-BRAM dynamic coefficients at the board's default
PL clock); :class:`PowerModelConfig` defaults to the reference PYNQ-Z2's
profile and :meth:`PowerModelConfig.for_board` rebinds any registered
board's.

These constants are deliberately conservative estimates (documented, not
measured); the interesting outputs are the *ratios* between configurations,
which are dominated by the execution-time model that is calibrated to the
paper.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from ..platform import BoardSpec, DEFAULT_BOARD
from .device import ResourceVector

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard (lazy import at runtime)
    from ..core.execution_model import ExecutionTimeModel, ExecutionTimeReport

__all__ = [
    "PowerModelConfig",
    "EnergyEstimate",
    "PowerModel",
    "pl_power_kernel",
    "ps_energy_with_pl_kernel",
    "energy_without_pl_kernel",
]


@dataclass(frozen=True)
class PowerModelConfig:
    """Power constants (watts) of the PS + PL system.

    The defaults come from the reference board's
    :class:`~repro.platform.device.PowerProfile`; use :meth:`for_board` for
    any other platform — board wattages live in :mod:`repro.platform`, not
    here.
    """

    ps_active_w: float = DEFAULT_BOARD.power.ps_active_w
    ps_idle_w: float = DEFAULT_BOARD.power.ps_idle_w
    pl_static_w: float = DEFAULT_BOARD.power.pl_static_w
    pl_dynamic_per_dsp_w: float = DEFAULT_BOARD.power.pl_dynamic_per_dsp_w
    pl_dynamic_per_bram_w: float = DEFAULT_BOARD.power.pl_dynamic_per_bram_w
    pl_dynamic_base_w: float = DEFAULT_BOARD.power.pl_dynamic_base_w

    @classmethod
    def for_board(cls, board: BoardSpec) -> "PowerModelConfig":
        """The power constants of a board's documented profile.

        Field names are shared with :class:`~repro.platform.device
        .PowerProfile` one-for-one and must stay in sync: a coefficient
        added to the profile needs a matching field here (the ``**asdict``
        expansion raises a TypeError at the first evaluation otherwise,
        so drift cannot pass silently).
        """

        return cls(**dataclasses.asdict(board.power))


# -- array-capable kernels ---------------------------------------------------------------
#
# The scalar methods of :class:`PowerModel` and the batch-evaluation engine
# (:mod:`repro.api.batch`) share these formulas; all inputs may be scalars or
# NumPy arrays.


def pl_power_kernel(dsp, bram, config: PowerModelConfig):
    """Static + dynamic PL power for a set of active resources."""

    return (
        config.pl_static_w
        + config.pl_dynamic_base_w
        + config.pl_dynamic_per_dsp_w * dsp
        + config.pl_dynamic_per_bram_w * bram
    )


def ps_energy_with_pl_kernel(seconds, pl_busy_seconds, config: PowerModelConfig):
    """PS energy of an offloaded prediction (active while the PL is idle)."""

    ps_busy = seconds - pl_busy_seconds
    return config.ps_active_w * ps_busy + config.ps_idle_w * pl_busy_seconds


def energy_without_pl_kernel(seconds, config: PowerModelConfig):
    """Total energy of a pure-software prediction (PS busy throughout)."""

    return config.ps_active_w * seconds


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy accounting of one prediction."""

    model: str
    depth: int
    seconds: float
    ps_energy_j: float
    pl_energy_j: float

    @property
    def total_energy_j(self) -> float:
        return self.ps_energy_j + self.pl_energy_j

    @property
    def average_power_w(self) -> float:
        return self.total_energy_j / self.seconds if self.seconds else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "model": self.model,
            "N": self.depth,
            "seconds": self.seconds,
            "ps_energy_J": self.ps_energy_j,
            "pl_energy_J": self.pl_energy_j,
            "total_energy_J": self.total_energy_j,
            "average_power_W": self.average_power_w,
        }


class PowerModel:
    """Estimate per-prediction energy with and without the PL offload."""

    def __init__(
        self,
        config: Optional[PowerModelConfig] = None,
        execution_model: Optional["ExecutionTimeModel"] = None,
        board: Optional[BoardSpec] = None,
    ) -> None:
        # Imported lazily to avoid a circular import with repro.core.
        from ..core.execution_model import ExecutionTimeModel

        if config is None:
            config = PowerModelConfig.for_board(board) if board is not None else PowerModelConfig()
        self.config = config
        self.execution_model = execution_model or ExecutionTimeModel(board or DEFAULT_BOARD)

    # -- component powers ---------------------------------------------------------

    def pl_power_w(self, resources: ResourceVector) -> float:
        """Dynamic + static PL power for a given set of active resources."""

        return float(pl_power_kernel(resources.dsp, resources.bram, self.config))

    # -- per-prediction energy -------------------------------------------------------

    def energy_without_pl(self, report: "ExecutionTimeReport") -> EnergyEstimate:
        """Pure-software execution: the PS is busy for the whole prediction."""

        seconds = report.total_without_pl
        return EnergyEstimate(
            model=report.model,
            depth=report.depth,
            seconds=seconds,
            ps_energy_j=float(energy_without_pl_kernel(seconds, self.config)),
            pl_energy_j=0.0,
        )

    def energy_with_pl(self, report: "ExecutionTimeReport", resources: ResourceVector) -> EnergyEstimate:
        """Offloaded execution.

        While the PL runs the offloaded layer the PS idles (the prediction
        flow of the paper is sequential), and the PL consumes static +
        dynamic power for the whole prediction because its clock keeps
        running.
        """

        seconds = report.total_with_pl
        pl_busy = sum(report.target_with_pl)
        ps_energy = float(ps_energy_with_pl_kernel(seconds, pl_busy, self.config))
        pl_energy = self.pl_power_w(resources) * seconds
        return EnergyEstimate(
            model=report.model,
            depth=report.depth,
            seconds=seconds,
            ps_energy_j=ps_energy,
            pl_energy_j=pl_energy,
        )

    def compare(self, model_name: str, depth: int, resources: ResourceVector) -> Dict[str, float]:
        """Energy with vs without the PL offload for one architecture."""

        report = self.execution_model.report(model_name, depth)
        return self.compare_report(report, resources)

    def compare_report(self, report: "ExecutionTimeReport", resources: ResourceVector) -> Dict[str, float]:
        """Energy comparison for an already-computed execution-time report.

        Lets callers that have a report in hand (e.g. the scenario evaluator)
        reuse it instead of re-deriving the Table-5 row.
        """

        without = self.energy_without_pl(report)
        with_pl = self.energy_with_pl(report, resources)
        return {
            "model": report.model,
            "N": report.depth,
            "energy_without_pl_J": without.total_energy_j,
            "energy_with_pl_J": with_pl.total_energy_j,
            "energy_ratio": without.total_energy_j / with_pl.total_energy_j if with_pl.total_energy_j else float("inf"),
            "time_speedup": report.overall_speedup,
        }

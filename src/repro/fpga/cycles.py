"""Cycle-count model of the PL-part ODEBlock datapath.

Section 3.1 of the paper describes a five-step pipeline (conv, BN, ReLU,
conv, BN) whose convolution/ReLU steps are executed by 1–64 multiply-add
units, and states that "their execution cycles (except for the batch
normalization) decrease in inverse proportion to the number of multiply-add
units".  It also publishes the execution cycles of layer3_2 for the
conv_x1/x4/x8/x16/x32 configurations: 23.78M, 6.07M, 3.12M, 1.64M and 0.90M
cycles.

The model here is:

* convolution + ReLU cycles  =  ``total_MACs / n_units * cycles_per_mac``
  (``cycles_per_mac`` = 5.0, the initiation interval of the multiply-add
  pipeline fitted to the published counts; parallelism is capped by the
  number of output channels, as the paper notes);
* batch-normalisation cycles =  ``bn_elements * bn_cycles_per_element``
  (``bn_cycles_per_element`` = 21, covering the mean / variance /
  square-root / normalise passes; independent of the MAC-unit count).

With those two constants the model reproduces all five published cycle
counts within ~1 % (see ``tests/fpga/test_cycles.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..platform import DEFAULT_BOARD
from .geometry import BlockGeometry

__all__ = [
    "CycleModelConfig",
    "CycleBreakdown",
    "OdeBlockCycleModel",
    "PAPER_LAYER3_2_CYCLES",
    "effective_units_kernel",
    "conv_cycles_kernel",
    "bn_cycles_kernel",
    "block_seconds_kernel",
]


#: Published execution cycles of layer3_2 for each conv_xN configuration
#: (Section 3.1 of the paper), used for calibration tests.
PAPER_LAYER3_2_CYCLES: Dict[int, float] = {
    1: 23.78e6,
    4: 6.07e6,
    8: 3.12e6,
    16: 1.64e6,
    32: 0.90e6,
}


@dataclass(frozen=True)
class CycleModelConfig:
    """Calibration constants of the PL cycle model."""

    #: Clock cycles per multiply-accumulate issued to one MAC unit.  Fitted to
    #: the published layer3_2 cycle counts (23.61e6 cycles / 4.72e6 MACs).
    cycles_per_mac: float = 5.0

    #: Clock cycles per feature-map element for one batch-normalisation pass
    #: (mean + variance + sqrt + normalise), independent of MAC-unit count.
    bn_cycles_per_element: float = 21.0

    #: Cycles per output element for the ReLU step when executed standalone.
    #: The published numbers are consistent with ReLU being fused into the
    #: convolution pipeline, so this defaults to zero.
    relu_cycles_per_element: float = 0.0

    #: Fixed per-invocation control overhead (start/finish handshake).
    invocation_overhead: float = 0.0


# -- array-capable kernels ---------------------------------------------------------------
#
# The batch-evaluation engine (:mod:`repro.api.batch`) computes these formulas
# over whole scenario axes at once, so each is exposed as a kernel accepting
# either scalars or NumPy arrays.  The scalar model methods below delegate to
# the same kernels (wrapped in ``float()``), which keeps the two paths
# bit-identical: every operation is an IEEE-754 double op in both cases.


def effective_units_kernel(n_units, out_channels):
    """MAC units usable for a block: parallelism is capped by output channels."""

    return np.minimum(n_units, out_channels)


def conv_cycles_kernel(total_macs, units, cycles_per_mac):
    """Cycles of both convolution steps given the *effective* unit count."""

    return total_macs / units * cycles_per_mac


def bn_cycles_kernel(bn_elements, bn_cycles_per_element):
    """Cycles of both batch-normalisation steps (parallelism-independent)."""

    return bn_elements * bn_cycles_per_element


def block_seconds_kernel(conv_cycles, bn_cycles, relu_cycles, overhead_cycles, clock_hz):
    """Wall-clock seconds of one block execution at a given PL clock."""

    return (conv_cycles + bn_cycles + relu_cycles + overhead_cycles) / clock_hz


@dataclass(frozen=True)
class CycleBreakdown:
    """Cycle counts of one ODEBlock execution on the PL part."""

    conv_cycles: float
    bn_cycles: float
    relu_cycles: float
    overhead_cycles: float

    @property
    def total(self) -> float:
        return self.conv_cycles + self.bn_cycles + self.relu_cycles + self.overhead_cycles

    def time_seconds(self, clock_hz: float) -> float:
        """Wall-clock execution time at the given PL clock frequency."""

        return float(
            block_seconds_kernel(
                self.conv_cycles, self.bn_cycles, self.relu_cycles, self.overhead_cycles, clock_hz
            )
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "conv_cycles": self.conv_cycles,
            "bn_cycles": self.bn_cycles,
            "relu_cycles": self.relu_cycles,
            "overhead_cycles": self.overhead_cycles,
            "total_cycles": self.total,
        }


class OdeBlockCycleModel:
    """Cycle model for a single building block executed on the PL part."""

    def __init__(self, config: CycleModelConfig | None = None) -> None:
        self.config = config or CycleModelConfig()

    def effective_units(self, geometry: BlockGeometry, n_units: int) -> int:
        """MAC-unit count actually usable for a block.

        The paper notes the parallelism "is also restricted by the number of
        output channels", so e.g. layer1 (16 channels) cannot use more than 16
        units.
        """

        if n_units < 1:
            raise ValueError("n_units must be >= 1")
        return int(effective_units_kernel(n_units, geometry.out_channels))

    def conv_cycles(self, geometry: BlockGeometry, n_units: int) -> float:
        """Cycles of both convolution steps with ``n_units`` MAC units."""

        units = self.effective_units(geometry, n_units)
        return float(conv_cycles_kernel(geometry.total_macs, units, self.config.cycles_per_mac))

    def bn_cycles(self, geometry: BlockGeometry) -> float:
        """Cycles of both batch-normalisation steps (parallelism-independent)."""

        return float(bn_cycles_kernel(geometry.bn_elements, self.config.bn_cycles_per_element))

    def relu_cycles(self, geometry: BlockGeometry, n_units: int) -> float:
        """Cycles of the ReLU step (zero when fused into the conv pipeline)."""

        if self.config.relu_cycles_per_element == 0.0:
            return 0.0
        units = self.effective_units(geometry, n_units)
        return geometry.output_elements * self.config.relu_cycles_per_element / units

    def block_cycles(self, geometry: BlockGeometry, n_units: int) -> CycleBreakdown:
        """Full cycle breakdown of one ODEBlock execution."""

        return CycleBreakdown(
            conv_cycles=self.conv_cycles(geometry, n_units),
            bn_cycles=self.bn_cycles(geometry),
            relu_cycles=self.relu_cycles(geometry, n_units),
            overhead_cycles=self.config.invocation_overhead,
        )

    def block_time_seconds(
        self, geometry: BlockGeometry, n_units: int, clock_hz: float = DEFAULT_BOARD.pl_clock_hz
    ) -> float:
        """Execution time of one block at a given PL clock."""

        return self.block_cycles(geometry, n_units).time_seconds(clock_hz)

    def parallelism_sweep(
        self, geometry: BlockGeometry, unit_counts=(1, 4, 8, 16, 32)
    ) -> Dict[int, CycleBreakdown]:
        """Cycle breakdowns over a sweep of MAC-unit counts (paper's conv_xN)."""

        return {n: self.block_cycles(geometry, n) for n in unit_counts}

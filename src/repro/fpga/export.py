"""Deployment export: pack quantised ODEBlock weights for the board.

On the real system the trained weights of the offloaded ODEBlock must be
converted to the 32-bit Q20 fixed-point format and written into the BRAM
regions of the PL bitstream (or uploaded over AXI at start-up).  This module
implements that packaging step for the simulated flow:

* :func:`export_block_weights` serialises a :class:`BlockWeights` bundle into
  a flat little-endian byte image laid out exactly like the BRAM plan of
  :func:`repro.fpga.bram.plan_block_allocation` (conv1 weights, conv2
  weights, BN parameters), preceded by a small self-describing header;
* :func:`import_block_weights` parses such an image back into float weights,
  so a round trip through the deployment format is lossless up to the Q-format
  quantisation (verified by the tests).

The same image can be consumed by :class:`repro.fpga.odeblock_hw.HardwareODEBlock`
(via ``BlockWeights``), keeping a single source of truth for the layout.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..fixedpoint import QFormat, Q20
from .geometry import BlockGeometry, block_geometry
from .odeblock_hw import BlockWeights

__all__ = [
    "WeightImageHeader",
    "WeightImageError",
    "WeightImageMagicError",
    "WeightImageVersionError",
    "export_block_weights",
    "import_block_weights",
]

#: Magic number identifying a weight image ("ODEW" little-endian).
_MAGIC = 0x4F444557
_HEADER_STRUCT = struct.Struct("<IHHHHHHB3x")
_VERSION = 1


class WeightImageError(ValueError):
    """Base class for malformed weight-image failures."""


class WeightImageMagicError(WeightImageError):
    """The image does not start with the ODEW magic number."""

    def __init__(self, found: int):
        self.found = found
        self.expected = _MAGIC
        super().__init__(
            f"not an ODEBlock weight image: magic 0x{found:08X}, "
            f"expected 0x{_MAGIC:08X} ('ODEW')"
        )


class WeightImageVersionError(WeightImageError):
    """The image's format version is not one this reader understands."""

    def __init__(self, found: int):
        self.found = found
        self.expected = _VERSION
        super().__init__(
            f"unsupported weight image version {found}, expected {_VERSION}"
        )


@dataclass(frozen=True)
class WeightImageHeader:
    """Self-describing header of an exported weight image."""

    in_channels: int
    out_channels: int
    kernel: int
    word_length: int
    fraction_bits: int
    time_concat: bool

    def pack(self) -> bytes:
        return _HEADER_STRUCT.pack(
            _MAGIC,
            _VERSION,
            self.in_channels,
            self.out_channels,
            self.kernel,
            self.word_length,
            self.fraction_bits,
            1 if self.time_concat else 0,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "WeightImageHeader":
        if len(data) < _HEADER_STRUCT.size:
            raise WeightImageError(
                f"weight image truncated: {len(data)} bytes, "
                f"the header alone is {_HEADER_STRUCT.size}"
            )
        magic, version, in_ch, out_ch, kernel, word, frac, concat = _HEADER_STRUCT.unpack(
            data[: _HEADER_STRUCT.size]
        )
        if magic != _MAGIC:
            raise WeightImageMagicError(magic)
        if version != _VERSION:
            raise WeightImageVersionError(version)
        return cls(
            in_channels=in_ch,
            out_channels=out_ch,
            kernel=kernel,
            word_length=word,
            fraction_bits=frac,
            time_concat=bool(concat),
        )

    @property
    def qformat(self) -> QFormat:
        return QFormat(self.word_length, self.fraction_bits)

    @property
    def size(self) -> int:
        return _HEADER_STRUCT.size


def _dtype_for(fmt: QFormat) -> np.dtype:
    if fmt.word_length <= 8:
        return np.dtype("<i1")
    if fmt.word_length <= 16:
        return np.dtype("<i2")
    if fmt.word_length <= 32:
        return np.dtype("<i4")
    return np.dtype("<i8")


def _conv_in_channels(weights: BlockWeights) -> Tuple[int, bool]:
    out_ch, in_ch = weights.conv1_weight.shape[:2]
    time_concat = in_ch == out_ch + 1
    return in_ch - (1 if time_concat else 0), time_concat


def export_block_weights(
    weights: BlockWeights,
    qformat: QFormat = Q20,
) -> bytes:
    """Serialise an ODEBlock's weights into the deployment byte image.

    Layout: header, conv1 weights, conv2 weights, then the BN parameters in
    the order gamma1, beta1, mean1, var1, gamma2, beta2, mean2, var2 (running
    statistics default to 0 / 1 when the bundle does not carry them).
    """

    out_ch = weights.conv1_weight.shape[0]
    kernel = weights.conv1_weight.shape[2]
    in_ch, time_concat = _conv_in_channels(weights)
    header = WeightImageHeader(
        in_channels=in_ch,
        out_channels=out_ch,
        kernel=kernel,
        word_length=qformat.word_length,
        fraction_bits=qformat.fraction_bits,
        time_concat=time_concat,
    )

    dtype = _dtype_for(qformat)
    pieces = [header.pack()]
    bn_defaults = {
        "bn1_mean": np.zeros(out_ch),
        "bn1_var": np.ones(out_ch),
        "bn2_mean": np.zeros(out_ch),
        "bn2_var": np.ones(out_ch),
    }
    arrays = [
        weights.conv1_weight,
        weights.conv2_weight,
        weights.bn1_gamma,
        weights.bn1_beta,
        weights.bn1_mean if weights.bn1_mean is not None else bn_defaults["bn1_mean"],
        weights.bn1_var if weights.bn1_var is not None else bn_defaults["bn1_var"],
        weights.bn2_gamma,
        weights.bn2_beta,
        weights.bn2_mean if weights.bn2_mean is not None else bn_defaults["bn2_mean"],
        weights.bn2_var if weights.bn2_var is not None else bn_defaults["bn2_var"],
    ]
    for array in arrays:
        fixed = qformat.to_fixed(np.asarray(array, dtype=np.float64))
        pieces.append(fixed.astype(dtype).tobytes())
    return b"".join(pieces)


def import_block_weights(image: bytes) -> Tuple[BlockWeights, WeightImageHeader]:
    """Parse a weight image back into float weights (dequantised)."""

    header = WeightImageHeader.unpack(image)
    fmt = header.qformat
    dtype = _dtype_for(fmt)
    conv_in = header.in_channels + (1 if header.time_concat else 0)
    conv_shape = (header.out_channels, conv_in, header.kernel, header.kernel)
    conv_count = int(np.prod(conv_shape))
    c = header.out_channels

    offset = header.size
    itemsize = dtype.itemsize

    def take(count: int, shape) -> np.ndarray:
        nonlocal offset
        raw = np.frombuffer(image, dtype=dtype, count=count, offset=offset)
        offset += count * itemsize
        return fmt.to_float(raw.astype(np.int64)).reshape(shape)

    conv1 = take(conv_count, conv_shape)
    conv2 = take(conv_count, conv_shape)
    bn1_gamma = take(c, (c,))
    bn1_beta = take(c, (c,))
    bn1_mean = take(c, (c,))
    bn1_var = take(c, (c,))
    bn2_gamma = take(c, (c,))
    bn2_beta = take(c, (c,))
    bn2_mean = take(c, (c,))
    bn2_var = take(c, (c,))

    weights = BlockWeights(
        conv1_weight=conv1,
        bn1_gamma=bn1_gamma,
        bn1_beta=bn1_beta,
        conv2_weight=conv2,
        bn2_gamma=bn2_gamma,
        bn2_beta=bn2_beta,
        bn1_mean=bn1_mean,
        bn1_var=bn1_var,
        bn2_mean=bn2_mean,
        bn2_var=bn2_var,
    )
    return weights, header

"""Empirical model of the paper's CIFAR-100 accuracy results (Figure 6, §4.3).

Reproducing Figure 6 faithfully would require training 7 architectures x 4
depths for 200 epochs each on CIFAR-100 — a multi-GPU-week job that is out of
scope for this CPU-only reproduction (the functional training path is instead
exercised on small synthetic data by ``examples/train_variants.py`` and the
test-suite).  This module therefore encodes the *published* accuracy results
as an explicit calibration table plus the qualitative rules stated in
Section 4.3, so that the Figure 6 benchmark can regenerate the series and the
comparisons ("who wins, by roughly what factor") the paper reports.

Every number quoted verbatim by the paper is marked ``source="paper"``;
values the paper only describes qualitatively (e.g. "unstable", "comparable
to ODENet") are interpolated and marked ``source="estimated"``.  Downstream
code can filter on the source if it only wants ground-truth anchors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["AccuracyPoint", "PAPER_ACCURACY", "accuracy_model", "figure6_series", "accuracy_table"]


@dataclass(frozen=True)
class AccuracyPoint:
    """One (architecture, depth) accuracy observation."""

    variant: str
    depth: int
    accuracy_percent: float
    stable: bool
    source: str  # "paper" (quoted in §4.3) or "estimated" (interpolated from the text)

    def as_dict(self) -> Dict[str, object]:
        return {
            "variant": self.variant,
            "N": self.depth,
            "accuracy_percent": self.accuracy_percent,
            "stable": self.stable,
            "source": self.source,
        }


def _p(variant: str, depth: int, acc: float, stable: bool = True) -> AccuracyPoint:
    return AccuracyPoint(variant, depth, acc, stable, source="paper")


def _e(variant: str, depth: int, acc: float, stable: bool = True) -> AccuracyPoint:
    return AccuracyPoint(variant, depth, acc, stable, source="estimated")


#: Calibration table.  Quoted values (source="paper"):
#:   ResNet-20 68.02, ResNet-32 70.16, ResNet-44 70.74, ResNet-56 69.09,
#:   rODENet-3-20 62.54, rODENet-3-32 64.46, Hybrid-3-44 68.58, Hybrid-3-56 68.11.
#: Everything else follows the qualitative description of §4.3:
#:   * ODENet is unstable at small N, relatively high (behind ResNet and
#:     Hybrid-3) at N=56;
#:   * rODENet-3 is stable for all N and comparable to ODENet at N=44/56;
#:   * Hybrid-3 is unstable at N=20 and tracks ResNet at large N;
#:   * rODENet-1 and rODENet-1+2 remain unstable even at N=56;
#:   * rODENet-2 sits between rODENet-1 and rODENet-3.
PAPER_ACCURACY: Tuple[AccuracyPoint, ...] = (
    _p("ResNet", 20, 68.02),
    _p("ResNet", 32, 70.16),
    _p("ResNet", 44, 70.74),
    _p("ResNet", 56, 69.09),
    _e("ODENet", 20, 52.0, stable=False),
    _e("ODENet", 32, 58.0, stable=False),
    _e("ODENet", 44, 63.0),
    _e("ODENet", 56, 66.0),
    _e("rODENet-1", 20, 50.0, stable=False),
    _e("rODENet-1", 32, 51.5, stable=False),
    _e("rODENet-1", 44, 52.5, stable=False),
    _e("rODENet-1", 56, 53.0, stable=False),
    _e("rODENet-2", 20, 58.0),
    _e("rODENet-2", 32, 59.5),
    _e("rODENet-2", 44, 60.5),
    _e("rODENet-2", 56, 61.0),
    _e("rODENet-1+2", 20, 52.0, stable=False),
    _e("rODENet-1+2", 32, 53.5, stable=False),
    _e("rODENet-1+2", 44, 54.5, stable=False),
    _e("rODENet-1+2", 56, 55.0, stable=False),
    _p("rODENet-3", 20, 62.54),
    _p("rODENet-3", 32, 64.46),
    _e("rODENet-3", 44, 65.0),
    _e("rODENet-3", 56, 65.5),
    _e("Hybrid-3", 20, 55.0, stable=False),
    _e("Hybrid-3", 32, 63.5),
    _p("Hybrid-3", 44, 68.58),
    _p("Hybrid-3", 56, 68.11),
)

_INDEX: Dict[Tuple[str, int], AccuracyPoint] = {
    (p.variant, p.depth): p for p in PAPER_ACCURACY
}


def accuracy_model(variant: str, depth: int) -> AccuracyPoint:
    """Look up the modelled paper-scale accuracy of one architecture."""

    key = (variant, depth)
    if key not in _INDEX:
        raise KeyError(
            f"no accuracy entry for {variant}-{depth}; depths covered: 20/32/44/56"
        )
    return _INDEX[key]


def figure6_series(paper_only: bool = False) -> Dict[str, Dict[int, float]]:
    """Accuracy series per variant (the Figure 6 data).

    ``paper_only=True`` restricts the output to the values quoted verbatim in
    Section 4.3.
    """

    series: Dict[str, Dict[int, float]] = {}
    for point in PAPER_ACCURACY:
        if paper_only and point.source != "paper":
            continue
        series.setdefault(point.variant, {})[point.depth] = point.accuracy_percent
    return series


def accuracy_table() -> List[Dict[str, object]]:
    """All accuracy points as dictionaries (for report rendering)."""

    return [p.as_dict() for p in PAPER_ACCURACY]


def accuracy_gap(variant: str, depth: int, baseline: str = "ResNet") -> float:
    """Accuracy loss of a variant versus the baseline at the same depth.

    Section 4.3 quotes e.g. a 5.48-point gap for rODENet-3-20 and a 2.16-point
    gap for Hybrid-3-56; this helper reproduces those comparisons.
    """

    return accuracy_model(baseline, depth).accuracy_percent - accuracy_model(variant, depth).accuracy_percent

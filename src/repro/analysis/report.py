"""Plain-text table rendering used by the examples and benchmarks."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_records", "format_series"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None) -> str:
    """Render a fixed-width text table."""

    str_rows = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_records(records: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Render a list of homogeneous dictionaries as a table."""

    if not records:
        return title or "(empty)"
    headers = list(records[0].keys())
    rows = [[record.get(h, "") for h in headers] for record in records]
    return format_table(headers, rows, title=title)


def format_series(series: Mapping[str, Mapping[int, float]], x_label: str = "N", title: str | None = None) -> str:
    """Render a {name -> {x -> y}} mapping with one row per name."""

    xs = sorted({x for values in series.values() for x in values})
    headers = [x_label] + [str(x) for x in xs]
    rows = []
    for name, values in series.items():
        rows.append([name] + [_format_cell(values.get(x, "")) for x in xs])
    return format_table(headers, rows, title=title)

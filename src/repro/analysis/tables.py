"""Row generators for every table of the paper.

Each ``tableN_records`` function returns a list of plain dictionaries (one per
table row) so that benchmarks, examples and tests can consume the data
directly, and :func:`repro.analysis.report.format_records` can print it in
the same layout as the paper.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.execution_model import TABLE5_MODELS
from ..core.parameter_model import table2_structure
from ..core.variants import SUPPORTED_DEPTHS, table4_rows
from ..fpga.device import PYNQ_Z2, ZYNQ_XC7Z020
from ..fpga.resources import ResourceEstimator, published_table3

__all__ = [
    "table1_records",
    "table2_records",
    "table3_records",
    "table4_records",
    "table5_records",
]


def table1_records() -> List[Dict[str, object]]:
    """Table 1: specification of the PYNQ-Z2 board."""

    board = PYNQ_Z2
    return [
        {"item": "OS", "value": board.os_name},
        {"item": "CPU", "value": f"ARM Cortex-A9 @ {board.ps_clock_mhz:.0f}MHz x {board.ps_cores}"},
        {"item": "DRAM", "value": f"{board.dram_mb}MB (DDR3)"},
        {"item": "FPGA", "value": f"Xilinx {board.fpga.name}"},
    ]


def table2_records() -> List[Dict[str, object]]:
    """Table 2: network structure of ODENet with per-layer parameter sizes."""

    return [entry.as_dict() for entry in table2_structure()]


def table3_records(include_estimates: bool = True) -> List[Dict[str, object]]:
    """Table 3: resource utilisation of layer1 / layer2_2 / layer3_2.

    Each record carries the paper's published Vivado counts/percentages and,
    when ``include_estimates`` is True, the analytical model's estimates side
    by side.
    """

    estimator = ResourceEstimator(ZYNQ_XC7Z020)
    published = published_table3(ZYNQ_XC7Z020)
    records: List[Dict[str, object]] = []
    for (layer, n_units), entry in published.items():
        record: Dict[str, object] = {
            "layer": layer,
            "parallelism": f"conv_{n_units}",
            "bram": int(entry["bram"]),
            "bram_pct": round(entry["bram_pct"], 2),
            "dsp": int(entry["dsp"]),
            "dsp_pct": round(entry["dsp_pct"], 2),
            "lut": int(entry["lut"]),
            "lut_pct": round(entry["lut_pct"], 2),
            "ff": int(entry["ff"]),
            "ff_pct": round(entry["ff_pct"], 2),
        }
        if include_estimates:
            est = estimator.estimate(layer, n_units=n_units).resources
            record.update(
                {
                    "model_bram": round(est.bram, 1),
                    "model_dsp": round(est.dsp, 1),
                    "model_lut": round(est.lut, 1),
                    "model_ff": round(est.ff, 1),
                }
            )
        records.append(record)
    return records


def table4_records(depth: int = 56) -> List[Dict[str, object]]:
    """Table 4: stacked blocks / executions per block for each variant."""

    rows = table4_rows(depth)
    records: List[Dict[str, object]] = []
    for layer, cells in rows.items():
        record: Dict[str, object] = {"layer": layer}
        record.update(cells)
        records.append(record)
    return records


def table5_records(
    depths: Sequence[int] = SUPPORTED_DEPTHS,
    models: Sequence[str] = TABLE5_MODELS,
    n_units: int = 16,
) -> List[Dict[str, object]]:
    """Table 5: execution times and speedups of the seven architectures.

    Delegates to the scenario engine (:class:`repro.api.Evaluator`) so the
    table, the CLI and the design-space sweeps all share one code path.  The
    import is local to keep :mod:`repro.analysis` importable before
    :mod:`repro.api` during package initialisation.
    """

    from ..api import Evaluator

    return Evaluator().table5_records(depths=depths, models=models, n_units=n_units)

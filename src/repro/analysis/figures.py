"""Series generators for the paper's figures.

* Figure 5 — total parameter size of each architecture versus depth N.
* Figure 6 — CIFAR-100 accuracy of each architecture versus depth N
  (paper-scale values from the calibrated accuracy model, optionally merged
  with measured small-scale proxy results from the functional training path).

Both functions return ``{variant -> {N -> value}}`` mappings, which
:func:`repro.analysis.report.format_series` renders as text and the
benchmarks consume directly.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from ..core.parameter_model import parameter_size_series
from ..core.variants import SUPPORTED_DEPTHS, VARIANT_NAMES
from .accuracy_model import figure6_series as _paper_accuracy_series

__all__ = ["figure5_series", "figure6_series", "merge_measured_accuracy"]


def figure5_series(
    variants: Sequence[str] = VARIANT_NAMES,
    depths: Sequence[int] = SUPPORTED_DEPTHS,
) -> Dict[str, Dict[int, float]]:
    """Parameter size (kB) per architecture and depth — the Figure 5 data."""

    return parameter_size_series(variants, depths)


def figure6_series(paper_only: bool = False) -> Dict[str, Dict[int, float]]:
    """Paper-scale accuracy (%) per architecture and depth — the Figure 6 data."""

    return _paper_accuracy_series(paper_only=paper_only)


def merge_measured_accuracy(
    measured: Mapping[str, Mapping[int, float]],
    paper_only: bool = False,
) -> Dict[str, Dict[int, Dict[str, Optional[float]]]]:
    """Combine modelled paper-scale accuracy with measured proxy accuracy.

    ``measured`` maps variant -> depth -> accuracy (fraction or percent) from
    a small-scale functional run.  The result maps variant -> depth ->
    ``{"paper": ..., "measured": ...}`` so EXPERIMENTS.md-style comparisons
    can be generated programmatically.
    """

    paper = figure6_series(paper_only=paper_only)
    merged: Dict[str, Dict[int, Dict[str, Optional[float]]]] = {}
    variants = set(paper) | set(measured)
    for variant in variants:
        merged[variant] = {}
        depths = set(paper.get(variant, {})) | set(measured.get(variant, {}))
        for depth in sorted(depths):
            merged[variant][depth] = {
                "paper": paper.get(variant, {}).get(depth),
                "measured": measured.get(variant, {}).get(depth),
            }
    return merged

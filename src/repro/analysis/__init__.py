"""Analysis and reporting: table/figure regeneration and text rendering."""

from .accuracy_model import (
    PAPER_ACCURACY,
    AccuracyPoint,
    accuracy_gap,
    accuracy_model,
    accuracy_table,
)
from .figures import figure5_series, figure6_series, merge_measured_accuracy
from .report import format_records, format_series, format_table
from .tables import (
    table1_records,
    table2_records,
    table3_records,
    table4_records,
    table5_records,
)

__all__ = [
    "AccuracyPoint",
    "PAPER_ACCURACY",
    "accuracy_model",
    "accuracy_gap",
    "accuracy_table",
    "figure5_series",
    "figure6_series",
    "merge_measured_accuracy",
    "format_table",
    "format_records",
    "format_series",
    "table1_records",
    "table2_records",
    "table3_records",
    "table4_records",
    "table5_records",
]

"""Dataset substrate: synthetic CIFAR-100 substitute, real-CIFAR loader, batching."""

from .augment import random_crop, random_horizontal_flip, standard_cifar_augment
from .cifar import cifar100_available, load_cifar100
from .loader import DataLoader
from .synthetic import SyntheticDataset, make_synthetic_cifar, train_test_split

__all__ = [
    "SyntheticDataset",
    "make_synthetic_cifar",
    "train_test_split",
    "cifar100_available",
    "load_cifar100",
    "DataLoader",
    "random_crop",
    "random_horizontal_flip",
    "standard_cifar_augment",
]

"""Mini-batch iteration over in-memory datasets."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from .augment import standard_cifar_augment
from .synthetic import SyntheticDataset

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate over a dataset in shuffled mini-batches.

    Parameters
    ----------
    dataset:
        The dataset to iterate (images + integer labels).
    batch_size:
        Mini-batch size; the final partial batch is kept by default.
    shuffle:
        Reshuffle the sample order at the start of every epoch.
    augment:
        Apply the standard CIFAR pad-crop / flip augmentation to each batch.
    drop_last:
        Drop the final batch when it is smaller than ``batch_size``.
    seed:
        Seed of the shuffling / augmentation RNG (reproducible epochs).
    """

    def __init__(
        self,
        dataset: SyntheticDataset,
        batch_size: int = 32,
        shuffle: bool = True,
        augment: bool = False,
        drop_last: bool = False,
        seed: int = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.augment = augment
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                break
            images = self.dataset.images[idx]
            labels = self.dataset.labels[idx]
            if self.augment:
                images = standard_cifar_augment(images, rng=self._rng)
            yield images, labels

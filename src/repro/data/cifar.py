"""CIFAR-100 loader with a synthetic fallback.

If the real CIFAR-100 python-pickle binaries are available on disk (the
``cifar-100-python`` directory produced by extracting the official tarball),
they are loaded and returned in the same :class:`SyntheticDataset` container
used everywhere else.  When they are not available (the usual case in this
offline reproduction environment), :func:`load_cifar100` transparently falls
back to the synthetic generator and flags the substitution on the returned
dataset's ``name``.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from .synthetic import SyntheticDataset, make_synthetic_cifar

__all__ = ["cifar100_available", "load_cifar100"]

_MEAN = np.array([0.5071, 0.4865, 0.4409]).reshape(3, 1, 1)
_STD = np.array([0.2673, 0.2564, 0.2762]).reshape(3, 1, 1)


def cifar100_available(root: str | os.PathLike = "data") -> bool:
    """Whether the extracted CIFAR-100 binaries exist under ``root``."""

    base = Path(root) / "cifar-100-python"
    return (base / "train").exists() and (base / "test").exists()


def _load_split(path: Path) -> Tuple[np.ndarray, np.ndarray]:
    with open(path, "rb") as handle:
        batch = pickle.load(handle, encoding="latin1")
    raw = np.asarray(batch["data"], dtype=np.float64)
    images = raw.reshape(-1, 3, 32, 32) / 255.0
    images = (images - _MEAN) / _STD
    labels = np.asarray(batch["fine_labels"], dtype=np.int64)
    return images, labels


def load_cifar100(
    root: str | os.PathLike = "data",
    split: str = "train",
    fallback_samples: int = 2000,
    fallback_seed: int = 0,
) -> SyntheticDataset:
    """Load CIFAR-100, or a synthetic substitute when the binaries are absent.

    Parameters
    ----------
    root:
        Directory containing ``cifar-100-python/``.
    split:
        "train" or "test".
    fallback_samples:
        Size of the synthetic substitute when falling back.
    """

    if split not in ("train", "test"):
        raise ValueError("split must be 'train' or 'test'")

    if cifar100_available(root):
        images, labels = _load_split(Path(root) / "cifar-100-python" / split)
        return SyntheticDataset(images=images, labels=labels, num_classes=100, name=f"cifar100-{split}")

    seed = fallback_seed if split == "train" else fallback_seed + 1
    dataset = make_synthetic_cifar(
        num_samples=fallback_samples,
        num_classes=100,
        image_size=32,
        channels=3,
        seed=seed,
    )
    dataset.name = f"synthetic-cifar100-{split}"
    return dataset

"""Synthetic CIFAR-100-like dataset generator.

The paper's accuracy experiments (Section 4.3 / Figure 6) use CIFAR-100.
The real dataset cannot be downloaded in this environment, so this module
provides a deterministic synthetic substitute with the same interface and
tensor shapes: RGB images of a configurable size (32x32 by default) belonging
to a configurable number of classes (100 by default).

Each class is defined by a random smooth "prototype" image (low-frequency
Gaussian field); samples are the prototype plus structured noise and a random
brightness/contrast jitter, so the classification task is learnable but not
trivial.  The generator is fully seeded, so experiments are reproducible, and
a ``difficulty`` knob controls the noise level (useful for quick tests).

The substitution is documented in DESIGN.md: the synthetic data exercises the
identical training/evaluation code path (same architectures, solvers,
optimiser and schedule); absolute accuracy values are not comparable to
CIFAR-100, but relative behaviour between architectures is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["SyntheticDataset", "make_synthetic_cifar", "train_test_split"]


def _smooth_field(rng: np.random.Generator, channels: int, size: int, smoothness: int = 4) -> np.ndarray:
    """A low-frequency random field, used as a class prototype."""

    coarse = rng.normal(0.0, 1.0, size=(channels, smoothness, smoothness))
    # Bilinear-ish upsampling via repetition + box blur to keep it dependency-free.
    reps = int(np.ceil(size / smoothness))
    up = np.repeat(np.repeat(coarse, reps, axis=1), reps, axis=2)[:, :size, :size]
    kernel = 3
    padded = np.pad(up, ((0, 0), (kernel, kernel), (kernel, kernel)), mode="edge")
    out = np.zeros_like(up)
    count = 0
    for dy in range(-kernel, kernel + 1):
        for dx in range(-kernel, kernel + 1):
            out += padded[:, kernel + dy : kernel + dy + size, kernel + dx : kernel + dx + size]
            count += 1
    return out / count


@dataclass
class SyntheticDataset:
    """An in-memory image-classification dataset."""

    images: np.ndarray  # (N, C, H, W) float32-ish in [-1, 1] roughly
    labels: np.ndarray  # (N,) int64
    num_classes: int
    name: str = "synthetic-cifar"

    def __len__(self) -> int:
        return len(self.labels)

    def __getitem__(self, index) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.images.shape[1:])  # type: ignore[return-value]

    def subset(self, indices) -> "SyntheticDataset":
        indices = np.asarray(indices)
        return SyntheticDataset(
            images=self.images[indices],
            labels=self.labels[indices],
            num_classes=self.num_classes,
            name=self.name,
        )

    def class_counts(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.num_classes)


def make_synthetic_cifar(
    num_samples: int = 1000,
    num_classes: int = 100,
    image_size: int = 32,
    channels: int = 3,
    difficulty: float = 0.5,
    seed: int = 0,
) -> SyntheticDataset:
    """Generate a synthetic CIFAR-like dataset.

    Parameters
    ----------
    num_samples:
        Total number of images (balanced across classes as evenly as possible).
    num_classes:
        Number of classes (100 to mirror CIFAR-100; tests use 4–10).
    image_size, channels:
        Spatial size and channel count of each image.
    difficulty:
        Noise-to-signal ratio in [0, ~2]; higher is harder.
    seed:
        Seed for full reproducibility.
    """

    if num_samples < num_classes:
        raise ValueError("need at least one sample per class")
    rng = np.random.default_rng(seed)

    prototypes = np.stack(
        [_smooth_field(rng, channels, image_size) for _ in range(num_classes)], axis=0
    )
    # Normalise prototypes to unit RMS so difficulty is meaningful.
    rms = np.sqrt(np.mean(prototypes ** 2, axis=(1, 2, 3), keepdims=True))
    prototypes = prototypes / np.maximum(rms, 1e-8)

    labels = np.arange(num_samples) % num_classes
    rng.shuffle(labels)

    noise = rng.normal(0.0, difficulty, size=(num_samples, channels, image_size, image_size))
    gain = rng.uniform(0.8, 1.2, size=(num_samples, 1, 1, 1))
    bias = rng.uniform(-0.1, 0.1, size=(num_samples, 1, 1, 1))
    images = prototypes[labels] * gain + noise + bias

    return SyntheticDataset(
        images=images.astype(np.float64),
        labels=labels.astype(np.int64),
        num_classes=num_classes,
    )


def train_test_split(
    dataset: SyntheticDataset, test_fraction: float = 0.2, seed: int = 0
) -> Tuple[SyntheticDataset, SyntheticDataset]:
    """Split a dataset into train and test subsets (shuffled, seeded)."""

    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    indices = rng.permutation(len(dataset))
    n_test = max(1, int(round(len(dataset) * test_fraction)))
    test_idx, train_idx = indices[:n_test], indices[n_test:]
    return dataset.subset(train_idx), dataset.subset(test_idx)

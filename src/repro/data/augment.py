"""Data augmentation used by the CIFAR training recipe.

The standard CIFAR augmentation — 4-pixel zero padding followed by a random
32x32 crop, plus random horizontal flips — is what ResNet-style training
recipes (including the paper's baselines) rely on.  The functions operate on
NCHW batches of NumPy arrays and are fully seeded.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["random_crop", "random_horizontal_flip", "standard_cifar_augment"]


def random_crop(
    images: np.ndarray, padding: int = 4, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Randomly crop each image after zero-padding ``padding`` pixels per side."""

    rng = rng or np.random.default_rng()
    n, c, h, w = images.shape
    padded = np.pad(
        images, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
    )
    out = np.empty_like(images)
    tops = rng.integers(0, 2 * padding + 1, size=n)
    lefts = rng.integers(0, 2 * padding + 1, size=n)
    for i in range(n):
        out[i] = padded[i, :, tops[i] : tops[i] + h, lefts[i] : lefts[i] + w]
    return out


def random_horizontal_flip(
    images: np.ndarray, probability: float = 0.5, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Flip each image horizontally with the given probability."""

    rng = rng or np.random.default_rng()
    flips = rng.random(images.shape[0]) < probability
    out = images.copy()
    out[flips] = out[flips, :, :, ::-1]
    return out


def standard_cifar_augment(
    images: np.ndarray, rng: Optional[np.random.Generator] = None, padding: int = 4
) -> np.ndarray:
    """Pad-crop followed by random horizontal flip (the usual CIFAR recipe)."""

    rng = rng or np.random.default_rng()
    return random_horizontal_flip(random_crop(images, padding=padding, rng=rng), rng=rng)

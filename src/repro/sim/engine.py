"""Discrete-event simulation kernel: :class:`Event`, :class:`Process`, :class:`Simulator`.

The analytical models answer "how long does *one* prediction take"; the
simulator answers what happens when *many* predictions contend for the PS
core, the AXI bus and the PL accelerators.  This module is the substrate: a
minimal, deterministic event-queue kernel in the style of SimPy (and of the
propagation loop in fmdtools), with exactly the three primitives the serving
models need:

* :class:`Event` — a one-shot occurrence carrying an optional value.  Other
  parties register callbacks; :meth:`Event.succeed` schedules the firing at
  the current simulated time.
* :class:`Process` — a Python generator driven by the simulator.  Each
  ``yield`` hands back an event to wait for (a :class:`Timeout`, a resource
  grant, another process); the generator resumes with the event's value when
  it fires.  A process is itself an event that succeeds with the generator's
  return value, so processes can wait on each other.
* :class:`Simulator` — the clock and the event queue.  Events are ordered by
  ``(time, insertion sequence)``: the clock never moves backwards, and ties
  fire in FIFO order, which is what makes runs bit-reproducible (the
  hypothesis suite in ``tests/sim/test_engine.py`` pins both properties).

The kernel is intentionally tiny — no interrupts, no event failure values,
no real-time pacing — because every serving scenario in :mod:`repro.sim` is
expressible with timeouts, FIFO resources and ``all_of`` joins, and a small
kernel is a fast one (see ``benchmarks/bench_sim_throughput.py``).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable, Generator, List, Optional, Sequence

__all__ = ["Event", "Timeout", "Process", "Simulator"]


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; :meth:`succeed` marks it triggered and puts it
    on the queue at the current time; when the simulator pops it, it becomes
    *processed* and its callbacks run (in registration order) with the
    event's value.
    """

    __slots__ = ("sim", "callbacks", "triggered", "processed", "_value")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: List[Callable[[object], None]] = []
        self.triggered = False
        self.processed = False
        self._value: object = None

    @property
    def value(self) -> object:
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event; it fires at the current simulated time."""

        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self._value = value
        self.sim._push(self)
        return self

    def add_callback(self, fn: Callable[[object], None]) -> None:
        """Run ``fn(value)`` when the event fires.

        Registering on an already-processed event still works: the callback
        fires at the current time (a fresh queue entry), so waiting on e.g. a
        process that already finished does not deadlock.
        """

        if self.processed:
            late = Event(self.sim)
            late.callbacks.append(fn)
            late.succeed(self._value)
        else:
            self.callbacks.append(fn)

    def _fire(self) -> None:
        self.processed = True
        callbacks, self.callbacks = self.callbacks, []
        for fn in callbacks:
            fn(self._value)


class Timeout(Event):
    """An event that fires a fixed delay after its creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: object = None) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be non-negative (got {delay})")
        super().__init__(sim)
        self.delay = delay
        self.triggered = True
        self._value = value
        sim._push(self, delay)


class Process(Event):
    """A generator-based process; also the event of its own completion.

    ``delay`` schedules the first resume at ``now + delay`` instead of "now"
    — one queue entry where an explicit start-event + first-yield timeout
    pair would cost two (the request-spawning fast path).  ``_sink``, when
    given, collects the start entry instead of pushing it (the bulk
    scheduling hook of :meth:`Simulator.process_batch`).
    """

    __slots__ = ("generator",)

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator,
        delay: float = 0.0,
        _sink: Optional[List] = None,
    ) -> None:
        if delay < 0:
            raise ValueError(f"process start delay must be non-negative (got {delay})")
        super().__init__(sim)
        self.generator = generator
        # Kick off at the scheduled time (FIFO-ordered with everything else
        # scheduled for that instant), not synchronously inside the caller.
        start = Event(sim)
        start.callbacks.append(self._resume)
        start.triggered = True
        if _sink is None:
            sim._push(start, delay)
        else:
            _sink.append((sim.now + delay, next(sim._seq), start))

    def _resume(self, value: object) -> None:
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process yielded {target!r}; processes must yield Event objects"
            )
        target.add_callback(self._resume)


class Simulator:
    """The event queue and the simulated clock.

    ``now`` only moves forward, and events scheduled for the same instant
    fire in the order they were scheduled (a global insertion sequence breaks
    ties), so a simulation is a pure function of its inputs.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self.events_processed: int = 0
        self._heap: List = []
        self._seq = count()

    # -- scheduling --------------------------------------------------------------------

    def _push(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), event))

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def process_at(self, delay: float, generator: Generator) -> Process:
        """Spawn a process whose first resume happens at ``now + delay``.

        Equivalent to a process opening with ``yield sim.timeout(delay)``
        but one queue entry cheaper — the arrival fast path.
        """

        return Process(self, generator, delay=delay)

    def process_batch(self, pairs: Sequence) -> List[Process]:
        """Spawn many delayed processes with one bulk heap rebuild.

        ``pairs`` is an iterable of ``(delay, generator)``.  Start entries
        are collected and the heap is rebuilt once (O(n + heap) instead of n
        pushes at O(log) each) — the event-batching entry point the runner
        uses to schedule whole arrival processes.  Sequence numbers are
        drawn in input order, so FIFO tie-breaking is identical to spawning
        the processes one by one.
        """

        entries: List = []
        procs = [Process(self, gen, delay, _sink=entries) for delay, gen in pairs]
        if entries:
            self._heap.extend(entries)
            heapq.heapify(self._heap)
        return procs

    def schedule(self, delay: float, fn: Callable[[], None]) -> Timeout:
        """Run ``fn()`` at ``now + delay`` (a one-shot timed callback).

        The hook the fault injector uses: a fault mode's injection and
        clearing are ordinary timed events on the one queue, so they
        interleave deterministically with every other event (FIFO tie-break
        included) and keep fault runs bit-reproducible.
        """

        timed = self.timeout(delay)
        timed.add_callback(lambda _value: fn())
        return timed

    def all_of(self, events: Sequence[Event]) -> Event:
        """An event firing once every given event has fired.

        Its value is the list of the constituent values in input order
        (events already processed contribute immediately).
        """

        done = Event(self)
        events = list(events)
        if not events:
            done.succeed([])
            return done
        remaining = [len(events)]
        values: List[object] = [None] * len(events)

        def arm(index: int, event: Event) -> None:
            def on_fire(value: object) -> None:
                values[index] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.succeed(values)

            event.add_callback(on_fire)

        for i, ev in enumerate(events):
            arm(i, ev)
        return done

    # -- execution ---------------------------------------------------------------------

    def peek(self) -> Optional[float]:
        """Timestamp of the next queued event (``None`` when empty)."""

        return self._heap[0][0] if self._heap else None

    def step(self) -> None:
        """Pop and fire the next event, advancing the clock to it."""

        time, _, event = heapq.heappop(self._heap)
        assert time >= self.now, "simulated clock may never go backwards"
        self.now = time
        self.events_processed += 1
        event._fire()

    def run(self, until: Optional[float] = None) -> None:
        """Fire events until the queue is empty (or the clock would pass ``until``).

        With ``until`` given, events at exactly ``until`` still fire; the
        first event strictly beyond it stays queued and the clock stops at
        ``until``.

        The loop inlines :meth:`step` and :meth:`Event._fire` with local
        bindings — this is the hottest code in the whole package (see
        ``benchmarks/bench_sim_throughput.py``), and the heap invariant
        already guarantees the clock monotonicity ``step`` asserts.
        """

        if until is not None and until < self.now:
            raise ValueError(f"cannot run until {until}: clock is already at {self.now}")
        heap = self._heap
        pop = heapq.heappop
        processed = self.events_processed
        try:
            if until is None:
                while heap:
                    time, _, event = pop(heap)
                    self.now = time
                    processed += 1
                    event.processed = True
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        value = event._value
                        for fn in callbacks:
                            fn(value)
            else:
                while heap:
                    if heap[0][0] > until:
                        self.now = until
                        return
                    time, _, event = pop(heap)
                    self.now = time
                    processed += 1
                    event.processed = True
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        value = event._value
                        for fn in callbacks:
                            fn(value)
                self.now = until
        finally:
            self.events_processed = processed

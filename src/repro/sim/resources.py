"""Resource primitives of the PS + PL serving system.

Transaction-level models of the pieces requests contend for:

* :class:`Resource` — a counted FIFO resource (the PS core pool is one, with
  ``capacity`` = cores).  Grants are strictly first-come-first-served, with
  ties broken by submission order, so simulations are deterministic.
* :class:`AxiBus` — the PS<->PL interconnect.  Each DMA burst occupies one of
  ``channels`` for the transfer time given by the *same*
  :class:`~repro.fpga.axi.AxiTransferModel` the analytic latency model uses,
  so a contention-free simulation reproduces the analytic numbers exactly
  and a loaded one shows genuine burst-level queueing.
* :class:`Accelerator` — one replicated PL ODEBlock instance.  It does not
  queue by itself (the :class:`~repro.sim.policies.Dispatcher` owns the
  queues); it carries the replica's resource footprint (for the energy
  model) and its busy-time accounting.

Every primitive keeps a :class:`LevelMonitor` — a time-weighted integral of
its occupancy/queue depth — which is what :mod:`repro.sim.metrics` turns into
utilisation and queue-depth statistics.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generator, Optional

from ..fpga.axi import AxiTransferModel
from ..fpga.device import ResourceVector
from .engine import Event, Simulator

__all__ = ["LevelMonitor", "Resource", "AxiBus", "Accelerator"]


class LevelMonitor:
    """Time-weighted statistics of an integer level (occupancy, queue depth)."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._level = 0
        self._since = sim.now
        self.integral = 0.0
        self.peak = 0

    @property
    def level(self) -> int:
        return self._level

    def set(self, level: int) -> None:
        now = self.sim.now
        self.integral += self._level * (now - self._since)
        self._since = now
        self._level = level
        self.peak = max(self.peak, level)

    def add(self, delta: int) -> None:
        self.set(self._level + delta)

    def finalize(self, horizon: Optional[float] = None) -> float:
        """Close the integral at ``horizon`` (default: now) and return it."""

        end = self.sim.now if horizon is None else horizon
        self.integral += self._level * (end - self._since)
        self._since = end
        return self.integral

    def reading(self) -> float:
        """The integral up to *now*, without closing it (no mutation).

        Lets a probe process snapshot the monitor mid-run — the warm-up
        trimming of :mod:`repro.sim.metrics` reads every monitor at
        ``warmup_s`` and differences against the final integral.
        """

        return self.integral + self._level * (self.sim.now - self._since)

    def mean(self, horizon: float) -> float:
        return self.integral / horizon if horizon > 0 else 0.0


class Resource:
    """A counted resource with a strict-FIFO wait queue."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be a positive integer (got {capacity})")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.users = 0
        self._waiting: Deque[Event] = deque()
        self.busy = LevelMonitor(sim)
        self.queue_depth = LevelMonitor(sim)

    def request(self) -> Event:
        """An event that fires when one unit of the resource is granted."""

        grant = self.sim.event()
        if self.users < self.capacity:
            self.users += 1
            self.busy.set(self.users)
            grant.succeed(None)
        else:
            self._waiting.append(grant)
            self.queue_depth.set(len(self._waiting))
        return grant

    def set_capacity(self, capacity: int) -> None:
        """Resize the unit pool mid-run (the PS-core-loss fault hook).

        Shrinking never preempts: current users finish their holds, and the
        pool drains down to the new capacity as they release.  Growing grants
        the freed units straight to the longest-waiting requests.
        """

        if capacity < 1:
            raise ValueError(f"capacity must be a positive integer (got {capacity})")
        self.capacity = capacity
        while self._waiting and self.users < self.capacity:
            self.users += 1
            self.busy.set(self.users)
            grant = self._waiting.popleft()
            self.queue_depth.set(len(self._waiting))
            grant.succeed(None)

    def release(self) -> None:
        """Return one unit; the longest-waiting request (if any) is granted."""

        if self.users <= 0:
            raise RuntimeError(f"release of idle resource '{self.name}'")
        if self._waiting and self.users <= self.capacity:
            # Hand the unit straight to the next waiter: occupancy stays
            # constant and the grant fires at the current time, after any
            # event already queued "now" (FIFO tie-break).  (The users check
            # only bites after a mid-run capacity shrink, when over-capacity
            # holds must drain instead of being handed on.)
            grant = self._waiting.popleft()
            self.queue_depth.set(len(self._waiting))
            grant.succeed(None)
        else:
            self.users -= 1
            self.busy.set(self.users)

    def use(self, seconds: float) -> Generator:
        """Process fragment: acquire one unit, hold it, release it."""

        yield self.request()
        yield self.sim.timeout(seconds)
        self.release()

    def utilization(self, horizon: float) -> float:
        """Mean occupancy over ``horizon``, as a fraction of capacity."""

        if horizon <= 0:
            return 0.0
        return self.busy.mean(horizon) / self.capacity


class AxiBus(Resource):
    """The PS<->PL AXI interconnect: ``channels`` concurrent DMA bursts."""

    def __init__(
        self,
        sim: Simulator,
        channels: int = 1,
        model: Optional[AxiTransferModel] = None,
        name: str = "axi",
    ) -> None:
        super().__init__(sim, capacity=channels, name=name)
        self.model = model or AxiTransferModel()
        self.words_moved = 0
        self.transfers = 0
        #: Multiplier on every burst's transfer time (1.0 = nominal).  The
        #: AXI-degradation fault mode sets this to the ratio of degraded to
        #: nominal cycles-per-word (see ``repro.faults.modes.AxiDegradation``).
        self.slowdown = 1.0

    def degrade(self, slowdown: float) -> float:
        """Set the burst-time multiplier; returns the previous value.

        The return value is the clear token: a fault mode restores the bus by
        passing back what :meth:`degrade` returned at injection.
        """

        if slowdown <= 0:
            raise ValueError(f"slowdown must be positive (got {slowdown})")
        previous = self.slowdown
        self.slowdown = slowdown
        return previous

    def transfer(self, words: int, seconds: Optional[float] = None) -> Generator:
        """Process fragment: move ``words`` over the bus (one DMA burst).

        ``seconds`` lets the caller price the burst with the model that built
        its service plan (the dispatcher passes the :class:`PlExecution`'s
        stored transfer times, keeping the simulated DMA and the analytic
        decomposition consistent by construction); by default the bus's own
        transfer model is used.  Zero-word transfers complete immediately
        without touching the bus, mirroring
        :func:`repro.fpga.axi.transfer_cycles_kernel`.
        """

        if words == 0:
            return
        self.words_moved += words
        self.transfers += 1
        seconds = self.model.transfer_seconds(words) if seconds is None else seconds
        if self.slowdown != 1.0:
            seconds = seconds * self.slowdown
        yield from self.use(seconds)

    def as_dict(self) -> Dict[str, float]:
        return {
            "channels": self.capacity,
            "transfers": self.transfers,
            "words_moved": self.words_moved,
        }


class Accelerator:
    """One PL ODEBlock replica (busy accounting + resource footprint)."""

    def __init__(
        self,
        sim: Simulator,
        index: int,
        resources: Optional[ResourceVector] = None,
    ) -> None:
        self.sim = sim
        self.index = index
        self.name = f"pl{index}"
        self.resources = resources or ResourceVector()
        self.busy = LevelMonitor(sim)
        # Downtime accounting for the replica-death fault mode: level 1 while
        # the replica is dead, so the integral is seconds of downtime (the
        # energy model credits back the dead replica's PL power draw).
        self.down = LevelMonitor(sim)
        self.served = 0

    def utilization(self, horizon: float) -> float:
        return self.busy.mean(horizon) if horizon > 0 else 0.0

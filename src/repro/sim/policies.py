"""Serving policies: how PL block invocations are dispatched onto replicas.

The :class:`Dispatcher` owns the replicated PL accelerators and the queues in
front of them; a :class:`DispatchPolicy` decides which queue an invocation
joins and how much work an idle replica grabs at once:

* ``fifo`` — one shared queue, any free replica serves the oldest waiting
  invocation (work-conserving, the baseline discipline).
* ``batched`` — the shared queue again, but a free replica drains up to
  ``batch_size`` invocations in one go and pipelines them: while invocation
  *i* computes, the bus writes back *i−1*'s output and prefetches *i+1*'s
  input (double-buffered BRAM).  A batch of one degenerates to ``fifo``
  exactly, so the policy costs nothing at low load and amortises DMA
  exposure at high load.
* ``round_robin`` — invocations are pinned to replicas in rotation
  (request-independent, cache/BRAM-friendly, but not work-conserving: a
  pinned invocation waits for *its* replica even if another is idle).

Replica counts can be sized from the chip budget with :func:`max_replicas`:
the largest number of copies of the scenario's offload-target datapath
(:class:`~repro.fpga.resources.ResourceEstimator` footprint) that fit the
board's FPGA alongside each other.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, List, Optional, Sequence

from ..api.evaluator import Evaluator
from ..api.scenario import Scenario
from .engine import Event, Simulator
from .resources import Accelerator, AxiBus, LevelMonitor
from .workload import PlExecution, Request

__all__ = [
    "POLICY_NAMES",
    "Execution",
    "DispatchPolicy",
    "FifoPolicy",
    "BatchedPolicy",
    "RoundRobinPolicy",
    "Dispatcher",
    "make_policy",
    "max_replicas",
]

#: Supported dispatch-policy names.
POLICY_NAMES = ("fifo", "batched", "round_robin")


class Execution:
    """One queued PL block invocation (a request's offloaded segment)."""

    __slots__ = ("request", "plx", "done", "submitted")

    def __init__(self, request: Request, plx: PlExecution, done: Event) -> None:
        self.request = request
        self.plx = plx
        self.done = done
        self.submitted = 0.0


class DispatchPolicy:
    """Queue-placement and batch-formation strategy (stateless base)."""

    name = "base"
    batch_size = 1

    def put(self, dispatcher: "Dispatcher", execution: Execution) -> None:
        dispatcher.shared.append(execution)

    def take(self, dispatcher: "Dispatcher", accelerator: Accelerator) -> List[Execution]:
        queue = dispatcher.shared
        batch: List[Execution] = []
        while queue and len(batch) < self.batch_size:
            batch.append(queue.popleft())
        return batch

    def wake_candidates(
        self, dispatcher: "Dispatcher", execution: Execution
    ) -> Sequence[Accelerator]:
        return dispatcher.accelerators


class FifoPolicy(DispatchPolicy):
    """Shared queue, one invocation at a time, any free replica."""

    name = "fifo"


class BatchedPolicy(DispatchPolicy):
    """Shared queue; a free replica drains up to ``batch_size`` invocations.

    Greedy batching: a replica never waits for a batch to fill — it takes
    whatever is queued (up to the cap), so a lone request is served exactly
    like ``fifo`` and batches only form when load makes them form.
    """

    name = "batched"

    def __init__(self, batch_size: int = 4) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be a positive integer (got {batch_size})")
        self.batch_size = batch_size


class RoundRobinPolicy(DispatchPolicy):
    """Invocations pinned to replicas in rotation (per-replica queues)."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def put(self, dispatcher: "Dispatcher", execution: Execution) -> None:
        n = len(dispatcher.accelerators)
        for _ in range(n):
            index = self._next % n
            self._next += 1
            if dispatcher.alive[index]:
                dispatcher.per_replica[index].append(execution)
                return
        # Callers guarantee alive_count > 0 (submit() and fail_replica()
        # route to the PS fallback before calling put on a dead fleet).
        raise RuntimeError("round_robin put with no live replica")

    def take(self, dispatcher: "Dispatcher", accelerator: Accelerator) -> List[Execution]:
        queue = dispatcher.per_replica[accelerator.index]
        return [queue.popleft()] if queue else []

    def wake_candidates(
        self, dispatcher: "Dispatcher", execution: Execution
    ) -> Sequence[Accelerator]:
        # put() already advanced the counter, so the execution sits in the
        # previous slot's queue.
        index = (self._next - 1) % len(dispatcher.accelerators)
        return (dispatcher.accelerators[index],)


def make_policy(name: str, batch_size: int = 4) -> DispatchPolicy:
    """Construct a policy by name (the CLI/SimScenario entry point)."""

    if name == "fifo":
        return FifoPolicy()
    if name == "batched":
        return BatchedPolicy(batch_size=batch_size)
    if name == "round_robin":
        return RoundRobinPolicy()
    raise ValueError(f"unknown policy '{name}'; expected one of {POLICY_NAMES}")


class Dispatcher:
    """Routes PL invocations to replicas and runs each replica's service loop."""

    def __init__(
        self,
        sim: Simulator,
        bus: AxiBus,
        accelerators: Sequence[Accelerator],
        policy: DispatchPolicy,
    ) -> None:
        if not accelerators:
            raise ValueError("dispatcher needs at least one accelerator replica")
        self.sim = sim
        self.bus = bus
        self.accelerators = list(accelerators)
        self.policy = policy
        self.shared: Deque[Execution] = deque()
        self.per_replica: List[Deque[Execution]] = [deque() for _ in self.accelerators]
        self.pending = LevelMonitor(sim)
        self.batch_sizes: List[int] = []
        self._idle: List[Optional[Event]] = [None] * len(self.accelerators)
        # -- degraded-mode state (inert in nominal runs) -------------------------------
        #: Liveness of each replica; fail_replica()/revive_replica() flip it.
        self.alive: List[bool] = [True] * len(self.accelerators)
        self.alive_count = len(self.accelerators)
        #: Executions currently being served per replica (re-dispatch victims).
        self._inflight: List[List[Execution]] = [[] for _ in self.accelerators]
        #: Invocations drained off a dead replica and queued again elsewhere.
        self.redispatched = 0
        #: Invocations served by the PS software fallback (dead fleet).
        self.fallback_served = 0
        #: Installed by the runner: ``ps_fallback(execution)`` runs the
        #: invocation on a PS core when no replica survives.
        self.ps_fallback = None
        #: Installed by the DMA-corruption fault mode: ``corruptor(request)``
        #: is called once per input DMA burst while the fault is active.
        self.corruptor = None
        for acc in self.accelerators:
            sim.process(self._worker(acc))

    # -- submission --------------------------------------------------------------------

    @property
    def queued(self) -> int:
        return len(self.shared) + sum(len(q) for q in self.per_replica)

    def submit(self, request: Request, plx: PlExecution) -> Event:
        """Queue one block invocation; the returned event fires when its
        output feature map is back in PS memory."""

        execution = Execution(request, plx, self.sim.event())
        execution.submitted = self.sim.now
        if self.alive_count == 0:
            self._fallback(execution)
            return execution.done
        self.policy.put(self, execution)
        self.pending.set(self.queued)
        self._wake(execution)
        return execution.done

    def _wake(self, execution: Execution) -> None:
        for acc in self.policy.wake_candidates(self, execution):
            if not self.alive[acc.index]:
                continue
            wake = self._idle[acc.index]
            if wake is not None:
                self._idle[acc.index] = None
                wake.succeed(None)
                break

    # -- fault hooks -------------------------------------------------------------------

    def fail_replica(self, index: int) -> None:
        """Kill replica ``index``: drain its work and re-dispatch it.

        In-flight invocations (their results are lost with the replica) and
        anything pinned to its queue are resubmitted to the surviving
        replicas as of *now*; when none survive, everything queued anywhere
        flushes to the PS software fallback.  DMA bursts already on the bus
        run to completion — the worker aborts at its next resume point, so
        bus channels never leak.
        """

        if not self.alive[index]:
            return
        acc = self.accelerators[index]
        self.alive[index] = False
        self.alive_count -= 1
        acc.busy.set(0)
        acc.down.set(1)
        self._idle[index] = None
        victims = [e for e in self._inflight[index] if not e.done.triggered]
        self._inflight[index] = []
        victims.extend(self.per_replica[index])
        self.per_replica[index].clear()
        if self.alive_count == 0:
            victims.extend(self.shared)
            self.shared.clear()
        self.redispatched += len(victims)
        for execution in victims:
            execution.submitted = self.sim.now
            if self.alive_count == 0:
                self._fallback(execution)
            else:
                self.policy.put(self, execution)
                self._wake(execution)
        self.pending.set(self.queued)

    def revive_replica(self, index: int) -> None:
        """Bring replica ``index`` back (a fresh worker starts immediately)."""

        if self.alive[index]:
            return
        acc = self.accelerators[index]
        self.alive[index] = True
        self.alive_count += 1
        acc.down.set(0)
        self.sim.process(self._worker(acc))

    def _fallback(self, execution: Execution) -> None:
        if self.ps_fallback is None:
            raise RuntimeError(
                "all accelerator replicas are dead and no PS fallback is installed"
            )
        self.fallback_served += 1
        self.ps_fallback(execution)

    # -- replica service loop ----------------------------------------------------------

    def _worker(self, acc: Accelerator) -> Generator:
        while self.alive[acc.index]:
            batch = self.policy.take(self, acc)
            if not batch:
                wake = self.sim.event()
                self._idle[acc.index] = wake
                yield wake
                if not self.alive[acc.index]:
                    return
                continue
            self.pending.set(self.queued)
            self.batch_sizes.append(len(batch))
            for execution in batch:
                execution.request.pl_wait += self.sim.now - execution.submitted
            self._inflight[acc.index] = list(batch)
            acc.busy.set(1)
            yield from self._serve(acc, batch)
            if not self.alive[acc.index]:
                # Killed mid-batch: fail_replica() already zeroed the busy
                # monitor and re-dispatched the unfinished invocations.
                return
            self._inflight[acc.index] = []
            acc.busy.set(0)
            acc.served += len(batch)

    def _serve(self, acc: Accelerator, batch: List[Execution]) -> Generator:
        """Serve a batch back-to-back with double-buffered DMA.

        While invocation *i* computes, a concurrent DMA process writes back
        invocation *i−1*'s output and prefetches invocation *i+1*'s input; an
        invocation's completion event fires when its *output* transfer lands.
        A batch of one reduces to the strictly sequential
        (DMA in, compute, DMA out) transaction of the analytic model.

        Every completion is routed through :meth:`_finish`, which is a no-op
        once the replica died (the invocation was re-dispatched; letting the
        orphaned service finish it would double-fire its ``done`` event), and
        the generator aborts at the first resume point after a kill.
        """

        sim = self.sim
        yield from self._transfer_in(batch[0])
        if not self.alive[acc.index]:
            return
        previous: Optional[Execution] = None
        for i, execution in enumerate(batch):
            upcoming = batch[i + 1] if i + 1 < len(batch) else None
            compute = sim.process(self._compute(execution))
            overlap = sim.process(self._overlap_dma(acc, previous, upcoming))
            yield sim.all_of((compute, overlap))
            if not self.alive[acc.index]:
                return
            previous = execution
        yield from self._transfer_out(previous)
        self._finish(acc, previous)

    def _finish(self, acc: Accelerator, execution: Execution) -> None:
        if self.alive[acc.index] and not execution.done.triggered:
            execution.done.succeed(None)

    def _compute(self, execution: Execution) -> Generator:
        yield self.sim.timeout(execution.plx.compute_seconds)

    # Bursts are priced with the execution's *stored* transfer times (from
    # the model that built the service plan), so the simulated DMA always
    # matches the analytic (DMA in + compute + DMA out) decomposition even
    # under a non-default transfer model.

    def _transfer_in(self, execution: Execution) -> Generator:
        if self.corruptor is not None:
            self.corruptor(execution.request)
        yield from self.bus.transfer(
            execution.plx.words_in, execution.plx.transfer_in_seconds
        )

    def _transfer_out(self, execution: Execution) -> Generator:
        yield from self.bus.transfer(
            execution.plx.words_out, execution.plx.transfer_out_seconds
        )

    def _overlap_dma(
        self,
        acc: Accelerator,
        finished: Optional[Execution],
        upcoming: Optional[Execution],
    ) -> Generator:
        if finished is not None:
            yield from self._transfer_out(finished)
            self._finish(acc, finished)
        if upcoming is not None:
            yield from self._transfer_in(upcoming)


def max_replicas(
    scenario: Scenario,
    evaluator: Optional[Evaluator] = None,
    limit: int = 64,
) -> int:
    """How many copies of the scenario's PL datapath fit the board's FPGA.

    Uses the same per-instance :class:`~repro.fpga.device.ResourceVector`
    the offload planner prices (all offload targets at the scenario's
    ``n_units`` and Q-format) and packs copies until the device overflows.
    Scenarios with no offload target get one (idle) replica.
    """

    ev = evaluator if evaluator is not None else Evaluator()
    decision = ev.offload_decision(scenario)
    if not decision.targets:
        return 1
    device = scenario.board_spec.fpga
    per_replica = decision.resources
    fit = 0
    while fit < limit and per_replica.scale(fit + 1).fits(device):
        fit += 1
    return max(1, fit)

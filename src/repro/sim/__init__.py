"""``repro.sim`` — discrete-event simulation of multi-request PS+PL serving.

The analytic models (:mod:`repro.api`) price *one* inference in closed form;
this package simulates *traffic*: request arrivals, queueing at the PS core
and the replicated PL accelerators, burst-level AXI/DMA contention, dispatch
policies and the latency/utilisation/energy consequences.  Per-transaction
service times come from the same calibrated models the evaluator uses, so a
contention-free simulation reproduces the analytic latency exactly and every
multi-request scenario is new, internally consistent ground.

Entry points:

>>> from repro.sim import SimScenario, simulate
>>> report = simulate(SimScenario(model="rODENet-3", depth=20, arrival="poisson",
...                               arrival_rate_hz=2.0, n_requests=50, replicas=2))
>>> report.requests["completed"]
50

or via the CLI: ``repro-odenet sim rODENet-3 --arrivals poisson --rate 2
--requests 200 --replicas auto``.
"""

from .engine import Event, Process, Simulator, Timeout
from .metrics import (
    LatencyStats,
    QuantileSketch,
    SimReport,
    energy_summary,
    latency_stats,
    slo_summary,
    windowed_mean,
)
from .policies import (
    POLICY_NAMES,
    BatchedPolicy,
    Dispatcher,
    DispatchPolicy,
    FifoPolicy,
    RoundRobinPolicy,
    make_policy,
    max_replicas,
)
from .resources import Accelerator, AxiBus, LevelMonitor, Resource
from .runner import SimSystem, as_sim_scenario, simulate
from .scenario import SimScenario
from .workload import (
    ARRIVAL_KINDS,
    PlExecution,
    PsSegment,
    Request,
    ServicePlan,
    arrival_times,
    build_service_plan,
    sample_mix,
)

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Resource",
    "AxiBus",
    "Accelerator",
    "LevelMonitor",
    "Request",
    "PsSegment",
    "PlExecution",
    "ServicePlan",
    "ARRIVAL_KINDS",
    "arrival_times",
    "sample_mix",
    "build_service_plan",
    "DispatchPolicy",
    "FifoPolicy",
    "BatchedPolicy",
    "RoundRobinPolicy",
    "Dispatcher",
    "POLICY_NAMES",
    "make_policy",
    "max_replicas",
    "SimScenario",
    "SimSystem",
    "as_sim_scenario",
    "simulate",
    "SimReport",
    "LatencyStats",
    "QuantileSketch",
    "latency_stats",
    "energy_summary",
    "slo_summary",
    "windowed_mean",
]

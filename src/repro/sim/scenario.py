"""The :class:`SimScenario`: a design point *plus* a serving scenario.

A :class:`~repro.api.scenario.Scenario` fixes the hardware/architecture
knobs; a :class:`SimScenario` extends it (same frozen/hashable/validated
contract) with the traffic and system knobs of a multi-request run:

* the arrival process (``arrival``/``arrival_rate_hz``/``trace``) and its
  stop conditions (``n_requests``, ``duration_s``),
* the serving system (``replicas``, ``policy``, ``batch_size``,
  ``ps_cores``, ``dma_channels``),
* the measurement (``warmup_s`` trims the transient start-up from the
  reported metrics),
* the ``seed`` making stochastic runs reproducible.

Being a Scenario subclass, it flows through the existing machinery: the
evaluator memoizes its analytic report, the result cache keys it by concrete
type (no collisions with plain scenarios) and the batch engine routes it
through the loop fallback.  ``replicas=0`` means "size from the resource
budget" (resolved by :func:`repro.sim.runner.simulate` via
:func:`repro.sim.policies.max_replicas`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..api.scenario import Scenario
from .policies import POLICY_NAMES
from .workload import ARRIVAL_KINDS

__all__ = ["SimScenario"]


@dataclass(frozen=True)
class SimScenario(Scenario):
    """One serving scenario: a design point under a request workload."""

    #: Arrival process: "deterministic", "poisson" or "trace".
    arrival: str = "poisson"
    #: Mean arrival rate (requests/s) for deterministic/Poisson arrivals.
    arrival_rate_hz: float = 1.0
    #: Number of requests to offer.  ``None`` means "bounded by something
    #: else": the full trace for ``arrival="trace"``, ``duration_s`` when
    #: given, and otherwise a default of 100 (resolved by ``simulate()`` —
    #: not stored here, so ``replace(duration_s=...)`` on a defaulted
    #: scenario is duration-bound rather than silently capped).
    n_requests: Optional[int] = None
    #: Stop offering new arrivals after this much simulated time (optional).
    duration_s: Optional[float] = None
    #: Explicit arrival timestamps for ``arrival="trace"``.
    trace: Optional[Tuple[float, ...]] = None
    #: PL accelerator replicas; 0 sizes from the device resource budget.
    replicas: int = 1
    #: Dispatch policy: "fifo", "batched" or "round_robin".
    policy: str = "fifo"
    #: Maximum invocations a replica drains at once (``policy="batched"``).
    batch_size: int = 4
    #: PRNG seed for Poisson arrivals and mix sampling.
    seed: int = 0
    #: PS cores available to software phases; 0 uses the board's core count.
    ps_cores: int = 1
    #: Concurrent DMA bursts the AXI interconnect sustains.
    dma_channels: int = 1
    #: Measurement warm-up: requests arriving before this simulated time are
    #: dropped from latency percentiles, and utilisation / queue / energy
    #: metrics are computed over ``[warmup_s, horizon]`` only (transient
    #: start-up behaviour trimmed).  0 measures the whole run.
    warmup_s: float = 0.0
    #: Per-request latency SLO (seconds).  When set, the report carries an
    #: SLO-violation summary (late or corrupted completions); ``None`` skips
    #: it.  The FMEA tabulator defaults a missing SLO to twice the no-load
    #: service time (the knee convention of ``examples/serving_study.py``).
    slo_s: Optional[float] = None
    #: Keep every per-request latency verbatim (``np.percentile`` over the
    #: full array) instead of letting the streaming
    #: :class:`~repro.sim.metrics.QuantileSketch` spill to bounded-memory
    #: bins on runs beyond its exact buffer.  Small runs are bit-identical
    #: either way; this is the escape hatch for big runs that must be.
    exact: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival process '{self.arrival}'; expected one of {ARRIVAL_KINDS}"
            )
        if self.arrival == "trace":
            if not self.trace:
                raise ValueError("arrival='trace' needs at least one trace timestamp")
            object.__setattr__(self, "trace", tuple(float(t) for t in self.trace))
        else:
            if self.trace is not None:
                raise ValueError(
                    f"a trace was given but arrival='{self.arrival}'; "
                    "pass arrival='trace' to replay it"
                )
            if self.arrival_rate_hz <= 0:
                raise ValueError("arrival_rate_hz must be positive")
        if self.n_requests is not None and self.n_requests < 1:
            raise ValueError("n_requests must be a positive integer (or None)")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("duration_s must be positive (or None)")
        if not isinstance(self.replicas, int) or self.replicas < 0:
            raise ValueError("replicas must be a non-negative integer (0 = auto-size)")
        if self.policy not in POLICY_NAMES:
            raise ValueError(f"unknown policy '{self.policy}'; expected one of {POLICY_NAMES}")
        if self.batch_size < 1:
            raise ValueError("batch_size must be a positive integer")
        if not isinstance(self.ps_cores, int) or self.ps_cores < 0:
            raise ValueError("ps_cores must be a non-negative integer (0 = the board's cores)")
        if self.dma_channels < 1:
            raise ValueError("dma_channels must be a positive integer")
        if self.warmup_s < 0:
            raise ValueError("warmup_s must be non-negative")
        if self.slo_s is not None and self.slo_s <= 0:
            raise ValueError("slo_s must be positive (or None)")
        if not isinstance(self.exact, bool):
            raise ValueError("exact must be a boolean")

    # -- views -------------------------------------------------------------------------

    @property
    def design_point(self) -> Scenario:
        """The underlying plain scenario (the analytic models' key)."""

        return Scenario(
            **{f.name: getattr(self, f.name) for f in dataclasses.fields(Scenario)}
        )

    def as_dict(self) -> Dict[str, object]:
        out = super().as_dict()
        out.update(
            {
                "arrival": self.arrival,
                "arrival_rate_hz": self.arrival_rate_hz,
                "n_requests": self.n_requests,
                "duration_s": self.duration_s,
                "trace": list(self.trace) if self.trace is not None else None,
                "replicas": self.replicas,
                "policy": self.policy,
                "batch_size": self.batch_size,
                "seed": self.seed,
                "ps_cores": self.ps_cores,
                "dma_channels": self.dma_channels,
                "warmup_s": self.warmup_s,
                "slo_s": self.slo_s,
                "exact": self.exact,
            }
        )
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimScenario":
        data = dict(data)
        if data.get("trace") is not None:
            data["trace"] = tuple(data["trace"])
        return super().from_dict(data)  # type: ignore[return-value]

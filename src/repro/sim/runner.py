"""The simulation driver: :func:`simulate` turns a :class:`SimScenario` into a
:class:`~repro.sim.metrics.SimReport`.

One call wires the whole transaction-level system together:

1. compile the analytic models into per-scenario service plans
   (:func:`~repro.sim.workload.build_service_plan`),
2. materialise the arrival process and (optionally) the per-request
   architecture mix,
3. instantiate the resources — PS core pool, AXI bus, ``replicas`` PL
   accelerator instances behind a policy-driven
   :class:`~repro.sim.policies.Dispatcher`,
4. run every request through its plan (software phases hold a PS core;
   offloaded block invocations queue at the dispatcher and move their
   feature maps over the shared bus), and
5. condense timestamps and occupancy integrals into the report.

With one request, one replica and the FIFO policy nothing ever queues, so
the measured latency equals the analytic ``total_w_pl_s`` — the differential
tests pin that within 1 % over a whole scenario grid.  Everything beyond
(queueing delay, bus contention, batching gains, replica scaling) is the new
ground the simulator opens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from ..api.evaluator import Evaluator
from ..api.scenario import Scenario
from ..fixedpoint.qformat import QFormat
from ..fpga.device import ResourceVector
from ..fpga.power import PowerModelConfig
from .engine import Simulator
from .metrics import (
    QuantileSketch,
    SimReport,
    energy_summary,
    slo_summary,
    windowed_mean,
)
from .policies import Dispatcher, Execution, make_policy, max_replicas
from .resources import Accelerator, AxiBus, Resource
from .scenario import SimScenario
from .workload import (
    PsSegment,
    Request,
    ServicePlan,
    arrival_times,
    build_service_plan,
    sample_mix,
)

__all__ = ["SimSystem", "as_sim_scenario", "simulate"]


def as_sim_scenario(scenario: Scenario) -> SimScenario:
    """Promote a plain scenario to a single-request simulation scenario."""

    if isinstance(scenario, SimScenario):
        return scenario
    return SimScenario(
        arrival="deterministic",
        n_requests=1,
        **scenario.as_dict(),
    )


@dataclass
class SimSystem:
    """Handles a fault mode manipulates at injection/clear time.

    The contract between :mod:`repro.sim` and :mod:`repro.faults`: modes are
    duck-typed objects with ``inject(system) -> token`` /
    ``clear(system, token)`` plus ``kind``, ``rate_per_hour`` and
    ``duration_s`` attributes — the runner never imports the faults package.
    """

    sim: Simulator
    ps: Resource
    bus: AxiBus
    dispatcher: Dispatcher
    accelerators: List[Accelerator]
    #: Q-format of the simulated datapath (DMA corruption flips its bits).
    qformat: QFormat
    #: Fault-dedicated RNG (separate stream from the workload's seed, so
    #: injecting a fault never perturbs arrivals or mix sampling).
    rng: np.random.Generator
    counters: Dict[str, int] = field(default_factory=dict)


def _request_process(
    sim: Simulator,
    request: Request,
    plan: ServicePlan,
    ps: Resource,
    dispatcher: Dispatcher,
    completed: List[Request],
) -> Generator:
    """One request's life: walk the plan, record completion.

    The process is spawned *at* the request's arrival instant
    (:meth:`Simulator.process_batch`), so no leading arrival timeout is
    needed — one queue entry per request instead of three.
    """

    for segment in plan.segments:
        if isinstance(segment, PsSegment):
            asked = sim.now
            yield ps.request()
            request.ps_wait += sim.now - asked
            yield sim.timeout(segment.seconds)
            ps.release()
        else:
            yield dispatcher.submit(request, segment)
    request.completed = sim.now
    completed.append(request)


def _normalize_faults(faults: Optional[Sequence[object]]) -> List[Tuple[object, float]]:
    """Accept fault samples, ``(mode, t)`` pairs or bare modes (t = 0)."""

    if not faults:
        return []
    out: List[Tuple[object, float]] = []
    for entry in faults:
        if hasattr(entry, "mode") and hasattr(entry, "t_inject"):
            mode, t = entry.mode, float(entry.t_inject)
        elif isinstance(entry, tuple) and len(entry) == 2:
            mode, t = entry[0], float(entry[1])
        elif hasattr(entry, "inject"):
            mode, t = entry, 0.0
        else:
            raise TypeError(
                f"fault entry {entry!r} is neither a FaultSample, a (mode, time) "
                "pair nor a fault mode"
            )
        if t < 0:
            raise ValueError(f"fault injection time must be non-negative (got {t})")
        out.append((mode, t))
    return out


def _arm_fault(
    sim: Simulator,
    system: SimSystem,
    mode: object,
    t_inject: float,
    log: List[Dict[str, object]],
    times: List[float],
) -> None:
    """Schedule one fault's injection (and clearing, for transient faults)."""

    entry: Dict[str, object] = {
        "mode": mode.kind,
        "rate_per_hour": mode.rate_per_hour,
        "t_inject": t_inject,
        "cleared_at": None,
    }
    log.append(entry)
    token_box: Dict[str, object] = {}

    def clear() -> None:
        mode.clear(system, token_box.get("token"))
        entry["cleared_at"] = sim.now
        times.append(sim.now)

    def fire() -> None:
        token_box["token"] = mode.inject(system)
        entry["t_inject"] = sim.now
        times.append(sim.now)
        if mode.duration_s is not None:
            sim.schedule(mode.duration_s, clear)

    sim.schedule(t_inject, fire)


def simulate(
    scenario: Scenario,
    evaluator: Optional[Evaluator] = None,
    mix: Optional[Sequence[Tuple[Scenario, float]]] = None,
    faults: Optional[Sequence[object]] = None,
    fault_seed: int = 0,
) -> SimReport:
    """Run one serving simulation and summarise it.

    Parameters
    ----------
    scenario:
        A :class:`SimScenario` (or a plain :class:`Scenario`, promoted to a
        single-request deterministic run).  ``replicas=0`` auto-sizes the
        replica count from the device resource budget.
    evaluator:
        An evaluator to reuse for the analytic service times (and to warm);
        a fresh one otherwise.
    mix:
        Optional weighted per-request architecture mix, ``[(scenario,
        weight), ...]``.  Mixed scenarios share the simulated hardware, so
        they must agree on board, clock, MAC units and Q-format with the
        main scenario (the replicas are physical datapaths).
    faults:
        Optional fault injections: :class:`~repro.faults.sample.FaultSample`
        objects, ``(mode, t_inject)`` pairs, or bare fault modes (injected at
        t = 0).  An empty sequence is *exactly* the nominal run — every hook
        is an inert conditional, so ``simulate(s)`` and
        ``simulate(s, faults=[])`` are bit-identical.
    fault_seed:
        Seed of the fault-dedicated RNG (bit-flip positions, sampled
        activation values); independent of the workload ``seed``.
    """

    sim_scenario = as_sim_scenario(scenario)
    ev = evaluator if evaluator is not None else Evaluator()
    injections = _normalize_faults(faults)

    # -- replica sizing and per-replica footprint (energy model) ----------------------
    # Both budgets are per-board: auto-sized replicas pack the board's
    # fabric, and ``ps_cores=0`` resolves to the board's core count, so the
    # same SimScenario compares boards under identical traffic.
    design = sim_scenario.design_point
    board = sim_scenario.board_spec
    decision = ev.offload_decision(design)
    n_replicas = sim_scenario.replicas
    if n_replicas == 0:
        n_replicas = max_replicas(design, evaluator=ev)
    ps_cores = sim_scenario.ps_cores or board.ps_cores
    replica_resources: ResourceVector = (
        decision.resources if decision.targets else ResourceVector()
    )

    # -- workload ---------------------------------------------------------------------
    # Rate-driven arrivals with no explicit bound default to 100 requests;
    # trace- and duration-bounded runs are never silently capped.
    n_requests = sim_scenario.n_requests
    if n_requests is None and sim_scenario.arrival != "trace" and sim_scenario.duration_s is None:
        n_requests = 100
    rng = np.random.default_rng(sim_scenario.seed)
    arrivals = arrival_times(
        sim_scenario.arrival,
        rate_hz=sim_scenario.arrival_rate_hz,
        n_requests=n_requests,
        duration_s=sim_scenario.duration_s,
        rng=rng,
        trace=sim_scenario.trace,
    )
    if mix is not None:
        for candidate, _ in mix:
            _check_mix_compatible(design, candidate)
        per_request = sample_mix(mix, len(arrivals), rng=rng)
    else:
        per_request = [design] * len(arrivals)

    # The main design point always gets a plan (even when the mix routes no
    # request to it): its no-load service time is the report's baseline.
    plans: Dict[Scenario, ServicePlan] = {design: build_service_plan(design, evaluator=ev)}
    for point in per_request:
        if point not in plans:
            plans[point] = build_service_plan(point, evaluator=ev)

    # -- system -----------------------------------------------------------------------
    sim = Simulator()
    ps = Resource(sim, capacity=ps_cores, name="ps")
    bus = AxiBus(sim, channels=sim_scenario.dma_channels)
    accelerators = [Accelerator(sim, i, replica_resources) for i in range(n_replicas)]
    dispatcher = Dispatcher(
        sim, bus, accelerators, make_policy(sim_scenario.policy, sim_scenario.batch_size)
    )

    # Degraded-mode escape hatch: when every replica is dead, an offloaded
    # invocation runs as software on a PS core (the paper's all-software
    # path, priced by the same execution report).  Installed unconditionally
    # but only ever called once fail_replica() has emptied the fleet.
    def _fallback_process(execution: Execution) -> Generator:
        yield ps.request()
        execution.request.pl_wait += sim.now - execution.submitted
        yield sim.timeout(execution.plx.ps_fallback_seconds)
        ps.release()
        if not execution.done.triggered:
            execution.done.succeed(None)

    dispatcher.ps_fallback = lambda execution: sim.process(_fallback_process(execution))

    # -- fault injection --------------------------------------------------------------
    # Each injection is a timed callback on the one event queue
    # (Simulator.schedule), so fault runs stay bit-reproducible; with no
    # injections nothing below schedules anything and the run is nominal.
    fault_log: List[Dict[str, object]] = []
    fault_times: List[float] = []
    if injections:
        system = SimSystem(
            sim=sim,
            ps=ps,
            bus=bus,
            dispatcher=dispatcher,
            accelerators=accelerators,
            qformat=design.qformat,
            rng=np.random.default_rng(fault_seed),
            counters={},
        )
        for mode, t_inject in injections:
            _arm_fault(sim, system, mode, t_inject, fault_log, fault_times)

    # Warm-up trimming: a probe snapshots every occupancy integral at
    # ``warmup_s`` so the reported metrics cover [warmup_s, horizon] only.
    # Only spawned when asked — the probe's timeout would otherwise pin the
    # horizon to at least warmup_s.
    warmup = sim_scenario.warmup_s
    marks: Dict[str, float] = {}

    def _warmup_probe() -> None:
        marks["ps"] = ps.busy.reading()
        marks["bus"] = bus.busy.reading()
        marks["queue"] = dispatcher.pending.reading()
        for acc in accelerators:
            marks[acc.name] = acc.busy.reading()
            marks[f"{acc.name}_down"] = acc.down.reading()
        # Peak/batch statistics restart at the window too: the transient the
        # user asked to trim must not leak into any 'queue' metric.
        dispatcher.pending.peak = dispatcher.pending.level
        marks["batches"] = len(dispatcher.batch_sizes)

    if warmup > 0.0:
        # A timed callback, registered before the requests: on a tie with an
        # arrival at exactly ``warmup`` the probe still snapshots first.
        sim.schedule(warmup, _warmup_probe)

    completed: List[Request] = []
    requests = [
        Request(index=i, arrival=t, scenario=point)
        for i, (t, point) in enumerate(zip(arrivals, per_request))
    ]
    # Event batching: every request process is scheduled directly at its
    # arrival instant with one bulk heap rebuild (no per-request start event
    # or leading arrival timeout).
    sim.process_batch(
        (
            request.arrival,
            _request_process(
                sim, request, plans[request.scenario], ps, dispatcher, completed
            ),
        )
        for request in requests
    )
    sim.run()

    # -- summary ----------------------------------------------------------------------
    horizon = sim.now
    if warmup > 0.0 or injections:
        # The probe's timeout (and any fault scheduled past the last
        # completion) keeps the simulator alive beyond the served work; that
        # idle tail is measurement artefact, not serving activity — clamp
        # the horizon to the last real event so a too-long warm-up reads as
        # an empty window over the true run, not as a 0-throughput run of
        # length warmup_s.  Fault injection/clear instants count as real
        # events (a dead replica's downtime is genuine system state).
        last_arrival = float(arrivals[-1]) if len(arrivals) else 0.0
        last_completion = max((r.completed for r in completed), default=0.0)
        last_fault = max(fault_times, default=0.0)
        horizon = min(horizon, max(last_arrival, last_completion, last_fault))
    ps_busy = ps.busy.finalize(horizon)
    pending_integral = dispatcher.pending.finalize(horizon)
    bus_busy = bus.busy.finalize(horizon)
    for acc in accelerators:
        acc.busy.finalize(horizon)
    replica_downtime = 0.0
    if injections:
        replica_downtime = sum(
            acc.down.finalize(horizon) - marks.get(f"{acc.name}_down", 0.0)
            for acc in accelerators
        )
    # The measurement window: [warmup, horizon].  With warmup == 0 the marks
    # default to 0 and every expression below reduces to the whole-run value.
    window_start = min(warmup, horizon)
    window = horizon - window_start
    measured = [r for r in completed if r.arrival >= window_start]
    # Streaming percentile sketches on the nominal path: bounded memory on
    # big runs, bit-identical to the stored-array np.percentile path while
    # the exact buffer holds (always, with ``exact=True``).
    latency_sketch = QuantileSketch(exact=sim_scenario.exact)
    wait_sketch = QuantileSketch(exact=sim_scenario.exact)
    for r in measured:
        latency_sketch.insert(r.latency)
        wait_sketch.insert(r.total_wait)
    batch_sizes: Dict[str, float] = {}
    measured_batches = dispatcher.batch_sizes[int(marks.get("batches", 0)) :]
    if measured_batches:
        sizes = np.asarray(measured_batches, dtype=np.float64)
        batch_sizes = {
            "count": float(sizes.size),
            "mean": float(sizes.mean()),
            "max": float(sizes.max()),
        }

    # The report carries the *resolved* replica/core counts (0 asked for
    # board-budget auto-sizing; readers want the numbers that actually ran).
    scenario_dict = sim_scenario.as_dict()
    scenario_dict["replicas"] = n_replicas
    scenario_dict["ps_cores"] = ps_cores

    acc_util = [
        windowed_mean(acc.busy.integral, marks.get(acc.name, 0.0), window)
        for acc in accelerators
    ]
    note: Optional[str] = None
    if not measured and len(requests):
        note = (
            "nothing measured: the warm-up window covers the entire run, so "
            "latency/throughput/utilization are NaN (JSON null)"
        )
    slo: Optional[Dict[str, object]] = None
    if sim_scenario.slo_s is not None:
        slo = slo_summary(measured, sim_scenario.slo_s)
    faults_dict: Optional[Dict[str, object]] = None
    if injections:
        faults_dict = {
            "seed": fault_seed,
            "injections": fault_log,
            "redispatched": dispatcher.redispatched,
            "ps_fallback_served": dispatcher.fallback_served,
            "corrupted_requests": sum(1 for r in measured if r.corrupted),
            "corrupted_words": int(system.counters.get("corrupted_words", 0)),
            "replica_downtime_s": replica_downtime,
            "replicas_alive_end": dispatcher.alive_count,
        }
    return SimReport(
        scenario=scenario_dict,
        requests={
            "offered": len(requests),
            "completed": len(completed),
            "measured": len(measured),
        },
        horizon_s=horizon,
        throughput_rps=len(measured) / window if window > 0 else float("nan"),
        service_s=plans[design].total_seconds,
        latency=latency_sketch.stats(),
        wait=wait_sketch.stats(),
        utilization={
            # Mid-run capacity faults (PS-core loss) mutate ps.capacity; the
            # report normalises by the *provisioned* counts throughout.
            "ps": windowed_mean(ps_busy, marks.get("ps", 0.0), window) / ps_cores,
            "axi": windowed_mean(bus_busy, marks.get("bus", 0.0), window) / bus.capacity,
            "accelerators": acc_util,
            "accelerator_mean": sum(acc_util) / n_replicas,
        },
        queue={
            "mean_depth": windowed_mean(pending_integral, marks.get("queue", 0.0), window),
            "peak_depth": float(dispatcher.pending.peak),
        },
        energy=energy_summary(
            horizon_s=window,
            ps_busy_core_seconds=ps_busy - marks.get("ps", 0.0),
            ps_cores=ps_cores,
            replica_resources=replica_resources,
            n_replicas=n_replicas,
            completed=len(measured),
            config=PowerModelConfig.for_board(board),
            replica_downtime_s=replica_downtime,
        ),
        bus=bus.as_dict(),
        events_processed=sim.events_processed,
        batch_sizes=batch_sizes,
        slo=slo,
        faults=faults_dict,
        note=note,
        latency_sketch=latency_sketch,
        wait_sketch=wait_sketch,
    )


def _check_mix_compatible(design: Scenario, candidate: Scenario) -> None:
    """Mixed requests share the physical PL datapath; hardware knobs must agree."""

    for knob in ("board", "pl_clock_hz", "n_units", "word_length", "fraction_bits"):
        if getattr(candidate, knob) != getattr(design, knob):
            raise ValueError(
                f"mix scenario {candidate.full_name} differs from the main scenario "
                f"on '{knob}' ({getattr(candidate, knob)!r} != {getattr(design, knob)!r}); "
                "mixed requests share the simulated hardware"
            )

"""Metrics of a simulated serving run: latency, utilisation, queues, energy.

The simulator produces raw material — per-request timestamps and
time-weighted occupancy integrals — and this module condenses it into the
:class:`SimReport` the CLI, benchmarks and tests consume:

* latency percentiles (p50/p90/p95/p99) over the completed requests'
  sojourn times, plus the queueing-wait share;
* utilisation of the PS cores, the AXI bus and every PL replica;
* queue statistics (time-weighted mean and peak dispatcher backlog);
* energy, priced with the *same* constants as the analytic
  :class:`~repro.fpga.power.PowerModel`: the PS draws active power while a
  core is busy and idle power otherwise, and every instantiated PL replica
  burns static + dynamic power for the whole run (its clock never gates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..fpga.device import ResourceVector
from ..fpga.power import PowerModelConfig, pl_power_kernel

__all__ = [
    "LatencyStats",
    "QuantileSketch",
    "SimReport",
    "latency_stats",
    "energy_summary",
    "slo_summary",
    "windowed_mean",
]

#: Percentiles reported for every latency distribution.
PERCENTILES: Tuple[int, ...] = (50, 90, 95, 99)


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency (or wait-time) sample set, in seconds."""

    count: int
    mean: float
    minimum: float
    maximum: float
    percentiles: Dict[int, float]

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "count": self.count,
            "mean_s": self.mean,
            "min_s": self.minimum,
            "max_s": self.maximum,
        }
        for q, value in self.percentiles.items():
            out[f"p{q}_s"] = value
        return out


def windowed_mean(integral_end: float, integral_start: float, window_s: float) -> float:
    """Time-weighted mean level over a measurement window.

    The warm-up trimming primitive: monitors accumulate occupancy integrals
    from t = 0, so the mean over ``[warmup_s, horizon]`` is the difference
    of the final integral and the probe's reading at ``warmup_s``, over the
    window span.  An empty window yields NaN: nothing was measured, and a
    mean of 0 would be indistinguishable from a genuinely idle system.
    """

    if window_s <= 0:
        return float("nan")
    return (integral_end - integral_start) / window_s


def latency_stats(samples: Sequence[float], qs: Sequence[int] = PERCENTILES) -> LatencyStats:
    """Percentile summary of a sample set.

    An empty sample set (e.g. a warm-up window covering the whole run) gives
    ``count == 0`` and NaN for every statistic — "no data", not "zero
    latency".  :meth:`SimReport.as_dict` maps the NaNs to JSON ``null``.
    """

    if not len(samples):
        nan = float("nan")
        return LatencyStats(0, nan, nan, nan, {int(q): nan for q in qs})
    arr = np.asarray(samples, dtype=np.float64)
    pct = np.percentile(arr, list(qs))
    return LatencyStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        percentiles={int(q): float(v) for q, v in zip(qs, pct)},
    )


#: Default guaranteed relative error of a spilled sketch (0.5 %, well inside
#: the 1 % conformance bar pinned by ``tests/sim/test_sketch.py``).
DEFAULT_RELATIVE_ERROR = 0.005

#: Samples buffered exactly before a sketch spills to log-spaced bins.
DEFAULT_EXACT_THRESHOLD = 4096


class QuantileSketch:
    """A mergeable streaming quantile sketch with bounded memory.

    The P²-style estimator the fleet simulator needs: day-length traces at
    millions of requests cannot store every latency, so the sketch keeps
    log-spaced bins (DDSketch-style) once the stream outgrows a small exact
    buffer.  Three properties make it safe to put on the nominal path:

    * **Exact until it matters.**  The first ``exact_threshold`` samples are
      buffered verbatim and quantiles delegate to :func:`latency_stats`
      (``np.percentile``) — small runs, i.e. every existing test and every
      interactive ``sim`` invocation, are *bit-identical* to the stored-array
      path.  ``exact=True`` pins this mode forever (the escape hatch).
    * **Guaranteed error when spilled.**  Bins grow geometrically by
      ``gamma = (1 + relative_error)**2`` and report their geometric
      midpoint, so every sample's representative is within a factor
      ``sqrt(gamma) = 1 + relative_error`` of its true value.  Quantiles
      replicate ``np.percentile``'s linear interpolation over the binned
      order statistics: with rank ``r = q/100 * (n - 1)``, the estimate
      interpolates the representatives of order statistics ``floor(r)`` and
      ``ceil(r)`` — a convex combination of two values each within
      ``relative_error`` of the truth stays within ``relative_error`` of the
      interpolated truth (all samples are non-negative).
    * **Merge-order invariance.**  Merging adds integer bin counts
      (commutative and associative) or concatenates exact buffers, so shard
      sketches merged in any order yield identical quantiles — the property
      the shared-nothing fleet shards rely on.

    Memory is O(``exact_threshold`` + bins actually touched); a spilled
    sketch covering twelve decades of seconds uses ~2800 bins.
    """

    __slots__ = (
        "relative_error",
        "exact_threshold",
        "min_positive",
        "count",
        "_sum",
        "_min",
        "_max",
        "_samples",
        "_bins",
        "_log_gamma",
        "_log_min",
    )

    def __init__(
        self,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
        exact_threshold: Optional[int] = DEFAULT_EXACT_THRESHOLD,
        exact: bool = False,
        min_positive: float = 1e-12,
    ) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ValueError(f"relative_error must be in (0, 1) (got {relative_error})")
        if min_positive <= 0.0:
            raise ValueError(f"min_positive must be positive (got {min_positive})")
        if exact:
            exact_threshold = None  # never spill
        elif exact_threshold is not None and exact_threshold < 0:
            raise ValueError("exact_threshold must be non-negative (or None for never-spill)")
        self.relative_error = float(relative_error)
        self.exact_threshold = exact_threshold
        self.min_positive = float(min_positive)
        self.count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._samples: Optional[List[float]] = []
        self._bins: Optional[Dict[int, int]] = None
        gamma = (1.0 + self.relative_error) ** 2
        self._log_gamma = math.log(gamma)
        self._log_min = math.log(self.min_positive)
        if exact_threshold == 0:
            self._spill()

    # -- ingest ------------------------------------------------------------------------

    @property
    def is_exact(self) -> bool:
        """Whether quantiles still come from the verbatim sample buffer."""

        return self._samples is not None

    @property
    def samples(self) -> Optional[Tuple[float, ...]]:
        """The exact buffer (``None`` once spilled) — the reference oracle."""

        return tuple(self._samples) if self._samples is not None else None

    @property
    def bins_used(self) -> int:
        return len(self._bins) if self._bins is not None else 0

    def insert(self, value: float) -> None:
        v = float(value)
        if not (v >= 0.0) or math.isinf(v):  # rejects NaN, negatives and inf
            raise ValueError(f"sketch values must be finite and non-negative (got {value!r})")
        self.count += 1
        self._sum += v
        if v < self._min:
            self._min = v
        if v > self._max:
            self._max = v
        if self._samples is not None:
            self._samples.append(v)
            if self.exact_threshold is not None and len(self._samples) > self.exact_threshold:
                self._spill()
        else:
            key = self._key(v)
            self._bins[key] = self._bins.get(key, 0) + 1

    def extend(self, values: Sequence[float]) -> None:
        for v in values:
            self.insert(v)

    # -- binning -----------------------------------------------------------------------

    def _key(self, v: float) -> int:
        """Bin index: 0 collects values below ``min_positive`` (reported as 0)."""

        if v < self.min_positive:
            return 0
        return max(1, int((math.log(v) - self._log_min) / self._log_gamma) + 1)

    def _representative(self, key: int) -> float:
        if key == 0:
            return 0.0
        # Geometric midpoint of [min_positive * gamma^(k-1), * gamma^k),
        # computed in log space so huge keys cannot overflow.
        return math.exp(self._log_min + (key - 0.5) * self._log_gamma)

    def _spill(self) -> None:
        bins: Dict[int, int] = {}
        for v in self._samples or ():
            key = self._key(v)
            bins[key] = bins.get(key, 0) + 1
        self._samples = None
        self._bins = bins

    # -- merge -------------------------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (``other`` is left untouched).

        Spilled ⊕ anything is spilled; two exact sketches stay exact unless
        the combined buffer exceeds this sketch's threshold.  Bin counts are
        integers, so the merged quantiles are identical for any merge order.
        """

        if (other.relative_error, other.min_positive) != (self.relative_error, self.min_positive):
            raise ValueError(
                "cannot merge sketches with different resolutions "
                f"(relative_error {self.relative_error} vs {other.relative_error}, "
                f"min_positive {self.min_positive} vs {other.min_positive})"
            )
        self.count += other.count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        other_samples = other._samples
        if self._samples is not None and other_samples is not None:
            self._samples.extend(other_samples)
            if self.exact_threshold is not None and len(self._samples) > self.exact_threshold:
                self._spill()
            return self
        if self._samples is not None:
            self._spill()
        if other_samples is not None:
            for v in other_samples:
                key = self._key(v)
                self._bins[key] = self._bins.get(key, 0) + 1
        else:
            for key, n in other._bins.items():
                self._bins[key] = self._bins.get(key, 0) + n
        return self

    # -- quantiles ---------------------------------------------------------------------

    def percentile(self, q: float) -> float:
        return self.percentiles([q])[0]

    def percentiles(self, qs: Sequence[float]) -> List[float]:
        """Estimates of ``np.percentile(values, qs)`` (NaN when empty)."""

        if self.count == 0:
            return [float("nan")] * len(qs)
        if self._samples is not None:
            arr = np.asarray(self._samples, dtype=np.float64)
            return [float(v) for v in np.percentile(arr, list(qs))]
        if self._min == self._max:
            return [self._min] * len(qs)
        n = self.count
        ranks: List[Tuple[int, float]] = []
        wanted: List[int] = []
        for q in qs:
            if not 0.0 <= q <= 100.0:
                raise ValueError(f"percentile must be in [0, 100] (got {q})")
            r = (q / 100.0) * (n - 1)
            lo, hi = int(math.floor(r)), int(math.ceil(r))
            ranks.append((lo, r - lo))
            wanted.extend((lo, hi))
        order_stats = self._order_statistics(sorted(set(wanted)))
        out: List[float] = []
        for lo, frac in ranks:
            a = order_stats[lo]
            b = order_stats[lo + 1] if frac else a
            est = a + frac * (b - a)
            # Clamping to the tracked extremes only moves the estimate
            # toward the truth (every true order statistic lies in
            # [min, max]) and makes p0/p100 exact.
            out.append(min(max(est, self._min), self._max))
        return out

    def _order_statistics(self, indices: Sequence[int]) -> Dict[int, float]:
        """Representatives of the given 0-based order statistics (one bin walk)."""

        out: Dict[int, float] = {}
        it = iter(indices)
        target = next(it, None)
        seen = 0
        for key in sorted(self._bins):
            seen += self._bins[key]
            while target is not None and target < seen:
                out[target] = self._representative(key)
                target = next(it, None)
            if target is None:
                break
        # The extremes are tracked exactly; substituting them makes p0 and
        # p100 error-free (and tightens every interpolation touching them).
        if 0 in out:
            out[0] = self._min
        if self.count - 1 in out:
            out[self.count - 1] = self._max
        return out

    # -- summary -----------------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else float("nan")

    def stats(self, qs: Sequence[int] = PERCENTILES) -> LatencyStats:
        """The :class:`LatencyStats` view of the stream.

        On the exact path this delegates to :func:`latency_stats` over the
        verbatim buffer — bit-identical to the stored-array code it replaces.
        """

        if self.count == 0:
            return latency_stats([], qs)
        if self._samples is not None:
            return latency_stats(self._samples, qs)
        pct = self.percentiles(list(qs))
        return LatencyStats(
            count=self.count,
            mean=self.mean,
            minimum=self._min,
            maximum=self._max,
            percentiles={int(q): v for q, v in zip(qs, pct)},
        )


def energy_summary(
    horizon_s: float,
    ps_busy_core_seconds: float,
    ps_cores: int,
    replica_resources: ResourceVector,
    n_replicas: int,
    completed: int,
    config: Optional[PowerModelConfig] = None,
    replica_downtime_s: float = 0.0,
) -> Dict[str, float]:
    """Energy of the run, with the analytic power model's constants.

    The PS subsystem draws ``ps_active_w`` scaled by its mean core
    occupancy and ``ps_idle_w`` for the remainder (with one core this is
    exactly the analytic model's busy/idle split); each PL replica draws its
    static + dynamic power for the whole horizon.  ``replica_downtime_s``
    (summed across replicas) credits back the power a dead replica did not
    draw — a failed accelerator is modelled as fully unpowered.
    """

    cfg = config or PowerModelConfig()
    busy_equivalent = ps_busy_core_seconds / ps_cores if ps_cores else 0.0
    ps_j = cfg.ps_active_w * busy_equivalent + cfg.ps_idle_w * max(
        0.0, horizon_s - busy_equivalent
    )
    pl_w = float(pl_power_kernel(replica_resources.dsp, replica_resources.bram, cfg))
    pl_j = n_replicas * pl_w * horizon_s
    if replica_downtime_s:
        pl_j -= pl_w * replica_downtime_s
    total = ps_j + pl_j
    return {
        "ps_energy_J": ps_j,
        "pl_energy_J": pl_j,
        "total_energy_J": total,
        # None (JSON null) when nothing completed — inf is not valid JSON.
        "energy_per_request_J": total / completed if completed else None,
        "average_power_W": total / horizon_s if horizon_s > 0 else 0.0,
    }


def slo_summary(requests: Sequence[object], slo_s: float) -> Dict[str, object]:
    """Fraction of measured requests violating a latency SLO.

    A request violates when its sojourn time exceeds ``slo_s`` *or* its
    activations were corrupted in flight (a fast wrong answer is still a
    violation).  With nothing measured, the fraction is NaN.
    """

    if slo_s <= 0:
        raise ValueError(f"slo_s must be positive (got {slo_s})")
    n = len(requests)
    violations = sum(1 for r in requests if r.latency > slo_s or r.corrupted)
    return {
        "slo_s": slo_s,
        "measured": n,
        "violations": violations,
        "violation_fraction": violations / n if n else float("nan"),
    }


def _json_safe(value: object) -> object:
    """Recursively replace non-finite floats with ``None`` (JSON null).

    Finite values pass through untouched (identity on nominal reports), so
    this only rewrites the NaN sentinels the warm-up guards produce.
    """

    if isinstance(value, float) and not np.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


@dataclass(frozen=True)
class SimReport:
    """Structured outcome of one serving simulation."""

    scenario: Dict[str, object]
    requests: Dict[str, int]
    horizon_s: float
    throughput_rps: float
    latency: LatencyStats
    wait: LatencyStats
    service_s: float
    utilization: Dict[str, object]
    queue: Dict[str, float]
    energy: Dict[str, float]
    bus: Dict[str, float]
    events_processed: int
    batch_sizes: Dict[str, float] = field(default_factory=dict)
    #: SLO-violation summary (:func:`slo_summary`), when the scenario set one.
    slo: Optional[Dict[str, object]] = None
    #: Fault-injection record (modes, injection log, re-dispatch and fallback
    #: counters, downtime) — only present on fault runs.
    faults: Optional[Dict[str, object]] = None
    #: Human-readable caveat, e.g. when warm-up trimming left nothing measured.
    note: Optional[str] = None
    #: The streaming sketches behind ``latency``/``wait`` — carried so the
    #: fleet layer can merge per-board distributions without re-simulating.
    #: Excluded from serialisation and from report equality.
    latency_sketch: Optional[QuantileSketch] = field(default=None, repr=False, compare=False)
    wait_sketch: Optional[QuantileSketch] = field(default=None, repr=False, compare=False)

    # -- serialisation -----------------------------------------------------------------

    @property
    def reproducibility(self) -> Dict[str, object]:
        """The knobs that make this run bit-reproducible from the artifact:
        RNG seed, resolved warm-up, and resolved replica/core counts (the
        scenario's ``0 = auto`` values are materialised by the runner)."""

        s = self.scenario
        out: Dict[str, object] = {
            "seed": s.get("seed"),
            "warmup_s": s.get("warmup_s"),
            "replicas": s.get("replicas"),
            "ps_cores": s.get("ps_cores"),
        }
        if self.faults is not None:
            out["fault_seed"] = self.faults.get("seed")
        return out

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "scenario": dict(self.scenario),
            "reproducibility": self.reproducibility,
            "requests": dict(self.requests),
            "horizon_s": self.horizon_s,
            "throughput_rps": self.throughput_rps,
            "service_s": self.service_s,
            "latency": self.latency.as_dict(),
            "wait": self.wait.as_dict(),
            "utilization": {
                k: (list(v) if isinstance(v, (list, tuple)) else v)
                for k, v in self.utilization.items()
            },
            "queue": dict(self.queue),
            "energy": dict(self.energy),
            "bus": dict(self.bus),
            "batch_sizes": dict(self.batch_sizes),
            "events_processed": self.events_processed,
        }
        if self.slo is not None:
            out["slo"] = dict(self.slo)
        if self.faults is not None:
            out["faults"] = dict(self.faults)
        if self.note is not None:
            out["note"] = self.note
        return _json_safe(out)

    def flat_dict(self) -> Dict[str, object]:
        """One CSV-safe row (scenario knobs, then scalar metrics)."""

        row: Dict[str, object] = dict(self.scenario)
        row.pop("trace", None)
        row.update(
            {
                "offered": self.requests["offered"],
                "completed": self.requests["completed"],
                "horizon_s": self.horizon_s,
                "throughput_rps": self.throughput_rps,
                "service_s": self.service_s,
            }
        )
        for key, value in self.latency.as_dict().items():
            if key != "count":
                row[f"latency_{key}"] = value
        row["wait_mean_s"] = self.wait.mean
        for key in ("ps", "axi", "accelerator_mean"):
            row[f"util_{key}"] = self.utilization[key]
        row.update({f"queue_{k}": v for k, v in self.queue.items()})
        row.update(self.energy)
        if self.slo is not None:
            row["slo_s"] = self.slo["slo_s"]
            row["slo_violation_fraction"] = self.slo["violation_fraction"]
        if self.faults is not None:
            row["fault_redispatched"] = self.faults.get("redispatched", 0)
            row["fault_ps_fallback"] = self.faults.get("ps_fallback_served", 0)
            row["fault_corrupted_requests"] = self.faults.get("corrupted_requests", 0)
            row["fault_replica_downtime_s"] = self.faults.get("replica_downtime_s", 0.0)
        row["events_processed"] = self.events_processed
        return row

    def to_csv(self) -> str:
        """Header + one data row (the ``sim --format csv`` output)."""

        import csv
        import io

        row = self.flat_dict()
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(list(row.keys()))
        writer.writerow(list(row.values()))
        return buf.getvalue().rstrip("\n")

    # -- rendering ---------------------------------------------------------------------

    def render(self) -> str:
        """Multi-section plain-text report (the ``sim`` subcommand output)."""

        lat = self.latency
        util = self.utilization
        lines: List[str] = []
        s = self.scenario
        lines.append(
            f"Simulated serving: {s['model']}-{s['depth']} on {s['board']} "
            f"({s['replicas']} replica(s), policy={s['policy']}, arrivals={s['arrival']})"
        )
        lines.append("[requests]")
        lines.append(f"  offered            : {self.requests['offered']}")
        lines.append(f"  completed          : {self.requests['completed']}")
        lines.append(f"  horizon            : {self.horizon_s:.4g} s")
        lines.append(f"  throughput         : {self.throughput_rps:.4g} req/s")
        lines.append("[latency]")
        lines.append(f"  service (no load)  : {self.service_s:.6g} s")
        lines.append(f"  mean               : {lat.mean:.6g} s")
        for q in sorted(lat.percentiles):
            lines.append(f"  {f'p{q}'.ljust(19)}: {lat.percentiles[q]:.6g} s")
        lines.append(f"  max                : {lat.maximum:.6g} s")
        lines.append(f"  mean queueing wait : {self.wait.mean:.6g} s")
        lines.append("[utilization]")
        lines.append(f"  ps cores           : {100.0 * util['ps']:.1f} %")
        lines.append(f"  axi bus            : {100.0 * util['axi']:.1f} %")
        for i, u in enumerate(util["accelerators"]):
            lines.append(f"  pl replica {i:<8}: {100.0 * u:.1f} %")
        lines.append("[queue]")
        lines.append(f"  mean backlog       : {self.queue['mean_depth']:.3g}")
        lines.append(f"  peak backlog       : {self.queue['peak_depth']:.0f}")
        if self.batch_sizes:
            lines.append(
                f"  batches            : {self.batch_sizes['count']:.0f} "
                f"(mean size {self.batch_sizes['mean']:.2f}, max {self.batch_sizes['max']:.0f})"
            )
        lines.append("[energy]")
        lines.append(f"  PS                 : {self.energy['ps_energy_J']:.6g} J")
        lines.append(f"  PL                 : {self.energy['pl_energy_J']:.6g} J")
        per_request = self.energy["energy_per_request_J"]
        lines.append(
            "  per request        : "
            + (f"{per_request:.6g} J" if per_request is not None else "n/a (0 completed)")
        )
        lines.append(f"  average power      : {self.energy['average_power_W']:.6g} W")
        if self.slo is not None:
            frac = self.slo["violation_fraction"]
            lines.append("[slo]")
            lines.append(f"  threshold          : {self.slo['slo_s']:.6g} s")
            lines.append(
                f"  violations         : {self.slo['violations']} of "
                f"{self.slo['measured']} measured"
                + (f" ({100.0 * frac:.1f} %)" if np.isfinite(frac) else " (n/a)")
            )
        if self.faults is not None:
            f = self.faults
            lines.append("[faults]")
            for entry in f.get("injections", []):
                cleared = entry.get("cleared_at")
                lines.append(
                    f"  {entry['mode']:<19}: injected at {entry['t_inject']:.4g} s"
                    + (f", cleared at {cleared:.4g} s" if cleared is not None else ", permanent")
                )
            lines.append(f"  re-dispatched      : {f.get('redispatched', 0)}")
            lines.append(f"  ps fallback        : {f.get('ps_fallback_served', 0)}")
            lines.append(f"  corrupted requests : {f.get('corrupted_requests', 0)}")
            lines.append(f"  replica downtime   : {f.get('replica_downtime_s', 0.0):.4g} s")
        repro = self.reproducibility
        lines.append(
            f"[reproducibility] seed={repro['seed']}  warmup={repro['warmup_s']:.4g} s  "
            f"replicas={repro['replicas']}  ps_cores={repro['ps_cores']}"
            + (f"  fault_seed={repro['fault_seed']}" if "fault_seed" in repro else "")
        )
        if self.note is not None:
            lines.append(f"[note] {self.note}")
        lines.append(f"[engine] {self.events_processed} events processed")
        return "\n".join(lines)

"""Workload layer: request arrivals, per-request mixes and service plans.

Three concerns live here:

* **Arrival processes** — :func:`arrival_times` materialises when requests
  enter the system: evenly spaced (``deterministic``), a Poisson process
  (``poisson``, seeded and reproducible), or an explicit ``trace`` of
  timestamps (replaying a measured log).
* **Request mixes** — :func:`sample_mix` draws each request's architecture
  from a weighted set of scenarios, so one simulation can serve e.g. 70 %
  rODENet-3-56 and 30 % rODENet-1-20 traffic against the same hardware.
* **Service plans** — :func:`build_service_plan` compiles a scenario into the
  exact sequence of PS phases and PL block invocations the analytic
  :class:`~repro.api.evaluator.Evaluator` prices, *decomposed* so each piece
  can contend individually: software layer-group times run on the PS core,
  and every offloaded block execution becomes (input DMA burst, PL compute,
  output DMA burst).  Summed with no contention the plan equals the
  analytic ``total_w_pl_s`` — that identity is the cross-validation the
  differential tests assert — while under load the same plan produces
  queueing behaviour no closed-form formula expresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..api.evaluator import Evaluator
from ..api.scenario import Scenario
from ..core.network_spec import layer_geometry
from ..fpga.axi import AxiTransferModel

__all__ = [
    "ARRIVAL_KINDS",
    "Request",
    "PsSegment",
    "PlExecution",
    "ServicePlan",
    "arrival_times",
    "sample_mix",
    "build_service_plan",
]

#: Supported arrival-process names.
ARRIVAL_KINDS: Tuple[str, ...] = ("deterministic", "poisson", "trace")


# -- requests ----------------------------------------------------------------------------


@dataclass
class Request:
    """One inference request travelling through the simulated system."""

    index: int
    arrival: float
    scenario: Scenario
    completed: Optional[float] = None
    ps_wait: float = 0.0
    pl_wait: float = 0.0
    #: Set by the DMA-corruption fault mode when a bit flip lands in the
    #: request's activations badly enough to saturate the fixed-point
    #: accumulators; a corrupted completion counts as an SLO violation.
    corrupted: bool = False

    @property
    def latency(self) -> float:
        """Sojourn time: arrival to completion (inf while in flight)."""

        return self.completed - self.arrival if self.completed is not None else float("inf")

    @property
    def total_wait(self) -> float:
        return self.ps_wait + self.pl_wait


# -- service plans -----------------------------------------------------------------------


@dataclass(frozen=True)
class PsSegment:
    """A software phase executed on (and contending for) a PS core."""

    layer: str
    seconds: float


@dataclass(frozen=True)
class PlExecution:
    """One offloaded block invocation: input DMA, PL compute, output DMA."""

    layer: str
    words_in: int
    words_out: int
    transfer_in_seconds: float
    transfer_out_seconds: float
    compute_seconds: float
    #: Software time of the same block execution on a PS core — the
    #: degraded-mode price when every PL replica is dead and the dispatcher
    #: falls back to the paper's all-software path for this invocation.
    ps_fallback_seconds: float = 0.0

    @property
    def seconds(self) -> float:
        """Contention-free service time of the whole invocation."""

        return self.transfer_in_seconds + self.compute_seconds + self.transfer_out_seconds


@dataclass(frozen=True)
class ServicePlan:
    """The ordered work a request performs, segment by segment."""

    scenario: Scenario
    segments: Tuple[Union[PsSegment, PlExecution], ...]

    @property
    def total_seconds(self) -> float:
        """No-contention end-to-end service time (= analytic ``total_w_pl_s``)."""

        return sum(s.seconds for s in self.segments)

    @property
    def ps_seconds(self) -> float:
        return sum(s.seconds for s in self.segments if isinstance(s, PsSegment))

    @property
    def pl_executions(self) -> int:
        return sum(1 for s in self.segments if isinstance(s, PlExecution))


def build_service_plan(
    scenario: Scenario,
    evaluator: Optional[Evaluator] = None,
    transfer_model: Optional[AxiTransferModel] = None,
) -> ServicePlan:
    """Compile a scenario into its PS/PL segment sequence.

    The per-layer numbers come from the evaluator's own execution report
    (same offload targets, same solver stages), and the DMA split uses the
    same transfer model the analytic path prices, so
    ``plan.total_seconds == report.total_with_pl`` up to float summation
    order.  Offloaded layers are *not* merged across executions: each block
    invocation is its own (DMA in, compute, DMA out) transaction, which is
    what batching policies and bus contention act on.
    """

    ev = evaluator if evaluator is not None else Evaluator()
    report = ev.execution_report(scenario)
    if transfer_model is None:
        # The board's PL clock prices the DMA bursts (one source of truth
        # with the analytic models — see AxiTransferConfig.for_board).
        from ..fpga.axi import AxiTransferConfig

        transfer_model = AxiTransferModel(AxiTransferConfig.for_board(scenario.board_spec))
    transfers = transfer_model

    segments: List[Union[PsSegment, PlExecution]] = []
    for entry in report.layers:
        if not entry.offloaded or entry.pl_seconds_per_execution is None:
            # Software executions of one layer group run back-to-back on the
            # PS; one segment per group keeps the event count low without
            # changing any timing (the PS is held throughout either way).
            segments.append(PsSegment(layer=entry.layer, seconds=entry.software_seconds))
            continue
        geom = layer_geometry(entry.layer).fpga_geometry()
        t_in = transfers.transfer_seconds(geom.input_elements)
        t_out = transfers.transfer_seconds(geom.output_elements)
        compute = max(0.0, entry.pl_seconds_per_execution - t_in - t_out)
        for _ in range(entry.executions):
            segments.append(
                PlExecution(
                    layer=entry.layer,
                    words_in=geom.input_elements,
                    words_out=geom.output_elements,
                    transfer_in_seconds=t_in,
                    transfer_out_seconds=t_out,
                    compute_seconds=compute,
                    ps_fallback_seconds=entry.software_seconds_per_execution,
                )
            )
    segments.append(PsSegment(layer="overhead", seconds=report.overhead_seconds))
    return ServicePlan(scenario=scenario, segments=tuple(segments))


# -- arrival processes -------------------------------------------------------------------


def arrival_times(
    kind: str,
    rate_hz: Optional[float] = None,
    n_requests: Optional[int] = None,
    duration_s: Optional[float] = None,
    rng: Optional[np.random.Generator] = None,
    trace: Optional[Sequence[float]] = None,
) -> List[float]:
    """Absolute arrival timestamps for one simulation run.

    ``deterministic`` and ``poisson`` need ``rate_hz`` plus at least one stop
    condition (``n_requests`` and/or ``duration_s``; both apply when both are
    given).  ``trace`` replays the given timestamps (which must be sorted and
    non-negative), optionally truncated by the same stop conditions.
    """

    if kind not in ARRIVAL_KINDS:
        raise ValueError(f"unknown arrival process '{kind}'; expected one of {ARRIVAL_KINDS}")
    if kind == "trace":
        if trace is None:
            raise ValueError("trace arrivals need an explicit list of timestamps")
        times = [float(t) for t in trace]
        if any(t < 0 for t in times) or times != sorted(times):
            raise ValueError("trace timestamps must be sorted and non-negative")
    else:
        if rate_hz is None or rate_hz <= 0:
            raise ValueError(f"{kind} arrivals need a positive rate_hz")
        if n_requests is None and duration_s is None:
            raise ValueError("pass n_requests and/or duration_s to bound the arrivals")
        if kind == "deterministic":
            cap = (
                n_requests
                if n_requests is not None
                else int(np.floor(rate_hz * duration_s)) + 1
            )
            times = [i / rate_hz for i in range(cap)]
        else:
            if rng is None:
                rng = np.random.default_rng(0)
            if n_requests is not None:
                times = list(np.cumsum(rng.exponential(1.0 / rate_hz, size=n_requests)))
            else:
                # Unbounded count: draw inter-arrival gaps in chunks until the
                # horizon is passed (a fixed-size draw would bias the tail).
                times = []
                t = 0.0
                chunk = max(16, int(np.ceil(rate_hz * duration_s)))
                while t <= duration_s:
                    for gap in rng.exponential(1.0 / rate_hz, size=chunk):
                        t += gap
                        if t > duration_s:
                            break
                        times.append(t)
    if duration_s is not None:
        times = [t for t in times if t <= duration_s]
    if n_requests is not None:
        times = times[:n_requests]
    return times


def sample_mix(
    mix: Sequence[Tuple[Scenario, float]],
    n: int,
    rng: Optional[np.random.Generator] = None,
) -> List[Scenario]:
    """Draw ``n`` per-request scenarios from a weighted mix (reproducibly).

    Weights need not be normalised; they must be non-negative with a
    positive sum.  A single-entry mix short-circuits to a constant stream.
    """

    if not mix:
        raise ValueError("mix must contain at least one (scenario, weight) entry")
    scenarios = [s for s, _ in mix]
    weights = np.asarray([float(w) for _, w in mix], dtype=np.float64)
    if (weights < 0).any() or weights.sum() <= 0:
        raise ValueError("mix weights must be non-negative with a positive sum")
    if len(mix) == 1:
        return [scenarios[0]] * n
    if rng is None:
        rng = np.random.default_rng(0)
    picks = rng.choice(len(scenarios), size=n, p=weights / weights.sum())
    return [scenarios[int(i)] for i in picks]

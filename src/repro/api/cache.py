"""Persistent on-disk result cache keyed by scenario hash.

:class:`ResultCache` stores one JSON document per evaluated scenario — the
nested :meth:`repro.api.result.Result.as_dict` structure — under a key
derived from the scenario's knobs, so repeated or overlapping design-space
sweeps only pay for the scenarios they have not seen before
(:func:`repro.api.batch.sweep_batch` consults the cache before evaluating
and stores whatever it computes).

The key is a SHA-256 over the canonical JSON of ``scenario.as_dict()`` plus
a cache-format version.  Bump :data:`CACHE_VERSION` whenever the analytic
models change in a way that alters results; old entries then simply miss.
Unreadable or truncated entries are treated as misses, never as errors.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from pathlib import Path
from typing import Dict, Optional

from .batch import (
    ENERGY_KEYS,
    PARAMETER_KEYS,
    RESOURCE_KEYS,
    SCENARIO_KEYS,
    TIMING_KEYS,
    TRAINING_KEYS,
)
from .scenario import Scenario

#: Every key a stored payload must carry, per section.  Entries written by an
#: older schema (e.g. before a metric column was added) fail this check and
#: count as misses, so forgetting a :data:`CACHE_VERSION` bump degrades to a
#: recompute instead of a crash downstream.
_REQUIRED_KEYS = {
    "scenario": SCENARIO_KEYS,
    "parameters": PARAMETER_KEYS,
    "resources": RESOURCE_KEYS,
    "timing": TIMING_KEYS,
    "energy": ENERGY_KEYS,
    "training": TRAINING_KEYS,
}

__all__ = ["ResultCache", "scenario_key", "CACHE_VERSION"]

#: Version tag mixed into every key; bump on model-changing releases.
CACHE_VERSION = "1"


def scenario_key(scenario: Scenario, version: str = CACHE_VERSION) -> str:
    """Stable hash of a scenario's knobs (hex SHA-256).

    The scenario's concrete type is part of the key: a :class:`Scenario`
    subclass may override derived behaviour (that is why the batch engine
    routes subclasses through the loop-engine fallback), so its results must
    never collide with a plain scenario that has the same knobs.
    """

    canonical = json.dumps(scenario.as_dict(), sort_keys=True, separators=(",", ":"))
    kind = f"{type(scenario).__module__}.{type(scenario).__qualname__}"
    digest = hashlib.sha256(f"v{version}:{kind}:{canonical}".encode("utf-8"))
    return digest.hexdigest()


class ResultCache:
    """A directory of per-scenario JSON result documents.

    Entries are sharded by the first two hex digits of the key
    (``<root>/ab/abcdef....json``) to keep directory listings manageable for
    very large sweeps.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, scenario: Scenario) -> Optional[Dict]:
        """The cached nested result dictionary, or ``None`` on a miss.

        Corrupt, unreadable or schema-stale entries count as misses (the
        caller recomputes and overwrites them), never as errors.
        """

        path = self._path(scenario_key(scenario))
        try:
            with path.open("r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self.misses += 1
            return None
        for section, keys in _REQUIRED_KEYS.items():
            entry = payload.get(section)
            if not isinstance(entry, dict) or any(key not in entry for key in keys):
                self.misses += 1
                return None
        self.hits += 1
        return payload

    def put(self, scenario: Scenario, payload: Dict) -> None:
        """Store a nested result dictionary for a scenario (atomic replace).

        The temp file gets a unique name so concurrent sweeps sharing one
        cache directory never interleave writes; last rename wins.
        """

        path = self._path(scenario_key(scenario))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.stem, suffix=".tmp", dir=path.parent
        )
        try:
            with open(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            Path(tmp_name).replace(path)
        except BaseException:
            Path(tmp_name).unlink(missing_ok=True)
            raise

    def __len__(self) -> int:
        """Number of stored entries (walks the cache directory)."""

        return sum(1 for _ in self.root.glob("*/*.json"))

    # -- introspection / maintenance ---------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Lookup counters plus the on-disk footprint.

        ``hits``/``misses``/``hit_rate`` count :meth:`get` calls on *this*
        instance (the lifetime of one sweep); ``entries`` and ``bytes`` walk
        the directory, so they reflect everything ever stored under the
        root, including by other processes.
        """

        entries = 0
        size = 0
        for path in self.root.glob("*/*.json"):
            entries += 1
            try:
                size += path.stat().st_size
            except OSError:
                pass
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "entries": entries,
            "bytes": size,
        }

    def prune(self, max_entries: int) -> int:
        """Shrink the cache to at most ``max_entries``, oldest entries first.

        Age is the file modification time (refreshed on every overwrite, so
        recently recomputed entries survive).  Returns the number of entries
        removed; missing files (a concurrent prune) are skipped silently.
        """

        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        entries = []
        for path in self.root.glob("*/*.json"):
            try:
                entries.append((path.stat().st_mtime, str(path), path))
            except OSError:
                pass
        excess = len(entries) - max_entries
        if excess <= 0:
            return 0
        entries.sort()
        removed = 0
        for _, _, path in entries[:excess]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def clear(self) -> None:
        """Delete every stored entry (the directory itself is kept)."""

        for path in self.root.glob("*/*.json"):
            path.unlink()

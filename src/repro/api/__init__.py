"""Unified scenario/evaluator API: one entry point for every analysis.

The flow is ``Scenario -> Evaluator -> Result``:

>>> from repro.api import Scenario, Evaluator
>>> ev = Evaluator()
>>> result = ev.evaluate(Scenario(model="rODENet-3", depth=56, n_units=16))
>>> round(result.timing["overall_speedup"], 2)
2.66

and design-space grids run through :func:`sweep`:

>>> from repro.api import scenario_grid, sweep
>>> results = sweep(scenario_grid(models=("rODENet-3",), depths=(20, 56),
...                               n_units=(8, 16)), workers=4)
>>> len(results)
4

Large grids run through the vectorized batch engine, which computes the same
models over whole scenario axes as NumPy arrays (bit-identical results, one
to two orders of magnitude faster):

>>> from repro.api import sweep_batch
>>> table = sweep_batch(scenario_grid(models=("rODENet-3",), depths=(20, 56),
...                                   n_units=(8, 16)))
>>> len(table.pareto_front("total_w_pl_s", "bram"))  # latency/BRAM trade-off
1

The numerical axis — how far each fixed-point format drifts from the float
mathematics — runs through :func:`accuracy_sweep`, which measures batched
multi-image forward passes of the bit-accurate PL datapath per Q-format and
reports the accuracy/latency/BRAM frontier:

>>> from repro.api import accuracy_sweep
>>> frontier = accuracy_sweep("layer3_2", images=4).pareto_front()

Multi-request serving scenarios (arrival processes, replicated PL
accelerators, dispatch policies) run through the discrete-event simulator:

>>> from repro.api import SimScenario, simulate
>>> report = simulate(SimScenario(model="rODENet-3", depth=20, arrival="poisson",
...                               arrival_rate_hz=2.0, n_requests=20, replicas=1))
>>> report.requests["completed"]
20

Fleet-scale serving — heterogeneous multi-board clusters behind a
load-balancer tier with SLO admission, per-class routing and reactive
autoscaling — runs through :func:`simulate_fleet` (optionally sharded over
a process pool; the shard count never changes the numbers):

>>> from repro.api import FleetScenario, BoardGroup, simulate_fleet
>>> fleet = simulate_fleet(FleetScenario(
...     boards=(BoardGroup("PYNQ-Z2", 8), BoardGroup("ZCU104", 4)),
...     arrival_rate_hz=100.0, n_requests=1000, cells=4), shards=4)

Constrained design-space *search* — "cheapest candidate meeting these
bounds" without evaluating the whole grid — runs through :func:`optimize`
over a declarative :class:`SearchSpace` (analytic screening plus
successive-halving simulation refinement, full provenance trace):

>>> from repro.api import SearchSpace, optimize
>>> report = optimize(
...     SearchSpace(axes={"board": ("PYNQ-Z2", "ZCU104"), "n_units": (16, 32)}),
...     objective="board_price_usd", constraints=("meets_timing==1",))
>>> report.best["values"]["board"]
'PYNQ-Z2'

Everything the CLI, the examples and the benchmarks print is derived from
these objects; see the package README for the quickstart.
"""

from .accuracy import AccuracyPoint, AccuracySweepResult, accuracy_sweep
from .rtl import export_rtl
from .batch import BatchResult, pareto_indices, sweep_batch
from .cache import ResultCache
from .evaluator import TRAINING_PROJECTION_KEYS, Evaluator
from .result import Result
from .scenario import (
    BOARDS,
    DEFAULT_FRACTION_BITS,
    SCENARIO_MODELS,
    Scenario,
    fraction_bits_for,
    scenario_grid,
)
from .sweep import SweepError, results_to_csv, results_to_json, results_to_records, sweep

# The system simulator and the fault-injection workbench live in repro.sim /
# repro.faults but are part of the public API surface.  These imports must
# stay below the submodule imports above: both packages pull
# Scenario/Evaluator from this package's submodules.
from ..sim import SimReport, SimScenario, simulate
from ..faults import FmeaStudy, default_fault_domain, make_fault_mode, run_fmea
from ..fleet import BoardGroup, FleetReport, FleetScenario, TrafficClass, simulate_fleet
from ..opt import Constraint, Objective, OptReport, SearchSpace, optimize

__all__ = [
    "SearchSpace",
    "optimize",
    "OptReport",
    "Constraint",
    "Objective",
    "SimScenario",
    "simulate",
    "SimReport",
    "FleetScenario",
    "FleetReport",
    "BoardGroup",
    "TrafficClass",
    "simulate_fleet",
    "FmeaStudy",
    "run_fmea",
    "default_fault_domain",
    "make_fault_mode",
    "Scenario",
    "scenario_grid",
    "fraction_bits_for",
    "SCENARIO_MODELS",
    "BOARDS",
    "DEFAULT_FRACTION_BITS",
    "Evaluator",
    "TRAINING_PROJECTION_KEYS",
    "Result",
    "sweep",
    "SweepError",
    "sweep_batch",
    "BatchResult",
    "ResultCache",
    "pareto_indices",
    "accuracy_sweep",
    "export_rtl",
    "AccuracySweepResult",
    "AccuracyPoint",
    "results_to_csv",
    "results_to_json",
    "results_to_records",
]

"""The :class:`Scenario` design point: one architecture/hardware configuration.

Every analysis in the paper — Tables 2–5, Figures 5–6, the offload, energy
and training studies — is a function of the same handful of knobs:

* which architecture (``model``) at which depth (``depth``),
* how many MAC units the PL ODEBlock instantiates (``n_units``),
* the fixed-point format of the PL datapath (``word_length`` /
  ``fraction_bits``, i.e. the Q-format),
* the ODE solver used for the block dynamics (``solver``; Euler in the
  paper, higher-order Runge–Kutta for the ablation),
* the board and its PL clock (``board`` / ``pl_clock_hz``).

A :class:`Scenario` bundles those knobs into one frozen, hashable, validated
value object.  Hashability is what makes design-space sweeps cheap: the
:class:`repro.api.evaluator.Evaluator` memoizes per scenario, and
:func:`repro.api.sweep.sweep` fans thousands of scenarios out over a worker
pool without re-deriving anything.

Use :func:`scenario_grid` to build the cartesian product of several knob
axes (the design-space grid the ``repro-odenet sweep`` subcommand runs).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.execution_model import PAPER_OFFLOAD_TARGETS, TABLE5_MODELS
from ..core.variants import SUPPORTED_DEPTHS, VARIANT_NAMES, variant_spec
from ..fixedpoint.qformat import QFormat
from ..platform import BOARDS, BoardSpec, PYNQ_Z2, get_board, list_boards
from ..ode.solvers import available_methods, get_solver

__all__ = [
    "Scenario",
    "scenario_grid",
    "fraction_bits_for",
    "SCENARIO_MODELS",
    "DEFAULT_FRACTION_BITS",
    "BOARDS",
]


#: Model names a scenario accepts: the Table-4 variants plus the Table-5 row
#: name "ODENet-3" (ODENet-N with only layer3_2 offloaded).
SCENARIO_MODELS: Tuple[str, ...] = tuple(VARIANT_NAMES) + ("ODENet-3",)

#: Conventional fraction bits per word length (the paper's Q20 at 32 bits and
#: the footnote-2 reduced-precision formats).  Used when a grid axis names a
#: word length without an explicit fraction length.
DEFAULT_FRACTION_BITS: Dict[int, int] = {32: 20, 16: 8, 12: 6, 8: 4}

_CANONICAL_MODELS = {name.lower(): name for name in SCENARIO_MODELS}


@dataclass(frozen=True)
class Scenario:
    """One point of the design space (frozen, hashable, validated).

    Raises :class:`ValueError` on construction for an unknown model, a depth
    outside the CIFAR ResNet family or incompatible with the variant's
    execution budget, a non-positive MAC-unit count, an invalid Q-format, an
    unknown solver, or an unknown board.
    """

    model: str = "rODENet-3"
    depth: int = 56
    n_units: int = 16
    word_length: int = 32
    fraction_bits: int = 20
    solver: str = "euler"
    board: str = PYNQ_Z2.name
    pl_clock_hz: Optional[float] = None

    def __post_init__(self) -> None:
        canonical = _CANONICAL_MODELS.get(str(self.model).lower())
        if canonical is None:
            raise ValueError(
                f"unknown model '{self.model}'; expected one of {SCENARIO_MODELS}"
            )
        object.__setattr__(self, "model", canonical)

        # Depth validation (divisibility and execution-budget checks) is
        # delegated to the Table-4 construction, the single source of truth.
        variant_spec(self.variant, self.depth)

        # No upper bound: the cycle model caps effective parallelism by the
        # block's output channels, and oversizing only wastes resources —
        # both are findings a sweep should surface, not reject.
        if not isinstance(self.n_units, int) or self.n_units < 1:
            raise ValueError(
                f"n_units must be a positive integer (got {self.n_units!r})"
            )

        # QFormat.__post_init__ validates word/fraction lengths.
        QFormat(self.word_length, self.fraction_bits)

        solver_key = str(self.solver).lower()
        if solver_key not in available_methods():
            raise ValueError(
                f"unknown solver '{self.solver}'; available: {', '.join(available_methods())}"
            )
        object.__setattr__(self, "solver", solver_key)

        try:
            spec = get_board(self.board)
        except KeyError:
            # Mirror BramPlan.region()'s style: name the miss, list what is
            # registered (ValueError here — construction-argument validation).
            available = ", ".join(list_boards()) or "(none)"
            raise ValueError(
                f"unknown board '{self.board}'; registered boards: {available}"
            ) from None
        if self.pl_clock_hz is None:
            object.__setattr__(self, "pl_clock_hz", spec.pl_clock_hz)
        elif self.pl_clock_hz <= 0:
            raise ValueError("pl_clock_hz must be positive")

    # -- derived views ---------------------------------------------------------------

    @property
    def variant(self) -> str:
        """The underlying Table-4 variant name ("ODENet-3" rows use ODENet)."""

        return "ODENet" if self.model == "ODENet-3" else self.model

    @property
    def full_name(self) -> str:
        return f"{self.model}-{self.depth}"

    @property
    def qformat(self) -> QFormat:
        return QFormat(self.word_length, self.fraction_bits)

    @property
    def board_spec(self) -> BoardSpec:
        """The board, with the PL clock overridden when the scenario asks."""

        base = get_board(self.board)
        if self.pl_clock_hz == base.pl_clock_hz:
            return base
        return dataclasses.replace(base, pl_clock_hz=self.pl_clock_hz)

    @property
    def solver_stages(self) -> int:
        """Dynamics evaluations per solver step (1 for Euler, 4 for RK4)."""

        return get_solver(self.solver).stages_per_step

    @property
    def paper_offload_targets(self) -> Tuple[str, ...]:
        return PAPER_OFFLOAD_TARGETS.get(self.model, ())

    # -- conversion ------------------------------------------------------------------

    def replace(self, **changes) -> "Scenario":
        """A copy of this scenario with some knobs changed (re-validated).

        Changing ``board`` re-derives a *defaulted* ``pl_clock_hz`` from the
        new board (the resolved clock is only kept when it was an explicit
        override of the old board's default) — otherwise every board swap
        would silently freeze the old board's clock into the copy.
        """

        if "board" in changes and "pl_clock_hz" not in changes:
            if self.pl_clock_hz == get_board(self.board).pl_clock_hz:
                changes["pl_clock_hz"] = None
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "depth": self.depth,
            "n_units": self.n_units,
            "word_length": self.word_length,
            "fraction_bits": self.fraction_bits,
            "solver": self.solver,
            "board": self.board,
            "pl_clock_hz": self.pl_clock_hz,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Scenario":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
        return cls(**data)


def fraction_bits_for(word_length: int, fraction_bits: Optional[int] = None) -> int:
    """Resolve the fraction length for a word length (conventional default).

    An explicit ``fraction_bits`` wins; otherwise the conventional Q-format
    of :data:`DEFAULT_FRACTION_BITS` applies, and an unconventional word
    length without an explicit fraction raises :class:`ValueError`.
    """

    if fraction_bits is not None:
        return fraction_bits
    if word_length in DEFAULT_FRACTION_BITS:
        return DEFAULT_FRACTION_BITS[word_length]
    raise ValueError(
        f"no conventional fraction length for a {word_length}-bit word; "
        "pass fraction_bits explicitly"
    )


def scenario_grid(
    models: Sequence[str] = TABLE5_MODELS,
    depths: Sequence[int] = SUPPORTED_DEPTHS,
    n_units: Sequence[int] = (16,),
    word_lengths: Sequence[int] = (32,),
    solvers: Sequence[str] = ("euler",),
    fraction_bits: Optional[int] = None,
    qformats: Optional[Sequence[Tuple[int, int]]] = None,
    boards: Optional[Sequence[str]] = None,
    **common,
) -> List[Scenario]:
    """Cartesian product of knob axes as a list of validated scenarios.

    The iteration order is deterministic (models outermost, boards
    innermost) so sweep outputs are stable row-for-row.  ``common`` passes
    fixed fields (e.g. ``board=...``) to every scenario.

    The Q-format axis comes either from ``word_lengths`` (each resolved to
    its conventional fraction length, or to a single explicit
    ``fraction_bits``) or — for sweeps that vary both knobs independently,
    e.g. the million-key plan-kernel grids — from ``qformats``, an explicit
    sequence of ``(word_length, fraction_bits)`` pairs that then replaces
    the ``word_lengths`` axis.

    ``boards`` makes the platform a sweep axis: every registered board name
    (see :func:`repro.platform.list_boards`) is crossed with the other
    knobs.  It replaces a fixed ``board=...`` in ``common`` (passing both
    is an error).
    """

    if qformats is not None:
        if fraction_bits is not None:
            raise ValueError("pass either qformats or fraction_bits, not both")
        format_axis = [(int(wl), int(fb)) for wl, fb in qformats]
    else:
        format_axis = [(wl, fraction_bits_for(wl, fraction_bits)) for wl in word_lengths]
    if boards is not None:
        if "board" in common:
            raise ValueError("pass either boards (an axis) or board (a fixed knob), not both")
        board_axis: List[Optional[str]] = [str(b) for b in boards]
    else:
        board_axis = [common.pop("board")] if "board" in common else [None]
    grid: List[Scenario] = []
    for model in models:
        for depth in depths:
            for units in n_units:
                for wl, fb in format_axis:
                    for solver in solvers:
                        for board in board_axis:
                            board_kw = {} if board is None else {"board": board}
                            grid.append(
                                Scenario(
                                    model=model,
                                    depth=depth,
                                    n_units=units,
                                    word_length=wl,
                                    fraction_bits=fb,
                                    solver=solver,
                                    **board_kw,
                                    **common,
                                )
                            )
    return grid

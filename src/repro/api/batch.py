"""Vectorized batch-evaluation engine for large design-space sweeps.

The loop engine (:func:`repro.api.sweep.sweep`) evaluates one scenario per
Python call — fine for dozens of design points, GIL-bound Python overhead for
thousands.  This module computes the same analytic models (parameter counts,
the cycle/time model, AXI transfer, resource and power/energy estimates, the
training projection) over whole scenario *axes* as NumPy arrays:

* per-scenario quantities (MAC units, Q-format, PL/PS clocks, solver stages,
  the board's device vector — fabric totals, delay scale, wattages) are
  evaluated with the array-capable kernels the scalar models now expose
  (:func:`repro.core.execution_model.pl_layer_seconds_kernel`,
  :func:`repro.fpga.resources.lut_count_kernel`,
  :func:`repro.fpga.bram.bram_tiles_kernel`,
  :func:`repro.fpga.timing.critical_path_ns_kernel`,
  :func:`repro.fpga.power.pl_power_kernel`, ...).  Since phase 2, BRAM
  plans and timing closure are closed-form array kernels too — a grid may
  vary the Q-format / ``n_units`` / clock axes over millions of distinct
  plan keys without ever touching the scalar planner;
* quantities that are genuinely structural (the Table-4 layer plans and
  offload targets per ``(model, depth)``, the published accuracy points)
  are computed once per unique key with the *scalar* code path and
  broadcast by integer codes — those axes are enumerable, not numeric.

Because both paths execute the same IEEE-754 operations in the same order,
the batch engine is **bit-identical** to the loop engine: for any grid,
``sweep_batch(grid).to_results() == sweep(grid)`` field-for-field (enforced
by ``tests/api/test_batch.py``).

The result is a :class:`BatchResult` — a columnar table with ``to_csv`` /
``to_json`` export, flat ``records()``, lossless ``to_results()``
reconstruction and Pareto-front extraction over any two metric columns.

Scenarios the vector path cannot handle (e.g. :class:`Scenario` subclasses
that override derived behaviour) fall back to the loop engine, fanned out
over a ``ProcessPoolExecutor``.  An optional persistent
:class:`~repro.api.cache.ResultCache` makes repeated sweeps incremental.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.accuracy_model import accuracy_model
from ..core.execution_model import (
    ExecutionTimeModel,
    PAPER_OFFLOAD_TARGETS,
    pl_layer_seconds_kernel,
)
from ..core.network_spec import LAYER_ORDER, OFFLOADABLE_LAYER_NAMES, layer_geometry
from ..core.offload import OffloadPlanner
from ..core.parameter_model import variant_parameter_count
from ..core.training_model import TrainingCostConfig
from ..core.variants import BlockRealization, variant_spec
from ..fixedpoint.qformat import QFormat
from ..fpga.bram import bram_tiles_kernel
from ..fpga.power import (
    PowerModelConfig,
    energy_without_pl_kernel,
    pl_power_kernel,
    ps_energy_with_pl_kernel,
)
from ..fpga.resources import (
    ResourceModelConfig,
    dsp_count_kernel,
    ff_count_kernel,
    lut_count_kernel,
)
from ..platform import DEFAULT_BOARD, PowerProfile, get_board
from ..fpga.timing import TimingModel, critical_path_ns_kernel, meets_timing_kernel
from ..hwsw.ps_model import work_time_kernel
from ..ode.solvers import get_solver
from .result import Result, _flatten_value
from .scenario import Scenario

__all__ = ["BatchResult", "sweep_batch", "pareto_indices"]


# -- column schema -----------------------------------------------------------------------
#
# Flat column order matches Result.flat_dict() exactly: scenario knobs first,
# then each section's keys in section order, duplicates ("model", "N")
# emitted once.

SCENARIO_KEYS: Tuple[str, ...] = (
    "model", "depth", "n_units", "word_length", "fraction_bits", "solver", "board", "pl_clock_hz",
)
PARAMETER_KEYS: Tuple[str, ...] = (
    "variant", "qformat", "param_count", "param_bytes", "accuracy_pct", "accuracy_stable",
)
RESOURCE_KEYS: Tuple[str, ...] = (
    "bram", "dsp", "lut", "ff", "bram_pct", "dsp_pct", "lut_pct", "ff_pct",
    "targets", "fits_device", "meets_timing",
)
TIMING_KEYS: Tuple[str, ...] = (
    "offload_target", "total_wo_pl_s", "target_wo_pl_s", "ratio_of_target_pct",
    "target_w_pl_s", "total_w_pl_s", "overall_speedup", "speedup_vs_resnet", "solver_stages",
)
ENERGY_KEYS: Tuple[str, ...] = (
    "energy_without_pl_J", "energy_with_pl_J", "energy_ratio", "time_speedup",
)
TRAINING_KEYS: Tuple[str, ...] = (
    "offload", "train_step_sw_s", "train_step_offloaded_s", "target_share_pct",
    "step_speedup", "epoch_hours_software", "epoch_hours_offloaded",
    "full_run_days_software", "full_run_days_offloaded",
)

FLAT_COLUMNS: Tuple[str, ...] = (
    SCENARIO_KEYS + PARAMETER_KEYS + RESOURCE_KEYS + TIMING_KEYS + ENERGY_KEYS + TRAINING_KEYS
)

#: Columns whose cells are per-target lists (joined with " / " in flat views).
LIST_COLUMNS: Tuple[str, ...] = (
    "targets", "target_wo_pl_s", "ratio_of_target_pct", "target_w_pl_s",
)


#: Section each flat (non-scenario) column lives in, for nested-dict I/O.
_SECTION_OF: Dict[str, str] = {}
for _section, _keys in (
    ("parameters", PARAMETER_KEYS),
    ("resources", RESOURCE_KEYS),
    ("timing", TIMING_KEYS),
    ("energy", ENERGY_KEYS),
    ("training", TRAINING_KEYS),
):
    for _key in _keys:
        _SECTION_OF[_key] = _section


def _py(value):
    """NumPy scalar -> native Python scalar (no-op for everything else)."""

    return value.item() if isinstance(value, np.generic) else value


# -- per-unique-key facts ----------------------------------------------------------------


class _BatchContext:
    """Board-independent per-layer constants plus caches over the few unique
    sweep keys.

    Everything here reproduces what one :class:`Evaluator` would derive,
    split along the board axis: *cycle counts* (software work, AXI words)
    are stored clock-free and divided by per-scenario clock columns in
    :func:`_compute_columns`; structural facts (the Table-4 layer plans,
    offload targets, accuracy points) are cached per unique key and
    broadcast by integer codes.
    """

    def __init__(self) -> None:
        self.execution_model = ExecutionTimeModel()
        self.planner = OffloadPlanner(execution_model=self.execution_model)
        self.timing_model = TimingModel()
        self.resource_config = ResourceModelConfig()
        self.power_config = PowerModelConfig()
        self.training_config = TrainingCostConfig()
        ps = self.execution_model.software_model
        self.ps_config = ps.config
        self.cycle_config = self.execution_model.cycle_model.config
        #: Reference per-image overhead (seconds at the reference PS clock);
        #: scaled per board by the clock ratio, exactly like
        #: :meth:`repro.hwsw.ps_model.PsModelConfig.for_board`.
        self.base_overhead = ps.per_image_overhead()
        #: Clock-free PS cycles of one layer-group execution.
        self.software_cycles: Dict[str, float] = {}
        for layer in LAYER_ORDER:
            geom = layer_geometry(layer)
            self.software_cycles[layer] = ps.work_cycles(
                geom.macs, geom.out_elements, geom.elementwise_passes
            )
        self.geometries = {
            layer: layer_geometry(layer).fpga_geometry() for layer in OFFLOADABLE_LAYER_NAMES
        }
        #: Clock-free AXI cycles of one block round trip.
        self.transfer_cycles = {
            layer: self.execution_model.transfer_model.block_round_trip(geom).cycles
            for layer, geom in self.geometries.items()
        }
        self._variant_cache: Dict[Tuple[str, int], dict] = {}
        self._resnet_exec_cache: Dict[int, Tuple[int, ...]] = {}

    def variant_facts(self, model: str, depth: int) -> dict:
        key = (model, depth)
        try:
            return self._variant_cache[key]
        except KeyError:
            pass
        variant = "ODENet" if model == "ODENet-3" else model
        spec = variant_spec(variant, depth)
        targets = tuple(self.planner.proposed_targets(model, depth))
        train_targets = tuple(PAPER_OFFLOAD_TARGETS.get(model, ()))
        try:
            point = accuracy_model(variant, depth)
            accuracy = (point.accuracy_percent, point.stable)
        except KeyError:
            accuracy = (None, None)
        facts = {
            "variant": variant,
            "targets": targets,
            "train_targets": train_targets,
            "offload_target_str": "/".join(targets) or "-",
            "train_offload_str": "/".join(train_targets) or "-",
            "exec0": tuple(spec.plan(layer).total_executions for layer in LAYER_ORDER),
            "ode": tuple(
                spec.plan(layer).realization == BlockRealization.ODEBLOCK for layer in LAYER_ORDER
            ),
            "param_count": variant_parameter_count(variant, depth),
            "accuracy": accuracy,
        }
        return self._variant_cache.setdefault(key, facts)

    def resnet_exec(self, depth: int) -> Tuple[int, ...]:
        """ResNet-N execution counts per layer (the speedup baseline's shape).

        Board-free: the baseline's *seconds* are assembled per scenario from
        these counts and the per-board PS clock column.
        """

        try:
            return self._resnet_exec_cache[depth]
        except KeyError:
            spec = variant_spec("ResNet", depth)
            counts = tuple(spec.plan(layer).total_executions for layer in LAYER_ORDER)
            return self._resnet_exec_cache.setdefault(depth, counts)



_CONTEXT: Optional[_BatchContext] = None


def _context() -> _BatchContext:
    global _CONTEXT
    if _CONTEXT is None:
        _CONTEXT = _BatchContext()
    return _CONTEXT


def clear_context_cache() -> None:
    """Drop the shared per-unique-key caches (cold-start benchmarking, or to
    bound memory in a long-lived process sweeping many distinct keys)."""

    global _CONTEXT
    _CONTEXT = None


def _codes(keys: Sequence) -> Tuple[np.ndarray, List]:
    """Factorize a sequence of hashables into integer codes + unique values."""

    index: Dict = {}
    uniques: List = []
    codes = np.empty(len(keys), dtype=np.intp)
    for i, key in enumerate(keys):
        code = index.get(key)
        if code is None:
            code = len(uniques)
            index[key] = code
            uniques.append(key)
        codes[i] = code
    return codes, uniques


# -- the vector computation --------------------------------------------------------------


def _compute_columns(scenarios: Sequence[Scenario]) -> Dict[str, object]:
    """Evaluate every scenario; returns the full flat column dictionary."""

    ctx = _context()
    n = len(scenarios)

    units = np.array([s.n_units for s in scenarios], dtype=np.int64)
    clock = np.array([s.pl_clock_hz for s in scenarios], dtype=np.float64)

    md_codes, md_keys = _codes([(s.model, s.depth) for s in scenarios])
    facts = [ctx.variant_facts(m, d) for m, d in md_keys]
    sv_codes, sv_keys = _codes([s.solver for s in scenarios])
    stages = np.array([get_solver(k).stages_per_step for k in sv_keys], dtype=np.int64)[sv_codes]
    qf_codes, qf_keys = _codes([(s.word_length, s.fraction_bits) for s in scenarios])
    bd_codes, bd_keys = _codes([s.board for s in scenarios])
    # One storage-width array serves both the BRAM kernel and param_bytes.
    bpv = np.array([QFormat(wl, fb).bytes_per_value for wl, fb in qf_keys], dtype=np.int64)[qf_codes]

    # -- per-board device vectors (the platform axis, broadcast by codes) ---------------
    boards = [get_board(name) for name in bd_keys]
    ps_clock = np.array([b.ps_clock_hz for b in boards], dtype=np.float64)[bd_codes]
    fabric_scale = np.array([b.fabric_delay_scale for b in boards], dtype=np.float64)[bd_codes]
    # Per-image overhead scales with the PS clock, exactly like
    # PsModelConfig.for_board (ratio is exactly 1.0 on the reference board).
    overhead = ctx.base_overhead * (DEFAULT_BOARD.ps_clock_hz / ps_clock)

    def broadcast(values, dtype=None) -> np.ndarray:
        """Per-unique (model, depth) values -> a per-scenario column."""

        return np.asarray(values, dtype=dtype)[md_codes]

    exec0_table = np.array([f["exec0"] for f in facts], dtype=np.int64)
    ode_table = np.array([f["ode"] for f in facts], dtype=bool)
    target_table = np.array(
        [[layer in f["targets"] for layer in LAYER_ORDER] for f in facts], dtype=bool
    )
    train_target_table = np.array(
        [[layer in f["train_targets"] for layer in LAYER_ORDER] for f in facts], dtype=bool
    )

    # -- per-layer time columns (the Table-5 row, vectorized) ---------------------------
    rc = ctx.resource_config
    exec0_cols: Dict[str, np.ndarray] = {}
    sw_per_exec: Dict[str, np.ndarray] = {}
    sw_cols: Dict[str, np.ndarray] = {}
    acc_cols: Dict[str, np.ndarray] = {}
    pl_cols: Dict[str, np.ndarray] = {}
    offl_cols: Dict[str, np.ndarray] = {}
    total_wo = np.zeros(n, dtype=np.float64)
    total_w = np.zeros(n, dtype=np.float64)
    for i, layer in enumerate(LAYER_ORDER):
        exec0_col = exec0_table[md_codes, i]
        execs = exec0_col * np.where(ode_table[md_codes, i], stages, 1)
        # Clock-free layer cycles over the per-board PS clock column — the
        # same (cycles / clock) expression the scalar work_time_kernel runs.
        per_exec = ctx.software_cycles[layer] / ps_clock
        sw_col = execs * per_exec
        if layer in OFFLOADABLE_LAYER_NAMES:
            offl = target_table[md_codes, i]
            transfer_seconds = ctx.transfer_cycles[layer] / clock
            pl_per_exec = pl_layer_seconds_kernel(
                ctx.geometries[layer], units, clock, ctx.cycle_config, transfer_seconds
            )
            acc_col = np.where(offl, execs * pl_per_exec, sw_col)
            pl_cols[layer] = pl_per_exec
            offl_cols[layer] = offl
        else:
            acc_col = sw_col
        exec0_cols[layer] = exec0_col
        sw_per_exec[layer] = per_exec
        sw_cols[layer] = sw_col
        acc_cols[layer] = acc_col
        total_wo = total_wo + sw_col
        total_w = total_w + acc_col
    total_wo = total_wo + overhead
    total_w = total_w + overhead

    has_targets = target_table[md_codes].any(axis=1)
    overall_speedup = np.where(has_targets, total_wo / total_w, 1.0)
    # ResNet-N software baseline per scenario: per-depth execution counts
    # over this row's board clock (the scalar evaluator's _resnet_baseline).
    dp_codes, dp_keys = _codes([s.depth for s in scenarios])
    resnet_exec_table = np.array([ctx.resnet_exec(d) for d in dp_keys], dtype=np.int64)
    baseline = np.zeros(n, dtype=np.float64)
    for i, layer in enumerate(LAYER_ORDER):
        baseline = baseline + resnet_exec_table[dp_codes, i] * sw_per_exec[layer]
    baseline = baseline + overhead
    speedup_vs_resnet = baseline / total_w

    # -- resources ---------------------------------------------------------------------
    dsp_per_layer = dsp_count_kernel(units, rc.dsp_base, rc.dsp_per_unit)
    res = {k: np.zeros(n, dtype=np.float64) for k in ("bram", "dsp", "lut", "ff")}
    for i, layer in enumerate(OFFLOADABLE_LAYER_NAMES):
        offl = offl_cols[layer]
        geom = ctx.geometries[layer]
        # Closed-form BRAM plan over the whole Q-format axis (phase 2): the
        # tile count is capacity-driven, so it depends on the storage bytes
        # per value, never on n_units (banking only redistributes words).
        res["bram"] = res["bram"] + np.where(offl, bram_tiles_kernel(geom, bpv), 0.0)
        res["dsp"] = res["dsp"] + np.where(offl, dsp_per_layer, 0.0)
        res["lut"] = res["lut"] + np.where(
            offl,
            lut_count_kernel(units, geom.out_channels, rc.lut_base, rc.lut_per_unit, rc.lut_per_unit_per_channel),
            0.0,
        )
        res["ff"] = res["ff"] + np.where(
            offl,
            ff_count_kernel(units, geom.out_channels, rc.ff_base, rc.ff_per_unit, rc.ff_per_unit_per_channel),
            0.0,
        )
    totals = {
        "bram": np.array([b.fpga.bram36 for b in boards], dtype=np.float64)[bd_codes],
        "dsp": np.array([b.fpga.dsp for b in boards], dtype=np.float64)[bd_codes],
        "lut": np.array([b.fpga.lut for b in boards], dtype=np.float64)[bd_codes],
        "ff": np.array([b.fpga.ff for b in boards], dtype=np.float64)[bd_codes],
    }
    pct = {k: 100.0 * res[k] / totals[k] for k in res}
    fits = (
        (res["bram"] <= totals["bram"])
        & (res["dsp"] <= totals["dsp"])
        & (res["lut"] <= totals["lut"])
        & (res["ff"] <= totals["ff"])
    )
    # Closed-form timing closure over the n_units x clock x board axes; the
    # per-board fabric scale multiplies both delay constants, exactly like
    # TimingModelConfig.for_board, so scalar and batch paths agree
    # bit-for-bit.
    timing_cfg = ctx.timing_model.config
    critical_path = critical_path_ns_kernel(
        units,
        timing_cfg.base_delay_ns * fabric_scale,
        timing_cfg.per_level_delay_ns * fabric_scale,
    )
    meets = meets_timing_kernel(critical_path, clock)

    # -- energy ------------------------------------------------------------------------
    # Per-board wattage columns wearing the PowerModelConfig interface: the
    # kernels only read the config's attributes, so arrays broadcast through
    # the same formulas the scalar PowerModel runs.  Fields are enumerated
    # from PowerProfile (whose names PowerModelConfig must mirror — a new
    # profile coefficient without its twin raises TypeError here).
    power_cfg = PowerModelConfig(
        **{
            f.name: np.array([getattr(b.power, f.name) for b in boards])[bd_codes]
            for f in dataclasses.fields(PowerProfile)
        }
    )
    pl_busy = np.zeros(n, dtype=np.float64)
    for layer in OFFLOADABLE_LAYER_NAMES:
        pl_busy = pl_busy + np.where(offl_cols[layer], acc_cols[layer], 0.0)
    energy_without = energy_without_pl_kernel(total_wo, power_cfg) + 0.0
    ps_energy = ps_energy_with_pl_kernel(total_w, pl_busy, power_cfg)
    pl_energy = pl_power_kernel(res["dsp"], res["bram"], power_cfg) * total_w
    energy_with = ps_energy + pl_energy
    energy_ratio = np.where(energy_with != 0.0, energy_without / energy_with, np.inf)

    # -- training (the future-work projection) -----------------------------------------
    tc = ctx.training_config
    factor = 1.0 + tc.backward_mac_factor
    train_sw = overhead + np.zeros(n, dtype=np.float64)
    train_off = overhead + np.zeros(n, dtype=np.float64)
    target_sw = np.zeros(n, dtype=np.float64)
    for i, layer in enumerate(LAYER_ORDER):
        sw_train = exec0_cols[layer] * (sw_per_exec[layer] * factor)
        train_sw = train_sw + sw_train
        if layer in OFFLOADABLE_LAYER_NAMES:
            train_offl = train_target_table[md_codes, i]
            pl_train = exec0_cols[layer] * (pl_cols[layer] * factor)
            train_off = train_off + np.where(train_offl, pl_train, sw_train)
            target_sw = target_sw + np.where(train_offl, sw_train, 0.0)
        else:
            train_off = train_off + sw_train
    param_count = broadcast([f["param_count"] for f in facts], np.int64)
    ps_cfg = ctx.ps_config
    update = work_time_kernel(
        0.0, param_count, tc.optimizer_passes,
        ps_cfg.cycles_per_mac, ps_cfg.cycles_per_element, ps_clock,
    )
    train_sw = train_sw + update
    train_off = train_off + update
    target_share = 100.0 * target_sw / train_sw
    step_speedup = train_sw / train_off
    images = tc.images_per_epoch
    epoch_sw = train_sw * images
    epoch_off = train_off * images
    epoch_hours_sw = epoch_sw / 3600.0
    epoch_hours_off = epoch_off / 3600.0
    full_days_sw = epoch_sw * tc.epochs / 3600.0 / 24.0
    full_days_off = epoch_off * tc.epochs / 3600.0 / 24.0

    # -- parameters --------------------------------------------------------------------
    qnames = [QFormat(wl, fb).name for wl, fb in qf_keys]
    param_bytes = param_count * bpv

    # -- per-target list columns -------------------------------------------------------
    targets_lists: List[List[str]] = [None] * n  # type: ignore[list-item]
    t_wo: List[List[float]] = [None] * n  # type: ignore[list-item]
    t_ratio: List[List[float]] = [None] * n  # type: ignore[list-item]
    t_w: List[List[float]] = [None] * n  # type: ignore[list-item]
    ratio_cols = {
        layer: 100.0 * sw_cols[layer] / total_wo for layer in OFFLOADABLE_LAYER_NAMES
    }
    for code, fact in enumerate(facts):
        rows = np.nonzero(md_codes == code)[0]
        layers = fact["targets"]
        for i in rows:
            targets_lists[i] = list(layers)
            t_wo[i] = [float(sw_cols[l][i]) for l in layers]
            t_ratio[i] = [float(ratio_cols[l][i]) for l in layers]
            t_w[i] = [float(acc_cols[l][i]) for l in layers]

    return {
        # scenario knobs
        "model": [s.model for s in scenarios],
        "depth": [s.depth for s in scenarios],
        "n_units": units,
        "word_length": [s.word_length for s in scenarios],
        "fraction_bits": [s.fraction_bits for s in scenarios],
        "solver": [s.solver for s in scenarios],
        "board": [s.board for s in scenarios],
        "pl_clock_hz": clock,
        # parameters
        "variant": [facts[c]["variant"] for c in md_codes],
        "qformat": [qnames[c] for c in qf_codes],
        "param_count": param_count,
        "param_bytes": param_bytes,
        "accuracy_pct": [facts[c]["accuracy"][0] for c in md_codes],
        "accuracy_stable": [facts[c]["accuracy"][1] for c in md_codes],
        # resources
        "bram": res["bram"],
        "dsp": res["dsp"],
        "lut": res["lut"],
        "ff": res["ff"],
        "bram_pct": pct["bram"],
        "dsp_pct": pct["dsp"],
        "lut_pct": pct["lut"],
        "ff_pct": pct["ff"],
        "targets": targets_lists,
        "fits_device": fits,
        "meets_timing": meets,
        # timing
        "offload_target": [facts[c]["offload_target_str"] for c in md_codes],
        "total_wo_pl_s": total_wo,
        "target_wo_pl_s": t_wo,
        "ratio_of_target_pct": t_ratio,
        "target_w_pl_s": t_w,
        "total_w_pl_s": total_w,
        "overall_speedup": overall_speedup,
        "speedup_vs_resnet": speedup_vs_resnet,
        "solver_stages": stages,
        # energy
        "energy_without_pl_J": energy_without,
        "energy_with_pl_J": energy_with,
        "energy_ratio": energy_ratio,
        "time_speedup": overall_speedup,
        # training
        "offload": [facts[c]["train_offload_str"] for c in md_codes],
        "train_step_sw_s": train_sw,
        "train_step_offloaded_s": train_off,
        "target_share_pct": target_share,
        "step_speedup": step_speedup,
        "epoch_hours_software": epoch_hours_sw,
        "epoch_hours_offloaded": epoch_hours_off,
        "full_run_days_software": full_days_sw,
        "full_run_days_offloaded": full_days_off,
    }


# -- BatchResult -------------------------------------------------------------------------


class BatchResult:
    """Columnar result table of a batch-evaluated design-space sweep.

    One row per scenario, in input order.  Columns follow the flat schema of
    :meth:`repro.api.result.Result.flat_dict`; per-target cells
    (``targets``, ``target_wo_pl_s``, ...) are Python lists and are joined
    with ``" / "`` in the flat/CSV views, exactly like the loop engine.
    """

    __slots__ = ("scenarios", "_columns")

    def __init__(self, scenarios: Sequence[Scenario], columns: Dict[str, object]) -> None:
        self.scenarios: List[Scenario] = list(scenarios)
        missing = [k for k in FLAT_COLUMNS if k not in columns]
        if missing:
            raise ValueError(f"missing batch columns: {missing}")
        self._columns = columns

    # -- construction ------------------------------------------------------------------

    @classmethod
    def from_rows(cls, scenarios: Sequence[Scenario], rows: Sequence[Dict]) -> "BatchResult":
        """Assemble a table from nested per-scenario result dictionaries.

        Accepts exactly the :meth:`repro.api.result.Result.as_dict` /
        :meth:`row_dict` structure — the interchange format shared with the
        loop engine, the process-pool fallback and the on-disk cache.
        """

        scenarios = list(scenarios)
        rows = list(rows)
        if len(rows) != len(scenarios):
            raise ValueError(f"got {len(rows)} rows for {len(scenarios)} scenarios")
        columns: Dict[str, List] = {key: [] for key in FLAT_COLUMNS}
        for row in rows:
            scenario = row["scenario"]
            for key in SCENARIO_KEYS:
                columns[key].append(scenario[key])
            for key, section in _SECTION_OF.items():
                value = row[section][key]
                columns[key].append(list(value) if key in LIST_COLUMNS else value)
        return cls(list(scenarios), columns)

    # -- basic views --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.scenarios)

    @property
    def column_names(self) -> Tuple[str, ...]:
        return FLAT_COLUMNS

    def column(self, name: str) -> np.ndarray:
        """One column as a NumPy array (object-dtype for list/str columns)."""

        try:
            col = self._columns[name]
        except KeyError as exc:
            raise KeyError(f"unknown column '{name}'; known: {FLAT_COLUMNS}") from exc
        if name in LIST_COLUMNS:
            out = np.empty(len(self), dtype=object)
            out[:] = col
            return out
        return np.asarray(col)

    def record(self, i: int) -> Dict[str, object]:
        """Row ``i`` as a flat dictionary (list cells joined, CSV-shaped)."""

        row: Dict[str, object] = {}
        for key in FLAT_COLUMNS:
            value = _py(self._columns[key][i])
            row[key] = _flatten_value(value) if key in LIST_COLUMNS else value
        return row

    def records(self) -> List[Dict[str, object]]:
        """Flat one-row-per-scenario dictionaries (table/CSV shaped)."""

        return [self.record(i) for i in range(len(self))]

    # -- nested views -------------------------------------------------------------------

    def _sections(self, i: int) -> Dict[str, Dict[str, object]]:
        c = self._columns
        scenario = self.scenarios[i]

        def grab(keys: Tuple[str, ...]) -> Dict[str, object]:
            out: Dict[str, object] = {}
            for key in keys:
                value = _py(c[key][i])
                out[key] = list(value) if key in LIST_COLUMNS else value
            return out

        timing = {"model": scenario.model, "N": scenario.depth}
        timing.update(grab(TIMING_KEYS))
        energy = {"model": scenario.model, "N": scenario.depth}
        energy.update(grab(ENERGY_KEYS))
        training = {"model": scenario.model, "N": scenario.depth}
        training.update(grab(TRAINING_KEYS))
        return {
            "parameters": grab(PARAMETER_KEYS),
            "resources": grab(RESOURCE_KEYS),
            "timing": timing,
            "energy": energy,
            "training": training,
        }

    def row_dict(self, i: int) -> Dict[str, object]:
        """Row ``i`` as the nested dictionary :meth:`Result.as_dict` emits."""

        out: Dict[str, object] = {"scenario": self.scenarios[i].as_dict()}
        out.update(self._sections(i))
        return out

    def as_dicts(self) -> List[Dict[str, object]]:
        return [self.row_dict(i) for i in range(len(self))]

    def to_results(self) -> List[Result]:
        """Reconstruct the full per-scenario :class:`Result` objects.

        Field-for-field identical to what the loop engine returns for the
        same scenarios (the regression net for the vectorization refactor).
        """

        return [
            Result(scenario=self.scenarios[i], **self._sections(i)) for i in range(len(self))
        ]

    # -- serialisation ------------------------------------------------------------------

    def to_csv(self) -> str:
        """CSV document (header + one row per scenario, loop-engine layout)."""

        if not len(self):
            return ""
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(list(FLAT_COLUMNS))
        for i in range(len(self)):
            writer.writerow(list(self.record(i).values()))
        return buf.getvalue().rstrip("\n")

    def to_json(self, indent: int = 2) -> str:
        """JSON array of nested result dictionaries (loop-engine layout)."""

        return json.dumps(self.as_dicts(), indent=indent)

    # -- selection ----------------------------------------------------------------------

    def take(self, indices: Sequence[int]) -> "BatchResult":
        """A new table holding the given rows (in the given order)."""

        idx = [int(i) for i in indices]
        columns: Dict[str, object] = {}
        for key, col in self._columns.items():
            if isinstance(col, np.ndarray):
                columns[key] = col[idx]
            else:
                columns[key] = [col[i] for i in idx]
        return BatchResult([self.scenarios[i] for i in idx], columns)

    def pareto_front(
        self,
        x: str,
        y: str,
        maximize_x: bool = False,
        maximize_y: bool = False,
    ) -> "BatchResult":
        """Rows not dominated on metrics ``x`` and ``y`` (sorted by ``x``).

        Both metrics are minimized by default; pass ``maximize_*`` to flip a
        direction (e.g. ``pareto_front("bram", "overall_speedup",
        maximize_y=True)`` for the resource/speed trade-off).  Duplicate
        points are kept once.
        """

        idx = pareto_indices(
            self.column(x), self.column(y), maximize_x=maximize_x, maximize_y=maximize_y
        )
        return self.take(idx)

    def pareto_fronts(
        self,
        x: str,
        y: str,
        by: str = "board",
        maximize_x: bool = False,
        maximize_y: bool = False,
    ) -> Dict[object, "BatchResult"]:
        """One Pareto front per distinct value of the ``by`` column.

        The cross-board view: ``pareto_fronts("total_w_pl_s",
        "energy_with_pl_J")`` answers "which design points are undominated
        *on each board*", keyed by board name (or any other grouping
        column).  Groups appear in first-occurrence order.
        """

        members: Dict[object, List[int]] = {}
        for i, group in enumerate(self.column(by)):
            members.setdefault(_py(group), []).append(i)
        return {
            key: self.take(idx).pareto_front(
                x, y, maximize_x=maximize_x, maximize_y=maximize_y
            )
            for key, idx in members.items()
        }


def pareto_indices(xs, ys, maximize_x: bool = False, maximize_y: bool = False) -> np.ndarray:
    """Indices of the 2-D Pareto front, sorted by the x metric.

    A point is kept when no other point is at least as good on both metrics
    and strictly better on one.  Exact duplicates are represented once.
    """

    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("pareto metrics must have the same length")
    sx = -x if maximize_x else x
    sy = -y if maximize_y else y
    order = np.lexsort((sy, sx))
    keep: List[int] = []
    best = np.inf
    for i in order:
        if sy[i] < best:
            keep.append(int(i))
            best = sy[i]
    return np.asarray(keep, dtype=np.intp)


# -- engine entry point ------------------------------------------------------------------


def _vectorizable(scenario: Scenario) -> bool:
    """Whether the vector path can evaluate a scenario.

    The kernels reproduce exactly the behaviour of :class:`Scenario` proper,
    so subclasses (which may override derived properties the vector path
    would not see) take the loop-engine fallback.  Any registered board is
    vectorizable: every board-derived quantity (clocks, fabric totals and
    delay scale, wattages) is broadcast from its :class:`BoardSpec` as a
    per-scenario column, so the board axis needs no fallback.
    """

    return type(scenario) is Scenario


def _evaluate_rows(scenarios: Sequence[Scenario]) -> List[Dict]:
    """Loop-engine evaluation of a chunk (runs inside a pool worker)."""

    from .evaluator import Evaluator

    evaluator = Evaluator()
    return [evaluator.evaluate(s).as_dict() for s in scenarios]


def sweep_batch(
    scenarios: Iterable[Scenario],
    cache=None,
    fallback_workers: Optional[int] = None,
    vectorizable: Callable[[Scenario], bool] = _vectorizable,
) -> BatchResult:
    """Evaluate scenarios with the vectorized engine; rows in input order.

    Parameters
    ----------
    scenarios:
        The design points to evaluate (any iterable of scenarios).
    cache:
        Optional :class:`repro.api.cache.ResultCache`.  Rows found in the
        cache are not recomputed; freshly computed rows are stored, so
        repeated/overlapping sweeps are incremental.
    fallback_workers:
        Process-pool width for scenarios the vector path cannot handle
        (default: ``os.cpu_count()``).  The fallback evaluates with the loop
        engine, so results are identical either way.
    vectorizable:
        Predicate selecting the vector path (exposed for testing).
    """

    points = list(scenarios)
    n = len(points)
    if n == 0:
        return BatchResult([], {key: [] for key in FLAT_COLUMNS})

    rows: List[Optional[Dict]] = [None] * n
    if cache is not None:
        for i, scenario in enumerate(points):
            rows[i] = cache.get(scenario)
    pending = [i for i in range(n) if rows[i] is None]
    vector_idx = [i for i in pending if vectorizable(points[i])]
    fallback_idx = [i for i in pending if not vectorizable(points[i])]

    fresh: Optional[BatchResult] = None
    if vector_idx:
        fresh = BatchResult(
            [points[i] for i in vector_idx],
            _compute_columns([points[i] for i in vector_idx]),
        )
        # Fast path: everything came straight from the vector engine.
        if cache is None and len(vector_idx) == n:
            return fresh
    if fallback_idx:
        fallback_points = [points[i] for i in fallback_idx]
        try:
            # Scenarios defined in __main__ / a notebook cannot cross a
            # process boundary (the class is pickled by reference and a
            # spawned worker cannot resolve it); detect that up front and
            # evaluate in-process instead of crashing the sweep.
            portable = type(fallback_points[0]).__module__ != "__main__"
            if portable:
                pickle.loads(pickle.dumps(fallback_points[0]))
        except Exception:
            portable = False
        if portable:
            chunk = 32
            groups = [fallback_idx[k : k + chunk] for k in range(0, len(fallback_idx), chunk)]
            with ProcessPoolExecutor(max_workers=fallback_workers) as pool:
                for group, result in zip(
                    groups, pool.map(_evaluate_rows, [[points[i] for i in g] for g in groups])
                ):
                    for i, row in zip(group, result):
                        rows[i] = row
        else:
            for i, row in zip(fallback_idx, _evaluate_rows(fallback_points)):
                rows[i] = row
    if cache is not None:
        for j, i in enumerate(vector_idx):
            cache.put(points[i], fresh.row_dict(j))
        for i in fallback_idx:
            cache.put(points[i], rows[i])

    # Merge: splice the vector engine's columns with the cached/fallback rows
    # (kept columnar — no per-row rebuild of the freshly computed part).
    columns: Dict[str, List] = {}
    row_idx = [i for i in range(n) if rows[i] is not None]
    for key in FLAT_COLUMNS:
        col: List = [None] * n
        if fresh is not None:
            fcol = fresh._columns[key]
            for j, i in enumerate(vector_idx):
                col[i] = fcol[j]
        if key in SCENARIO_KEYS:
            for i in row_idx:
                col[i] = rows[i]["scenario"][key]
        else:
            section = _SECTION_OF[key]
            if key in LIST_COLUMNS:
                for i in row_idx:
                    col[i] = list(rows[i][section][key])
            else:
                for i in row_idx:
                    col[i] = rows[i][section][key]
        columns[key] = col
    return BatchResult(points, columns)

"""The :class:`Evaluator` facade: ``Scenario -> Result`` in one call.

Historically every consumer hand-assembled the analytical models —
:class:`~repro.core.execution_model.ExecutionTimeModel`,
:class:`~repro.core.offload.OffloadPlanner`,
:class:`~repro.fpga.resources.ResourceEstimator`,
:class:`~repro.fpga.power.PowerModel` and
:class:`~repro.core.training_model.TrainingTimeModel` — separately.  The
evaluator owns that wiring: it lazily constructs each model the first time a
scenario needs it, shares instances across scenarios that agree on the
relevant knobs (board, clock, MAC units, Q-format), and memoizes the final
:class:`~repro.api.result.Result` per scenario.

The evaluator is safe to share across threads: the underlying models are
queried read-only (``n_units`` overrides are passed per call, never written
back) and all caches use atomic ``setdefault`` insertion, so
:func:`repro.api.sweep.sweep` can fan one evaluator out over a worker pool.

It is also the single engine behind the CLI: the table/figure convenience
methods delegate to :mod:`repro.analysis` so every subcommand goes through
one object.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.execution_model import TABLE5_MODELS, ExecutionTimeModel, ExecutionTimeReport
from ..core.offload import OffloadDecision, OffloadPlanner
from ..core.parameter_model import variant_parameter_bytes, variant_parameter_count
from ..core.training_model import TrainingTimeModel
from ..core.variants import SUPPORTED_DEPTHS
from ..fpga.power import PowerModel
from .result import Result
from .scenario import Scenario

__all__ = ["Evaluator"]

#: ``training`` section keys that hold epoch/full-run projections (the CLI
#: rounds exactly these, mirroring the original ``training`` subcommand).
TRAINING_PROJECTION_KEYS: Tuple[str, ...] = (
    "epoch_hours_software",
    "epoch_hours_offloaded",
    "full_run_days_software",
    "full_run_days_offloaded",
    "step_speedup",
)


class Evaluator:
    """Construct, cache and query the analytical models per scenario."""

    def __init__(self) -> None:
        self._execution_models: Dict[Tuple, ExecutionTimeModel] = {}
        self._planners: Dict[Tuple, OffloadPlanner] = {}
        self._power_models: Dict[Tuple, PowerModel] = {}
        self._training_models: Dict[Tuple, TrainingTimeModel] = {}
        self._reports: Dict[Scenario, ExecutionTimeReport] = {}
        self._decisions: Dict[Scenario, OffloadDecision] = {}
        self._baselines: Dict[Tuple, ExecutionTimeReport] = {}
        self._results: Dict[Scenario, Result] = {}

    # -- lazy model construction -----------------------------------------------------

    def _hw_key(self, scenario: Scenario) -> Tuple:
        return (scenario.board, scenario.pl_clock_hz, scenario.n_units)

    def _execution_model(self, scenario: Scenario) -> ExecutionTimeModel:
        key = self._hw_key(scenario)
        try:
            return self._execution_models[key]
        except KeyError:
            model = ExecutionTimeModel(scenario.board_spec, n_units=scenario.n_units)
            return self._execution_models.setdefault(key, model)

    def _planner(self, scenario: Scenario) -> OffloadPlanner:
        key = self._hw_key(scenario) + (scenario.word_length, scenario.fraction_bits)
        try:
            return self._planners[key]
        except KeyError:
            planner = OffloadPlanner(
                board=scenario.board_spec,
                n_units=scenario.n_units,
                execution_model=self._execution_model(scenario),
                qformat=scenario.qformat,
            )
            return self._planners.setdefault(key, planner)

    def _power_model(self, scenario: Scenario) -> PowerModel:
        key = self._hw_key(scenario)
        try:
            return self._power_models[key]
        except KeyError:
            model = PowerModel(
                execution_model=self._execution_model(scenario),
                board=scenario.board_spec,
            )
            return self._power_models.setdefault(key, model)

    def _training_model(self, scenario: Scenario) -> TrainingTimeModel:
        key = self._hw_key(scenario)
        try:
            return self._training_models[key]
        except KeyError:
            model = TrainingTimeModel(execution_model=self._execution_model(scenario))
            return self._training_models.setdefault(key, model)

    # -- evaluation --------------------------------------------------------------------

    def evaluate(self, scenario: Scenario) -> Result:
        """Full structured result for one scenario (memoized per scenario)."""

        try:
            return self._results[scenario]
        except KeyError:
            pass
        return self._results.setdefault(scenario, self._compute(scenario))

    def execution_report(self, scenario: Scenario) -> ExecutionTimeReport:
        """The Table-5 execution-time report underlying a scenario's result.

        Computed (and cached) on its own, without building the energy or
        training sections — callers that only need timing (e.g. Table 5) pay
        only for timing.
        """

        try:
            return self._reports[scenario]
        except KeyError:
            pass
        planner = self._planner(scenario)
        targets = planner.proposed_targets(scenario.model, scenario.depth)
        report = self._execution_model(scenario).report(
            scenario.model,
            scenario.depth,
            offload_targets=targets,
            solver_stages=scenario.solver_stages,
        )
        return self._reports.setdefault(scenario, report)

    def offload_decision(self, scenario: Scenario) -> OffloadDecision:
        """The offload plan for a scenario (targets, resources, feasibility).

        Consistent with :meth:`evaluate`: the expected speedup comes from the
        same solver-aware execution report the result's timing section uses.
        """

        try:
            return self._decisions[scenario]
        except KeyError:
            pass
        report = self.execution_report(scenario)
        decision = self._planner(scenario).plan(
            scenario.model,
            scenario.depth,
            targets=report.offload_targets,
            report=report,
        )
        return self._decisions.setdefault(scenario, decision)

    def _resnet_baseline(self, scenario: Scenario) -> ExecutionTimeReport:
        """Software ResNet-N reference, shared across a depth's scenarios.

        Keyed without ``n_units``: a software-only report never touches the
        PL, so every parallelism scenario at one depth shares one baseline.
        """

        key = (scenario.board, scenario.pl_clock_hz, scenario.depth)
        try:
            return self._baselines[key]
        except KeyError:
            report = self._execution_model(scenario).report(
                "ResNet", scenario.depth, offload_targets=(), solver_stages=1
            )
            return self._baselines.setdefault(key, report)

    def _compute(self, scenario: Scenario) -> Result:
        # One report serves the timing section, the energy comparison and the
        # offload decision's expected speedup (no duplicate model runs).
        report = self.execution_report(scenario)
        decision = self.offload_decision(scenario)
        resnet_baseline = self._resnet_baseline(scenario)

        parameters = self._parameters_section(scenario)
        resources = self._resources_section(scenario, decision)
        timing = self._timing_section(scenario, report, resnet_baseline)
        energy = self._power_model(scenario).compare_report(report, decision.resources)
        training = self._training_section(scenario)
        return Result(
            scenario=scenario,
            parameters=parameters,
            resources=resources,
            timing=timing,
            energy=energy,
            training=training,
        )

    # -- sections ----------------------------------------------------------------------

    def _parameters_section(self, scenario: Scenario) -> Dict[str, object]:
        section: Dict[str, object] = {
            "variant": scenario.variant,
            "qformat": scenario.qformat.name,
            "param_count": variant_parameter_count(scenario.variant, scenario.depth),
            # Parameter storage at the scenario's word length, so word-length
            # sweeps report the actual memory-footprint trade-off.
            "param_bytes": variant_parameter_bytes(
                scenario.variant,
                scenario.depth,
                bytes_per_param=scenario.qformat.bytes_per_value,
            ),
        }
        try:
            from ..analysis.accuracy_model import accuracy_model

            point = accuracy_model(scenario.variant, scenario.depth)
            section["accuracy_pct"] = point.accuracy_percent
            section["accuracy_stable"] = point.stable
        except KeyError:
            section["accuracy_pct"] = None
            section["accuracy_stable"] = None
        return section

    def _resources_section(
        self, scenario: Scenario, decision: OffloadDecision
    ) -> Dict[str, object]:
        section: Dict[str, object] = dict(decision.resources.as_dict())
        section.update(
            {
                f"{k}_pct": v
                for k, v in decision.resources.utilization(scenario.board_spec.fpga).items()
            }
        )
        section["targets"] = list(decision.targets)
        section["fits_device"] = decision.fits_device
        section["meets_timing"] = decision.meets_timing
        return section

    def _timing_section(
        self,
        scenario: Scenario,
        report: ExecutionTimeReport,
        resnet_baseline: ExecutionTimeReport,
    ) -> Dict[str, object]:
        section = report.as_dict()
        section["speedup_vs_resnet"] = (
            resnet_baseline.total_without_pl / report.total_with_pl
        )
        section["solver_stages"] = scenario.solver_stages
        return section

    def _training_section(self, scenario: Scenario) -> Dict[str, object]:
        model = self._training_model(scenario)
        report = model.report(scenario.model, scenario.depth)
        section = report.as_dict()
        section.update(model.epoch_table((scenario.model,), scenario.depth)[scenario.model])
        return section

    # -- table/figure facade (delegates to repro.analysis) ----------------------------

    def table1_records(self) -> List[Dict[str, object]]:
        from ..analysis.tables import table1_records

        return table1_records()

    def table2_records(self) -> List[Dict[str, object]]:
        from ..analysis.tables import table2_records

        return table2_records()

    def table3_records(self, include_estimates: bool = True) -> List[Dict[str, object]]:
        from ..analysis.tables import table3_records

        return table3_records(include_estimates=include_estimates)

    def table4_records(self, depth: int = 56) -> List[Dict[str, object]]:
        from ..analysis.tables import table4_records

        return table4_records(depth)

    def table5_records(
        self,
        depths: Sequence[int] = SUPPORTED_DEPTHS,
        models: Sequence[str] = TABLE5_MODELS,
        n_units: int = 16,
    ) -> List[Dict[str, object]]:
        """Table 5 rows, built from the scenario engine (one row per model x depth)."""

        records: List[Dict[str, object]] = []
        for model in models:
            for depth in depths:
                scenario = Scenario(model=model, depth=depth, n_units=n_units)
                report = self.execution_report(scenario)
                rec = report.as_dict()
                rec["target_wo_pl_s"] = " / ".join(f"{t:.2f}" for t in report.target_without_pl) or "-"
                rec["ratio_of_target_pct"] = " / ".join(f"{t:.2f}" for t in report.target_ratio_percent) or "-"
                rec["target_w_pl_s"] = " / ".join(f"{t:.2f}" for t in report.target_with_pl) or "-"
                rec["total_wo_pl_s"] = round(report.total_without_pl, 3)
                rec["total_w_pl_s"] = round(report.total_with_pl, 3)
                rec["overall_speedup"] = round(report.overall_speedup, 2)
                records.append(rec)
        return records

    def figure5_series(self) -> Dict[str, Dict[int, float]]:
        from ..analysis.figures import figure5_series

        return figure5_series()

    def figure6_series(self, paper_only: bool = False) -> Dict[str, Dict[int, float]]:
        from ..analysis.figures import figure6_series

        return figure6_series(paper_only=paper_only)

    def accuracy_table(self) -> List[Dict[str, object]]:
        from ..analysis.accuracy_model import accuracy_table

        return accuracy_table()

    def accuracy_sweep(self, *args, **kwargs):
        """Accuracy-vs-Q-format sweep of the bit-accurate PL datapath.

        Delegates to :func:`repro.api.accuracy.accuracy_sweep` (see there for
        the parameters), keeping the CLI's one-evaluator-serves-everything
        contract.
        """

        from .accuracy import accuracy_sweep

        return accuracy_sweep(*args, **kwargs)

    def timing_reports(
        self,
        unit_counts: Sequence[int] = (1, 4, 8, 16, 32),
        target_hz: float | None = None,
        board: str | None = None,
    ) -> List:
        """Timing-closure reports over a MAC-unit sweep (the CLI ``timing`` table).

        ``board`` selects a registered board's fabric scale and clock target
        (default: the reference PYNQ-Z2); an explicit ``target_hz`` still
        overrides the board's clock.
        """

        from ..platform import get_board
        from ..fpga.timing import TimingModel

        model = (
            TimingModel.for_board(get_board(board)) if board is not None else TimingModel()
        )
        return [model.analyze(n, target_hz=target_hz) for n in unit_counts]

    # -- cache introspection (useful in tests and tuning) ------------------------------

    @property
    def cached_result_count(self) -> int:
        return len(self._results)

    def clear_cache(self) -> None:
        """Drop memoized results/reports (constructed models are kept)."""

        self._results.clear()
        self._reports.clear()
        self._decisions.clear()
        self._baselines.clear()

"""Accuracy-vs-Q-format sweeps over the bit-accurate PL datapath.

The paper's central fixed-point design question (footnote 2: narrower words
fit more layers in BRAM — at what accuracy cost?) needs the *numerical* axis
the analytic models cannot provide: how far does the quantised conv/BN/ReLU
pipeline drift from the float mathematics at each word length?

:func:`accuracy_sweep` answers it at batch-engine throughput.  For every
requested Q-format it quantises one image batch **once**, runs the batched
:class:`~repro.fpga.odeblock_hw.HardwareODEBlock` forward pass (bit-identical
to N single-image invocations, enforced by
``tests/fpga/test_batched_odeblock.py``) and measures the deviation against a
float64 reference of the same mathematics.  Each row then carries the three
axes of the trade-off:

* **fidelity** — max/RMS error, SQNR, the saturation fraction, and the
  analytic worst-case bound of :mod:`repro.fixedpoint.errors` instantiated
  with the measured reference magnitudes;
* **cost** — per-image latency (cycle model + AXI transfer) and the BRAM
  plan at that word length (closed-form kernels);
* **feasibility** — device fit and timing closure of the conv_xN design.

:meth:`AccuracySweepResult.pareto_front` extracts the latency/error (or any
other two-column) frontier, mirroring :class:`repro.api.batch.BatchResult`.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..fixedpoint.errors import error_report, odeblock_error_bound
from ..fixedpoint.qformat import QFormat
from ..fpga.axi import AxiTransferConfig, AxiTransferModel
from ..fpga.bram import bram_fits_kernel, bram_tiles_kernel
from ..fpga.cycles import OdeBlockCycleModel
from ..fpga.device import BoardSpec, PYNQ_Z2
from ..fpga.geometry import BlockGeometry, block_geometry
from ..fpga.odeblock_hw import BlockWeights, HardwareODEBlock
from ..fpga.timing import TimingModel
from ..nn.im2col import conv_output_size, im2col
from .batch import pareto_indices

__all__ = ["AccuracyPoint", "AccuracySweepResult", "accuracy_sweep", "DEFAULT_FORMAT_LADDER"]


#: Word-length ladder swept by default: the paper's Q20 production format,
#: the footnote-2 reduced formats, and intermediate points that make the
#: accuracy/latency frontier visible.
DEFAULT_FORMAT_LADDER: Tuple[Tuple[int, int], ...] = (
    (32, 20), (24, 12), (20, 10), (16, 8), (12, 6), (10, 5), (8, 4),
)

BN_EPS = 1e-5

FormatLike = Union[QFormat, Tuple[int, int]]


def _as_qformat(fmt: FormatLike) -> QFormat:
    if isinstance(fmt, QFormat):
        return fmt
    word_length, fraction_bits = fmt
    return QFormat(int(word_length), int(fraction_bits))


# -- the float64 reference pipeline ------------------------------------------------------


def _float_conv(x: np.ndarray, weight: np.ndarray, stride: int = 1, padding: int = 1) -> np.ndarray:
    """Float64 batched 3x3 convolution (same im2col lowering as the datapath)."""

    n, _, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    cols = im2col(x, kh, kw, stride, padding)
    out = cols @ weight.reshape(c_out, -1).T
    return out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)


def _float_bn(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray) -> np.ndarray:
    """Float64 per-image batch normalisation (the board's dynamic statistics)."""

    mean = x.mean(axis=(2, 3), keepdims=True)
    var = x.var(axis=(2, 3), keepdims=True)
    normalized = (x - mean) / np.sqrt(var + BN_EPS)
    return gamma[None, :, None, None] * normalized + beta[None, :, None, None]


def _float_forward(weights: BlockWeights, z: np.ndarray, stride: int) -> Dict[str, np.ndarray]:
    """The float reference pipeline, stage by stage (for the analytic bound)."""

    a1 = _float_conv(z, weights.conv1_weight, stride=stride)
    bn1 = _float_bn(a1, weights.bn1_gamma, weights.bn1_beta)
    hidden = np.maximum(bn1, 0.0)
    a2 = _float_conv(hidden, weights.conv2_weight)
    bn2 = _float_bn(a2, weights.bn2_gamma, weights.bn2_beta)
    return {"conv1": a1, "bn1": bn1, "hidden": hidden, "conv2": a2, "output": bn2}


def _bn_magnitudes(x: np.ndarray) -> Dict[str, np.ndarray]:
    """Per-channel centered amplitude and sigma floor across the whole batch."""

    mean = x.mean(axis=(2, 3), keepdims=True)
    var = x.var(axis=(2, 3))
    return {
        "centered_max": np.abs(x - mean).max(axis=(0, 2, 3)),
        "sigma_min": np.sqrt(var + BN_EPS).min(axis=0),
    }


def _analytic_bound(fmt: QFormat, weights: BlockWeights, z: np.ndarray, stages: Dict) -> float:
    """The composed worst-case bound, instantiated from reference magnitudes.

    Valid (and asserted by tests) only while the signal stays representable;
    under saturation the measured error may exceed it — the row's
    ``overflow_fraction`` says which regime a point is in.
    """

    k2 = weights.conv1_weight.shape[2] * weights.conv1_weight.shape[3]
    bn1_mag = _bn_magnitudes(stages["conv1"])
    bn2_mag = _bn_magnitudes(stages["conv2"])
    return odeblock_error_bound(
        fmt,
        fan_in1=weights.conv1_weight.shape[1] * k2,
        weight1_max=float(np.max(np.abs(weights.conv1_weight))),
        input_max=float(np.max(np.abs(z))),
        centered1_max=bn1_mag["centered_max"],
        sigma1_min=bn1_mag["sigma_min"],
        fan_in2=weights.conv2_weight.shape[1] * k2,
        weight2_max=float(np.max(np.abs(weights.conv2_weight))),
        hidden_max=float(np.max(np.abs(stages["hidden"]))),
        centered2_max=bn2_mag["centered_max"],
        sigma2_min=bn2_mag["sigma_min"],
        gamma1_max=float(np.max(np.abs(weights.bn1_gamma))),
        gamma2_max=float(np.max(np.abs(weights.bn2_gamma))),
    ).total


# -- result container --------------------------------------------------------------------


#: Flat column order of one sweep row (CSV header order).
COLUMNS: Tuple[str, ...] = (
    "block", "word_length", "fraction_bits", "qformat", "n_units",
    "max_abs_error", "rms_error", "sqnr_db", "error_bound", "overflow_fraction",
    "latency_s", "compute_s", "transfer_s", "images_per_s",
    "bram_tiles", "fits_device", "fmax_mhz", "meets_timing",
)


@dataclass(frozen=True)
class AccuracyPoint:
    """One (Q-format, n_units) point of the accuracy/latency trade-off."""

    block: str
    word_length: int
    fraction_bits: int
    qformat: str
    n_units: int
    max_abs_error: float
    rms_error: float
    sqnr_db: float
    error_bound: float
    overflow_fraction: float
    latency_s: float
    compute_s: float
    transfer_s: float
    images_per_s: float
    bram_tiles: int
    fits_device: bool
    fmax_mhz: float
    meets_timing: bool

    def as_dict(self) -> Dict[str, object]:
        return {key: getattr(self, key) for key in COLUMNS}


class AccuracySweepResult:
    """Rows of an accuracy-vs-format sweep, with CSV/JSON/Pareto views."""

    def __init__(self, points: Sequence[AccuracyPoint], images: int, seed: int) -> None:
        self.points: List[AccuracyPoint] = list(points)
        self.images = images
        self.seed = seed

    def __len__(self) -> int:
        return len(self.points)

    def records(self) -> List[Dict[str, object]]:
        return [p.as_dict() for p in self.points]

    def column(self, name: str) -> np.ndarray:
        if name not in COLUMNS:
            raise KeyError(f"unknown column '{name}'; known: {COLUMNS}")
        return np.asarray([getattr(p, name) for p in self.points])

    def to_csv(self) -> str:
        if not self.points:
            return ""
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(list(COLUMNS))
        for point in self.points:
            writer.writerow(list(point.as_dict().values()))
        return buf.getvalue().rstrip("\n")

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.records(), indent=indent)

    def pareto_front(
        self,
        x: str = "latency_s",
        y: str = "rms_error",
        maximize_x: bool = False,
        maximize_y: bool = False,
    ) -> "AccuracySweepResult":
        """Rows not dominated on two metric columns (default: latency/error)."""

        idx = pareto_indices(
            self.column(x).astype(np.float64),
            self.column(y).astype(np.float64),
            maximize_x=maximize_x,
            maximize_y=maximize_y,
        )
        return AccuracySweepResult([self.points[i] for i in idx], self.images, self.seed)


# -- the sweep ---------------------------------------------------------------------------


def accuracy_sweep(
    block: Union[str, BlockGeometry] = "layer3_2",
    formats: Optional[Sequence[FormatLike]] = None,
    n_units: Sequence[int] = (16,),
    images: int = 8,
    seed: int = 0,
    board: BoardSpec = PYNQ_Z2,
    input_scale: float = 0.5,
    weight_scale: float = 0.1,
) -> AccuracySweepResult:
    """Sweep the fixed-point format axis of one PL block's datapath.

    Parameters
    ----------
    block:
        The offloadable block (name or geometry) whose datapath is swept.
    formats:
        Q-formats to evaluate — :class:`QFormat` instances or
        ``(word_length, fraction_bits)`` pairs (default:
        :data:`DEFAULT_FORMAT_LADDER`).
    n_units:
        MAC-unit counts; they move the latency/feasibility columns, not the
        numerics (the datapath arithmetic is unit-count independent).
    images:
        Batch size of the forward pass each format is measured on.
    seed:
        Seed of the deterministic weight/input generator — the same seed
        always measures the same batch, so sweeps are reproducible.
    board:
        Target board (clock for latency, device for the fits mask).
    input_scale, weight_scale:
        Magnitudes of the random inputs/weights.  Raising ``input_scale``
        pushes narrow formats into saturation, which is exactly the regime
        the ``overflow_fraction`` column reports on.
    """

    if images < 1:
        raise ValueError("images must be a positive integer")
    geometry = block if isinstance(block, BlockGeometry) else block_geometry(block)
    if formats is None:
        formats = DEFAULT_FORMAT_LADDER
    elif not formats:
        raise ValueError("formats must be a non-empty sequence (or None for the default ladder)")
    format_list = [_as_qformat(f) for f in formats]
    unit_list = [int(u) for u in n_units]
    if not unit_list or min(unit_list) < 1:
        raise ValueError("n_units must be a non-empty sequence of positive integers")

    rng = np.random.default_rng(seed)
    weights = BlockWeights.random(geometry, rng, scale=weight_scale)
    z = rng.normal(0.0, input_scale, size=(images, geometry.in_channels, geometry.height, geometry.width))

    stages = _float_forward(weights, z, stride=geometry.stride)
    reference = stages["output"]

    # Cost/feasibility columns are closed-form kernels over the unit axis,
    # with every board-derived constant (AXI clock, fabric delay scale,
    # timing target) taken from the board spec.
    cycle_model = OdeBlockCycleModel()
    transfer_s = (
        AxiTransferModel(AxiTransferConfig.for_board(board)).block_round_trip(geometry).seconds
    )
    timing = TimingModel.for_board(board).analyze_batch(unit_list, target_hz=board.pl_clock_hz)

    points: List[AccuracyPoint] = []
    for fmt in format_list:
        hw = HardwareODEBlock(geometry, weights, n_units=unit_list[0], qformat=fmt, board=board)
        report = error_report(reference, hw.dynamics_batch(z), fmt)
        bound = _analytic_bound(fmt, weights, z, stages)
        tiles = int(bram_tiles_kernel(geometry, fmt.bytes_per_value))
        fits = bool(bram_fits_kernel(tiles, board.fpga))
        for j, units in enumerate(unit_list):
            compute_s = cycle_model.block_time_seconds(geometry, units, board.pl_clock_hz)
            latency = compute_s + transfer_s
            points.append(
                AccuracyPoint(
                    block=geometry.name,
                    word_length=fmt.word_length,
                    fraction_bits=fmt.fraction_bits,
                    qformat=fmt.name,
                    n_units=units,
                    max_abs_error=report.max_abs_error,
                    rms_error=report.rms_error,
                    sqnr_db=report.sqnr_db,
                    error_bound=bound,
                    overflow_fraction=report.overflow_fraction,
                    latency_s=latency,
                    compute_s=compute_s,
                    transfer_s=transfer_s,
                    images_per_s=1.0 / latency,
                    bram_tiles=tiles,
                    fits_device=fits,
                    fmax_mhz=float(timing["fmax_hz"][j]) / 1e6,
                    meets_timing=bool(timing["meets_timing"][j]),
                )
            )
    return AccuracySweepResult(points, images=images, seed=seed)

"""Accuracy-vs-Q-format sweeps over the bit-accurate PL datapath.

The paper's central fixed-point design question (footnote 2: narrower words
fit more layers in BRAM — at what accuracy cost?) needs the *numerical* axis
the analytic models cannot provide: how far does the quantised conv/BN/ReLU
pipeline drift from the float mathematics at each word length?

:func:`accuracy_sweep` answers it at batch-engine throughput.  For every
requested Q-format it quantises one image batch **once**, runs the batched
:class:`~repro.fpga.odeblock_hw.HardwareODEBlock` forward pass (bit-identical
to N single-image invocations, enforced by
``tests/fpga/test_batched_odeblock.py``) and measures the deviation against a
float64 reference of the same mathematics.  Each row then carries the three
axes of the trade-off:

* **fidelity** — max/RMS error, SQNR, the saturation fraction, and the
  analytic worst-case bound of :mod:`repro.fixedpoint.errors` instantiated
  with the measured reference magnitudes;
* **cost** — per-image latency (cycle model + AXI transfer) and the BRAM
  plan at that word length (closed-form kernels);
* **feasibility** — device fit and timing closure of the conv_xN design.

:meth:`AccuracySweepResult.pareto_front` extracts the latency/error (or any
other two-column) frontier, mirroring :class:`repro.api.batch.BatchResult`.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..fixedpoint.errors import error_report, odeblock_error_bound
from ..fixedpoint.qformat import QFormat
from ..fpga.axi import AxiTransferConfig, AxiTransferModel
from ..fpga.bram import bram_fits_kernel, bram_tiles_kernel
from ..fpga.cycles import OdeBlockCycleModel
from ..fpga.device import BoardSpec, PYNQ_Z2
from ..fpga.geometry import BlockGeometry, block_geometry
from ..fpga.odeblock_hw import BlockWeights, HardwareODEBlock
from ..fpga.timing import TimingModel
from ..nn.im2col import conv_output_size, im2col
from .batch import pareto_indices

__all__ = ["AccuracyPoint", "AccuracySweepResult", "accuracy_sweep", "DEFAULT_FORMAT_LADDER"]


#: Word-length ladder swept by default: the paper's Q20 production format,
#: the footnote-2 reduced formats, and intermediate points that make the
#: accuracy/latency frontier visible.
DEFAULT_FORMAT_LADDER: Tuple[Tuple[int, int], ...] = (
    (32, 20), (24, 12), (20, 10), (16, 8), (12, 6), (10, 5), (8, 4),
)

BN_EPS = 1e-5

FormatLike = Union[QFormat, Tuple[int, int]]


def _as_qformat(fmt: FormatLike) -> QFormat:
    if isinstance(fmt, QFormat):
        return fmt
    word_length, fraction_bits = fmt
    return QFormat(int(word_length), int(fraction_bits))


# -- the float64 reference pipeline ------------------------------------------------------


def _float_conv(x: np.ndarray, weight: np.ndarray, stride: int = 1, padding: int = 1) -> np.ndarray:
    """Float64 batched 3x3 convolution (same im2col lowering as the datapath)."""

    n, _, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    cols = im2col(x, kh, kw, stride, padding)
    out = cols @ weight.reshape(c_out, -1).T
    return out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)


def _float_bn(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray) -> np.ndarray:
    """Float64 per-image batch normalisation (the board's dynamic statistics)."""

    mean = x.mean(axis=(2, 3), keepdims=True)
    var = x.var(axis=(2, 3), keepdims=True)
    normalized = (x - mean) / np.sqrt(var + BN_EPS)
    return gamma[None, :, None, None] * normalized + beta[None, :, None, None]


def _float_forward(weights: BlockWeights, z: np.ndarray, stride: int) -> Dict[str, np.ndarray]:
    """The float reference pipeline, stage by stage (for the analytic bound)."""

    a1 = _float_conv(z, weights.conv1_weight, stride=stride)
    bn1 = _float_bn(a1, weights.bn1_gamma, weights.bn1_beta)
    hidden = np.maximum(bn1, 0.0)
    a2 = _float_conv(hidden, weights.conv2_weight)
    bn2 = _float_bn(a2, weights.bn2_gamma, weights.bn2_beta)
    return {"conv1": a1, "bn1": bn1, "hidden": hidden, "conv2": a2, "output": bn2}


def _bn_magnitudes(x: np.ndarray) -> Dict[str, np.ndarray]:
    """Per-channel centered amplitude and sigma floor across the whole batch."""

    mean = x.mean(axis=(2, 3), keepdims=True)
    var = x.var(axis=(2, 3))
    return {
        "centered_max": np.abs(x - mean).max(axis=(0, 2, 3)),
        "sigma_min": np.sqrt(var + BN_EPS).min(axis=0),
    }


def _reference_stats(z: np.ndarray, stages: Dict) -> Dict[str, object]:
    """Reference magnitudes the analytic bound needs, from one image chunk.

    Every entry is a per-image max (or per-image min), so chunks reduce
    exactly: max-of-max / min-of-min over chunks equals the whole-batch
    statistic regardless of how the batch was split.
    """

    bn1_mag = _bn_magnitudes(stages["conv1"])
    bn2_mag = _bn_magnitudes(stages["conv2"])
    return {
        "input_max": float(np.max(np.abs(z))),
        "hidden_max": float(np.max(np.abs(stages["hidden"]))),
        "centered1_max": bn1_mag["centered_max"],
        "sigma1_min": bn1_mag["sigma_min"],
        "centered2_max": bn2_mag["centered_max"],
        "sigma2_min": bn2_mag["sigma_min"],
    }


def _merge_reference_stats(chunks: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Exact reduction of per-chunk reference stats (order-independent)."""

    merged = dict(chunks[0])
    for stats in chunks[1:]:
        merged["input_max"] = max(merged["input_max"], stats["input_max"])
        merged["hidden_max"] = max(merged["hidden_max"], stats["hidden_max"])
        merged["centered1_max"] = np.maximum(merged["centered1_max"], stats["centered1_max"])
        merged["sigma1_min"] = np.minimum(merged["sigma1_min"], stats["sigma1_min"])
        merged["centered2_max"] = np.maximum(merged["centered2_max"], stats["centered2_max"])
        merged["sigma2_min"] = np.minimum(merged["sigma2_min"], stats["sigma2_min"])
    return merged


def _analytic_bound(fmt: QFormat, weights: BlockWeights, ref_stats: Dict[str, object]) -> float:
    """The composed worst-case bound, instantiated from reference magnitudes.

    Valid (and asserted by tests) only while the signal stays representable;
    under saturation the measured error may exceed it — the row's
    ``overflow_fraction`` says which regime a point is in.
    """

    k2 = weights.conv1_weight.shape[2] * weights.conv1_weight.shape[3]
    return odeblock_error_bound(
        fmt,
        fan_in1=weights.conv1_weight.shape[1] * k2,
        weight1_max=float(np.max(np.abs(weights.conv1_weight))),
        input_max=ref_stats["input_max"],
        centered1_max=ref_stats["centered1_max"],
        sigma1_min=ref_stats["sigma1_min"],
        fan_in2=weights.conv2_weight.shape[1] * k2,
        weight2_max=float(np.max(np.abs(weights.conv2_weight))),
        hidden_max=ref_stats["hidden_max"],
        centered2_max=ref_stats["centered2_max"],
        sigma2_min=ref_stats["sigma2_min"],
        gamma1_max=float(np.max(np.abs(weights.bn1_gamma))),
        gamma2_max=float(np.max(np.abs(weights.bn2_gamma))),
    ).total


# -- streaming accumulation ---------------------------------------------------------------


def _chunk_bounds(images: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Image index ranges of each chunk (the last may be partial)."""

    return [(start, min(start + chunk_size, images)) for start in range(0, images, chunk_size)]


def _chunk_inputs(
    seed: int, chunk_index: int, n_images: int, geometry: BlockGeometry, input_scale: float
) -> np.ndarray:
    """Inputs of one chunk, from the chunk's own seeded stream.

    ``default_rng((seed, chunk))`` makes a chunk's contents a function of
    the chunk index alone — never of which worker drew it or how many
    workers exist — so sharded sweeps are worker-count-invariant (the same
    discipline as ``repro.opt``).
    """

    rng = np.random.default_rng((seed, chunk_index))
    return rng.normal(
        0.0, input_scale, size=(n_images, geometry.in_channels, geometry.height, geometry.width)
    )


def _measure_chunk(
    z: np.ndarray,
    geometry: BlockGeometry,
    weights: BlockWeights,
    fmt: QFormat,
    collect_ref: bool,
) -> Dict[str, object]:
    """Error accumulators of one (format, chunk) cell.

    Returns running-sum statistics (count, Σerr², Σref², max |err|, the
    representable count) instead of finished metrics, so the parent can
    reduce chunks in a fixed order and finalise once — streaming
    accumulation with peak memory bounded by the chunk, not the sweep.
    """

    stages = _float_forward(weights, z, stride=geometry.stride)
    reference = stages["output"]
    hw = HardwareODEBlock(geometry, weights, qformat=fmt)
    error = hw.dynamics_batch(z) - reference
    out: Dict[str, object] = {
        "n": int(reference.size),
        "sse": float(np.sum(np.square(error))),
        "ssr": float(np.sum(np.square(reference))),
        "max_abs": float(np.max(np.abs(error))),
        # The representable *count* (not the overflow fraction): the legacy
        # formula is ``1.0 - representable.mean()`` and only the count form
        # reproduces it bit-for-bit after reduction.
        "repr_count": int(np.sum(fmt.representable(reference))),
    }
    if collect_ref:
        out["ref_stats"] = _reference_stats(z, stages)
    return out


def _finalize_error_stats(acc: Dict[str, object]) -> Dict[str, float]:
    """Finished metrics from reduced accumulators, matching ``error_report``.

    ``np.mean`` is ``np.sum / n`` (same pairwise reduction), so on a single
    chunk these formulas are bit-identical to the legacy whole-batch
    :func:`repro.fixedpoint.errors.error_report` path; the zero-power edge
    cases mirror :func:`repro.fixedpoint.errors.sqnr_db` exactly.
    """

    n = acc["n"]
    noise_power = acc["sse"] / n
    signal_power = acc["ssr"] / n
    if noise_power == 0.0:
        sqnr = float("inf")
    elif signal_power == 0.0:
        sqnr = float("-inf")
    else:
        sqnr = float(10.0 * np.log10(signal_power / noise_power))
    return {
        "max_abs_error": acc["max_abs"],
        "rms_error": float(np.sqrt(noise_power)),
        "sqnr_db": sqnr,
        "overflow_fraction": float(1.0 - acc["repr_count"] / n),
    }


def _reduce_error_stats(chunks: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Reduce per-chunk accumulators in the given (ascending-chunk) order."""

    total = {"n": 0, "sse": 0.0, "ssr": 0.0, "max_abs": 0.0, "repr_count": 0}
    for acc in chunks:
        total["n"] += acc["n"]
        total["sse"] += acc["sse"]
        total["ssr"] += acc["ssr"]
        total["max_abs"] = max(total["max_abs"], acc["max_abs"])
        total["repr_count"] += acc["repr_count"]
    return total


# -- process-pool sharding ----------------------------------------------------------------

_WORKER_CONTEXT: Dict[str, object] = {}


def _init_sweep_worker(geometry: BlockGeometry, weights: BlockWeights, formats: List[QFormat]) -> None:
    """Pool initializer: ship the small, constant state once per worker.

    Only the weights (a few hundred KB) and the geometry/format descriptors
    are pickled; feature maps travel through ``multiprocessing.shared_memory``
    and are never serialised.
    """

    _WORKER_CONTEXT["geometry"] = geometry
    _WORKER_CONTEXT["weights"] = weights
    _WORKER_CONTEXT["formats"] = formats


def _measure_chunk_shm(
    shm_name: str, shape: Tuple[int, ...], fmt_index: int, collect_ref: bool
) -> Dict[str, object]:
    """Module-level worker (picklable): measure one (format, chunk) cell.

    Attaches the chunk's shared-memory block read-only, copies it into
    worker-local memory (so the parent may recycle the block as soon as all
    readers finish) and runs :func:`_measure_chunk`.
    """

    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        z = np.array(
            np.ndarray(shape, dtype=np.float64, buffer=shm.buf), dtype=np.float64, copy=True
        )
    finally:
        shm.close()
    return _measure_chunk(
        z,
        _WORKER_CONTEXT["geometry"],
        _WORKER_CONTEXT["weights"],
        _WORKER_CONTEXT["formats"][fmt_index],
        collect_ref,
    )


# -- result container --------------------------------------------------------------------


#: Flat column order of one sweep row (CSV header order).
COLUMNS: Tuple[str, ...] = (
    "block", "word_length", "fraction_bits", "qformat", "n_units",
    "max_abs_error", "rms_error", "sqnr_db", "error_bound", "overflow_fraction",
    "latency_s", "compute_s", "transfer_s", "images_per_s",
    "bram_tiles", "fits_device", "fmax_mhz", "meets_timing",
)


@dataclass(frozen=True)
class AccuracyPoint:
    """One (Q-format, n_units) point of the accuracy/latency trade-off."""

    block: str
    word_length: int
    fraction_bits: int
    qformat: str
    n_units: int
    max_abs_error: float
    rms_error: float
    sqnr_db: float
    error_bound: float
    overflow_fraction: float
    latency_s: float
    compute_s: float
    transfer_s: float
    images_per_s: float
    bram_tiles: int
    fits_device: bool
    fmax_mhz: float
    meets_timing: bool

    def as_dict(self) -> Dict[str, object]:
        return {key: getattr(self, key) for key in COLUMNS}


class AccuracySweepResult:
    """Rows of an accuracy-vs-format sweep, with CSV/JSON/Pareto views."""

    def __init__(
        self,
        points: Sequence[AccuracyPoint],
        images: int,
        seed: int,
        workers: int = 1,
        chunk_size: Optional[int] = None,
        chunks: int = 1,
    ) -> None:
        self.points: List[AccuracyPoint] = list(points)
        self.images = images
        self.seed = seed
        self.workers = workers
        self.chunk_size = chunk_size
        self.chunks = chunks

    def __len__(self) -> int:
        return len(self.points)

    @property
    def reproducibility(self) -> Dict[str, object]:
        """What it takes to reproduce these rows bit-for-bit.

        In chunked mode the inputs come from per-chunk
        ``default_rng((seed, chunk))`` streams and the accumulators reduce
        in ascending chunk order, so only ``seed`` and ``chunk_size``
        matter — the worker count never does.
        """

        return {
            "seed": self.seed,
            "images": self.images,
            "chunk_size": self.chunk_size,
            "chunks": self.chunks,
            "workers": self.workers,
            "generator": (
                "per-chunk default_rng((seed, chunk))"
                if self.chunk_size is not None
                else "single-stream default_rng(seed)"
            ),
            "worker_count_invariant": True,
        }

    def records(self) -> List[Dict[str, object]]:
        return [p.as_dict() for p in self.points]

    def column(self, name: str) -> np.ndarray:
        if name not in COLUMNS:
            raise KeyError(f"unknown column '{name}'; known: {COLUMNS}")
        return np.asarray([getattr(p, name) for p in self.points])

    def to_csv(self) -> str:
        if not self.points:
            return ""
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(list(COLUMNS))
        for point in self.points:
            writer.writerow(list(point.as_dict().values()))
        return buf.getvalue().rstrip("\n")

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(
            {"reproducibility": self.reproducibility, "points": self.records()}, indent=indent
        )

    def pareto_front(
        self,
        x: str = "latency_s",
        y: str = "rms_error",
        maximize_x: bool = False,
        maximize_y: bool = False,
    ) -> "AccuracySweepResult":
        """Rows not dominated on two metric columns (default: latency/error)."""

        idx = pareto_indices(
            self.column(x).astype(np.float64),
            self.column(y).astype(np.float64),
            maximize_x=maximize_x,
            maximize_y=maximize_y,
        )
        return AccuracySweepResult(
            [self.points[i] for i in idx],
            self.images,
            self.seed,
            workers=self.workers,
            chunk_size=self.chunk_size,
            chunks=self.chunks,
        )


# -- the sweep ---------------------------------------------------------------------------


def accuracy_sweep(
    block: Union[str, BlockGeometry] = "layer3_2",
    formats: Optional[Sequence[FormatLike]] = None,
    n_units: Sequence[int] = (16,),
    images: int = 8,
    seed: int = 0,
    board: BoardSpec = PYNQ_Z2,
    input_scale: float = 0.5,
    weight_scale: float = 0.1,
    workers: int = 1,
    chunk_size: Optional[int] = None,
) -> AccuracySweepResult:
    """Sweep the fixed-point format axis of one PL block's datapath.

    Parameters
    ----------
    block:
        The offloadable block (name or geometry) whose datapath is swept.
    formats:
        Q-formats to evaluate — :class:`QFormat` instances or
        ``(word_length, fraction_bits)`` pairs (default:
        :data:`DEFAULT_FORMAT_LADDER`).
    n_units:
        MAC-unit counts; they move the latency/feasibility columns, not the
        numerics (the datapath arithmetic is unit-count independent).
    images:
        Batch size of the forward pass each format is measured on.
    seed:
        Seed of the deterministic weight/input generator — the same seed
        always measures the same batch, so sweeps are reproducible.
    board:
        Target board (clock for latency, device for the fits mask).
    input_scale, weight_scale:
        Magnitudes of the random inputs/weights.  Raising ``input_scale``
        pushes narrow formats into saturation, which is exactly the regime
        the ``overflow_fraction`` column reports on.
    workers:
        Process count for the sharded sweep.  ``workers > 1`` requires
        ``chunk_size`` (chunking defines the shard grid); the numbers are
        **worker-count-invariant** — workers only move wall-clock time.
    chunk_size:
        Images per streamed chunk.  ``None`` (the default) keeps the legacy
        single-batch path, bit-identical to earlier releases.  Setting it
        switches to streaming accumulation: inputs come from per-chunk
        ``default_rng((seed, chunk))`` streams, error statistics accumulate
        as running sums, and peak memory is bounded by the chunk size —
        dataset-scale sweeps fit in RAM.
    """

    if images < 1:
        raise ValueError("images must be a positive integer")
    workers = int(workers)
    if workers < 1:
        raise ValueError("workers must be a positive integer")
    if chunk_size is not None and int(chunk_size) < 1:
        raise ValueError("chunk_size must be a positive integer (or None for the legacy path)")
    if workers > 1 and chunk_size is None:
        raise ValueError(
            "workers > 1 requires chunk_size: the chunk grid defines the shards "
            "(and keeps results worker-count-invariant)"
        )
    geometry = block if isinstance(block, BlockGeometry) else block_geometry(block)
    if formats is None:
        formats = DEFAULT_FORMAT_LADDER
    elif not formats:
        raise ValueError("formats must be a non-empty sequence (or None for the default ladder)")
    format_list = [_as_qformat(f) for f in formats]
    unit_list = [int(u) for u in n_units]
    if not unit_list or min(unit_list) < 1:
        raise ValueError("n_units must be a non-empty sequence of positive integers")

    if chunk_size is None:
        # Legacy single-batch path: weights and inputs drawn from one
        # ``default_rng(seed)`` stream, whole batch measured in one shot.
        # Bit-identical to every release before the streaming mode existed.
        rng = np.random.default_rng(seed)
        weights = BlockWeights.random(geometry, rng, scale=weight_scale)
        z = rng.normal(
            0.0, input_scale, size=(images, geometry.in_channels, geometry.height, geometry.width)
        )
        stages = _float_forward(weights, z, stride=geometry.stride)
        reference = stages["output"]
        ref_stats = _reference_stats(z, stages)
        fmt_stats: List[Dict[str, float]] = []
        for fmt in format_list:
            hw = HardwareODEBlock(geometry, weights, n_units=unit_list[0], qformat=fmt, board=board)
            report = error_report(reference, hw.dynamics_batch(z), fmt)
            fmt_stats.append(
                {
                    "max_abs_error": report.max_abs_error,
                    "rms_error": report.rms_error,
                    "sqnr_db": report.sqnr_db,
                    "overflow_fraction": report.overflow_fraction,
                }
            )
        n_chunks = 1
    else:
        chunk_size = int(chunk_size)
        weights = BlockWeights.random(geometry, np.random.default_rng(seed), scale=weight_scale)
        bounds = _chunk_bounds(images, chunk_size)
        n_chunks = len(bounds)
        cells, ref_chunks = _run_sharded(
            geometry, weights, format_list, bounds, seed, input_scale, workers
        )
        ref_stats = _merge_reference_stats([ref_chunks[c] for c in range(n_chunks)])
        fmt_stats = [
            _finalize_error_stats(
                _reduce_error_stats([cells[(i, c)] for c in range(n_chunks)])
            )
            for i in range(len(format_list))
        ]

    # Cost/feasibility columns are closed-form kernels over the unit axis,
    # with every board-derived constant (AXI clock, fabric delay scale,
    # timing target) taken from the board spec.
    cycle_model = OdeBlockCycleModel()
    transfer_s = (
        AxiTransferModel(AxiTransferConfig.for_board(board)).block_round_trip(geometry).seconds
    )
    timing = TimingModel.for_board(board).analyze_batch(unit_list, target_hz=board.pl_clock_hz)

    points: List[AccuracyPoint] = []
    for fmt, stats in zip(format_list, fmt_stats):
        bound = _analytic_bound(fmt, weights, ref_stats)
        tiles = int(bram_tiles_kernel(geometry, fmt.bytes_per_value))
        fits = bool(bram_fits_kernel(tiles, board.fpga))
        for j, units in enumerate(unit_list):
            compute_s = cycle_model.block_time_seconds(geometry, units, board.pl_clock_hz)
            latency = compute_s + transfer_s
            points.append(
                AccuracyPoint(
                    block=geometry.name,
                    word_length=fmt.word_length,
                    fraction_bits=fmt.fraction_bits,
                    qformat=fmt.name,
                    n_units=units,
                    max_abs_error=stats["max_abs_error"],
                    rms_error=stats["rms_error"],
                    sqnr_db=stats["sqnr_db"],
                    error_bound=bound,
                    overflow_fraction=stats["overflow_fraction"],
                    latency_s=latency,
                    compute_s=compute_s,
                    transfer_s=transfer_s,
                    images_per_s=1.0 / latency,
                    bram_tiles=tiles,
                    fits_device=fits,
                    fmax_mhz=float(timing["fmax_hz"][j]) / 1e6,
                    meets_timing=bool(timing["meets_timing"][j]),
                )
            )
    return AccuracySweepResult(
        points,
        images=images,
        seed=seed,
        workers=workers,
        chunk_size=chunk_size,
        chunks=n_chunks,
    )


def _run_sharded(
    geometry: BlockGeometry,
    weights: BlockWeights,
    format_list: List[QFormat],
    bounds: List[Tuple[int, int]],
    seed: int,
    input_scale: float,
    workers: int,
) -> Tuple[Dict[Tuple[int, int], Dict[str, object]], Dict[int, Dict[str, object]]]:
    """Measure every (format, chunk) cell, inline or across a process pool.

    Returns the accumulator of each cell plus the per-chunk reference stats
    (collected once per chunk, on the first format's task).  The parent
    always reduces in ascending chunk order, so the two execution modes —
    and any worker count — produce bit-identical sweeps.
    """

    cells: Dict[Tuple[int, int], Dict[str, object]] = {}
    ref_chunks: Dict[int, Dict[str, object]] = {}

    if workers == 1:
        for c, (lo, hi) in enumerate(bounds):
            z = _chunk_inputs(seed, c, hi - lo, geometry, input_scale)
            for i, fmt in enumerate(format_list):
                res = _measure_chunk(z, geometry, weights, fmt, collect_ref=(i == 0))
                if i == 0:
                    ref_chunks[c] = res.pop("ref_stats")
                cells[(i, c)] = res
        return cells, ref_chunks

    from concurrent.futures import ProcessPoolExecutor
    from multiprocessing import shared_memory

    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_sweep_worker,
        initargs=(geometry, weights, format_list),
    ) as pool:
        # Wave-per-chunk scheduling: at most ``workers`` chunks of input live
        # in shared memory at once, so peak memory stays bounded by
        # ``workers * chunk_size`` images however large the sweep is.
        for wave_start in range(0, len(bounds), workers):
            wave = range(wave_start, min(wave_start + workers, len(bounds)))
            shms = []
            futures = {}
            try:
                for c in wave:
                    lo, hi = bounds[c]
                    z = _chunk_inputs(seed, c, hi - lo, geometry, input_scale)
                    shm = shared_memory.SharedMemory(create=True, size=z.nbytes)
                    shms.append(shm)
                    np.ndarray(z.shape, dtype=np.float64, buffer=shm.buf)[...] = z
                    for i in range(len(format_list)):
                        futures[(i, c)] = pool.submit(
                            _measure_chunk_shm, shm.name, z.shape, i, i == 0
                        )
                for (i, c), future in futures.items():
                    res = future.result()
                    if i == 0:
                        ref_chunks[c] = res.pop("ref_stats")
                    cells[(i, c)] = res
            finally:
                for shm in shms:
                    shm.close()
                    shm.unlink()
    return cells, ref_chunks

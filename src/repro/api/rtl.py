"""One-call RTL export: emit, dump vectors, check, optionally simulate.

:func:`export_rtl` is the API surface of :mod:`repro.rtl` — it writes a
complete bundle (Verilog sources, ROM images, manifest, and optionally the
testbench + FxArray vector files) to a directory and returns a JSON-able
summary.  The structural check and the iverilog run are opt-in and the
simulation degrades to ``{"skipped": True}`` when no toolchain is present,
so the same call works in CI with or without iverilog installed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..fixedpoint import Q20, QFormat
from ..fpga.geometry import BlockGeometry
from ..platform import BoardSpec
from ..platform.registry import BOARDS, get_board
from ..rtl.check import check_bundle
from ..rtl.emit import TB_FILE, emit_odeblock, emit_testbench, random_block_weights
from ..rtl.simrun import iverilog_available, run_conformance
from ..rtl.vectors import generate_vectors, write_vector_files

__all__ = ["export_rtl"]


def _resolve_board(board: Union[str, BoardSpec]) -> BoardSpec:
    if isinstance(board, BoardSpec):
        return board
    try:
        return get_board(board)
    except KeyError:
        # Tolerate case and separator variants: "pynq_z2" -> "PYNQ-Z2".
        norm = str(board).lower().replace("_", "-")
        for name, spec in BOARDS.items():
            if name.lower().replace("_", "-") == norm:
                return spec
        raise ValueError(
            f"unknown board '{board}'; available boards: {', '.join(sorted(BOARDS))}"
        ) from None


def _resolve_qformat(qformat: Union[QFormat, Tuple[int, int], None]) -> QFormat:
    if qformat is None:
        return Q20
    if isinstance(qformat, QFormat):
        return qformat
    word, frac = qformat
    return QFormat(int(word), int(frac))


def export_rtl(
    out_dir: Union[str, Path],
    *,
    block: Union[str, BlockGeometry] = "layer3_2",
    board: Union[str, BoardSpec] = "pynq_z2",
    qformat: Union[QFormat, Tuple[int, int], None] = None,
    n_units: Optional[int] = None,
    time_concat: bool = False,
    step_size: float = 1.0,
    vectors: int = 0,
    iterations: int = 2,
    seed: int = 0,
    weight_scale: float = 0.1,
    input_scale: float = 0.5,
    check: bool = True,
    simulate: bool = False,
) -> Dict:
    """Emit an RTL bundle to ``out_dir`` and return a summary dict.

    ``vectors`` > 0 additionally dumps that many stimulus images per
    iteration from the batched FxArray engine plus the matching testbench;
    ``check=True`` runs the pure-Python structural checker; ``simulate=True``
    drives iverilog over the vectors when the toolchain exists (and reports
    a skip, not a failure, when it does not).
    """

    board_spec = _resolve_board(board)
    qf = _resolve_qformat(qformat)
    out = Path(out_dir)

    bundle = emit_odeblock(
        block,
        qformat=qf,
        n_units=n_units,
        board=board_spec,
        time_concat=time_concat,
        step_size=step_size,
        seed=seed,
        weight_scale=weight_scale,
    )
    written = bundle.write(out)

    summary: Dict = {
        "out_dir": str(out),
        "block": bundle.manifest["block"],
        "qformat": bundle.manifest["qformat"],
        "board": bundle.manifest["board"],
        "n_units": bundle.n_units,
        "n_banks": bundle.manifest["n_banks"],
        "time_concat": time_concat,
        "files": sorted(p.name for p in written),
        "resources": bundle.manifest["resources"],
        "cycle_guess": bundle.manifest["cycle_guess"],
        "vectors": None,
        "check": None,
        "simulation": None,
    }

    if vectors > 0:
        weights = random_block_weights(
            bundle.geometry, time_concat=time_concat, seed=seed, scale=weight_scale
        )
        vset = generate_vectors(
            bundle.geometry,
            weights,
            qformat=qf,
            images=vectors,
            iterations=iterations,
            seed=seed + 1,
            input_scale=input_scale,
            step_size=step_size,
            time_concat=time_concat,
            n_units=bundle.n_units,
        )
        vec_paths = write_vector_files(vset, out)
        tb = emit_testbench(bundle, len(vset.records), "stimulus.hex", "expected.hex")
        (out / TB_FILE).write_text(tb)
        summary["files"] = sorted(
            set(summary["files"]) | {p.name for p in vec_paths.values()} | {TB_FILE}
        )
        summary["vectors"] = {
            "records": len(vset.records),
            "words_per_map": vset.words_per_map,
            "images": vectors,
            "iterations": iterations,
        }

    if check:
        summary["check"] = check_bundle(out)

    if simulate:
        if vectors <= 0:
            raise ValueError("simulate=True requires vectors > 0 (nothing to replay)")
        if not iverilog_available():
            summary["simulation"] = {"skipped": True, "reason": "iverilog not on PATH"}
        else:
            result = run_conformance(out)
            summary["simulation"] = {
                "skipped": False,
                "passed": result.passed,
                "vectors": result.vectors,
                "words": result.words,
                "mismatches": result.mismatches,
            }
            if not result.passed:
                summary["simulation"]["stdout"] = result.stdout[-4000:]
    return summary

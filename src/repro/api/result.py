"""The :class:`Result` of evaluating one :class:`~repro.api.scenario.Scenario`.

A result is a structured bundle of every quantity the paper's analyses
derive for a design point, grouped into sections:

* ``parameters`` — architecture facts: parameter count/size (Table 2 /
  Figure 5) and the modelled CIFAR-100 accuracy (Figure 6);
* ``resources`` — the PL resource demand of the offload targets and the
  fit/timing verdicts (Table 3 / Section 3.2);
* ``timing`` — the Table-5 row: totals with and without the PL, target
  shares and the overall speedup, plus the speedup over software ResNet-N;
* ``energy`` — per-prediction energy with vs without the offload;
* ``training`` — the future-work training projection (step/epoch/full-run).

Results convert losslessly to nested dictionaries (:meth:`Result.as_dict`),
JSON (:meth:`Result.to_json`) and flat CSV rows (:meth:`Result.to_csv_row` /
:meth:`Result.csv_header`), which is what the ``eval`` and ``sweep``
subcommands and the benchmark harness emit.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, List, Mapping, Tuple

from .scenario import Scenario

__all__ = ["Result"]

#: Keys of the resource vector inside the ``resources`` section.
_RESOURCE_KEYS = ("bram", "dsp", "lut", "ff")


def _flatten_value(value: object) -> object:
    """Collapse list-valued cells (per-target series) for flat/CSV views."""

    if isinstance(value, (list, tuple)):
        return " / ".join(str(v) for v in value) if value else "-"
    return value


@dataclass(frozen=True)
class Result:
    """Structured outcome of evaluating one scenario.

    Results are memoized and shared (also across sweep worker threads), so
    the sections are wrapped read-only at construction; use :meth:`as_dict`
    for a mutable copy.
    """

    scenario: Scenario
    parameters: Mapping[str, object]
    resources: Mapping[str, object]
    timing: Mapping[str, object]
    energy: Mapping[str, object]
    training: Mapping[str, object]

    def __post_init__(self) -> None:
        for name in ("parameters", "resources", "timing", "energy", "training"):
            section = getattr(self, name)
            if not isinstance(section, MappingProxyType):
                object.__setattr__(self, name, MappingProxyType(dict(section)))

    # -- views -----------------------------------------------------------------------

    @property
    def sections(self) -> Tuple[Tuple[str, Mapping[str, object]], ...]:
        return (
            ("parameters", self.parameters),
            ("resources", self.resources),
            ("timing", self.timing),
            ("energy", self.energy),
            ("training", self.training),
        )

    def resource_vector(self) -> Dict[str, float]:
        """The PL resource demand as a plain {bram, dsp, lut, ff} dict."""

        return {k: self.resources[k] for k in _RESOURCE_KEYS}

    def as_dict(self) -> Dict[str, object]:
        """Nested dictionary: scenario knobs plus every section.

        Returns fresh containers (list-valued cells copied too) so callers
        can mutate the output without corrupting the memoized result.
        """

        out: Dict[str, object] = {"scenario": self.scenario.as_dict()}
        for name, section in self.sections:
            out[name] = {
                key: list(value) if isinstance(value, (list, tuple)) else value
                for key, value in section.items()
            }
        return out

    def flat_dict(self) -> Dict[str, object]:
        """One flat row: scenario knobs then section values, first key wins.

        Duplicate keys across sections (``model``, ``N``, ...) are emitted
        once; list-valued cells are joined with ``" / "`` so the row is
        CSV-safe.
        """

        row: Dict[str, object] = dict(self.scenario.as_dict())
        for _, section in self.sections:
            for key, value in section.items():
                if key in ("model", "N") or key in row:
                    continue
                row[key] = _flatten_value(value)
        return row

    # -- serialisation -----------------------------------------------------------------

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def csv_header(self) -> str:
        """CSV header line matching :meth:`to_csv_row` (no trailing newline)."""

        buf = io.StringIO()
        csv.writer(buf, lineterminator="").writerow(list(self.flat_dict().keys()))
        return buf.getvalue()

    def to_csv_row(self) -> str:
        """One CSV data line (no trailing newline)."""

        buf = io.StringIO()
        csv.writer(buf, lineterminator="").writerow(list(self.flat_dict().values()))
        return buf.getvalue()

    # -- rendering ---------------------------------------------------------------------

    def render(self) -> str:
        """Multi-section plain-text report (the ``eval`` subcommand output)."""

        lines: List[str] = [f"Scenario {self.scenario.full_name}"]
        width = max(
            len(key)
            for _, section in (("scenario", self.scenario.as_dict()),) + self.sections
            for key in section
        )
        for name, section in (("scenario", self.scenario.as_dict()),) + self.sections:
            lines.append(f"[{name}]")
            for key, value in section.items():
                shown = _flatten_value(value)
                if isinstance(shown, float):
                    shown = f"{shown:.6g}"
                lines.append(f"  {key.ljust(width)} : {shown}")
        return "\n".join(lines)

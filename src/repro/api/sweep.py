"""Design-space sweeps: evaluate many scenarios, optionally in parallel.

:func:`sweep` is the grid engine behind the ``repro-odenet sweep``
subcommand, ``examples/design_space.py`` and the ablation benchmarks.  It
takes any iterable of scenarios (usually from
:func:`repro.api.scenario.scenario_grid`), shares one memoizing
:class:`~repro.api.evaluator.Evaluator` across all of them and fans the
evaluations out over a ``concurrent.futures`` thread pool.

Determinism: results are returned in the input scenario order regardless of
``workers``, and the models themselves are pure functions of the scenario,
so ``workers=1`` and ``workers=8`` produce identical result lists.  Threads
(not processes) are the right pool here — the analytical models are small
closed-form computations and the win is overlapping thousands of scenario
evaluations, not bypassing the GIL for one heavy kernel; results also stay
shared in the evaluator's in-process cache.

This loop engine is also the *conformance oracle* for the vectorized paths:
:mod:`repro.api.batch` (and, since phase 2, the closed-form BRAM/timing
plan kernels inside it) is pinned field-for-field against ``sweep`` by
``tests/api/test_batch.py`` and ``tests/api/test_batch_plans.py``.  Prefer
:func:`repro.api.batch.sweep_batch` for large grids; prefer ``sweep`` when a
scenario subclass overrides derived behaviour or when debugging a single
design point end to end.
"""

from __future__ import annotations

import io
import json
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, List, Optional, Sequence

from .evaluator import Evaluator
from .result import Result
from .scenario import Scenario

__all__ = ["sweep", "SweepError", "results_to_csv", "results_to_json", "results_to_records"]


class SweepError(RuntimeError):
    """A scenario evaluation failed inside a sweep.

    Worker-pool tracebacks lose the loop context, so the error message names
    the failing scenario explicitly — including its position in the grid,
    which is what you need to resume or bisect a long sweep.  The original
    exception is chained as ``__cause__``; the design point and its grid
    position are available as :attr:`scenario` and :attr:`index`.
    """

    def __init__(
        self, scenario: Scenario, cause: BaseException, index: Optional[int] = None
    ) -> None:
        where = f"scenario #{index} " if index is not None else "scenario "
        super().__init__(
            f"evaluation failed for {where}{scenario.full_name} "
            f"({scenario.as_dict()}): {cause!r}"
        )
        self.scenario = scenario
        self.cause = cause
        self.index = index

    def __reduce__(self):
        # BaseException pickling replays args into __init__; ours are
        # (scenario, cause, index), not the formatted message.
        return (SweepError, (self.scenario, self.cause, self.index))


def sweep(
    scenarios: Iterable[Scenario],
    evaluator: Optional[Evaluator] = None,
    workers: int = 1,
) -> List[Result]:
    """Evaluate every scenario; results come back in input order.

    Parameters
    ----------
    scenarios:
        The design points to evaluate.  Duplicates are served from the
        evaluator's memo without recomputation.
    evaluator:
        An existing evaluator to reuse (and warm); a fresh one otherwise.
    workers:
        Thread-pool width.  ``1`` evaluates inline; higher values overlap
        scenario evaluations and still return a deterministic ordering.
    """

    if workers < 1:
        raise ValueError("workers must be a positive integer")
    ev = evaluator if evaluator is not None else Evaluator()
    points = list(scenarios)

    def evaluate(item: "tuple[int, Scenario]") -> Result:
        index, scenario = item
        try:
            return ev.evaluate(scenario)
        except Exception as exc:
            raise SweepError(scenario, exc, index=index) from exc

    if workers == 1 or len(points) <= 1:
        return [evaluate(item) for item in enumerate(points)]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(evaluate, enumerate(points)))


def results_to_records(results: Sequence[Result]) -> List[dict]:
    """Flat one-row-per-scenario dictionaries (table/CSV shaped)."""

    return [r.flat_dict() for r in results]


def results_to_csv(results: Sequence[Result]) -> str:
    """Render results as a CSV document (header + one row per scenario)."""

    if not results:
        return ""
    buf = io.StringIO()
    buf.write(results[0].csv_header())
    buf.write("\n")
    for result in results:
        buf.write(result.to_csv_row())
        buf.write("\n")
    return buf.getvalue().rstrip("\n")


def results_to_json(results: Sequence[Result], indent: int = 2) -> str:
    """Render results as a JSON array of nested result dictionaries."""

    return json.dumps([r.as_dict() for r in results], indent=indent)

"""FMEA tabulation: expected losses per fault mode, vs the nominal run.

The quantitative half of a Failure Modes and Effects Analysis, in the
fmdtools style: for each fault mode, run the scenario with the fault
injected at every sampled time (:mod:`repro.faults.sample`), take the
quadrature-weighted average of the metric deltas against the nominal run —
the time-averaged effect of *one* occurrence — and scale by the mode's
expected number of occurrences over the run (``rate_per_hour × horizon``).
The headline column is the expected SLO-violation fraction added by the
mode; latency and energy deltas ride along.

The SLO itself lives on the :class:`~repro.sim.scenario.SimScenario`
(``slo_s``); when unset, :func:`run_fmea` defaults it to
``DEFAULT_SLO_FACTOR ×`` the no-load service time — the knee convention of
``examples/serving_study.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.report import format_records
from ..api.evaluator import Evaluator
from ..api.scenario import Scenario
from ..sim.metrics import SimReport
from ..sim.runner import as_sim_scenario, simulate
from ..sim.scenario import SimScenario
from ..sim.workload import build_service_plan
from .modes import FaultMode
from .sample import injection_times

__all__ = ["DEFAULT_SLO_FACTOR", "FmeaStudy", "run_fmea"]

#: Default SLO when the scenario sets none: this multiple of the no-load
#: service time (the latency-knee convention used across the examples).
DEFAULT_SLO_FACTOR = 2.0


@dataclass(frozen=True)
class FmeaStudy:
    """Outcome of one FMEA: nominal baseline + per-mode expected losses."""

    scenario: Dict[str, object]
    slo_s: float
    nominal: SimReport
    #: One row per fault mode (see :func:`run_fmea` for the columns).
    rows: List[Dict[str, object]]
    #: One record per executed fault scenario (mode, time, weight, metrics).
    samples: List[Dict[str, object]]

    @property
    def expected_slo_violation(self) -> float:
        """Total expected SLO-violation fraction added across all modes."""

        return sum(row["expected_slo_violation"] for row in self.rows)

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": dict(self.scenario),
            "slo_s": self.slo_s,
            "nominal": self.nominal.as_dict(),
            "fmea": [dict(row) for row in self.rows],
            "samples": [dict(s) for s in self.samples],
            "expected_slo_violation": self.expected_slo_violation,
        }

    def to_csv(self) -> str:
        """Header + one row per fault mode (the ``--format csv`` output)."""

        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        if self.rows:
            writer.writerow(list(self.rows[0].keys()))
            for row in self.rows:
                writer.writerow(list(row.values()))
        return buf.getvalue().rstrip("\n")

    def render(self) -> str:
        """Plain-text FMEA table plus the nominal baseline line."""

        s = self.scenario
        nom = self.nominal
        frac = nom.slo["violation_fraction"] if nom.slo else 0.0
        lines = [
            f"FMEA: {s['model']}-{s['depth']} on {s['board']} "
            f"({s['replicas']} replica(s), policy={s['policy']}, "
            f"slo={self.slo_s * 1e3:.4g} ms)",
            f"nominal: p95 {nom.latency.percentiles[95] * 1e3:.4g} ms, "
            f"violation fraction {frac:.4g}, "
            f"energy {nom.energy['total_energy_J']:.4g} J "
            f"over {nom.horizon_s:.4g} s",
            "",
            format_records(
                [
                    {
                        "mode": r["mode"],
                        "rate/h": r["rate_per_hour"],
                        "occurrences": r["expected_occurrences"],
                        "d_violation": r["d_violation_fraction"],
                        "E[violation]": r["expected_slo_violation"],
                        "d_p95_ms": r["d_p95_ms"],
                        "d_energy_J": r["d_energy_J"],
                        "corrupted": r["corrupted_mean"],
                    }
                    for r in self.rows
                ]
            ),
            "",
            f"total expected SLO-violation fraction: {self.expected_slo_violation:.4g}",
        ]
        return "\n".join(lines)


def run_fmea(
    scenario: Scenario,
    modes: Sequence[FaultMode],
    evaluator: Optional[Evaluator] = None,
    n_samples: int = 3,
    method: str = "even",
    fault_seed: int = 0,
    mix: Optional[Sequence[Tuple[Scenario, float]]] = None,
) -> FmeaStudy:
    """Run the full FMEA for ``scenario`` over ``modes``.

    Per mode: ``n_samples`` single-fault runs at sampled injection times,
    weighted into time-averaged deltas vs the nominal run, scaled by the
    mode's expected occurrences over the horizon.  Row columns:

    ``mode``, ``rate_per_hour``, ``samples``, ``expected_occurrences``,
    ``violation_fraction`` (weighted, under the fault),
    ``d_violation_fraction``, ``expected_slo_violation``
    (= occurrences × delta, the FMEA headline), ``d_p95_ms``,
    ``d_mean_ms``, ``d_energy_J``, ``corrupted_mean``.

    Zero-rate modes get a row of zeros (listed, never fired).  The nominal
    report inside the study is the *unmodified* ``simulate()`` output — with
    only zero-rate modes, the study degenerates to exactly the nominal run.
    """

    ev = evaluator if evaluator is not None else Evaluator()
    sim_scenario = as_sim_scenario(scenario)
    if sim_scenario.slo_s is None:
        service = build_service_plan(sim_scenario.design_point, evaluator=ev).total_seconds
        sim_scenario = sim_scenario.replace(slo_s=DEFAULT_SLO_FACTOR * service)

    nominal = simulate(sim_scenario, evaluator=ev, mix=mix)
    horizon = nominal.horizon_s
    nom_frac = nominal.slo["violation_fraction"]
    nom_p95 = nominal.latency.percentiles[95]
    nom_mean = nominal.latency.mean
    nom_energy = nominal.energy["total_energy_J"]

    rows: List[Dict[str, object]] = []
    sample_records: List[Dict[str, object]] = []
    for mode in modes:
        occurrences = mode.rate_per_hour * horizon / 3600.0
        if mode.rate_per_hour <= 0:
            rows.append(
                {
                    "mode": mode.kind,
                    "rate_per_hour": mode.rate_per_hour,
                    "samples": 0,
                    "expected_occurrences": 0.0,
                    "violation_fraction": nom_frac,
                    "d_violation_fraction": 0.0,
                    "expected_slo_violation": 0.0,
                    "d_p95_ms": 0.0,
                    "d_mean_ms": 0.0,
                    "d_energy_J": 0.0,
                    "corrupted_mean": 0.0,
                }
            )
            continue
        times, weights = injection_times(horizon, n_samples, method)
        frac = p95 = mean = energy = corrupted = 0.0
        for t_inject, weight in zip(times, weights):
            report = simulate(
                sim_scenario,
                evaluator=ev,
                mix=mix,
                faults=[(mode, t_inject)],
                fault_seed=fault_seed,
            )
            frac += weight * report.slo["violation_fraction"]
            p95 += weight * report.latency.percentiles[95]
            mean += weight * report.latency.mean
            energy += weight * report.energy["total_energy_J"]
            corrupted += weight * report.faults["corrupted_requests"]
            sample_records.append(
                {
                    "mode": mode.kind,
                    "t_inject": t_inject,
                    "weight": weight,
                    "violation_fraction": report.slo["violation_fraction"],
                    "p95_s": report.latency.percentiles[95],
                    "total_energy_J": report.energy["total_energy_J"],
                    "redispatched": report.faults["redispatched"],
                    "ps_fallback_served": report.faults["ps_fallback_served"],
                    "corrupted_requests": report.faults["corrupted_requests"],
                }
            )
        rows.append(
            {
                "mode": mode.kind,
                "rate_per_hour": mode.rate_per_hour,
                "samples": n_samples,
                "expected_occurrences": occurrences,
                "violation_fraction": frac,
                "d_violation_fraction": frac - nom_frac,
                "expected_slo_violation": occurrences * max(0.0, frac - nom_frac),
                "d_p95_ms": (p95 - nom_p95) * 1e3,
                "d_mean_ms": (mean - nom_mean) * 1e3,
                "d_energy_J": energy - nom_energy,
                "corrupted_mean": corrupted,
            }
        )
    scenario_dict = dict(nominal.scenario)
    return FmeaStudy(
        scenario=scenario_dict,
        slo_s=float(sim_scenario.slo_s),
        nominal=nominal,
        rows=rows,
        samples=sample_records,
    )

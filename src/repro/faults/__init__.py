"""``repro.faults`` — fault injection, degraded-mode serving and FMEA tables.

The resilience workbench over :mod:`repro.sim`: typed fault modes over the
simulator's resources (:mod:`~repro.faults.modes`), fmdtools-style sampled
injection times (:mod:`~repro.faults.sample`), and rate × exposure-weighted
FMEA tabulation against the nominal run (:mod:`~repro.faults.tabulate`).

Typical use::

    from repro.faults import default_fault_domain, run_fmea
    from repro.sim import SimScenario

    scenario = SimScenario(model="rODENet-3", depth=20, arrival="poisson",
                           arrival_rate_hz=4.0, n_requests=50, replicas=2)
    study = run_fmea(scenario, default_fault_domain())
    print(study.render())

Single fault runs go straight through the simulator::

    from repro.faults import ReplicaDeath
    from repro.sim import simulate

    report = simulate(scenario, faults=[(ReplicaDeath(), 2.5)])
"""

from .modes import (
    FAULT_MODE_KINDS,
    AxiDegradation,
    DmaCorruption,
    FaultMode,
    PsCoreLoss,
    ReplicaDeath,
    default_fault_domain,
    flip_bit,
    make_fault_mode,
    parse_fault_specs,
)
from .sample import SAMPLING_METHODS, FaultSample, injection_times, sample_faults
from .tabulate import DEFAULT_SLO_FACTOR, FmeaStudy, run_fmea

__all__ = [
    "FAULT_MODE_KINDS",
    "SAMPLING_METHODS",
    "DEFAULT_SLO_FACTOR",
    "FaultMode",
    "ReplicaDeath",
    "AxiDegradation",
    "PsCoreLoss",
    "DmaCorruption",
    "FaultSample",
    "FmeaStudy",
    "default_fault_domain",
    "make_fault_mode",
    "parse_fault_specs",
    "flip_bit",
    "injection_times",
    "sample_faults",
    "run_fmea",
]

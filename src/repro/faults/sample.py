"""Fault-scenario sampling: when, within a run, does each mode strike?

The fmdtools approach to resilience quantification: a fault's *effect*
depends on when it hits (a replica dying into an empty queue is free; dying
under peak backlog is not), so each mode's injection time is sampled across
the run and the observed deltas are combined with quadrature weights.  One
:class:`~repro.sim.scenario.SimScenario` thus expands into a weighted set of
fault scenarios — one :class:`FaultSample` per (mode, time) — each run
through the ordinary :func:`~repro.sim.runner.simulate` path.

Two sampling rules are provided:

* ``even`` — midpoint rule: times at ``(i + 1/2) * h / n`` with uniform
  weights ``1/n`` (robust, the default);
* ``quadrature`` — Gauss–Legendre nodes mapped to ``[0, h]`` with the
  corresponding weights (exact for polynomial time-dependence of the loss,
  fewer samples for smooth responses).

Per mode the weights sum to one, so a weighted sum of per-sample metrics
estimates the *time-averaged* effect of one occurrence of that mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .modes import FaultMode

__all__ = ["SAMPLING_METHODS", "FaultSample", "injection_times", "sample_faults"]

#: Supported time-sampling rules.
SAMPLING_METHODS: Tuple[str, ...] = ("even", "quadrature")


@dataclass(frozen=True)
class FaultSample:
    """One fault scenario: a mode injected at a sampled time, with weight."""

    mode: FaultMode
    t_inject: float
    weight: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode.as_dict(),
            "t_inject": self.t_inject,
            "weight": self.weight,
        }


def injection_times(
    horizon_s: float, n_samples: int = 3, method: str = "even"
) -> Tuple[List[float], List[float]]:
    """Sampled injection times and weights over ``[0, horizon_s]``.

    Weights sum to one for either method; all times lie strictly inside the
    horizon (neither rule places a node on an endpoint).
    """

    if horizon_s <= 0:
        raise ValueError(f"horizon_s must be positive (got {horizon_s})")
    if n_samples < 1:
        raise ValueError(f"n_samples must be a positive integer (got {n_samples})")
    if method == "even":
        times = [(i + 0.5) * horizon_s / n_samples for i in range(n_samples)]
        weights = [1.0 / n_samples] * n_samples
    elif method == "quadrature":
        nodes, w = np.polynomial.legendre.leggauss(n_samples)
        times = [float(t) for t in (nodes + 1.0) * 0.5 * horizon_s]
        weights = [float(v) for v in w * 0.5]
    else:
        raise ValueError(
            f"unknown sampling method '{method}'; expected one of {SAMPLING_METHODS}"
        )
    return times, weights


def sample_faults(
    modes: Sequence[FaultMode],
    horizon_s: float,
    n_samples: int = 3,
    method: str = "even",
) -> List[FaultSample]:
    """Expand fault modes into weighted single-fault scenarios.

    Zero-rate modes produce no samples (they never fire); every produced
    sample's time lies within ``(0, horizon_s)`` and each mode's weights sum
    to one.
    """

    samples: List[FaultSample] = []
    for mode in modes:
        if mode.rate_per_hour <= 0:
            continue
        times, weights = injection_times(horizon_s, n_samples, method)
        samples.extend(
            FaultSample(mode=mode, t_inject=t, weight=w)
            for t, w in zip(times, weights)
        )
    return samples

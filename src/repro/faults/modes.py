"""The fault domain: typed fault modes over the simulator's resources.

Following the fmdtools methodology (fault domains defined over the model's
flows and functions), each mode here targets one primitive of the
:mod:`repro.sim` serving system and knows how to *inject* itself into a live
:class:`~repro.sim.runner.SimSystem` and how to *clear* itself again:

* :class:`ReplicaDeath` — a PL accelerator replica dies (SEU in control
  logic, configuration upset).  The dispatcher drains its queue and
  in-flight work onto the survivors; with no survivor the offloaded blocks
  fall back to the PS software path.
* :class:`AxiDegradation` — the PS<->PL interconnect renegotiates to a
  narrower burst width (link-training fallback); every DMA burst is priced
  through the same :class:`~repro.fpga.axi.AxiTransferModel` as the nominal
  run, with the degraded cycles-per-word.
* :class:`PsCoreLoss` — the PS core pool shrinks (thermal shutdown of a
  core); running software phases finish, then the pool drains to the new
  capacity.
* :class:`DmaCorruption` — bit flips in DMA'd activations, surfaced through
  the fixed-point machinery of :mod:`repro.fixedpoint.qformat`: a flip is
  *severe* when its magnitude reaches the integer bits or when the corrupted
  activation saturates the MAC accumulator headroom, and a severe flip marks
  the request corrupted (an SLO violation even if it completes fast).

Modes are frozen dataclasses — stateless, hashable, reusable across runs.
``inject`` returns an opaque token that ``clear`` consumes, so one instance
can be injected at many sampled times (see :mod:`repro.faults.sample`).
``rate_per_hour`` is the mode's occurrence rate, used by the FMEA tabulation
to weight observed deltas into expected losses; a rate of 0 keeps the mode
in the registry but it never fires.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple, Type

from ..fixedpoint.qformat import QFormat
from ..fpga.axi import AxiTransferModel

__all__ = [
    "FaultMode",
    "ReplicaDeath",
    "AxiDegradation",
    "PsCoreLoss",
    "DmaCorruption",
    "FAULT_MODE_KINDS",
    "default_fault_domain",
    "make_fault_mode",
    "parse_fault_specs",
    "flip_bit",
]

#: Accumulation depth the corruption severity check assumes: a 3x3 kernel's
#: taps feeding one MAC chain (the dominant convolution shape in the paper).
ACCUM_TAPS = 9


def flip_bit(qformat: QFormat, fixed: int, bit: int) -> int:
    """Flip one bit of a two's-complement fixed-point word.

    ``fixed`` is a signed integer in ``[min_int, max_int]``; the result is
    the signed value of the same word with ``bit`` toggled (bit 0 = LSB,
    ``word_length - 1`` = sign bit).
    """

    if not 0 <= bit < qformat.word_length:
        raise ValueError(
            f"bit must be in [0, {qformat.word_length}) for Q"
            f"{qformat.word_length}.{qformat.fraction_bits} (got {bit})"
        )
    span = 1 << qformat.word_length
    unsigned = (int(fixed) + span) % span
    unsigned ^= 1 << bit
    return unsigned - span if unsigned >= (1 << (qformat.word_length - 1)) else unsigned


@dataclass(frozen=True)
class FaultMode:
    """Base fault mode: a rate, an optional duration, and hook methods."""

    #: Occurrence rate (events per hour of operation) used by the FMEA
    #: weighting; 0 registers the mode without it ever firing.
    rate_per_hour: float = 1.0
    #: Seconds until the fault self-clears (repair, re-negotiation); ``None``
    #: is a permanent fault (it lasts to the end of the run).
    duration_s: Optional[float] = None

    kind = "base"
    summary = "abstract base mode"

    def __post_init__(self) -> None:
        if self.rate_per_hour < 0:
            raise ValueError(f"rate_per_hour must be non-negative (got {self.rate_per_hour})")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive or None (got {self.duration_s})")

    # -- protocol ----------------------------------------------------------------------

    def inject(self, system) -> object:
        raise NotImplementedError

    def clear(self, system, token: object) -> None:
        raise NotImplementedError

    def param_dict(self) -> Dict[str, object]:
        """Mode-specific parameters (merged into :meth:`as_dict`)."""

        return {}

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "rate_per_hour": self.rate_per_hour,
            "duration_s": self.duration_s,
        }
        out.update(self.param_dict())
        return out


@dataclass(frozen=True)
class ReplicaDeath(FaultMode):
    """One PL accelerator replica stops serving (configuration upset)."""

    #: Replica index to kill; ``None`` kills the lowest-indexed live one.
    replica: Optional[int] = None

    kind = "replica_death"
    summary = "a PL replica dies; its queue re-dispatches to survivors"

    def inject(self, system) -> object:
        dispatcher = system.dispatcher
        if self.replica is not None:
            index = self.replica
            if not 0 <= index < len(dispatcher.alive) or not dispatcher.alive[index]:
                return None
        else:
            live = [i for i, up in enumerate(dispatcher.alive) if up]
            if not live:
                return None
            index = live[0]
        dispatcher.fail_replica(index)
        return index

    def clear(self, system, token: object) -> None:
        if token is not None:
            system.dispatcher.revive_replica(token)

    def param_dict(self) -> Dict[str, object]:
        return {"replica": self.replica}


@dataclass(frozen=True)
class AxiDegradation(FaultMode):
    """The AXI link renegotiates to a narrower burst width.

    Nominally every beat moves a full word (``8 * bytes_per_word`` bits);
    degraded, only ``burst_bits`` land per beat, so a word takes
    ``word_bits / burst_bits`` beats.  The slowdown is priced through the
    bus's own :class:`~repro.fpga.axi.AxiTransferModel` — the ratio of
    degraded to nominal transfer time of a reference burst — so a different
    nominal transfer model (setup cycles, slower clock) degrades
    consistently.
    """

    #: Bits landing per bus beat after degradation (nominal: the full word).
    burst_bits: int = 8
    #: Reference burst length (words) for the degraded/nominal time ratio;
    #: only matters under nonzero per-transfer setup cycles.
    reference_words: int = 1024

    kind = "axi_degraded"
    summary = "AXI bursts narrow; every DMA transfer slows down"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.burst_bits < 1:
            raise ValueError(f"burst_bits must be a positive integer (got {self.burst_bits})")
        if self.reference_words < 1:
            raise ValueError("reference_words must be a positive integer")

    def slowdown_factor(self, model: AxiTransferModel) -> float:
        """Degraded-to-nominal transfer-time ratio under ``model``."""

        word_bits = 8 * model.config.bytes_per_word
        if self.burst_bits >= word_bits:
            return 1.0
        degraded = AxiTransferModel(
            replace(
                model.config,
                cycles_per_word=model.config.cycles_per_word * word_bits / self.burst_bits,
            )
        )
        return (
            degraded.transfer_seconds(self.reference_words)
            / model.transfer_seconds(self.reference_words)
        )

    def inject(self, system) -> object:
        return system.bus.degrade(self.slowdown_factor(system.bus.model) * system.bus.slowdown)

    def clear(self, system, token: object) -> None:
        system.bus.degrade(float(token))

    def param_dict(self) -> Dict[str, object]:
        return {"burst_bits": self.burst_bits}


@dataclass(frozen=True)
class PsCoreLoss(FaultMode):
    """The PS core pool shrinks (e.g. thermal shutdown of a core)."""

    #: Cores removed from the pool; the pool never drops below one core.
    cores_lost: int = 1

    kind = "ps_core_loss"
    summary = "PS cores drop out; software phases contend for fewer cores"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.cores_lost < 1:
            raise ValueError(f"cores_lost must be a positive integer (got {self.cores_lost})")

    def inject(self, system) -> object:
        previous = system.ps.capacity
        system.ps.set_capacity(max(1, previous - self.cores_lost))
        return previous

    def clear(self, system, token: object) -> None:
        system.ps.set_capacity(int(token))

    def param_dict(self) -> Dict[str, object]:
        return {"cores_lost": self.cores_lost}


@dataclass(frozen=True)
class DmaCorruption(FaultMode):
    """Bit flips in DMA'd activations while the fault is active.

    Every input DMA burst has one word corrupted: a sampled activation in
    ``[-1, 1)`` is quantised to the scenario's Q-format, one bit flips, and
    the damage is judged with the same fixed-point machinery the datapath
    models use.  A flip is *severe* — the request's output is garbage — when
    the error magnitude reaches one integer unit (``2^(bit - fraction_bits)
    >= 1``) or when the corrupted activation, scaled by the MAC accumulation
    depth (:data:`ACCUM_TAPS`), is no longer representable, i.e. the
    accumulator saturates (``OverflowMode.SATURATE`` clipping territory).
    """

    #: Bit to flip (0 = LSB); ``None`` draws a uniform position per burst
    #: from the system's fault RNG.
    bit: Optional[int] = None

    kind = "dma_corruption"
    summary = "DMA bit flips; severe ones corrupt the request's output"

    def _corrupt(self, system, request) -> None:
        q: QFormat = system.qformat
        bit = self.bit if self.bit is not None else int(system.rng.integers(0, q.word_length))
        value = float(system.rng.uniform(-1.0, 1.0))
        fixed = int(q.to_fixed(value))
        corrupted = float(q.to_float(flip_bit(q, fixed, bit)))
        error = abs(corrupted - float(q.to_float(fixed)))
        system.counters["corrupted_words"] = system.counters.get("corrupted_words", 0) + 1
        severe = error >= 1.0 or not bool(q.representable(corrupted * ACCUM_TAPS))
        if severe:
            request.corrupted = True

    def inject(self, system) -> object:
        previous = system.dispatcher.corruptor
        system.dispatcher.corruptor = lambda request: self._corrupt(system, request)
        return previous

    def clear(self, system, token: object) -> None:
        system.dispatcher.corruptor = token

    def param_dict(self) -> Dict[str, object]:
        return {"bit": self.bit}


# -- registry ----------------------------------------------------------------------------

_MODE_CLASSES: Tuple[Type[FaultMode], ...] = (
    ReplicaDeath,
    AxiDegradation,
    PsCoreLoss,
    DmaCorruption,
)

#: Registered fault-mode kinds, in registry order.
FAULT_MODE_KINDS: Tuple[str, ...] = tuple(cls.kind for cls in _MODE_CLASSES)

#: Default occurrence rates (events/hour) for the default fault domain —
#: engineering estimates for a low-cost edge deployment, deliberately high
#: enough that a short simulated run shows each mode's effect.
_DEFAULT_RATES: Dict[str, float] = {
    "replica_death": 2.0,
    "axi_degraded": 4.0,
    "ps_core_loss": 1.0,
    "dma_corruption": 6.0,
}


def default_fault_domain() -> List[FaultMode]:
    """One instance of every registered mode at its default rate."""

    return [cls(rate_per_hour=_DEFAULT_RATES[cls.kind]) for cls in _MODE_CLASSES]


def make_fault_mode(
    kind: str,
    rate_per_hour: Optional[float] = None,
    param: Optional[float] = None,
    duration_s: Optional[float] = None,
) -> FaultMode:
    """Construct a mode by kind name (the CLI entry point).

    ``param`` maps to the mode's single knob: the replica index for
    ``replica_death``, ``burst_bits`` for ``axi_degraded``, ``cores_lost``
    for ``ps_core_loss`` and the bit position for ``dma_corruption``.
    """

    by_kind = {cls.kind: cls for cls in _MODE_CLASSES}
    if kind not in by_kind:
        raise ValueError(
            f"unknown fault mode '{kind}'; expected one of {FAULT_MODE_KINDS}"
        )
    kwargs: Dict[str, object] = {
        "rate_per_hour": _DEFAULT_RATES[kind] if rate_per_hour is None else rate_per_hour,
        "duration_s": duration_s,
    }
    if param is not None:
        field_name = {
            "replica_death": "replica",
            "axi_degraded": "burst_bits",
            "ps_core_loss": "cores_lost",
            "dma_corruption": "bit",
        }[kind]
        kwargs[field_name] = int(param)
    return by_kind[kind](**kwargs)


def parse_fault_specs(
    specs: List[str], duration_s: Optional[float] = None
) -> List[FaultMode]:
    """Parse CLI fault specs: ``KIND[:RATE[:PARAM]]``.

    An empty list yields the default fault domain.  ``duration_s`` applies
    to every parsed mode (the CLI's ``--fault-duration`` knob).
    """

    if not specs:
        return [
            replace(mode, duration_s=duration_s) if duration_s is not None else mode
            for mode in default_fault_domain()
        ]
    modes: List[FaultMode] = []
    for spec in specs:
        parts = spec.split(":")
        if len(parts) > 3 or not parts[0]:
            raise ValueError(
                f"bad fault spec '{spec}'; expected KIND[:RATE[:PARAM]] with "
                f"KIND one of {FAULT_MODE_KINDS}"
            )
        kind = parts[0]
        try:
            rate = float(parts[1]) if len(parts) > 1 else None
            param = float(parts[2]) if len(parts) > 2 else None
        except ValueError:
            raise ValueError(
                f"bad fault spec '{spec}': RATE and PARAM must be numbers"
            ) from None
        modes.append(make_fault_mode(kind, rate, param, duration_s))
    return modes

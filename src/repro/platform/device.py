"""Board-parametric platform primitives: fabric totals, clocks, power.

The paper evaluates exactly one platform — the TUL PYNQ-Z2's Zynq XC7Z020 —
and the seed repository hard-coded its constants (650 MHz PS clock, 100 MHz
PL clock, the Zynq-7000 wattages) in every model layer.  This module promotes
the board to a first-class value object so the same analytical models can be
evaluated for any PS + PL SoC:

* :class:`ResourceVector` / :class:`FpgaDevice` — programmable-logic fabric
  totals and arithmetic over them (unchanged from the seed's
  ``repro.fpga.device``, which now re-exports from here);
* :class:`PowerProfile` — the documented-not-measured power constants of one
  board (PS active/idle watts, PL static and dynamic coefficients);
* :class:`BoardSpec` — one board: fabric, PS/PL clocks, cores, DRAM, power
  profile and a fabric delay scale for the timing model.

Every board-derived default elsewhere in the repository (the PS software
model's clock, the AXI transfer clock, the timing target, the power model's
wattages) derives from a :class:`BoardSpec` — by default the reference
:data:`repro.platform.catalog.PYNQ_Z2` — so there is exactly one source of
truth per constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["ResourceVector", "FpgaDevice", "PowerProfile", "BoardSpec"]


@dataclass(frozen=True)
class ResourceVector:
    """A bundle of FPGA resource counts (BRAM36 tiles, DSP48 slices, LUTs, FFs)."""

    bram: float = 0.0
    dsp: float = 0.0
    lut: float = 0.0
    ff: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            bram=self.bram + other.bram,
            dsp=self.dsp + other.dsp,
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
        )

    def scale(self, factor: float) -> "ResourceVector":
        return ResourceVector(
            bram=self.bram * factor,
            dsp=self.dsp * factor,
            lut=self.lut * factor,
            ff=self.ff * factor,
        )

    def utilization(self, device: "FpgaDevice") -> Dict[str, float]:
        """Utilisation percentages against a device's totals."""

        return {
            "bram": 100.0 * self.bram / device.bram36,
            "dsp": 100.0 * self.dsp / device.dsp,
            "lut": 100.0 * self.lut / device.lut,
            "ff": 100.0 * self.ff / device.ff,
        }

    def fits(self, device: "FpgaDevice") -> bool:
        """Whether the resources fit within the device."""

        return (
            self.bram <= device.bram36
            and self.dsp <= device.dsp
            and self.lut <= device.lut
            and self.ff <= device.ff
        )

    def as_dict(self) -> Dict[str, float]:
        return {"bram": self.bram, "dsp": self.dsp, "lut": self.lut, "ff": self.ff}


@dataclass(frozen=True)
class FpgaDevice:
    """Totals of the programmable-logic fabric of a device."""

    name: str
    bram36: int
    dsp: int
    lut: int
    ff: int
    bram36_bytes: int = 4096  # usable data bytes per BRAM36 tile

    @property
    def bram_bytes_total(self) -> int:
        """Total BRAM capacity in bytes."""

        return self.bram36 * self.bram36_bytes

    def headroom(self, used: ResourceVector) -> ResourceVector:
        """Remaining resources after ``used`` is placed."""

        return ResourceVector(
            bram=self.bram36 - used.bram,
            dsp=self.dsp - used.dsp,
            lut=self.lut - used.lut,
            ff=self.ff - used.ff,
        )


@dataclass(frozen=True)
class PowerProfile:
    """Power constants (watts) of one board's PS + PL system.

    The defaults are the documented Zynq-7000 class figures the seed power
    model shipped with (see :mod:`repro.fpga.power` — deliberately
    conservative estimates, not measurements).  Other boards override them;
    the per-DSP/per-BRAM dynamic coefficients are quoted at the board's
    *default* PL clock (clock-scaling of dynamic power under ``pl_clock_hz``
    overrides is deliberately not modelled).
    """

    #: PS subsystem (cores + DRAM controller) draw when busy, W.
    ps_active_w: float = 1.3
    #: PS subsystem draw when idle, W.
    ps_idle_w: float = 0.3
    #: PL static (leakage) power, W.
    pl_static_w: float = 0.12
    #: PL dynamic power per active DSP48 slice at the default PL clock, W.
    pl_dynamic_per_dsp_w: float = 0.0015
    #: PL dynamic power per active BRAM36 tile at the default PL clock, W.
    pl_dynamic_per_bram_w: float = 0.0005
    #: PL dynamic power of clocking/control common to any design, W.
    pl_dynamic_base_w: float = 0.05


@dataclass(frozen=True)
class BoardSpec:
    """A PS + PL SoC board (Figure 3 / Table 1 of the paper, generalised)."""

    name: str
    fpga: FpgaDevice
    ps_clock_hz: float
    ps_cores: int
    dram_mb: int
    pl_clock_hz: float
    os_name: str = "PYNQ Linux (Ubuntu 18.04)"
    #: Multiplier on the timing model's critical-path delays relative to the
    #: 7-series fabric the constants were calibrated on (UltraScale+ fabrics
    #: switch faster, so their scale is < 1).
    fabric_delay_scale: float = 1.0
    #: Documented power constants of this board's PS + PL system.
    power: PowerProfile = PowerProfile()
    #: Documented street price, USD (launch-era list price; ``None`` when
    #: unknown).  Used as a cost axis by ``repro.opt`` — an estimate for
    #: ranking, not a quote.
    price_usd: Optional[float] = None

    @property
    def ps_clock_mhz(self) -> float:
        return self.ps_clock_hz / 1e6

    @property
    def pl_clock_mhz(self) -> float:
        return self.pl_clock_hz / 1e6

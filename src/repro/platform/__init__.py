"""The platform layer: board-parametric device models and the board registry.

Everything board-specific lives here — fabric totals, PS/PL clocks, core
counts, DRAM sizes, power profiles and the registry that names them:

>>> from repro.platform import get_board, list_boards
>>> list_boards()
('PYNQ-Z2', 'Zybo-Z7-20', 'Ultra96-V2', 'ZCU104')
>>> get_board("ZCU104").fpga.dsp
1728

Model layers derive their defaults from :data:`DEFAULT_BOARD` (the paper's
PYNQ-Z2) and accept any :class:`BoardSpec` — registered boards become sweep
axes via ``Scenario(board=...)`` / ``scenario_grid(boards=...)``.
"""

from .device import BoardSpec, FpgaDevice, PowerProfile, ResourceVector
from .registry import BOARDS, get_board, list_boards, register_board
from .catalog import (
    DEFAULT_BOARD,
    PYNQ_Z2,
    ULTRA96_V2,
    ZCU104,
    ZYBO_Z7_20,
    ZYNQ_XC7Z020,
    ZYNQ_ZU3EG,
    ZYNQ_ZU7EV,
)

__all__ = [
    "BoardSpec",
    "FpgaDevice",
    "PowerProfile",
    "ResourceVector",
    "BOARDS",
    "get_board",
    "list_boards",
    "register_board",
    "DEFAULT_BOARD",
    "PYNQ_Z2",
    "ZYBO_Z7_20",
    "ULTRA96_V2",
    "ZCU104",
    "ZYNQ_XC7Z020",
    "ZYNQ_ZU3EG",
    "ZYNQ_ZU7EV",
]

"""The board registry: name -> :class:`~repro.platform.device.BoardSpec`.

The registry is the single lookup every layer goes through when a board is
named by string (scenarios, the CLI, the batch engine).  It is seeded with
the catalog boards (:mod:`repro.platform.catalog`) at import time and stays
open: downstream code can :func:`register_board` its own PS + PL platforms
and immediately sweep them through every analysis.

:data:`BOARDS` is a live read-only mapping view of the registry, kept for
the dict-shaped access the seed API exposed (``repro.api.BOARDS``).
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple

from .device import BoardSpec

__all__ = ["register_board", "get_board", "list_boards", "BOARDS"]


_REGISTRY: Dict[str, BoardSpec] = {}


def register_board(board: BoardSpec, replace: bool = False) -> BoardSpec:
    """Add a board to the registry (returned unchanged, for chaining).

    Registering a second board under an existing name is almost always an
    accident, so it raises unless ``replace=True`` is passed explicitly.
    """

    if not isinstance(board, BoardSpec):
        raise TypeError(f"expected a BoardSpec (got {type(board).__name__})")
    if board.name in _REGISTRY and not replace:
        raise ValueError(
            f"board '{board.name}' is already registered; "
            "pass replace=True to overwrite it"
        )
    _REGISTRY[board.name] = board
    return board


def get_board(name: str) -> BoardSpec:
    """Look a board up by name.

    Raises :class:`KeyError` naming every registered board (mirroring
    :meth:`repro.fpga.bram.BramPlan.region`), so a typo in a sweep axis is
    self-explaining.
    """

    try:
        return _REGISTRY[name]
    except KeyError:
        available = ", ".join(list_boards()) or "(none)"
        raise KeyError(
            f"no board named '{name}'; registered boards: {available}"
        ) from None


def list_boards() -> Tuple[str, ...]:
    """Registered board names, in registration order."""

    return tuple(_REGISTRY)


class _RegistryView(Mapping):
    """Live read-only mapping over the registry (the public ``BOARDS``)."""

    def __getitem__(self, name: str) -> BoardSpec:
        return _REGISTRY[name]

    def __iter__(self) -> Iterator[str]:
        return iter(_REGISTRY)

    def __len__(self) -> int:
        return len(_REGISTRY)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"BOARDS({list(_REGISTRY)})"


#: Live name -> BoardSpec mapping (reflects later ``register_board`` calls).
BOARDS: Mapping[str, BoardSpec] = _RegistryView()

"""The seeded board catalog: four real PS + PL SoC boards.

:data:`PYNQ_Z2` is the paper's platform (Table 1) and the reference every
calibrated constant was fitted on; every default in the model layers derives
from it, so the seed goldens stay byte-identical.  The other three are real
boards of the same prediction-serving class, specified from their public
datasheets:

==============  ==============  =============  ========  =======  =========
board           SoC             PS             DRAM      PL clk   fabric
==============  ==============  =============  ========  =======  =========
PYNQ-Z2         Zynq XC7Z020    2x A9 650MHz   512 MB    100 MHz  7-series
Zybo-Z7-20      Zynq XC7Z020    2x A9 667MHz   1024 MB   100 MHz  7-series
Ultra96-V2      Zynq US+ ZU3EG  4x A53 1.5GHz  2048 MB   150 MHz  UltraScale+
ZCU104          Zynq US+ ZU7EV  4x A53 1.2GHz  2048 MB   200 MHz  UltraScale+
==============  ==============  =============  ========  =======  =========

Fabric totals (BRAM36/DSP48/LUT/FF) are the vendors' published device
resources.  Power profiles are documented-class estimates in the same spirit
as the seed's Zynq-7000 figures (see :class:`~repro.platform.device
.PowerProfile`); the UltraScale+ fabric delay scale reflects its faster
switching (the timing constants were calibrated on 7-series).  ``price_usd``
figures are the launch-era vendor list prices (TUL $119, Digilent $299,
Avnet $249, Xilinx $1295) — a cost axis for ``repro.opt``, not quotes.
What the platform layer deliberately does *not* model is recorded in
ROADMAP.md.
"""

from __future__ import annotations

from .device import BoardSpec, FpgaDevice, PowerProfile
from .registry import register_board

__all__ = [
    "ZYNQ_XC7Z020",
    "ZYNQ_ZU3EG",
    "ZYNQ_ZU7EV",
    "PYNQ_Z2",
    "ZYBO_Z7_20",
    "ULTRA96_V2",
    "ZCU104",
    "DEFAULT_BOARD",
]


#: Xilinx Zynq XC7Z020-1CLG400C programmable logic totals.
ZYNQ_XC7Z020 = FpgaDevice(
    name="Zynq XC7Z020",
    bram36=140,
    dsp=220,
    lut=53200,
    ff=106400,
)

#: Xilinx Zynq UltraScale+ ZU3EG programmable logic totals.
ZYNQ_ZU3EG = FpgaDevice(
    name="Zynq UltraScale+ ZU3EG",
    bram36=216,
    dsp=360,
    lut=70560,
    ff=141120,
)

#: Xilinx Zynq UltraScale+ ZU7EV programmable logic totals (URAM not modelled).
ZYNQ_ZU7EV = FpgaDevice(
    name="Zynq UltraScale+ ZU7EV",
    bram36=312,
    dsp=1728,
    lut=230400,
    ff=460800,
)


#: TUL PYNQ-Z2 board (Table 1 of the paper) — the calibration reference.
PYNQ_Z2 = register_board(
    BoardSpec(
        name="PYNQ-Z2",
        fpga=ZYNQ_XC7Z020,
        ps_clock_hz=650e6,
        ps_cores=2,
        dram_mb=512,
        pl_clock_hz=100e6,
        fabric_delay_scale=1.0,
        power=PowerProfile(
            ps_active_w=1.3,
            ps_idle_w=0.3,
            pl_static_w=0.12,
            pl_dynamic_per_dsp_w=0.0015,
            pl_dynamic_per_bram_w=0.0005,
            pl_dynamic_base_w=0.05,
        ),
        price_usd=119.0,
    )
)

#: Digilent Zybo Z7-20 — same XC7Z020 fabric, faster PS bin, twice the DRAM.
ZYBO_Z7_20 = register_board(
    BoardSpec(
        name="Zybo-Z7-20",
        fpga=ZYNQ_XC7Z020,
        ps_clock_hz=667e6,
        ps_cores=2,
        dram_mb=1024,
        pl_clock_hz=100e6,
        os_name="Petalinux 2020.1",
        fabric_delay_scale=1.0,
        power=PowerProfile(
            ps_active_w=1.35,
            ps_idle_w=0.3,
            pl_static_w=0.12,
            pl_dynamic_per_dsp_w=0.0015,
            pl_dynamic_per_bram_w=0.0005,
            pl_dynamic_base_w=0.05,
        ),
        price_usd=299.0,
    )
)

#: Avnet Ultra96-V2 — Zynq UltraScale+ ZU3EG, quad Cortex-A53 @ 1.5 GHz.
ULTRA96_V2 = register_board(
    BoardSpec(
        name="Ultra96-V2",
        fpga=ZYNQ_ZU3EG,
        ps_clock_hz=1.5e9,
        ps_cores=4,
        dram_mb=2048,
        pl_clock_hz=150e6,
        fabric_delay_scale=0.6,
        power=PowerProfile(
            ps_active_w=2.2,
            ps_idle_w=0.55,
            pl_static_w=0.25,
            pl_dynamic_per_dsp_w=0.0012,
            pl_dynamic_per_bram_w=0.0004,
            pl_dynamic_base_w=0.08,
        ),
        price_usd=249.0,
    )
)

#: Xilinx ZCU104 evaluation kit — Zynq UltraScale+ ZU7EV, quad A53 @ 1.2 GHz.
ZCU104 = register_board(
    BoardSpec(
        name="ZCU104",
        fpga=ZYNQ_ZU7EV,
        ps_clock_hz=1.2e9,
        ps_cores=4,
        dram_mb=2048,
        pl_clock_hz=200e6,
        os_name="Petalinux 2020.1",
        fabric_delay_scale=0.5,
        power=PowerProfile(
            ps_active_w=2.6,
            ps_idle_w=0.6,
            pl_static_w=0.4,
            pl_dynamic_per_dsp_w=0.0012,
            pl_dynamic_per_bram_w=0.0004,
            pl_dynamic_base_w=0.12,
        ),
        price_usd=1295.0,
    )
)

#: The board every board-derived default constant comes from.
DEFAULT_BOARD = PYNQ_Z2

"""Shared-nothing sharding: :func:`simulate_fleet` fans cells over processes.

Cells are *scenario* knobs — they change which boards serve which requests.
Shards are *execution* knobs — how many worker processes run those cells.
Every cell seeds its own ``np.random.default_rng((seed, cell))`` stream and
returns a picklable :class:`~repro.fleet.report.CellResult`;
:func:`~repro.fleet.report.merge_cells` folds them in ascending cell order,
so the merged report is bit-identical for any ``shards`` value (the shard
conformance tests pin this).
"""

from __future__ import annotations

from typing import List, Optional

from ..api.evaluator import Evaluator
from .cluster import FleetScenario
from .report import FleetReport, merge_cells
from .runner import run_cell

__all__ = ["simulate_fleet"]


def _run_cell_worker(payload) -> "CellResult":  # noqa: F821 - doc only
    """Module-level worker (picklable by ProcessPoolExecutor)."""

    scenario_dict, cell = payload
    scenario = FleetScenario.from_dict(scenario_dict)
    return run_cell(scenario, cell)


def simulate_fleet(
    scenario: Optional[FleetScenario] = None,
    shards: int = 1,
    evaluator: Optional[Evaluator] = None,
    **overrides: object,
) -> FleetReport:
    """Simulate a multi-board fleet and return the merged :class:`FleetReport`.

    ``shards`` caps the worker processes used to execute the scenario's
    cells; it never changes the numbers.  With ``shards <= 1`` (or a
    single-cell scenario) everything runs inline, sharing one memoised
    :class:`~repro.api.evaluator.Evaluator` across cells.  Keyword
    overrides build/adjust the scenario, mirroring :func:`repro.api.simulate`::

        simulate_fleet(boards=(BoardGroup("PYNQ-Z2", 8),), arrival_rate_hz=200.0)
    """

    if scenario is None:
        scenario = FleetScenario(**overrides)
    elif overrides:
        scenario = scenario.replace(**overrides)
    if not isinstance(shards, int) or shards < 1:
        raise ValueError(f"shards must be a positive integer (got {shards!r})")

    cells = scenario.cells
    n_workers = min(shards, cells)
    if n_workers <= 1:
        ev = evaluator if evaluator is not None else Evaluator()
        results = [run_cell(scenario, cell, evaluator=ev) for cell in range(cells)]
    else:
        from concurrent.futures import ProcessPoolExecutor

        scenario_dict = scenario.as_dict()
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            results = list(
                pool.map(_run_cell_worker, [(scenario_dict, cell) for cell in range(cells)])
            )
    return merge_cells(scenario.as_dict(), results, shards, scenario.exact)

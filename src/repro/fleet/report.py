"""Fleet run outcomes: per-cell raw results and the merged :class:`FleetReport`.

:class:`CellResult` is the picklable unit a shard process returns — counters,
per-class latency/wait :class:`~repro.sim.metrics.QuantileSketch` objects and
per-board ledgers.  :func:`merge_cells` folds them (in ascending cell order,
so float sums are bit-identical for any shard count) into the
:class:`FleetReport` the CLI, benchmarks and tests consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..sim.metrics import LatencyStats, QuantileSketch, _json_safe

__all__ = ["ClassCell", "BoardCell", "CellResult", "FleetReport", "merge_cells"]


@dataclass
class ClassCell:
    """One traffic class's tally within one cell."""

    name: str
    kind: str
    offered: int
    rejected: int
    completed: int
    violations: int
    slo_s: Optional[float]
    latency: QuantileSketch
    wait: QuantileSketch


@dataclass
class BoardCell:
    """One physical board's ledger within one cell."""

    index: int
    group: int
    name: str
    replicas: int
    served: int
    busy_seconds: float
    powered_seconds: float
    energy: Dict[str, float]
    utilization: float
    powered_final: bool


@dataclass
class CellResult:
    """Everything one shared-nothing cell produced."""

    cell: int
    offered: int
    rejected: int
    completed: int
    classes: List[ClassCell]
    boards: List[BoardCell]
    horizon_s: float
    events: int
    autoscale: Optional[Dict[str, object]] = None
    #: Event-fidelity only: the per-board ``SimReport.as_dict()`` payloads.
    board_reports: Optional[List[Dict[str, object]]] = None


@dataclass(frozen=True)
class FleetReport:
    """The merged outcome of one fleet simulation."""

    scenario: Dict[str, object]
    requests: Dict[str, int]
    horizon_s: float
    throughput_rps: float
    latency: LatencyStats
    wait: LatencyStats
    classes: List[Dict[str, object]]
    boards: List[Dict[str, object]]
    energy: Dict[str, object]
    cells: int
    shards: int
    events_processed: int
    autoscale: Optional[Dict[str, object]] = None
    board_reports: Optional[List[Dict[str, object]]] = None
    #: The merged sketches behind ``latency``/``wait`` (not serialised).
    latency_sketch: Optional[QuantileSketch] = field(default=None, repr=False, compare=False)
    wait_sketch: Optional[QuantileSketch] = field(default=None, repr=False, compare=False)

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "scenario": dict(self.scenario),
            "requests": dict(self.requests),
            "horizon_s": self.horizon_s,
            "throughput_rps": self.throughput_rps,
            "latency": self.latency.as_dict(),
            "wait": self.wait.as_dict(),
            "classes": [dict(c) for c in self.classes],
            "boards": [dict(b) for b in self.boards],
            "energy": dict(self.energy),
            "cells": self.cells,
            "shards": self.shards,
            "events_processed": self.events_processed,
        }
        if self.autoscale is not None:
            out["autoscale"] = dict(self.autoscale)
        if self.board_reports is not None:
            out["board_reports"] = [dict(r) for r in self.board_reports]
        return _json_safe(out)

    def render(self) -> str:
        """Multi-section plain-text report (the ``fleet`` subcommand output)."""

        s = self.scenario
        lines: List[str] = []
        inventory = ", ".join(f"{g['count']}x {g['board']}" for g in s["boards"])
        lines.append(
            f"Fleet serving: {inventory} | {len(self.classes)} class(es), "
            f"routing={s['routing']}, admission={s['admission']}, "
            f"autoscale={'on' if s['autoscale'] else 'off'}, "
            f"fidelity={s['fidelity']}"
        )
        lines.append("[requests]")
        lines.append(f"  offered            : {self.requests['offered']}")
        lines.append(f"  rejected           : {self.requests['rejected']}")
        lines.append(f"  completed          : {self.requests['completed']}")
        lines.append(f"  horizon            : {self.horizon_s:.4g} s")
        lines.append(f"  throughput         : {self.throughput_rps:.4g} req/s")
        lat = self.latency
        lines.append("[latency]")
        lines.append(f"  mean               : {lat.mean:.6g} s")
        for q in sorted(lat.percentiles):
            lines.append(f"  {f'p{q}'.ljust(19)}: {lat.percentiles[q]:.6g} s")
        lines.append(f"  max                : {lat.maximum:.6g} s")
        lines.append(f"  mean queueing wait : {self.wait.mean:.6g} s")
        lines.append("[classes]")
        for c in self.classes:
            slo = f", slo={c['slo_s']:.4g} s" if c["slo_s"] is not None else ""
            p99 = c["latency"]["p99_s"]
            p99_text = f"{p99:.6g} s" if p99 is not None and np.isfinite(p99) else "n/a"
            lines.append(
                f"  {c['name']:<12} ({c['kind']}): offered {c['offered']}, "
                f"rejected {c['rejected']}, violations {c['violations']}{slo}, "
                f"p99 {p99_text}"
            )
        lines.append("[boards]")
        for b in self.boards:
            util = b["utilization"]
            util_text = f"{100.0 * util:.1f} %" if util is not None and np.isfinite(util) else "n/a"
            lines.append(
                f"  {b['count']}x {b['board']:<12}: {b['replicas_per_board']} replica(s) "
                f"each, served {b['served']}, util {util_text}, "
                f"powered {b['powered_fraction'] * 100.0:.1f} %, "
                f"{b['total_energy_J']:.6g} J"
            )
        if self.autoscale is not None:
            a = self.autoscale
            lines.append("[autoscale]")
            lines.append(
                f"  power-ups          : {a['power_ups']} "
                f"(power-downs {a['power_downs']}, final powered {a['final_powered']})"
            )
        lines.append("[energy]")
        lines.append(f"  PS                 : {self.energy['ps_energy_J']:.6g} J")
        lines.append(f"  PL                 : {self.energy['pl_energy_J']:.6g} J")
        per_request = self.energy["energy_per_request_J"]
        lines.append(
            "  per request        : "
            + (f"{per_request:.6g} J" if per_request is not None else "n/a (0 completed)")
        )
        lines.append(f"  average power      : {self.energy['average_power_W']:.6g} W")
        lines.append(
            f"[reproducibility] seed={s['seed']}  cells={self.cells}  "
            f"shards={self.shards} (shard count never changes the numbers)"
        )
        lines.append(f"[engine] {self.events_processed} events processed")
        return "\n".join(lines)


def merge_cells(
    scenario_dict: Dict[str, object],
    results: List[CellResult],
    shards: int,
    exact: bool,
) -> FleetReport:
    """Fold per-cell results (ascending cell order) into one report.

    Sketch merging is commutative; the float counters are folded in a fixed
    order anyway, so the merged report is bit-identical for any shard count.
    """

    results = sorted(results, key=lambda r: r.cell)
    n_classes = len(results[0].classes)

    def fresh() -> QuantileSketch:
        return QuantileSketch(exact=exact)

    offered = sum(r.offered for r in results)
    rejected = sum(r.rejected for r in results)
    completed = sum(r.completed for r in results)
    horizon = max(r.horizon_s for r in results)
    events = sum(r.events for r in results)

    latency_sketch = fresh()
    wait_sketch = fresh()
    classes: List[Dict[str, object]] = []
    for ci in range(n_classes):
        first = results[0].classes[ci]
        cls_latency = fresh()
        cls_wait = fresh()
        for r in results:
            cls_latency.merge(r.classes[ci].latency)
            cls_wait.merge(r.classes[ci].wait)
        latency_sketch.merge(cls_latency)
        wait_sketch.merge(cls_wait)
        cls_offered = sum(r.classes[ci].offered for r in results)
        cls_rejected = sum(r.classes[ci].rejected for r in results)
        classes.append(
            {
                "name": first.name,
                "kind": first.kind,
                "slo_s": first.slo_s,
                "offered": cls_offered,
                "rejected": cls_rejected,
                "completed": sum(r.classes[ci].completed for r in results),
                "violations": sum(r.classes[ci].violations for r in results),
                "latency": cls_latency.stats().as_dict(),
                "wait_mean_s": cls_wait.mean,
            }
        )

    # Per board *group* (board type), aggregated over the group's physical
    # boards across every cell.
    groups: Dict[int, Dict[str, object]] = {}
    for r in results:
        for b in r.boards:
            g = groups.setdefault(
                b.group,
                {
                    "board": b.name,
                    "count": 0,
                    "replicas_per_board": b.replicas,
                    "served": 0,
                    "busy_seconds": 0.0,
                    "powered_seconds": 0.0,
                    "ps_energy_J": 0.0,
                    "pl_energy_J": 0.0,
                    "total_energy_J": 0.0,
                    "slot_seconds": 0.0,
                },
            )
            g["count"] += 1
            g["served"] += b.served
            g["busy_seconds"] += b.busy_seconds
            g["powered_seconds"] += b.powered_seconds
            g["slot_seconds"] += b.replicas * b.powered_seconds
            for key in ("ps_energy_J", "pl_energy_J", "total_energy_J"):
                g[key] += b.energy[key]
    boards: List[Dict[str, object]] = []
    for gi in sorted(groups):
        g = groups[gi]
        slot_seconds = g.pop("slot_seconds")
        busy = g.pop("busy_seconds")
        g["utilization"] = busy / slot_seconds if slot_seconds > 0 else float("nan")
        g["powered_fraction"] = (
            g["powered_seconds"] / (g["count"] * horizon) if horizon > 0 else float("nan")
        )
        boards.append(g)

    ps_j = sum(g["ps_energy_J"] for g in boards)
    pl_j = sum(g["pl_energy_J"] for g in boards)
    total_j = ps_j + pl_j
    energy = {
        "ps_energy_J": ps_j,
        "pl_energy_J": pl_j,
        "total_energy_J": total_j,
        "energy_per_request_J": total_j / completed if completed else None,
        "average_power_W": total_j / horizon if horizon > 0 else 0.0,
    }

    autoscale: Optional[Dict[str, object]] = None
    if any(r.autoscale is not None for r in results):
        autoscale = {
            "events": sum((r.autoscale or {}).get("events", 0) for r in results),
            "power_ups": sum((r.autoscale or {}).get("power_ups", 0) for r in results),
            "power_downs": sum((r.autoscale or {}).get("power_downs", 0) for r in results),
            "final_powered": sum((r.autoscale or {}).get("final_powered", 0) for r in results),
        }

    board_reports: Optional[List[Dict[str, object]]] = None
    if any(r.board_reports is not None for r in results):
        board_reports = [rep for r in results for rep in (r.board_reports or [])]

    return FleetReport(
        scenario=scenario_dict,
        requests={
            "offered": offered,
            "admitted": offered - rejected,
            "rejected": rejected,
            "completed": completed,
        },
        horizon_s=horizon,
        throughput_rps=completed / horizon if horizon > 0 else float("nan"),
        latency=latency_sketch.stats(),
        wait=wait_sketch.stats(),
        classes=classes,
        boards=boards,
        energy=energy,
        cells=len(results),
        shards=shards,
        events_processed=events,
        autoscale=autoscale,
        board_reports=board_reports,
        latency_sketch=latency_sketch,
        wait_sketch=wait_sketch,
    )

"""Reactive autoscaling: power boards up/down against their power profiles.

The controller is deliberately simple — the classic reactive band policy:
every ``interval_s`` of simulated time it computes the cell's windowed slot
utilisation (service seconds committed in the window over powered slot
capacity) and

* powers **up** the first unpowered board in inventory order when the
  window runs hot (``util > high``) — the board draws power immediately and
  starts serving after ``boot_s`` (cold-start penalty);
* powers **down** the last powered board in inventory order when the window
  runs cold (``util < low``) and more than ``min_powered`` boards are up —
  the board stops accepting work, drains its in-flight slots, and its power
  ledger closes at the drain instant.

Energy is priced per board from its :class:`~repro.platform.device.PowerProfile`
over exactly its powered seconds, so the report shows what the policy
actually bought: cold-start latency traded against idle watts.

The controller is *arrival-clocked*: ticks fire between arrivals in the
cell's single-pass kernel, so a run with no traffic never scales (and runs
stay bit-reproducible — no hidden wall-clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .balancer import BoardServer

__all__ = ["AutoscalePolicy", "AutoscaleController"]


@dataclass(frozen=True)
class AutoscalePolicy:
    """The reactive band policy's knobs."""

    interval_s: float = 60.0
    high: float = 0.75
    low: float = 0.30
    boot_s: float = 5.0
    min_powered: int = 1

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if not 0.0 < self.low < self.high <= 1.0:
            raise ValueError(
                f"bands must satisfy 0 < low < high <= 1 (got low={self.low}, high={self.high})"
            )
        if self.boot_s < 0:
            raise ValueError("boot_s must be non-negative")
        if self.min_powered < 1:
            raise ValueError("min_powered must be a positive integer")


class AutoscaleController:
    """One cell's reactive power controller."""

    __slots__ = ("boards", "policy", "events", "_last_busy")

    def __init__(self, boards: List[BoardServer], policy: AutoscalePolicy) -> None:
        self.boards = boards
        self.policy = policy
        self.events: List[Dict[str, object]] = []
        self._last_busy = 0.0

    @property
    def powered_count(self) -> int:
        return sum(1 for b in self.boards if b.powered)

    def tick(self, now: float) -> None:
        """One control decision at simulated time ``now``."""

        powered_slots = sum(b.replicas for b in self.boards if b.powered)
        capacity = powered_slots * self.policy.interval_s
        busy = sum(b.busy_seconds for b in self.boards)
        window_busy = busy - self._last_busy
        self._last_busy = busy
        if capacity <= 0:
            return
        util = window_busy / capacity
        if util > self.policy.high:
            self._power_up(now, util)
        elif util < self.policy.low and self.powered_count > self.policy.min_powered:
            self._power_down(now, util)

    def _power_up(self, now: float, util: float) -> None:
        for board in self.boards:  # first unpowered, inventory order
            if not board.powered:
                board.power_up(now, self.policy.boot_s)
                self.events.append(
                    {"t": now, "action": "up", "board": board.index, "util": util}
                )
                return

    def _power_down(self, now: float, util: float) -> None:
        for board in reversed(self.boards):  # last powered, inventory order
            if board.powered:
                drained = board.power_down(now)
                self.events.append(
                    {
                        "t": now,
                        "action": "down",
                        "board": board.index,
                        "util": util,
                        "drained_at": drained,
                    }
                )
                return

    def summary(self) -> Dict[str, object]:
        ups = sum(1 for e in self.events if e["action"] == "up")
        downs = sum(1 for e in self.events if e["action"] == "down")
        return {
            "events": len(self.events),
            "power_ups": ups,
            "power_downs": downs,
            "final_powered": self.powered_count,
        }

"""Fleet-scale serving: heterogeneous multi-board clusters behind a balancer.

The :mod:`repro.sim` package answers "how does *one* board behave under
load?"; this package scales the question to the paper's deployment story —
racks of low-cost FPGA boards serving classed traffic:

* :class:`FleetScenario` — the cluster design point: a
  :class:`BoardGroup` inventory drawn from the :mod:`repro.platform`
  registry, weighted :class:`TrafficClass` slices, balancer routing,
  SLO-aware admission control, reactive autoscaling priced per board from
  its :class:`~repro.platform.device.PowerProfile`, and shared-nothing
  ``cells``;
* :func:`simulate_fleet` — runs the cells (optionally sharded over a
  process pool — shard count never changes the numbers) and merges their
  streaming :class:`~repro.sim.metrics.QuantileSketch` distributions and
  counters into one :class:`FleetReport`.

>>> from repro.fleet import FleetScenario, BoardGroup, simulate_fleet
>>> report = simulate_fleet(FleetScenario(
...     boards=(BoardGroup("PYNQ-Z2", 8), BoardGroup("ZCU104", 4)),
...     arrival_rate_hz=200.0, duration_s=600.0, cells=4,
... ), shards=4)
"""

from .autoscale import AutoscaleController, AutoscalePolicy
from .balancer import BATCH_SPILL_FACTOR, Balancer, BoardServer
from .cluster import (
    ADMISSION_NAMES,
    CLASS_KINDS,
    FIDELITY_NAMES,
    ROUTING_NAMES,
    BoardGroup,
    FleetScenario,
    TrafficClass,
    canonical_board,
    parse_board_groups,
    parse_traffic_classes,
)
from .report import BoardCell, CellResult, ClassCell, FleetReport, merge_cells
from .runner import resolve_board_replicas, resolve_slos, run_cell
from .shard import simulate_fleet

__all__ = [
    "ADMISSION_NAMES",
    "BATCH_SPILL_FACTOR",
    "CLASS_KINDS",
    "FIDELITY_NAMES",
    "ROUTING_NAMES",
    "AutoscaleController",
    "AutoscalePolicy",
    "Balancer",
    "BoardCell",
    "BoardGroup",
    "BoardServer",
    "CellResult",
    "ClassCell",
    "FleetReport",
    "FleetScenario",
    "TrafficClass",
    "canonical_board",
    "merge_cells",
    "parse_board_groups",
    "parse_traffic_classes",
    "resolve_board_replicas",
    "resolve_slos",
    "run_cell",
    "simulate_fleet",
]

"""The per-cell fleet kernel: :func:`run_cell` serves one shared-nothing cell.

One cell = the boards dealt to it from the inventory plus ``1/cells`` of the
offered traffic, with its own deterministic RNG stream
(``np.random.default_rng((seed, cell))`` — a pure function of the cell
index, never of the shard layout).  Two serving fidelities:

* ``fast`` — the single-pass analytic kernel: each request is routed by the
  :class:`~repro.fleet.balancer.Balancer` and committed to a board slot heap
  at the board's analytic service time.  One heap operation per request;
  autoscale ticks interleave between arrivals.  This is what makes
  million-request day traces take seconds.
* ``event`` — the routing pass runs identically (the balancer always works
  on analytic predictions, as a real load balancer would), then each
  board's assigned arrivals replay through the full transaction-level
  :func:`repro.sim.simulate` as a trace.  A fleet of one board with no
  admission is then *exactly* a ``repro.sim`` run — the identity the fleet
  conformance tests pin.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..api.evaluator import Evaluator
from ..fpga.power import PowerModelConfig, pl_power_kernel
from ..platform import get_board
from ..sim.metrics import QuantileSketch
from ..sim.policies import max_replicas
from ..sim.workload import arrival_times, build_service_plan
from .autoscale import AutoscaleController, AutoscalePolicy
from .balancer import Balancer, BoardServer
from .cluster import FleetScenario, TrafficClass
from .report import BoardCell, CellResult, ClassCell

__all__ = ["run_cell", "resolve_slos", "resolve_board_replicas"]

#: Rate-driven fleets with no explicit bound default to this many requests.
DEFAULT_FLEET_REQUESTS = 1000

#: A latency class with no explicit SLO gets twice its no-load service time
#: on the fastest board of the fleet (the serving-study knee convention).
DEFAULT_SLO_FACTOR = 2.0


def resolve_board_replicas(
    scenario: FleetScenario, evaluator: Evaluator
) -> Dict[str, int]:
    """Replicas per board *type* (``replicas=0`` packs each board's fabric)."""

    out: Dict[str, int] = {}
    for group in scenario.boards:
        if group.board in out:
            continue
        if scenario.replicas:
            out[group.board] = scenario.replicas
        else:
            out[group.board] = max_replicas(
                scenario.design_point(board=group.board), evaluator=evaluator
            )
    return out


def _service_tables(
    scenario: FleetScenario, evaluator: Evaluator
) -> Dict[str, Tuple[List[float], List[float]]]:
    """Per board type: (service seconds, PS seconds) for every traffic class."""

    out: Dict[str, Tuple[List[float], List[float]]] = {}
    for group in scenario.boards:
        if group.board in out:
            continue
        svc: List[float] = []
        ps: List[float] = []
        for cls in scenario.classes:
            plan = build_service_plan(
                scenario.design_point(cls, group.board), evaluator=evaluator
            )
            svc.append(plan.total_seconds)
            ps.append(plan.ps_seconds)
        out[group.board] = (svc, ps)
    return out


def resolve_slos(
    scenario: FleetScenario, evaluator: Optional[Evaluator] = None
) -> Tuple[Optional[float], ...]:
    """The SLO each class is admitted/accounted against.

    Latency classes fall back to the scenario default, then to
    ``DEFAULT_SLO_FACTOR`` times the class's no-load service on the fastest
    board of the fleet.  Batch classes have no implicit SLO.
    """

    ev = evaluator if evaluator is not None else Evaluator()
    tables = _service_tables(scenario, ev)
    resolved: List[Optional[float]] = []
    for ci, cls in enumerate(scenario.classes):
        if cls.slo_s is not None:
            resolved.append(cls.slo_s)
        elif scenario.slo_s is not None:
            resolved.append(scenario.slo_s)
        elif cls.kind == "latency":
            fastest = min(tables[g.board][0][ci] for g in scenario.boards)
            resolved.append(DEFAULT_SLO_FACTOR * fastest)
        else:
            resolved.append(None)
    return tuple(resolved)


def _cell_arrivals(
    scenario: FleetScenario, cell: int, rng: np.random.Generator
) -> np.ndarray:
    """This cell's share of the offered traffic (1/cells of the stream)."""

    cells = scenario.cells
    if scenario.arrival == "trace":
        return np.asarray(scenario.trace, dtype=np.float64)  # cells == 1, validated
    n_total = scenario.n_requests
    if n_total is None and scenario.duration_s is None:
        n_total = DEFAULT_FLEET_REQUESTS
    n_cell = None
    if n_total is not None:
        n_cell = n_total // cells + (1 if cell < n_total % cells else 0)
        if n_cell == 0:
            return np.empty(0, dtype=np.float64)
    times = arrival_times(
        scenario.arrival,
        rate_hz=scenario.arrival_rate_hz / cells,
        n_requests=n_cell,
        duration_s=scenario.duration_s,
        rng=rng,
        trace=None,
    )
    return np.asarray(times, dtype=np.float64)


def _build_boards(
    scenario: FleetScenario,
    cell: int,
    evaluator: Evaluator,
    replicas: Dict[str, int],
    tables: Dict[str, Tuple[List[float], List[float]]],
) -> List[BoardServer]:
    boards: List[BoardServer] = []
    for index, group_index, name in scenario.cell_inventory(cell):
        spec = get_board(name)
        cfg = PowerModelConfig.for_board(spec)
        svc, ps = tables[name]
        n_rep = replicas[name]
        # The whole board's PL draw while powered: every instantiated
        # replica burns static + dynamic watts (its clock never gates) —
        # the same pricing as repro.sim's energy summary.
        resources = _replica_resources(scenario, name, evaluator)
        pl_w = n_rep * float(pl_power_kernel(resources.dsp, resources.bram, cfg))
        boards.append(
            BoardServer(
                index=index,
                group=group_index,
                name=name,
                replicas=n_rep,
                svc_s=svc,
                ps_s=ps,
                pl_w=pl_w,
                ps_active_w=cfg.ps_active_w,
                ps_idle_w=cfg.ps_idle_w,
            )
        )
    return boards


def _replica_resources(scenario: FleetScenario, board: str, evaluator: Evaluator):
    """Fabric resources of one replica's datapath (zero when nothing offloads)."""

    from ..fpga.device import ResourceVector

    decision = evaluator.offload_decision(scenario.design_point(board=board))
    return decision.resources if decision.targets else ResourceVector()


def run_cell(
    scenario: FleetScenario, cell: int, evaluator: Optional[Evaluator] = None
) -> CellResult:
    """Serve one cell end to end and return its picklable result."""

    ev = evaluator if evaluator is not None else Evaluator()
    classes = scenario.classes
    n_classes = len(classes)
    replicas = resolve_board_replicas(scenario, ev)
    tables = _service_tables(scenario, ev)
    slos = resolve_slos(scenario, ev)

    rng = np.random.default_rng((scenario.seed, cell))
    arrivals = _cell_arrivals(scenario, cell, rng)
    n = len(arrivals)
    if n_classes > 1:
        weights = np.asarray([c.weight for c in classes], dtype=np.float64)
        labels = rng.choice(n_classes, size=n, p=weights / weights.sum())
    else:
        labels = np.zeros(n, dtype=np.intp)
    route_u = rng.random(n) if scenario.routing == "weighted" else None

    boards = _build_boards(scenario, cell, ev, replicas, tables)
    balancer = Balancer(boards, scenario.routing)
    controller: Optional[AutoscaleController] = None
    next_tick = np.inf
    interval = scenario.autoscale_interval_s
    if scenario.autoscale:
        controller = AutoscaleController(
            boards,
            AutoscalePolicy(
                interval_s=interval,
                high=scenario.autoscale_high,
                low=scenario.autoscale_low,
                boot_s=scenario.boot_s,
                min_powered=scenario.min_powered,
            ),
        )
        next_tick = interval

    check_slo = scenario.admission == "slo"
    exact = scenario.exact
    cls_latency = [QuantileSketch(exact=exact) for _ in range(n_classes)]
    cls_wait = [QuantileSketch(exact=exact) for _ in range(n_classes)]
    offered = [0] * n_classes
    rejected = [0] * n_classes
    violations = [0] * n_classes
    kinds = [c.kind for c in classes]
    events = 0
    last_arrival = float(arrivals[-1]) if n else 0.0

    # Event fidelity: the routing pass assigns, the transaction-level
    # simulator serves.  Collect each board's admitted arrivals here.
    collect = scenario.fidelity == "event"
    per_board_trace: Optional[List[List[float]]] = [[] for _ in boards] if collect else None
    board_pos = {b.index: i for i, b in enumerate(boards)}

    for i in range(n):
        t = float(arrivals[i])
        while t >= next_tick:
            controller.tick(next_tick)
            next_tick += interval
            events += 1
        c = int(labels[i])
        offered[c] += 1
        board = balancer.route(t, c, kinds[c], route_u[i] if route_u is not None else None)
        if board is None:
            rejected[c] += 1
            continue
        if check_slo and kinds[c] == "latency":
            slo = slos[c]
            if slo is not None and (board.predicted_start(t) - t) + board.svc_s[c] > slo:
                rejected[c] += 1
                continue
        start, finish = board.assign(t, c)
        events += 1
        if collect:
            per_board_trace[board_pos[board.index]].append(t)
            continue
        latency = finish - t
        cls_latency[c].insert(latency)
        cls_wait[c].insert(start - t)
        slo = slos[c]
        if slo is not None and latency > slo:
            violations[c] += 1

    if collect:
        return _event_fidelity_result(
            scenario, cell, ev, boards, per_board_trace, replicas,
            offered, rejected, slos, events, last_arrival,
        )

    horizon = max([last_arrival] + [b.last_finish for b in boards])
    for b in boards:
        b.finalize(horizon)
    completed = [offered[c] - rejected[c] for c in range(n_classes)]
    return CellResult(
        cell=cell,
        offered=sum(offered),
        rejected=sum(rejected),
        completed=sum(completed),
        classes=[
            ClassCell(
                name=classes[c].name,
                kind=kinds[c],
                offered=offered[c],
                rejected=rejected[c],
                completed=completed[c],
                violations=violations[c],
                slo_s=slos[c],
                latency=cls_latency[c],
                wait=cls_wait[c],
            )
            for c in range(n_classes)
        ],
        boards=[
            BoardCell(
                index=b.index,
                group=b.group,
                name=b.name,
                replicas=b.replicas,
                served=sum(b.served),
                busy_seconds=b.busy_seconds,
                powered_seconds=b.powered_seconds,
                energy=b.energy_j(),
                utilization=b.utilization(),
                powered_final=b.powered,
            )
            for b in boards
        ],
        horizon_s=horizon,
        events=events,
        autoscale=controller.summary() if controller is not None else None,
    )


def _event_fidelity_result(
    scenario: FleetScenario,
    cell: int,
    ev: Evaluator,
    boards: List[BoardServer],
    per_board_trace: List[List[float]],
    replicas: Dict[str, int],
    offered: List[int],
    rejected: List[int],
    slos: Tuple[Optional[float], ...],
    events: int,
    last_arrival: float,
) -> CellResult:
    """Replay each board's admitted arrivals through ``repro.sim.simulate``."""

    from ..sim.runner import simulate  # deferred: repro.sim is the heavy path

    cls = scenario.classes[0]  # event fidelity is single-class (validated)
    slo = slos[0]
    latency = QuantileSketch(exact=scenario.exact)
    wait = QuantileSketch(exact=scenario.exact)
    violations = 0
    completed = 0
    horizon = last_arrival
    board_cells: List[BoardCell] = []
    board_reports: List[Dict[str, object]] = []
    for b, trace in zip(boards, per_board_trace):
        if not trace:
            b.finalize(0.0)
            board_cells.append(
                BoardCell(
                    index=b.index, group=b.group, name=b.name, replicas=b.replicas,
                    served=0, busy_seconds=0.0, powered_seconds=0.0,
                    energy={"ps_energy_J": 0.0, "pl_energy_J": 0.0, "total_energy_J": 0.0},
                    utilization=float("nan"), powered_final=True,
                )
            )
            continue
        sim_scenario = scenario.board_sim_scenario(
            b.name, trace, replicas[b.name], slo_s=slo
        )
        report = simulate(sim_scenario, evaluator=ev)
        latency.merge(report.latency_sketch)
        wait.merge(report.wait_sketch)
        completed += report.requests["completed"]
        if report.slo is not None:
            violations += int(report.slo["violations"])
        horizon = max(horizon, float(report.horizon_s))
        events += report.events_processed
        board_cells.append(
            BoardCell(
                index=b.index,
                group=b.group,
                name=b.name,
                replicas=int(report.scenario["replicas"]),
                served=report.requests["completed"],
                busy_seconds=float(report.utilization["accelerator_mean"])
                * int(report.scenario["replicas"])
                * float(report.horizon_s),
                powered_seconds=float(report.horizon_s),
                energy={
                    "ps_energy_J": report.energy["ps_energy_J"],
                    "pl_energy_J": report.energy["pl_energy_J"],
                    "total_energy_J": report.energy["total_energy_J"],
                },
                utilization=float(report.utilization["accelerator_mean"]),
                powered_final=True,
            )
        )
        board_reports.append(report.as_dict())
    total_offered = sum(offered)
    total_rejected = sum(rejected)
    return CellResult(
        cell=cell,
        offered=total_offered,
        rejected=total_rejected,
        completed=completed,
        classes=[
            ClassCell(
                name=cls.name,
                kind=cls.kind,
                offered=total_offered,
                rejected=total_rejected,
                completed=completed,
                violations=violations,
                slo_s=slo,
                latency=latency,
                wait=wait,
            )
        ],
        boards=board_cells,
        horizon_s=horizon,
        events=events,
        autoscale=None,
        board_reports=board_reports,
    )

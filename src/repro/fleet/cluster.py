"""The fleet design space: :class:`FleetScenario` and its building blocks.

A :class:`~repro.sim.scenario.SimScenario` serves traffic on *one* board;
a :class:`FleetScenario` describes a heterogeneous *cluster* drawn from the
:mod:`repro.platform` registry behind a load-balancer tier:

* :class:`BoardGroup` — "8× PYNQ-Z2" (the inventory, in deterministic
  order);
* :class:`TrafficClass` — a named slice of the offered traffic with a
  weight, a kind (``latency`` or ``batch``) and optionally its own SLO and
  served architecture;
* the balancer knobs — routing policy, SLO-aware admission control,
  reactive autoscaling bands;
* ``cells`` — the shared-nothing partitioning unit: the inventory is dealt
  round-robin into ``cells`` independent sub-clusters, each serving
  ``1/cells`` of the traffic with its own RNG stream.  Cells (not shards!)
  define the results; shards only decide how many worker processes execute
  them, so any ``--shards`` value yields bit-identical merged metrics.

Everything follows the frozen/validated contract of the rest of the API:
construction fails fast with a helpful ``ValueError``, and the scenario
round-trips through ``as_dict``/``from_dict``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from ..api.scenario import Scenario
from ..platform import list_boards
from ..sim.policies import POLICY_NAMES
from ..sim.scenario import SimScenario
from ..sim.workload import ARRIVAL_KINDS

__all__ = [
    "ROUTING_NAMES",
    "ADMISSION_NAMES",
    "CLASS_KINDS",
    "FIDELITY_NAMES",
    "BoardGroup",
    "TrafficClass",
    "FleetScenario",
    "canonical_board",
    "parse_board_groups",
    "parse_traffic_classes",
]

#: Balancer routing policies.
ROUTING_NAMES: Tuple[str, ...] = ("least_loaded", "round_robin", "weighted")

#: Admission-control policies.
ADMISSION_NAMES: Tuple[str, ...] = ("none", "slo")

#: Traffic-class kinds (they route differently — see ``fleet.balancer``).
CLASS_KINDS: Tuple[str, ...] = ("latency", "batch")

#: Serving fidelities: ``fast`` is the analytic multi-server kernel (one
#: event per request — million-request fleets in seconds); ``event`` routes
#: each board's assigned trace through the full transaction-level
#: :func:`repro.sim.simulate` (the identity-test and deep-dive path).
FIDELITY_NAMES: Tuple[str, ...] = ("fast", "event")


def canonical_board(name: str) -> str:
    """Resolve a board name case-insensitively against the registry.

    The registry itself is case-sensitive ("PYNQ-Z2"); fleet specs come from
    command lines where ``pynq-z2:8`` is the natural spelling.
    """

    registered = list_boards()
    by_fold = {b.lower(): b for b in registered}
    hit = by_fold.get(str(name).lower())
    if hit is None:
        available = ", ".join(registered) or "(none)"
        raise ValueError(f"unknown board '{name}'; registered boards: {available}")
    return hit


@dataclass(frozen=True)
class BoardGroup:
    """A homogeneous slice of the fleet inventory: ``count`` boards of one type."""

    board: str
    count: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "board", canonical_board(self.board))
        if not isinstance(self.count, int) or self.count < 1:
            raise ValueError(f"board count must be a positive integer (got {self.count!r})")

    def as_dict(self) -> Dict[str, object]:
        return {"board": self.board, "count": self.count}


@dataclass(frozen=True)
class TrafficClass:
    """One named slice of the offered traffic.

    ``kind`` drives per-class routing and admission: ``latency`` traffic
    chases the shortest predicted start (and is subject to SLO admission
    control), ``batch`` traffic packs the most energy-efficient powered
    boards and is never rejected.  ``model``/``depth`` optionally override
    the served architecture (``fidelity="fast"`` only).
    """

    name: str
    weight: float = 1.0
    kind: str = "latency"
    slo_s: Optional[float] = None
    model: Optional[str] = None
    depth: Optional[int] = None

    def __post_init__(self) -> None:
        if not str(self.name):
            raise ValueError("traffic class name must be non-empty")
        if not self.weight > 0:
            raise ValueError(f"traffic class weight must be positive (got {self.weight!r})")
        if self.kind not in CLASS_KINDS:
            raise ValueError(f"unknown traffic kind '{self.kind}'; expected one of {CLASS_KINDS}")
        if self.slo_s is not None and self.slo_s <= 0:
            raise ValueError("slo_s must be positive (or None)")

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "weight": self.weight,
            "kind": self.kind,
            "slo_s": self.slo_s,
            "model": self.model,
            "depth": self.depth,
        }


@dataclass(frozen=True)
class FleetScenario:
    """A heterogeneous multi-board cluster under classed traffic."""

    #: The inventory, in deterministic order (autoscaling powers boards up in
    #: this order and down in reverse).
    boards: Tuple[BoardGroup, ...] = (BoardGroup("PYNQ-Z2", 4),)
    #: The offered traffic, split by weight across named classes.
    classes: Tuple[TrafficClass, ...] = (TrafficClass("interactive"),)

    # -- served architecture (per-class overrides via TrafficClass) ---------
    model: str = "rODENet-3"
    depth: int = 56
    n_units: int = 16
    word_length: int = 32
    fraction_bits: int = 20
    solver: str = "euler"

    # -- offered traffic ----------------------------------------------------
    arrival: str = "poisson"
    arrival_rate_hz: float = 10.0
    n_requests: Optional[int] = None
    duration_s: Optional[float] = None
    trace: Optional[Tuple[float, ...]] = None

    # -- serving system -----------------------------------------------------
    #: PL replicas per board; 0 sizes each board from its own fabric budget.
    replicas: int = 0
    #: Balancer routing policy (see ``fleet.balancer``).
    routing: str = "least_loaded"
    #: Admission control: "slo" predicts each latency-class request's sojourn
    #: at its routed board and rejects it when the prediction breaks the SLO;
    #: "none" admits everything.
    admission: str = "slo"
    #: Default SLO for latency classes without their own (seconds).  ``None``
    #: resolves to twice the class's no-load service time on the fastest
    #: board of the fleet (the knee convention of ``examples/serving_study.py``).
    slo_s: Optional[float] = None

    # -- autoscaling --------------------------------------------------------
    autoscale: bool = False
    autoscale_interval_s: float = 60.0
    #: Power a board up when windowed fleet utilisation exceeds this...
    autoscale_high: float = 0.75
    #: ...and down when it falls below this (with more than min_powered up).
    autoscale_low: float = 0.30
    #: Boot delay: a powered-up board starts serving this long after the
    #: decision (and draws power from the decision instant).
    boot_s: float = 5.0
    #: Boards per cell that are never powered down.
    min_powered: int = 1

    # -- partitioning / measurement ----------------------------------------
    #: Shared-nothing cells the inventory and traffic are dealt into.  Part
    #: of the scenario (results depend on it); shard count is not.
    cells: int = 1
    seed: int = 0
    fidelity: str = "fast"
    #: Keep exact per-request latencies (never spill the sketches).
    exact: bool = False

    # -- event-fidelity board-level knobs (passed through to repro.sim) -----
    policy: str = "fifo"
    batch_size: int = 4
    ps_cores: int = 0
    dma_channels: int = 1

    def __post_init__(self) -> None:
        if not self.boards:
            raise ValueError("a fleet needs at least one board group")
        boards = tuple(
            b if isinstance(b, BoardGroup) else BoardGroup(**dict(b)) for b in self.boards
        )
        object.__setattr__(self, "boards", boards)
        if not self.classes:
            raise ValueError("a fleet needs at least one traffic class")
        classes = tuple(
            c if isinstance(c, TrafficClass) else TrafficClass(**dict(c)) for c in self.classes
        )
        object.__setattr__(self, "classes", classes)
        names = [c.name for c in classes]
        if len(set(names)) != len(names):
            raise ValueError(f"traffic class names must be unique (got {names})")

        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival process '{self.arrival}'; expected one of {ARRIVAL_KINDS}"
            )
        if self.arrival == "trace":
            if not self.trace:
                raise ValueError("arrival='trace' needs at least one trace timestamp")
            object.__setattr__(self, "trace", tuple(float(t) for t in self.trace))
        else:
            if self.trace is not None:
                raise ValueError(
                    f"a trace was given but arrival='{self.arrival}'; "
                    "pass arrival='trace' to replay it"
                )
            if self.arrival_rate_hz <= 0:
                raise ValueError("arrival_rate_hz must be positive")
        if self.n_requests is not None and self.n_requests < 1:
            raise ValueError("n_requests must be a positive integer (or None)")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("duration_s must be positive (or None)")

        if not isinstance(self.replicas, int) or self.replicas < 0:
            raise ValueError("replicas must be a non-negative integer (0 = per-board auto)")
        if self.routing not in ROUTING_NAMES:
            raise ValueError(f"unknown routing '{self.routing}'; expected one of {ROUTING_NAMES}")
        if self.admission not in ADMISSION_NAMES:
            raise ValueError(
                f"unknown admission '{self.admission}'; expected one of {ADMISSION_NAMES}"
            )
        if self.slo_s is not None and self.slo_s <= 0:
            raise ValueError("slo_s must be positive (or None)")

        if self.autoscale_interval_s <= 0:
            raise ValueError("autoscale_interval_s must be positive")
        if not 0.0 < self.autoscale_low < self.autoscale_high <= 1.0:
            raise ValueError(
                "autoscale bands must satisfy 0 < low < high <= 1 "
                f"(got low={self.autoscale_low}, high={self.autoscale_high})"
            )
        if self.boot_s < 0:
            raise ValueError("boot_s must be non-negative")
        if not isinstance(self.min_powered, int) or self.min_powered < 1:
            raise ValueError("min_powered must be a positive integer")

        if not isinstance(self.cells, int) or self.cells < 1:
            raise ValueError("cells must be a positive integer")
        if self.cells > self.total_boards:
            raise ValueError(
                f"cells={self.cells} exceeds the {self.total_boards}-board inventory "
                "(every cell needs at least one board)"
            )
        if self.arrival == "trace" and self.cells != 1:
            raise ValueError(
                "trace arrivals require cells=1 (a trace is one stream; splitting "
                "it across cells would change which cell serves which request)"
            )
        if self.fidelity not in FIDELITY_NAMES:
            raise ValueError(
                f"unknown fidelity '{self.fidelity}'; expected one of {FIDELITY_NAMES}"
            )
        if self.fidelity == "event":
            if self.autoscale:
                raise ValueError(
                    "autoscale requires fidelity='fast' (the event-fidelity path "
                    "replays each board's assigned trace through repro.sim, which "
                    "has no mid-run power state)"
                )
            if len(classes) != 1:
                raise ValueError(
                    "fidelity='event' requires exactly one traffic class (per-class "
                    "latency cannot be recovered from a board-level SimReport)"
                )
            if any(c.model is not None or c.depth is not None for c in classes):
                raise ValueError(
                    "per-class model/depth overrides require fidelity='fast' "
                    "(event-fidelity boards serve one physical datapath)"
                )
        if self.policy not in POLICY_NAMES:
            raise ValueError(f"unknown policy '{self.policy}'; expected one of {POLICY_NAMES}")
        if self.batch_size < 1:
            raise ValueError("batch_size must be a positive integer")
        if not isinstance(self.ps_cores, int) or self.ps_cores < 0:
            raise ValueError("ps_cores must be a non-negative integer (0 = the board's cores)")
        if self.dma_channels < 1:
            raise ValueError("dma_channels must be a positive integer")
        if not isinstance(self.exact, bool):
            raise ValueError("exact must be a boolean")

        # Fail fast on invalid design points: every (class, board) pair must
        # be a constructible Scenario (unknown models/depths/boards surface
        # here, not deep inside a worker process).
        for group in boards:
            for cls in classes:
                self.design_point(cls, group.board)

    # -- views -------------------------------------------------------------------------

    @property
    def total_boards(self) -> int:
        return sum(g.count for g in self.boards)

    def expanded_inventory(self) -> Tuple[Tuple[int, str], ...]:
        """The inventory as ``(group_index, board_name)`` units, in order."""

        units = []
        for gi, group in enumerate(self.boards):
            units.extend((gi, group.board) for _ in range(group.count))
        return tuple(units)

    def cell_inventory(self, cell: int) -> Tuple[Tuple[int, int, str], ...]:
        """The units dealt (round-robin) to one cell: ``(global_index, group_index, board)``."""

        if not 0 <= cell < self.cells:
            raise ValueError(f"cell must be in [0, {self.cells}) (got {cell})")
        return tuple(
            (i, gi, name)
            for i, (gi, name) in enumerate(self.expanded_inventory())
            if i % self.cells == cell
        )

    def design_point(self, cls: Optional[TrafficClass] = None, board: Optional[str] = None) -> Scenario:
        """The plain scenario a class's requests execute on a given board."""

        return Scenario(
            model=(cls.model if cls is not None and cls.model is not None else self.model),
            depth=(cls.depth if cls is not None and cls.depth is not None else self.depth),
            n_units=self.n_units,
            word_length=self.word_length,
            fraction_bits=self.fraction_bits,
            solver=self.solver,
            board=board if board is not None else self.boards[0].board,
        )

    def board_sim_scenario(
        self, board: str, trace: Sequence[float], replicas: int,
        slo_s: Optional[float] = None,
    ) -> SimScenario:
        """The per-board :class:`SimScenario` of the event-fidelity path."""

        return SimScenario(
            model=self.model,
            depth=self.depth,
            n_units=self.n_units,
            word_length=self.word_length,
            fraction_bits=self.fraction_bits,
            solver=self.solver,
            board=board,
            arrival="trace",
            trace=tuple(trace),
            replicas=replicas,
            policy=self.policy,
            batch_size=self.batch_size,
            seed=self.seed,
            ps_cores=self.ps_cores,
            dma_channels=self.dma_channels,
            exact=self.exact,
            slo_s=slo_s,
        )

    def replace(self, **changes: object) -> "FleetScenario":
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "boards": [g.as_dict() for g in self.boards],
            "classes": [c.as_dict() for c in self.classes],
        }
        for f in dataclasses.fields(self):
            if f.name in ("boards", "classes"):
                continue
            value = getattr(self, f.name)
            if f.name == "trace" and value is not None:
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FleetScenario":
        data = dict(data)
        data["boards"] = tuple(BoardGroup(**dict(g)) for g in data.get("boards", ()))
        data["classes"] = tuple(TrafficClass(**dict(c)) for c in data.get("classes", ()))
        if data.get("trace") is not None:
            data["trace"] = tuple(data["trace"])
        return cls(**data)


# -- CLI-facing parsers ------------------------------------------------------------------


def parse_board_groups(spec: Union[str, Sequence[str]]) -> Tuple[BoardGroup, ...]:
    """Parse ``"pynq-z2:8,zcu104:4"`` (or a pre-split list) into board groups.

    Board names are matched case-insensitively against the registry; a bare
    name means one board.
    """

    entries = spec.split(",") if isinstance(spec, str) else [e for s in spec for e in s.split(",")]
    groups = []
    for entry in entries:
        entry = entry.strip()
        if not entry:
            continue
        name, _, count = entry.partition(":")
        if count:
            try:
                n = int(count)
            except ValueError:
                raise ValueError(
                    f"bad board spec '{entry}': expected NAME or NAME:COUNT"
                ) from None
        else:
            n = 1
        groups.append(BoardGroup(board=name, count=n))
    if not groups:
        raise ValueError("empty board spec; expected e.g. 'pynq-z2:8,zcu104:4'")
    return tuple(groups)


def parse_traffic_classes(spec: Union[str, Sequence[str]]) -> Tuple[TrafficClass, ...]:
    """Parse ``"interactive:0.8:latency:50ms,nightly:0.2:batch"`` into classes.

    Each entry is ``NAME[:WEIGHT[:KIND[:SLO]]]``; the SLO accepts a plain
    number of seconds or an ``ms`` suffix.
    """

    entries = spec.split(",") if isinstance(spec, str) else [e for s in spec for e in s.split(",")]
    classes = []
    for entry in entries:
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) > 4:
            raise ValueError(f"bad class spec '{entry}': expected NAME[:WEIGHT[:KIND[:SLO]]]")
        name = parts[0]
        try:
            weight = float(parts[1]) if len(parts) > 1 and parts[1] else 1.0
        except ValueError:
            raise ValueError(f"bad class spec '{entry}': weight '{parts[1]}' is not a number") from None
        kind = parts[2] if len(parts) > 2 and parts[2] else "latency"
        slo_s: Optional[float] = None
        if len(parts) > 3 and parts[3]:
            raw = parts[3].strip().lower()
            try:
                slo_s = float(raw[:-2]) / 1e3 if raw.endswith("ms") else float(raw)
            except ValueError:
                raise ValueError(f"bad class spec '{entry}': SLO '{parts[3]}' is not a time") from None
        classes.append(TrafficClass(name=name, weight=weight, kind=kind, slo_s=slo_s))
    if not classes:
        raise ValueError("empty class spec; expected e.g. 'interactive:0.8:latency:50ms'")
    return tuple(classes)

"""The load-balancer tier: per-board analytic serving state and routing.

The fast fleet kernel does not replay every DMA burst — that is what
``fidelity="event"`` is for.  Each board is a multi-server station
(:class:`BoardServer`): ``replicas`` slots, each serving one request at a
time at the board's *analytic* per-class service time (the same
``build_service_plan().total_seconds`` the transaction-level simulator is
differentially pinned to).  A request costs one heap operation, so
million-request day traces run in seconds.

Routing is per-class (the tentpole requirement):

* **latency** traffic chases the shortest predicted start across powered
  boards (ties break on inventory order), and — under ``admission="slo"`` —
  is rejected up front when even that board's predicted sojourn breaks the
  class SLO (fail fast beats queueing a request that will blow its budget);
* **batch** traffic packs the most energy-efficient powered board (lowest
  joules per request, priced from the board's :class:`PowerProfile`) and is
  never rejected; it spills to least-loaded only when the efficient board's
  backlog exceeds ``BATCH_SPILL_FACTOR`` service times, so bulk work cannot
  starve behind itself.

``round_robin`` and ``weighted`` (capacity-proportional, driven by
presampled uniforms so runs stay deterministic) are the classic baselines.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["BATCH_SPILL_FACTOR", "BoardServer", "Balancer"]

#: A batch request spills off the cheapest board when its backlog exceeds
#: this many of its own service times.
BATCH_SPILL_FACTOR = 10.0


class BoardServer:
    """Analytic serving state of one physical board in a cell."""

    __slots__ = (
        "index",
        "group",
        "name",
        "replicas",
        "svc_s",
        "ps_s",
        "free",
        "powered",
        "available_from",
        "powered_since",
        "powered_seconds",
        "busy_seconds",
        "ps_busy_seconds",
        "served",
        "pl_w",
        "ps_active_w",
        "ps_idle_w",
        "energy_per_request",
        "last_finish",
    )

    def __init__(
        self,
        index: int,
        group: int,
        name: str,
        replicas: int,
        svc_s: Sequence[float],
        ps_s: Sequence[float],
        pl_w: float,
        ps_active_w: float,
        ps_idle_w: float,
    ) -> None:
        self.index = index
        self.group = group
        self.name = name
        self.replicas = replicas
        self.svc_s = list(svc_s)
        self.ps_s = list(ps_s)
        self.free = [0.0] * replicas  # a heap of per-slot next-free instants
        self.powered = True
        self.available_from = 0.0
        self.powered_since = 0.0
        self.powered_seconds = 0.0
        self.busy_seconds = 0.0
        self.ps_busy_seconds = 0.0
        self.served = [0] * len(self.svc_s)
        self.pl_w = pl_w
        self.ps_active_w = ps_active_w
        self.ps_idle_w = ps_idle_w
        # The batch-routing cost: joules one request costs on this board,
        # charging the whole board's PL draw plus one active PS share for
        # its service time (a packing heuristic, not an energy report).
        self.energy_per_request = [
            s * (pl_w + ps_active_w) for s in self.svc_s
        ]
        self.last_finish = 0.0

    # -- serving -----------------------------------------------------------------------

    def predicted_start(self, t: float) -> float:
        """When a request arriving at ``t`` would begin service here."""

        earliest = self.free[0]
        if earliest < t:
            earliest = t
        if earliest < self.available_from:
            earliest = self.available_from
        return earliest

    def assign(self, t: float, cls: int) -> Tuple[float, float]:
        """Commit a class-``cls`` request arriving at ``t``; return (start, finish)."""

        start = self.predicted_start(t)
        service = self.svc_s[cls]
        finish = start + service
        heapq.heapreplace(self.free, finish)
        self.busy_seconds += service
        self.ps_busy_seconds += self.ps_s[cls]
        self.served[cls] += 1
        if finish > self.last_finish:
            self.last_finish = finish
        return start, finish

    # -- power state -------------------------------------------------------------------

    def power_down(self, t: float) -> float:
        """Stop accepting work; drain in-flight slots, then cut power.

        Returns the drain instant (when the last busy slot frees and the
        board actually stops drawing power).
        """

        drain_end = max(t, max(self.free))
        self.powered = False
        self.powered_seconds += drain_end - self.powered_since
        self.available_from = float("inf")
        if drain_end > self.last_finish:
            self.last_finish = drain_end
        return drain_end

    def power_up(self, t: float, boot_s: float) -> None:
        """Start drawing power at ``t``; serve from ``t + boot_s``."""

        self.powered = True
        self.powered_since = t
        self.available_from = t + boot_s
        self.free = [self.available_from] * self.replicas

    def finalize(self, horizon: float) -> None:
        """Close the power ledger at the end of the run."""

        if self.powered:
            self.powered_seconds += max(horizon, self.powered_since) - self.powered_since

    def energy_j(self) -> Dict[str, float]:
        """PS + PL joules over this board's powered time.

        The fast model has no per-core occupancy trace; the PS ledger charges
        active watts for the accumulated software seconds and idle watts for
        the remaining powered time (the analytic busy/idle split).
        """

        ps_busy = min(self.ps_busy_seconds, self.powered_seconds)
        ps_j = self.ps_active_w * ps_busy + self.ps_idle_w * max(
            0.0, self.powered_seconds - ps_busy
        )
        pl_j = self.pl_w * self.powered_seconds
        return {"ps_energy_J": ps_j, "pl_energy_J": pl_j, "total_energy_J": ps_j + pl_j}

    def utilization(self) -> float:
        """Mean slot occupancy over powered time (NaN when never powered)."""

        denom = self.replicas * self.powered_seconds
        return self.busy_seconds / denom if denom > 0 else float("nan")


class Balancer:
    """Per-class routing over one cell's boards."""

    __slots__ = ("boards", "routing", "_rr")

    def __init__(self, boards: List[BoardServer], routing: str) -> None:
        self.boards = boards
        self.routing = routing
        self._rr = 0

    def route(
        self, t: float, cls: int, kind: str, u: Optional[float] = None
    ) -> Optional[BoardServer]:
        """Pick the serving board for one request (``None`` if none is powered)."""

        if self.routing == "round_robin":
            return self._round_robin()
        if self.routing == "weighted":
            return self._weighted(cls, u)
        if kind == "batch":
            return self._cheapest(t, cls)
        return self._least_loaded(t)

    def _least_loaded(self, t: float) -> Optional[BoardServer]:
        best = None
        best_start = float("inf")
        for board in self.boards:
            if not board.powered:
                continue
            start = board.predicted_start(t)
            if start < best_start:
                best, best_start = board, start
        return best

    def _cheapest(self, t: float, cls: int) -> Optional[BoardServer]:
        best = None
        best_cost = float("inf")
        for board in self.boards:
            if not board.powered:
                continue
            cost = board.energy_per_request[cls]
            if cost < best_cost:
                best, best_cost = board, cost
        if best is None:
            return None
        # Spill: bulk work must not starve behind itself on the one
        # efficient board while the rest of the fleet idles.
        wait = best.predicted_start(t) - t
        if wait > BATCH_SPILL_FACTOR * best.svc_s[cls]:
            return self._least_loaded(t)
        return best

    def _round_robin(self) -> Optional[BoardServer]:
        n = len(self.boards)
        for probe in range(n):
            board = self.boards[(self._rr + probe) % n]
            if board.powered:
                self._rr = (self._rr + probe + 1) % n
                return board
        return None

    def _weighted(self, cls: int, u: Optional[float]) -> Optional[BoardServer]:
        """Capacity-proportional choice: weight = replicas / service time."""

        weights = []
        candidates = []
        for board in self.boards:
            if not board.powered:
                continue
            candidates.append(board)
            weights.append(board.replicas / board.svc_s[cls])
        if not candidates:
            return None
        if u is None:
            u = 0.0
        total = sum(weights)
        threshold = u * total
        acc = 0.0
        for board, w in zip(candidates, weights):
            acc += w
            if threshold < acc:
                return board
        return candidates[-1]

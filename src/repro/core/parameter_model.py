"""Analytical parameter-size model (Table 2, Figure 5, Section 4.2).

The model combines the per-layer parameter counts of
:mod:`repro.core.network_spec` with the per-variant layer plans of
:mod:`repro.core.variants`:

* a layer realised as ``stacked`` contributes ``stacked_blocks`` copies of the
  plain block's parameters;
* a layer realised as ``single`` contributes one plain block;
* a layer realised as an ``odeblock`` contributes one block *with* the
  time-concatenation channel (``in_ch + 1`` inputs on both convs);
* a ``removed`` layer contributes nothing;
* conv1, layer2_1, layer3_1 and fc always contribute once.

With these rules the model reproduces every kB figure of Table 2 and every
reduction percentage quoted in Section 4.2 (36.24 %, 43.29 %, 79.54 %,
81.80 %, 26.43 %, 60.16 %) exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .network_spec import LAYER_ORDER, NETWORK_LAYERS, layer_geometry
from .variants import BlockRealization, SUPPORTED_DEPTHS, VARIANT_NAMES, VariantSpec, variant_spec

__all__ = [
    "LayerParameterEntry",
    "table2_structure",
    "variant_parameter_count",
    "variant_parameter_bytes",
    "parameter_size_series",
    "parameter_reduction_percent",
    "figure5_series",
]

BYTES_PER_PARAM = 4  # the paper assumes 32-bit parameters


@dataclass(frozen=True)
class LayerParameterEntry:
    """One row of Table 2."""

    layer: str
    output_size: str
    detail: str
    parameter_kilobytes: float
    executions_per_block: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "layer": self.layer,
            "output_size": self.output_size,
            "detail": self.detail,
            "parameter_kB": self.parameter_kilobytes,
            "executions_per_block": self.executions_per_block,
        }


def table2_structure() -> List[LayerParameterEntry]:
    """The rows of Table 2 (ODENet layer inventory with parameter sizes)."""

    descriptions = {
        "conv1": ("32x32, 16ch", "3x3, stride 1", "1"),
        "layer1": ("32x32, 16ch", "[3x3, 3x3], stride 1", "(N-2)/6"),
        "layer2_1": ("16x16, 32ch", "[3x3, 3x3], stride 2", "1"),
        "layer2_2": ("16x16, 32ch", "[3x3, 3x3], stride 1", "(N-8)/6"),
        "layer3_1": ("8x8, 64ch", "[3x3, 3x3], stride 2", "1"),
        "layer3_2": ("8x8, 64ch", "[3x3, 3x3], stride 1", "(N-8)/6"),
        "fc": ("1x100", "Average pooling, 100d fc, softmax", "1"),
    }
    entries: List[LayerParameterEntry] = []
    for name in LAYER_ORDER:
        geometry = layer_geometry(name)
        # Table 2 describes ODENet, whose repeated blocks are ODEBlocks.
        as_ode = name in ("layer1", "layer2_2", "layer3_2")
        out_size, detail, execs = descriptions[name]
        entries.append(
            LayerParameterEntry(
                layer=name,
                output_size=out_size,
                detail=detail,
                parameter_kilobytes=geometry.parameter_kilobytes(as_odeblock=as_ode),
                executions_per_block=execs,
            )
        )
    return entries


def _layer_parameter_count(spec: VariantSpec, layer: str) -> int:
    plan = spec.plan(layer)
    geometry = layer_geometry(layer)
    if plan.realization == BlockRealization.REMOVED:
        return 0
    if plan.realization == BlockRealization.ODEBLOCK:
        return geometry.parameter_count(as_odeblock=True)
    if plan.realization in (BlockRealization.STACKED,):
        return plan.stacked_blocks * geometry.parameter_count(as_odeblock=False)
    # SINGLE and FIXED: one plain instance.
    return geometry.parameter_count(as_odeblock=False)


def variant_parameter_count(spec_or_name, depth: int | None = None) -> int:
    """Total trainable parameters of a variant.

    Accepts either a :class:`VariantSpec` or a ``(name, depth)`` pair.
    """

    spec = spec_or_name if isinstance(spec_or_name, VariantSpec) else variant_spec(spec_or_name, depth)
    return sum(_layer_parameter_count(spec, layer) for layer in LAYER_ORDER)


def variant_parameter_bytes(spec_or_name, depth: int | None = None, bytes_per_param: int = BYTES_PER_PARAM) -> int:
    """Total parameter size in bytes (32-bit parameters by default)."""

    return variant_parameter_count(spec_or_name, depth) * bytes_per_param


def parameter_size_series(
    variants: Sequence[str] = VARIANT_NAMES,
    depths: Sequence[int] = SUPPORTED_DEPTHS,
) -> Dict[str, Dict[int, float]]:
    """Parameter size in kilobytes per variant and depth (the Figure 5 data)."""

    series: Dict[str, Dict[int, float]] = {}
    for name in variants:
        series[name] = {
            depth: variant_parameter_bytes(name, depth) / 1000.0 for depth in depths
        }
    return series


def parameter_reduction_percent(variant: str, depth: int, baseline: str = "ResNet") -> float:
    """Reduction of a variant's parameter size relative to the baseline, in percent."""

    base = variant_parameter_bytes(baseline, depth)
    target = variant_parameter_bytes(variant, depth)
    return 100.0 * (1.0 - target / base)


def figure5_series() -> Dict[str, Dict[int, float]]:
    """Alias of :func:`parameter_size_series` named after the paper's figure."""

    return parameter_size_series()

"""Offload planning: which layer group goes to the PL part, and does it fit?

Section 3.2 of the paper enumerates the feasible offload configurations on
the XC7Z020 (layer1 alone, layer2_2 alone, layer1+layer2_2 together, or
layer3_2 alone) and Section 4.4 pairs each evaluated architecture with its
offload target.  :class:`OffloadPlanner` reproduces this reasoning with the
resource and timing models: it proposes targets (the heavily-executed
ODEBlock layers), checks that the chosen conv_xN configuration fits the
device and closes timing, and reports the expected benefit via the
execution-time model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..fixedpoint.qformat import QFormat
from ..fpga.device import PYNQ_Z2, BoardSpec, ResourceVector
from ..fpga.resources import ResourceEstimator
from ..fpga.timing import TimingModel
from .execution_model import ExecutionTimeModel, ExecutionTimeReport, PAPER_OFFLOAD_TARGETS
from .network_spec import OFFLOADABLE_LAYER_NAMES, layer_geometry
from .variants import VariantSpec, variant_spec

__all__ = ["OffloadDecision", "OffloadPlanner"]


@dataclass(frozen=True)
class OffloadDecision:
    """Outcome of planning the PL offload for one architecture."""

    model: str
    depth: int
    targets: Tuple[str, ...]
    n_units: int
    resources: ResourceVector
    fits_device: bool
    meets_timing: bool
    expected_speedup: float

    @property
    def feasible(self) -> bool:
        return self.fits_device and self.meets_timing

    def as_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "N": self.depth,
            "targets": list(self.targets),
            "n_units": self.n_units,
            "resources": self.resources.as_dict(),
            "fits_device": self.fits_device,
            "meets_timing": self.meets_timing,
            "expected_speedup": self.expected_speedup,
        }


class OffloadPlanner:
    """Select and validate PL offload targets for an architecture."""

    def __init__(
        self,
        board: BoardSpec = PYNQ_Z2,
        n_units: int = 16,
        execution_model: Optional[ExecutionTimeModel] = None,
        qformat: Optional[QFormat] = None,
    ) -> None:
        self.board = board
        self.n_units = n_units
        if qformat is not None:
            self.resource_estimator = ResourceEstimator(board.fpga, qformat=qformat)
        else:
            self.resource_estimator = ResourceEstimator(board.fpga)
        self.timing_model = TimingModel.for_board(board)
        self.execution_model = execution_model or ExecutionTimeModel(board, n_units=n_units)

    # -- target selection -----------------------------------------------------------

    def proposed_targets(self, model_name: str, depth: int) -> Tuple[str, ...]:
        """Offload targets for a model.

        The paper's pairing (:data:`PAPER_OFFLOAD_TARGETS`) is used when the
        model name appears there; otherwise the heavily-executed ODEBlock
        layers that are offloadable are proposed, falling back to the layer
        group with the largest software share.
        """

        if model_name in PAPER_OFFLOAD_TARGETS:
            return PAPER_OFFLOAD_TARGETS[model_name]
        spec = variant_spec(model_name, depth)
        heavy = [l for l in spec.heavily_used_layers() if l in OFFLOADABLE_LAYER_NAMES]
        if heavy:
            return tuple(heavy)
        report = self.execution_model.report(model_name, depth, offload_targets=())
        candidates = [
            (e.software_seconds, e.layer)
            for e in report.layers
            if e.layer in OFFLOADABLE_LAYER_NAMES
        ]
        if not candidates:
            return ()
        return (max(candidates)[1],)

    # -- feasibility -------------------------------------------------------------------

    def resources_for_targets(self, targets: Sequence[str], n_units: Optional[int] = None) -> ResourceVector:
        """Total PL resources of implementing all targets simultaneously."""

        n = n_units if n_units is not None else self.n_units
        geoms = [layer_geometry(t).fpga_geometry() for t in targets]
        return self.resource_estimator.estimate_combination(geoms, n_units=n)

    def plan(
        self,
        model_name: str,
        depth: int,
        targets: Optional[Sequence[str]] = None,
        n_units: Optional[int] = None,
        report: Optional[ExecutionTimeReport] = None,
    ) -> OffloadDecision:
        """Produce a full offload decision for one architecture.

        ``n_units`` is an optional override; it defaults to the planner's
        constructor value, so callers that configured the planner once do not
        need to repeat the MAC-unit count here.  ``report`` lets a caller
        that already holds the execution-time report for the chosen targets
        (e.g. one with solver-stage scaling applied) supply it, so the
        expected speedup is taken from that report instead of recomputing.
        """

        n = n_units if n_units is not None else self.n_units
        chosen = tuple(targets) if targets is not None else self.proposed_targets(model_name, depth)
        resources = self.resources_for_targets(chosen, n) if chosen else ResourceVector()
        fits = resources.fits(self.board.fpga) if chosen else True
        timing_ok = self.timing_model.analyze(n, target_hz=self.board.pl_clock_hz).meets_timing
        if report is None:
            # The expected speedup must reflect the requested parallelism,
            # which may differ from the execution model's default.
            report = self.execution_model.report(model_name, depth, offload_targets=chosen, n_units=n)
        return OffloadDecision(
            model=model_name,
            depth=depth,
            targets=chosen,
            n_units=n,
            resources=resources,
            fits_device=fits,
            meets_timing=timing_ok,
            expected_speedup=report.overall_speedup,
        )

    def max_feasible_parallelism(
        self,
        targets: Sequence[str],
        candidates: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    ) -> int:
        """Largest MAC-unit count for which the targets fit and timing closes."""

        feasible = []
        max_channels = max(layer_geometry(t).fpga_geometry().out_channels for t in targets)
        for n in candidates:
            if n > max_channels:
                continue
            if not self.timing_model.analyze(n, target_hz=self.board.pl_clock_hz).meets_timing:
                continue
            if not self.resources_for_targets(targets, n).fits(self.board.fpga):
                continue
            feasible.append(n)
        if not feasible:
            raise RuntimeError("no parallelism configuration is feasible for these targets")
        return max(feasible)

    def feasibility_matrix(self, n_units: Optional[int] = None) -> Dict[str, bool]:
        """Section 3.2's four cases: which offload combinations fit the device."""

        n = n_units if n_units is not None else self.n_units
        cases = {
            "layer1": ("layer1",),
            "layer2_2": ("layer2_2",),
            "layer1+layer2_2": ("layer1", "layer2_2"),
            "layer3_2": ("layer3_2",),
        }
        return {
            name: self.resources_for_targets(targets, n).fits(self.board.fpga)
            for name, targets in cases.items()
        }

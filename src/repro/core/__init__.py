"""The paper's contribution: ODENet / rODENet variants and their FPGA offload.

This package contains the architecture specifications of Table 4, executable
network builders, the ODEBlock (block-as-ODE-dynamics) module, the analytical
parameter-size model (Table 2 / Figure 5), the end-to-end execution-time
model (Table 5) and the offload planner (Section 3.2).
"""

from .architectures import OdeNetConfig, OdeNetModel, build_network, count_block_executions
from .execution_model import (
    PAPER_OFFLOAD_TARGETS,
    TABLE5_MODELS,
    ExecutionTimeModel,
    ExecutionTimeReport,
    LayerTimeEntry,
)
from .network_spec import (
    INPUT_CHANNELS,
    INPUT_SIZE,
    LAYER_ORDER,
    NETWORK_LAYERS,
    NUM_CLASSES,
    OFFLOADABLE_LAYER_NAMES,
    LayerGeometry,
    layer_geometry,
)
from .odeblock import ODEBlock, ODEBlockFunction, PlainBlock
from .offload import OffloadDecision, OffloadPlanner
from .parameter_model import (
    figure5_series,
    parameter_reduction_percent,
    parameter_size_series,
    table2_structure,
    variant_parameter_bytes,
    variant_parameter_count,
)
from .training_model import TrainingCostConfig, TrainingTimeModel, TrainingTimeReport
from .variants import (
    SUPPORTED_DEPTHS,
    VARIANT_NAMES,
    BlockRealization,
    LayerPlan,
    VariantSpec,
    all_variant_specs,
    table4_rows,
    variant_spec,
)

__all__ = [
    "ODEBlock",
    "ODEBlockFunction",
    "PlainBlock",
    "OdeNetModel",
    "OdeNetConfig",
    "build_network",
    "count_block_executions",
    "VariantSpec",
    "LayerPlan",
    "BlockRealization",
    "VARIANT_NAMES",
    "SUPPORTED_DEPTHS",
    "variant_spec",
    "all_variant_specs",
    "table4_rows",
    "LayerGeometry",
    "layer_geometry",
    "NETWORK_LAYERS",
    "LAYER_ORDER",
    "OFFLOADABLE_LAYER_NAMES",
    "NUM_CLASSES",
    "INPUT_CHANNELS",
    "INPUT_SIZE",
    "table2_structure",
    "variant_parameter_count",
    "variant_parameter_bytes",
    "parameter_size_series",
    "parameter_reduction_percent",
    "figure5_series",
    "ExecutionTimeModel",
    "ExecutionTimeReport",
    "LayerTimeEntry",
    "PAPER_OFFLOAD_TARGETS",
    "TABLE5_MODELS",
    "OffloadPlanner",
    "OffloadDecision",
    "TrainingTimeModel",
    "TrainingTimeReport",
    "TrainingCostConfig",
]

"""Building blocks: plain ResNet blocks, down-sampling blocks and ODEBlocks.

The paper's building block (Figure 1) is: 3x3 convolution, batch
normalisation, ReLU, 3x3 convolution, batch normalisation, plus the shortcut
connection that adds the block input to its output.  In ODENet (Figure 2) a
block is reinterpreted as the dynamics ``f(z, t, θ)`` of an ODE and executed
``M`` times by an ODE solver (Euler by default: ``z_{i+1} = z_i + h·f(z_i)``).

Three module classes implement this:

* :class:`PlainBlock` — one residual building block (used by ResNet-N, by the
  ``single``-realisation layers of the rODENet variants, and with a strided /
  channel-doubling configuration by layer2_1 and layer3_1, whose shortcut is
  the parameter-free subsample + zero-pad of the original CIFAR ResNet).
* :class:`ODEBlock` — one block's worth of parameters used as ODE dynamics
  with time concatenated as an extra input channel to both convolutions, and
  executed for ``M`` solver steps.
* :class:`ODEBlockFunction` — the raw dynamics (without the solver loop),
  exposed separately so the adjoint method and the FPGA hardware model can
  call it directly.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.tensor import Tensor
from ..ode import get_solver, odeint_adjoint
from ..ode.solvers import FixedGridSolver

__all__ = ["PlainBlock", "ODEBlockFunction", "ODEBlock"]


def _pad_shortcut(x: Tensor, out_channels: int, stride: int) -> Tensor:
    """Parameter-free shortcut: spatial subsampling plus channel zero-padding.

    This is "option A" of the original ResNet paper, consistent with Table 2
    counting no projection parameters for layer2_1 / layer3_1.
    """

    if stride > 1:
        x = x[:, :, ::stride, ::stride]
    in_channels = x.shape[1]
    if in_channels < out_channels:
        extra = out_channels - in_channels
        before = extra // 2
        after = extra - before
        x = x.pad(((0, 0), (before, after), (0, 0), (0, 0)))
    return x


class PlainBlock(nn.Module):
    """A residual building block executed once (standard ResNet block)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, rng=rng)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, stride=1, padding=1, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)

    def residual_function(self, x: Tensor) -> Tensor:
        """The f(z, θ) part of the block (without the shortcut)."""

        h = self.bn1(self.conv1(x)).relu()
        return self.bn2(self.conv2(h))

    def forward(self, x: Tensor) -> Tensor:
        shortcut = _pad_shortcut(x, self.out_channels, self.stride)
        return (self.residual_function(x) + shortcut).relu()


class ODEBlockFunction(nn.Module):
    """The ODE dynamics ``f(z, t, θ)``: conv–BN–ReLU–conv–BN with time concat.

    The scalar integration time ``t`` is broadcast to an extra input channel
    of both convolutions (the standard Neural-ODE "ConcatConv2d"), which is
    what gives the ODENet layer blocks their slightly larger parameter counts
    in Table 2.
    """

    def __init__(self, channels: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.channels = channels
        self.conv1 = nn.Conv2d(channels + 1, channels, 3, stride=1, padding=1, rng=rng)
        self.bn1 = nn.BatchNorm2d(channels)
        self.conv2 = nn.Conv2d(channels + 1, channels, 3, stride=1, padding=1, rng=rng)
        self.bn2 = nn.BatchNorm2d(channels)

    @staticmethod
    def _concat_time(x: Tensor, t: float) -> Tensor:
        n, _, h, w = x.shape
        t_channel = Tensor(np.full((n, 1, h, w), float(t)))
        return Tensor.concatenate([x, t_channel], axis=1)

    def forward(self, z: Tensor, t: float = 0.0) -> Tensor:
        h = self.bn1(self.conv1(self._concat_time(z, t))).relu()
        return self.bn2(self.conv2(self._concat_time(h, t)))


class ODEBlock(nn.Module):
    """A single block's parameters executed ``num_steps`` times by an ODE solver.

    Parameters
    ----------
    channels:
        Channel count of the feature map (16 / 32 / 64 in the paper).
    num_steps:
        Number of solver steps M — the "# of executions per block" column of
        Table 4.  With the Euler method this is exactly M repeated executions
        of the block.
    method:
        ODE solver name (``euler`` in the paper's prediction configuration;
        ``rk4`` etc. for the solver ablation).
    integration_time:
        The interval [0, T] integrated over.  The paper's correspondence uses
        a step size of 1 per block execution, i.e. T = M.
    use_adjoint:
        Train with the adjoint method (constant memory) instead of
        backpropagating through the unrolled solver.
    """

    def __init__(
        self,
        channels: int,
        num_steps: int,
        method: str = "euler",
        integration_time: Optional[float] = None,
        use_adjoint: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_steps < 1:
            raise ValueError("num_steps must be >= 1")
        self.channels = channels
        self.num_steps = num_steps
        self.method = method
        self.integration_time = float(integration_time if integration_time is not None else num_steps)
        self.use_adjoint = use_adjoint
        self.dynamics = ODEBlockFunction(channels, rng=rng)

    @property
    def solver(self) -> FixedGridSolver:
        return get_solver(self.method)

    @property
    def executions_per_forward(self) -> int:
        """Dynamics evaluations per forward pass (steps x solver stages)."""

        return self.num_steps * self.solver.stages_per_step

    def forward(self, x: Tensor) -> Tensor:
        func = self.dynamics
        if self.use_adjoint and self.training:
            params = self.dynamics.parameters()
            out = odeint_adjoint(
                func,
                x,
                0.0,
                self.integration_time,
                num_steps=self.num_steps,
                params=params,
                method=self.method,
            )
        else:
            out = self.solver.integrate(func, x, 0.0, self.integration_time, self.num_steps)
        return out.relu()


__doc_note__ = """
Note: like the paper's Figure 2, the ODEBlock replaces a whole stack of
ResNet blocks; the trailing ReLU keeps the activation pattern consistent with
the ResNet building block it replaces.
"""

"""End-to-end execution-time model (Table 5 of the paper).

For every architecture the model combines

* the per-layer execution counts of Table 4 (:mod:`repro.core.variants`),
* the software cost of each layer-group execution on the PS part
  (:mod:`repro.hwsw.ps_model`),
* the PL cycle model of the offloaded ODEBlock (:mod:`repro.fpga.cycles`) and
* the PS↔PL AXI transfer assumption (:mod:`repro.fpga.axi`),

and produces the columns of Table 5: total time without the PL, the offload
target's share of that time, the target's time when executed on the PL, the
resulting total, and the overall speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..fpga.axi import AxiTransferConfig, AxiTransferModel
from ..fpga.cycles import (
    CycleModelConfig,
    OdeBlockCycleModel,
    bn_cycles_kernel,
    block_seconds_kernel,
    conv_cycles_kernel,
    effective_units_kernel,
)
from ..fpga.device import PYNQ_Z2, BoardSpec
from ..fpga.geometry import BlockGeometry
from ..hwsw.ps_model import PsModelConfig, SoftwareCostModel
from .network_spec import LAYER_ORDER, layer_geometry
from .variants import SUPPORTED_DEPTHS, BlockRealization, VariantSpec, variant_spec

__all__ = [
    "LayerTimeEntry",
    "ExecutionTimeReport",
    "ExecutionTimeModel",
    "PAPER_OFFLOAD_TARGETS",
    "TABLE5_MODELS",
    "pl_layer_seconds_kernel",
]


def pl_layer_seconds_kernel(
    geometry: BlockGeometry,
    n_units,
    clock_hz,
    cycle_config: CycleModelConfig,
    transfer_seconds,
):
    """Array-capable kernel: PL time of one block execution (compute + DMA).

    ``n_units``, ``clock_hz`` and ``transfer_seconds`` may be scalars or NumPy
    arrays; the geometry and cycle-model constants are per-layer scalars.  The
    scalar :meth:`ExecutionTimeModel.pl_layer_seconds` and the batch engine
    (:mod:`repro.api.batch`) both evaluate exactly this expression, keeping
    the two paths bit-identical.
    """

    units = effective_units_kernel(n_units, geometry.out_channels)
    conv = conv_cycles_kernel(geometry.total_macs, units, cycle_config.cycles_per_mac)
    bn = bn_cycles_kernel(geometry.bn_elements, cycle_config.bn_cycles_per_element)
    if cycle_config.relu_cycles_per_element == 0.0:
        relu = 0.0
    else:
        relu = geometry.output_elements * cycle_config.relu_cycles_per_element / units
    compute = block_seconds_kernel(conv, bn, relu, cycle_config.invocation_overhead, clock_hz)
    return compute + transfer_seconds


#: Offload target(s) used for each Table-5 row ("Offload target" column).
PAPER_OFFLOAD_TARGETS: Dict[str, Tuple[str, ...]] = {
    "ResNet": (),
    "rODENet-1": ("layer1",),
    "rODENet-2": ("layer2_2",),
    "rODENet-1+2": ("layer1", "layer2_2"),
    "rODENet-3": ("layer3_2",),
    "ODENet-3": ("layer3_2",),
    "Hybrid-3": ("layer3_2",),
}

#: Row order of Table 5.  "ODENet-3" is ODENet-N with layer3_2 offloaded.
TABLE5_MODELS: Tuple[str, ...] = (
    "ResNet",
    "rODENet-1",
    "rODENet-2",
    "rODENet-1+2",
    "rODENet-3",
    "ODENet-3",
    "Hybrid-3",
)


def _variant_for_row(row_name: str) -> str:
    """Map a Table-5 row name to the underlying Table-4 variant name."""

    return "ODENet" if row_name == "ODENet-3" else row_name


@dataclass(frozen=True)
class LayerTimeEntry:
    """Timing of one layer group within one architecture."""

    layer: str
    executions: int
    software_seconds_per_execution: float
    pl_seconds_per_execution: Optional[float]
    offloaded: bool

    @property
    def software_seconds(self) -> float:
        return self.executions * self.software_seconds_per_execution

    @property
    def accelerated_seconds(self) -> float:
        if self.offloaded and self.pl_seconds_per_execution is not None:
            return self.executions * self.pl_seconds_per_execution
        return self.software_seconds


@dataclass(frozen=True)
class ExecutionTimeReport:
    """One row of Table 5."""

    model: str
    depth: int
    offload_targets: Tuple[str, ...]
    layers: Tuple[LayerTimeEntry, ...]
    overhead_seconds: float

    # -- totals ------------------------------------------------------------------

    @property
    def total_without_pl(self) -> float:
        """"Total w/o PL [s]": pure software execution time."""

        return sum(e.software_seconds for e in self.layers) + self.overhead_seconds

    @property
    def target_without_pl(self) -> Tuple[float, ...]:
        """"Target w/o PL [s]" per offload target."""

        return tuple(
            e.software_seconds for e in self.layers if e.layer in self.offload_targets
        )

    @property
    def target_ratio_percent(self) -> Tuple[float, ...]:
        """"Ratio of target [%]" per offload target."""

        total = self.total_without_pl
        return tuple(100.0 * t / total for t in self.target_without_pl)

    @property
    def target_with_pl(self) -> Tuple[float, ...]:
        """"Target w/ PL [s]" per offload target."""

        return tuple(
            e.accelerated_seconds for e in self.layers if e.layer in self.offload_targets
        )

    @property
    def total_with_pl(self) -> float:
        """"Total w/ PL [s]": software time with the targets offloaded."""

        return sum(e.accelerated_seconds for e in self.layers) + self.overhead_seconds

    @property
    def overall_speedup(self) -> float:
        """"Overall speedup": total w/o PL divided by total w/ PL."""

        if not self.offload_targets:
            return 1.0
        return self.total_without_pl / self.total_with_pl

    def layer_entry(self, layer: str) -> LayerTimeEntry:
        for e in self.layers:
            if e.layer == layer:
                return e
        raise KeyError(f"no layer '{layer}' in report for {self.model}-{self.depth}")

    def as_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "N": self.depth,
            "offload_target": "/".join(self.offload_targets) or "-",
            "total_wo_pl_s": self.total_without_pl,
            "target_wo_pl_s": list(self.target_without_pl),
            "ratio_of_target_pct": list(self.target_ratio_percent),
            "target_w_pl_s": list(self.target_with_pl),
            "total_w_pl_s": self.total_with_pl,
            "overall_speedup": self.overall_speedup,
        }


class ExecutionTimeModel:
    """Build Table-5 style execution-time reports."""

    def __init__(
        self,
        board: BoardSpec = PYNQ_Z2,
        n_units: int = 16,
        ps_config: Optional[PsModelConfig] = None,
        cycle_config: Optional[CycleModelConfig] = None,
        axi_config: Optional[AxiTransferConfig] = None,
        include_transfer: bool = True,
    ) -> None:
        self.board = board
        self.n_units = n_units
        self.include_transfer = include_transfer
        # Board-derived defaults: the PS software model runs at the board's
        # PS clock and the AXI transfers are counted against the board's PL
        # clock (one source of truth per clock).  Explicit configs still win.
        self.software_model = SoftwareCostModel(ps_config or PsModelConfig.for_board(board))
        self.cycle_model = OdeBlockCycleModel(cycle_config)
        self.transfer_model = AxiTransferModel(axi_config or AxiTransferConfig.for_board(board))

    # -- per-layer costs --------------------------------------------------------------

    def software_layer_seconds(self, layer: str) -> float:
        """Software time of one execution of a layer group on the PS part."""

        geom = layer_geometry(layer)
        return self.software_model.block_time(
            macs=geom.macs,
            out_elements=geom.out_elements,
            elementwise_passes=geom.elementwise_passes,
        )

    def pl_layer_seconds(self, layer: str, n_units: Optional[int] = None) -> float:
        """PL time of one execution of an offloadable layer group (compute + DMA).

        ``n_units`` overrides the model's default MAC-unit count for this
        query only (the model itself is not mutated, so concurrent callers
        can share one instance).
        """

        geom = layer_geometry(layer)
        fpga_geom = geom.fpga_geometry()
        units = self.cycle_model.effective_units(
            fpga_geom, self.n_units if n_units is None else n_units
        )
        transfer = (
            self.transfer_model.block_round_trip(fpga_geom).seconds
            if self.include_transfer
            else 0.0
        )
        return float(
            pl_layer_seconds_kernel(
                fpga_geom, units, self.board.pl_clock_hz, self.cycle_model.config, transfer
            )
        )

    # -- reports -----------------------------------------------------------------------

    def report(
        self,
        model_name: str,
        depth: int,
        offload_targets: Optional[Sequence[str]] = None,
        n_units: Optional[int] = None,
        solver_stages: int = 1,
    ) -> ExecutionTimeReport:
        """Execution-time report for one Table-5 row.

        ``model_name`` may be any Table-4 variant or the Table-5 row name
        "ODENet-3".  When ``offload_targets`` is omitted the paper's targets
        (:data:`PAPER_OFFLOAD_TARGETS`) are used.  ``n_units`` overrides the
        model's default MAC-unit count for this report only (no mutation).
        ``solver_stages`` multiplies the execution count of every ODEBlock
        layer: a higher-order Runge-Kutta solver evaluates the block dynamics
        ``stages`` times per step (Euler, the paper's choice, is 1).
        """

        if solver_stages < 1:
            raise ValueError("solver_stages must be a positive integer")
        variant_name = _variant_for_row(model_name)
        spec = variant_spec(variant_name, depth)
        if offload_targets is None:
            offload_targets = PAPER_OFFLOAD_TARGETS.get(model_name, ())
        targets = tuple(offload_targets)

        entries: List[LayerTimeEntry] = []
        for layer in LAYER_ORDER:
            plan = spec.plan(layer)
            executions = plan.total_executions
            if executions == 0:
                continue
            if plan.realization == BlockRealization.ODEBLOCK:
                executions *= solver_stages
            sw = self.software_layer_seconds(layer)
            offloaded = layer in targets
            pl = self.pl_layer_seconds(layer, n_units) if offloaded else None
            entries.append(
                LayerTimeEntry(
                    layer=layer,
                    executions=executions,
                    software_seconds_per_execution=sw,
                    pl_seconds_per_execution=pl,
                    offloaded=offloaded,
                )
            )
        return ExecutionTimeReport(
            model=model_name,
            depth=depth,
            offload_targets=targets,
            layers=tuple(entries),
            overhead_seconds=self.software_model.per_image_overhead(),
        )

    def table5(
        self,
        depths: Sequence[int] = SUPPORTED_DEPTHS,
        models: Sequence[str] = TABLE5_MODELS,
    ) -> List[ExecutionTimeReport]:
        """All rows of Table 5 (7 models x 4 depths by default)."""

        return [self.report(m, d) for m in models for d in depths]

    def speedup_vs_resnet(self, model_name: str, depth: int) -> float:
        """Speedup of an offloaded model over the pure-software ResNet-N baseline.

        Section 4.4: "rODENet-3-56 is 2.67 times faster than a pure software
        execution of ResNet-56."
        """

        resnet = self.report("ResNet", depth)
        target = self.report(model_name, depth)
        return resnet.total_without_pl / target.total_with_pl

    def parallelism_sweep(
        self,
        model_name: str,
        depth: int,
        unit_counts: Sequence[int] = (1, 4, 8, 16, 32),
    ) -> Dict[int, ExecutionTimeReport]:
        """Speedup sensitivity to the MAC-unit count (ablation E9)."""

        return {n: self.report(model_name, depth, n_units=n) for n in unit_counts}

"""Training-time model (the paper's future-work direction).

Section 5: "we are planning to offload the training process of the rODENet
variants to FPGA devices."  This module extends the prediction-time model of
:mod:`repro.core.execution_model` to the training loop so that design-space
questions about that future work can be asked today:

* how long does one SGD step / one CIFAR-100 epoch take in pure software on
  the PS part?
* how much of that time lives in the offload target's forward *and backward*
  passes, and what would offloading both to the PL buy?
* how does the adjoint method (which re-integrates the dynamics backwards
  instead of storing the unrolled graph) change the arithmetic count?

Cost conventions (standard back-propagation accounting):

* the backward pass of a convolution costs ~2x its forward MACs (gradient
  with respect to the input plus gradient with respect to the weights);
* training therefore costs ~3x the forward MACs per example, plus the
  element-wise traffic of the optimiser update;
* with the adjoint method the backward pass instead *re-evaluates* the
  dynamics along the reverse trajectory (one forward-equivalent) and
  accumulates the two vector–Jacobian products (two forward-equivalents),
  i.e. ~3x forward per solver step but with O(1) memory — same arithmetic,
  different memory profile, which is exactly the trade-off the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from .execution_model import ExecutionTimeModel, PAPER_OFFLOAD_TARGETS
from .network_spec import LAYER_ORDER, layer_geometry
from .variants import variant_spec

__all__ = ["TrainingCostConfig", "TrainingTimeReport", "TrainingTimeModel"]


@dataclass(frozen=True)
class TrainingCostConfig:
    """Multipliers relating training work to prediction work."""

    #: Backward-pass MACs relative to forward MACs (dL/dx plus dL/dW).
    backward_mac_factor: float = 2.0

    #: Extra element-wise passes per parameter for the SGD + momentum +
    #: weight-decay update (read grad, update velocity, write weight).
    optimizer_passes: float = 3.0

    #: CIFAR-100 training-set size (images per epoch).
    images_per_epoch: int = 50_000

    #: The paper's epoch count (Section 4.3).
    epochs: int = 200


@dataclass(frozen=True)
class TrainingTimeReport:
    """Modelled training cost of one architecture."""

    model: str
    depth: int
    offload_targets: Tuple[str, ...]
    step_seconds_software: float
    step_seconds_offloaded: float
    target_share_percent: float

    @property
    def step_speedup(self) -> float:
        return self.step_seconds_software / self.step_seconds_offloaded

    def epoch_seconds(self, offloaded: bool, images_per_epoch: int) -> float:
        per_image = self.step_seconds_offloaded if offloaded else self.step_seconds_software
        return per_image * images_per_epoch

    def full_training_hours(self, offloaded: bool, config: "TrainingCostConfig") -> float:
        return (
            self.epoch_seconds(offloaded, config.images_per_epoch)
            * config.epochs
            / 3600.0
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "model": self.model,
            "N": self.depth,
            "offload": "/".join(self.offload_targets) or "-",
            "train_step_sw_s": self.step_seconds_software,
            "train_step_offloaded_s": self.step_seconds_offloaded,
            "target_share_pct": self.target_share_percent,
            "step_speedup": self.step_speedup,
        }


class TrainingTimeModel:
    """Estimate per-example training time on the PS, with optional PL offload."""

    def __init__(
        self,
        execution_model: Optional[ExecutionTimeModel] = None,
        config: Optional[TrainingCostConfig] = None,
    ) -> None:
        self.execution_model = execution_model or ExecutionTimeModel()
        self.config = config or TrainingCostConfig()

    # -- per-layer costs -------------------------------------------------------------

    def _training_factor(self) -> float:
        """Training work relative to prediction work for one layer execution."""

        return 1.0 + self.config.backward_mac_factor

    def software_layer_training_seconds(self, layer: str) -> float:
        """Forward + backward software time of one layer-group execution."""

        return self.execution_model.software_layer_seconds(layer) * self._training_factor()

    def pl_layer_training_seconds(self, layer: str) -> float:
        """Forward + backward PL time of one offloaded layer-group execution.

        The future-work scenario assumes the backward pass is implemented with
        the same MAC array (transposed convolutions reuse the multipliers), so
        it inherits the forward pass's cycles-per-MAC and the same DMA cost per
        traversal.
        """

        return self.execution_model.pl_layer_seconds(layer) * self._training_factor()

    def optimizer_seconds(self, model_name: str, depth: int) -> float:
        """Parameter-update cost of one SGD step (element-wise passes)."""

        from .parameter_model import variant_parameter_count

        variant = "ODENet" if model_name == "ODENet-3" else model_name
        params = variant_parameter_count(variant, depth)
        sw = self.execution_model.software_model
        return sw.work_time(0.0, elements=params, passes=self.config.optimizer_passes)

    # -- reports ------------------------------------------------------------------------

    def report(
        self,
        model_name: str,
        depth: int,
        offload_targets: Optional[Sequence[str]] = None,
    ) -> TrainingTimeReport:
        """Training-step timing for one architecture (per image)."""

        variant = "ODENet" if model_name == "ODENet-3" else model_name
        spec = variant_spec(variant, depth)
        if offload_targets is None:
            offload_targets = PAPER_OFFLOAD_TARGETS.get(model_name, ())
        targets = tuple(offload_targets)

        software_total = self.execution_model.software_model.per_image_overhead()
        offloaded_total = software_total
        target_software = 0.0
        for layer in LAYER_ORDER:
            executions = spec.plan(layer).total_executions
            if executions == 0:
                continue
            sw = executions * self.software_layer_training_seconds(layer)
            software_total += sw
            if layer in targets:
                target_software += sw
                offloaded_total += executions * self.pl_layer_training_seconds(layer)
            else:
                offloaded_total += sw

        update = self.optimizer_seconds(model_name, depth)
        software_total += update
        offloaded_total += update

        return TrainingTimeReport(
            model=model_name,
            depth=depth,
            offload_targets=targets,
            step_seconds_software=software_total,
            step_seconds_offloaded=offloaded_total,
            target_share_percent=100.0 * target_software / software_total,
        )

    def epoch_table(
        self, models: Sequence[str] = ("ResNet", "rODENet-3"), depth: int = 56
    ) -> Dict[str, Dict[str, float]]:
        """Epoch / full-run projections for a set of architectures."""

        out: Dict[str, Dict[str, float]] = {}
        for name in models:
            report = self.report(name, depth)
            out[name] = {
                "epoch_hours_software": report.epoch_seconds(False, self.config.images_per_epoch) / 3600.0,
                "epoch_hours_offloaded": report.epoch_seconds(True, self.config.images_per_epoch) / 3600.0,
                "full_run_days_software": report.full_training_hours(False, self.config) / 24.0,
                "full_run_days_offloaded": report.full_training_hours(True, self.config) / 24.0,
                "step_speedup": report.step_speedup,
            }
        return out

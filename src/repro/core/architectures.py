"""Executable network builders for every architecture of Table 4.

:func:`build_network` turns a :class:`~repro.core.variants.VariantSpec` into a
trainable :class:`~repro.nn.Module` assembled from the building blocks of
:mod:`repro.core.odeblock`.  The resulting networks follow the structure of
Table 2 exactly (conv1 → layer1 → layer2_1 → layer2_2 → layer3_1 → layer3_2 →
global average pooling → 100-way fully connected → softmax at the loss).

A ``scale`` argument shrinks the channel widths (and optionally the depth
plans) so the same code path can be exercised on small synthetic data in the
test-suite and the functional training example, where full CIFAR-100 models
would be too slow to train on a CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import nn
from ..nn.tensor import Tensor
from .network_spec import INPUT_CHANNELS, NUM_CLASSES
from .odeblock import ODEBlock, PlainBlock
from .variants import BlockRealization, VariantSpec, variant_spec

__all__ = ["OdeNetConfig", "OdeNetModel", "build_network", "count_block_executions"]


@dataclass(frozen=True)
class OdeNetConfig:
    """Configuration of a concrete, executable network instance."""

    variant: str
    depth: int
    num_classes: int = NUM_CLASSES
    in_channels: int = INPUT_CHANNELS
    base_width: int = 16
    ode_method: str = "euler"
    use_adjoint: bool = False
    seed: int = 0

    @property
    def stage_channels(self) -> Tuple[int, int, int]:
        w = self.base_width
        return (w, 2 * w, 4 * w)


class OdeNetModel(nn.Module):
    """A concrete network built from a variant specification."""

    def __init__(self, spec: VariantSpec, config: OdeNetConfig) -> None:
        super().__init__()
        self.spec = spec
        self.config = config
        rng = np.random.default_rng(config.seed)
        c1, c2, c3 = config.stage_channels

        # Pre-processing (conv1): conv + BN + ReLU.
        self.conv1 = nn.Conv2d(config.in_channels, c1, 3, stride=1, padding=1, rng=rng)
        self.bn1 = nn.BatchNorm2d(c1)

        # Repeated stages.
        self.layer1 = self._make_stage(spec, "layer1", c1, rng)
        self.layer2_1 = PlainBlock(c1, c2, stride=2, rng=rng)
        self.layer2_2 = self._make_stage(spec, "layer2_2", c2, rng)
        self.layer3_1 = PlainBlock(c2, c3, stride=2, rng=rng)
        self.layer3_2 = self._make_stage(spec, "layer3_2", c3, rng)

        # Post-processing (fc): global average pooling + fully connected.
        self.pool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(c3, config.num_classes, rng=rng)

    def _make_stage(
        self,
        spec: VariantSpec,
        layer: str,
        channels: int,
        rng: np.random.Generator,
    ) -> nn.Module:
        plan = spec.plan(layer)
        cfg = self.config
        if plan.realization == BlockRealization.REMOVED:
            return nn.Identity()
        if plan.realization == BlockRealization.ODEBLOCK:
            return ODEBlock(
                channels,
                num_steps=plan.executions_per_block,
                method=cfg.ode_method,
                use_adjoint=cfg.use_adjoint,
                rng=rng,
            )
        if plan.realization == BlockRealization.SINGLE:
            return PlainBlock(channels, channels, stride=1, rng=rng)
        # STACKED: a sequence of distinct plain blocks.
        blocks = [PlainBlock(channels, channels, stride=1, rng=rng) for _ in range(plan.stacked_blocks)]
        return nn.Sequential(*blocks)

    # -- forward -------------------------------------------------------------------

    def features(self, x: Tensor) -> Tensor:
        """Feature extractor up to (and including) layer3_2."""

        h = self.bn1(self.conv1(x)).relu()
        h = self.layer1(h)
        h = self.layer2_1(h)
        h = self.layer2_2(h)
        h = self.layer3_1(h)
        h = self.layer3_2(h)
        return h

    def forward(self, x: Tensor) -> Tensor:
        h = self.features(x)
        pooled = self.pool(h)
        return self.fc(pooled)

    # -- introspection ----------------------------------------------------------------

    def stage_module(self, layer: str) -> nn.Module:
        """Return the module implementing a named layer group."""

        mapping = {
            "layer1": self.layer1,
            "layer2_1": self.layer2_1,
            "layer2_2": self.layer2_2,
            "layer3_1": self.layer3_1,
            "layer3_2": self.layer3_2,
        }
        if layer not in mapping:
            raise KeyError(f"unknown stage '{layer}'")
        return mapping[layer]

    def describe(self) -> Dict[str, str]:
        """Human-readable summary of how each layer group is realised."""

        out = {}
        for plan in self.spec:
            out[plan.layer] = f"{plan.realization} ({plan.as_table_cell()})"
        return out


def build_network(
    variant: str,
    depth: int,
    num_classes: int = NUM_CLASSES,
    base_width: int = 16,
    ode_method: str = "euler",
    use_adjoint: bool = False,
    seed: int = 0,
    in_channels: int = INPUT_CHANNELS,
) -> OdeNetModel:
    """Build an executable network for a named variant and depth.

    Parameters mirror the paper's configuration by default (CIFAR-100,
    16/32/64 channels, Euler prediction); ``base_width`` and ``num_classes``
    can be reduced for fast functional tests.
    """

    spec = variant_spec(variant, depth)
    config = OdeNetConfig(
        variant=spec.name,
        depth=depth,
        num_classes=num_classes,
        in_channels=in_channels,
        base_width=base_width,
        ode_method=ode_method,
        use_adjoint=use_adjoint,
        seed=seed,
    )
    return OdeNetModel(spec, config)


def count_block_executions(model: OdeNetModel) -> Dict[str, int]:
    """Building-block executions per layer group for one forward pass.

    For ODEBlocks this counts solver steps times solver stages; for plain /
    stacked blocks it counts the block instances.  Used by tests to confirm
    the executable models match the Table 4 execution counts.
    """

    counts: Dict[str, int] = {}
    for plan in model.spec:
        layer = plan.layer
        if layer in ("conv1", "fc"):
            continue
        module = model.stage_module(layer)
        if isinstance(module, ODEBlock):
            counts[layer] = module.num_steps * module.solver.stages_per_step
        elif isinstance(module, nn.Identity):
            counts[layer] = 0
        elif isinstance(module, nn.Sequential):
            counts[layer] = len(module)
        else:
            counts[layer] = 1
    return counts

"""Architecture variants of Table 4.

Seven architectures are evaluated in the paper, each parameterised by the
depth N (20, 32, 44 or 56):

* **ResNet-N** — the baseline: every repeated layer group is a stack of
  distinct building blocks.
* **ODENet-N** — layer1, layer2_2 and layer3_2 are each replaced by a single
  ODEBlock executed repeatedly (Euler steps).
* **rODENet-1-N** — layer2_2 and layer3_2 are removed; layer1 becomes an
  ODEBlock whose execution count grows so the total number of building-block
  executions matches ResNet-N.
* **rODENet-2-N** — layer1 runs once, layer3_2 is removed, layer2_2 becomes
  the heavily-executed ODEBlock.
* **rODENet-1+2-N** — layer3_2 is removed; layer1 and layer2_2 are ODEBlocks
  sharing the execution budget.
* **rODENet-3-N** — layer1 runs once, layer2_2 is removed, layer3_2 becomes
  the heavily-executed ODEBlock.
* **Hybrid-3-N** — like ResNet-N but with layer3_2 (only) replaced by an
  ODEBlock.

A :class:`VariantSpec` lists, per layer group, the number of *stacked block
instances* and the number of *executions per block* — exactly the two columns
of Table 4 — plus how the block is realised (plain stacked blocks, a single
plain block, an ODEBlock, or removed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .network_spec import LAYER_ORDER, NETWORK_LAYERS

__all__ = [
    "BlockRealization",
    "LayerPlan",
    "VariantSpec",
    "VARIANT_NAMES",
    "SUPPORTED_DEPTHS",
    "variant_spec",
    "all_variant_specs",
    "table4_rows",
]


class BlockRealization:
    """How a layer group is realised in a particular variant."""

    STACKED = "stacked"  # k distinct plain blocks, each executed once
    SINGLE = "single"  # one plain block executed once
    ODEBLOCK = "odeblock"  # one ODEBlock executed M times (Euler steps)
    REMOVED = "removed"  # layer group eliminated
    FIXED = "fixed"  # conv1 / layer2_1 / layer3_1 / fc (always present, once)

    ALL = (STACKED, SINGLE, ODEBLOCK, REMOVED, FIXED)


@dataclass(frozen=True)
class LayerPlan:
    """Per-layer entry of Table 4: instances, executions and realisation."""

    layer: str
    stacked_blocks: int
    executions_per_block: int
    realization: str

    @property
    def total_executions(self) -> int:
        """Total number of block executions contributed by this layer group."""

        return self.stacked_blocks * self.executions_per_block

    @property
    def uses_time_concat(self) -> bool:
        """ODEBlocks concatenate t as an extra conv input channel."""

        return self.realization == BlockRealization.ODEBLOCK

    def as_table_cell(self) -> str:
        """Format as Table 4 does ("#stacked / #executions")."""

        return f"{self.stacked_blocks} / {self.executions_per_block}"


#: Names of the seven evaluated architectures.
VARIANT_NAMES: Tuple[str, ...] = (
    "ResNet",
    "ODENet",
    "rODENet-1",
    "rODENet-2",
    "rODENet-1+2",
    "rODENet-3",
    "Hybrid-3",
)

#: Depths evaluated in the paper.
SUPPORTED_DEPTHS: Tuple[int, ...] = (20, 32, 44, 56)


@dataclass(frozen=True)
class VariantSpec:
    """One architecture (variant name + depth N) as a set of layer plans."""

    name: str
    depth: int
    layers: Tuple[LayerPlan, ...]

    @property
    def full_name(self) -> str:
        return f"{self.name}-{self.depth}"

    def plan(self, layer: str) -> LayerPlan:
        for entry in self.layers:
            if entry.layer == layer:
                return entry
        raise KeyError(f"{self.full_name} has no layer named '{layer}'")

    def __iter__(self):
        return iter(self.layers)

    @property
    def total_block_executions(self) -> int:
        """Total building-block executions (excluding conv1 and fc).

        The rODENet variants are constructed so this matches ResNet-N (the
        paper's "the total execution count of building blocks is same as
        ResNet-N").
        """

        return sum(
            p.total_executions
            for p in self.layers
            if NETWORK_LAYERS[p.layer].kind in ("block", "downsample_block")
        )

    @property
    def ode_layers(self) -> List[str]:
        """Layer groups realised as ODEBlocks."""

        return [p.layer for p in self.layers if p.realization == BlockRealization.ODEBLOCK]

    @property
    def removed_layers(self) -> List[str]:
        return [p.layer for p in self.layers if p.realization == BlockRealization.REMOVED]

    def heavily_used_layers(self) -> List[str]:
        """ODEBlock layers executed more than once (the natural offload targets)."""

        return [
            p.layer
            for p in self.layers
            if p.realization == BlockRealization.ODEBLOCK and p.executions_per_block > 1
        ]


def _check_divisibility(depth: int) -> None:
    if depth not in SUPPORTED_DEPTHS and (depth - 2) % 6 != 0:
        raise ValueError(
            f"unsupported depth N={depth}: the CIFAR ResNet family requires (N-2) % 6 == 0"
        )
    if depth < 20:
        raise ValueError("depth must be at least 20 (smaller depths make (N-8)/6 < 2)")


def variant_spec(name: str, depth: int) -> VariantSpec:
    """Build the Table-4 specification of one architecture.

    Parameters
    ----------
    name:
        One of :data:`VARIANT_NAMES` (case-insensitive; "rODENet-1+2" and
        "rodenet-1+2" are both accepted).
    depth:
        The ResNet-equivalent depth N (20, 32, 44 or 56 in the paper).
    """

    _check_divisibility(depth)
    n = depth
    n1 = (n - 2) // 6  # ResNet blocks in layer1
    n2 = (n - 8) // 6  # ResNet blocks in layer2_2 and layer3_2

    canonical = {v.lower(): v for v in VARIANT_NAMES}
    key = canonical.get(name.lower())
    if key is None:
        raise ValueError(f"unknown variant '{name}'; expected one of {VARIANT_NAMES}")

    S = BlockRealization.STACKED
    G = BlockRealization.SINGLE
    O = BlockRealization.ODEBLOCK
    R = BlockRealization.REMOVED
    F = BlockRealization.FIXED

    # (stacked, executions, realization) per repeated layer group.
    if key == "ResNet":
        layer1, layer2_2, layer3_2 = (n1, 1, S), (n2, 1, S), (n2, 1, S)
    elif key == "ODENet":
        layer1, layer2_2, layer3_2 = (1, n1, O), (1, n2, O), (1, n2, O)
    elif key == "rODENet-1":
        layer1, layer2_2, layer3_2 = (1, (n - 6) // 2, O), (0, 0, R), (0, 0, R)
    elif key == "rODENet-2":
        layer1, layer2_2, layer3_2 = (1, 1, G), (1, (n - 8) // 2, O), (0, 0, R)
    elif key == "rODENet-1+2":
        layer1, layer2_2, layer3_2 = (1, (n - 4) // 4, O), (1, (n - 8) // 4, O), (0, 0, R)
    elif key == "rODENet-3":
        layer1, layer2_2, layer3_2 = (1, 1, G), (0, 0, R), (1, (n - 8) // 2, O)
    elif key == "Hybrid-3":
        layer1, layer2_2, layer3_2 = (n1, 1, S), (n2, 1, S), (1, n2, O)
    else:  # pragma: no cover - unreachable
        raise AssertionError(key)

    plans = (
        LayerPlan("conv1", 1, 1, F),
        LayerPlan("layer1", *layer1),
        LayerPlan("layer2_1", 1, 1, F),
        LayerPlan("layer2_2", *layer2_2),
        LayerPlan("layer3_1", 1, 1, F),
        LayerPlan("layer3_2", *layer3_2),
        LayerPlan("fc", 1, 1, F),
    )
    spec = VariantSpec(name=key, depth=depth, layers=plans)

    # The rODENet construction requires the execution budget to divide evenly
    # (e.g. rODENet-1+2 needs N ≡ 0 (mod 4)); reject depths where integer
    # division would silently drop executions.
    baseline_executions = (depth - 6) // 2 + 2  # ResNet-N building-block executions
    if spec.total_block_executions != baseline_executions:
        raise ValueError(
            f"depth N={depth} is incompatible with variant {key}: the execution "
            f"budget ({baseline_executions}) cannot be divided evenly across its ODEBlocks"
        )
    return spec


def all_variant_specs(depths: Tuple[int, ...] = SUPPORTED_DEPTHS) -> Dict[str, VariantSpec]:
    """All variant specifications for the requested depths, keyed by full name."""

    specs: Dict[str, VariantSpec] = {}
    for name in VARIANT_NAMES:
        for depth in depths:
            spec = variant_spec(name, depth)
            specs[spec.full_name] = spec
    return specs


def table4_rows(depth: int) -> Dict[str, Dict[str, str]]:
    """Table 4 for a given depth: layer -> {variant -> "stacked / executions"}."""

    rows: Dict[str, Dict[str, str]] = {layer: {} for layer in LAYER_ORDER}
    for name in VARIANT_NAMES:
        spec = variant_spec(name, depth)
        for plan in spec:
            rows[plan.layer][name] = plan.as_table_cell()
    return rows

"""Static description of the paper's CIFAR network (Table 2).

The network processes 32x32x3 images through seven named layer groups:

========== ==================== ======================= =========
name        role                 output size             stride
========== ==================== ======================= =========
conv1       pre-processing       32 x 32, 16 ch          1
layer1      building blocks      32 x 32, 16 ch          1
layer2_1    down-sampling block  16 x 16, 32 ch          2
layer2_2    building blocks      16 x 16, 32 ch          1
layer3_1    down-sampling block  8 x 8, 64 ch            2
layer3_2    building blocks      8 x 8, 64 ch            1
fc          post-processing      100 classes             –
========== ==================== ======================= =========

:class:`LayerGeometry` records the shapes plus derived quantities needed by
the parameter-size model (Table 2 / Figure 5), the execution-time model
(Table 5) and the FPGA hardware model (which only ever sees layer1,
layer2_2 and layer3_2 — the repeated, offloadable blocks).

Parameter-count conventions (reverse-engineered from Table 2 and verified to
reproduce every published kB value exactly — see
``tests/core/test_parameter_model.py``):

* convolutions carry no bias;
* each batch-normalisation contributes ``2 * channels`` parameters (gamma and
  beta);
* a building block used as an **ODEBlock** concatenates the scalar time ``t``
  as one extra input channel to *both* of its convolutions (the standard
  Neural-ODE "ConcatConv" construction), so each conv has ``in_ch + 1`` input
  channels — this is what makes the ODENet layer1 block 19.84 kB instead of
  the plain 18.69 kB;
* the down-sampling blocks layer2_1 / layer3_1 use parameter-free shortcuts
  (subsample + zero-pad channels, "option A" of the original ResNet paper),
  so no projection weights are counted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..fpga.geometry import LAYER1, LAYER2_2, LAYER3_2, BlockGeometry

__all__ = [
    "LayerGeometry",
    "NETWORK_LAYERS",
    "LAYER_ORDER",
    "OFFLOADABLE_LAYER_NAMES",
    "layer_geometry",
    "NUM_CLASSES",
    "INPUT_CHANNELS",
    "INPUT_SIZE",
]

NUM_CLASSES = 100
INPUT_CHANNELS = 3
INPUT_SIZE = 32

#: Scalar ops per output element executed in software around the convolutions
#: of a building block: two batch-norms, one ReLU and the residual addition.
BLOCK_ELEMENTWISE_PASSES = 4

#: For the pre-processing conv1 step: one batch-norm and one ReLU.
CONV1_ELEMENTWISE_PASSES = 2


@dataclass(frozen=True)
class LayerGeometry:
    """Geometry and cost profile of one named layer group."""

    name: str
    kind: str  # "conv", "block", "downsample_block", "fc"
    in_channels: int
    out_channels: int
    out_height: int
    out_width: int
    kernel: int = 3
    stride: int = 1

    # -- derived sizes -------------------------------------------------------

    @property
    def out_elements(self) -> int:
        return self.out_channels * self.out_height * self.out_width

    @property
    def in_height(self) -> int:
        return self.out_height * self.stride

    @property
    def in_width(self) -> int:
        return self.out_width * self.stride

    # -- MAC counts ------------------------------------------------------------

    @property
    def macs(self) -> int:
        """Multiply-accumulates of one execution of this layer group."""

        if self.kind == "conv":
            return self.out_channels * self.in_channels * self.kernel ** 2 * self.out_elements // self.out_channels * 1
        if self.kind in ("block", "downsample_block"):
            k2 = self.kernel ** 2
            conv_a = self.out_channels * self.in_channels * k2 * self.out_height * self.out_width
            conv_b = self.out_channels * self.out_channels * k2 * self.out_height * self.out_width
            return conv_a + conv_b
        if self.kind == "fc":
            return self.in_channels * self.out_channels
        raise ValueError(f"unknown layer kind {self.kind}")

    @property
    def elementwise_passes(self) -> int:
        """Per-output-element scalar passes executed in software."""

        if self.kind == "conv":
            return CONV1_ELEMENTWISE_PASSES
        if self.kind in ("block", "downsample_block"):
            return BLOCK_ELEMENTWISE_PASSES
        if self.kind == "fc":
            return 1  # softmax / pooling bookkeeping
        raise ValueError(f"unknown layer kind {self.kind}")

    # -- parameter counts ---------------------------------------------------------

    def parameter_count(self, as_odeblock: bool = False) -> int:
        """Trainable parameters of one block instance of this layer group.

        ``as_odeblock`` adds the time-concatenation input channel to both
        convolutions (only meaningful for the "block" kinds).
        """

        if self.kind == "conv":
            conv = self.out_channels * self.in_channels * self.kernel ** 2
            bn = 2 * self.out_channels
            return conv + bn
        if self.kind in ("block", "downsample_block"):
            extra = 1 if as_odeblock else 0
            k2 = self.kernel ** 2
            conv_a = self.out_channels * (self.in_channels + extra) * k2
            conv_b = self.out_channels * (self.out_channels + extra) * k2
            bn = 2 * (2 * self.out_channels)
            return conv_a + conv_b + bn
        if self.kind == "fc":
            return self.in_channels * self.out_channels + self.out_channels
        raise ValueError(f"unknown layer kind {self.kind}")

    def parameter_bytes(self, as_odeblock: bool = False, bytes_per_param: int = 4) -> int:
        return self.parameter_count(as_odeblock) * bytes_per_param

    def parameter_kilobytes(self, as_odeblock: bool = False) -> float:
        return self.parameter_bytes(as_odeblock) / 1000.0

    # -- FPGA geometry -------------------------------------------------------------

    def fpga_geometry(self) -> BlockGeometry:
        """The corresponding offloadable block geometry (layer1/2_2/3_2 only)."""

        mapping = {"layer1": LAYER1, "layer2_2": LAYER2_2, "layer3_2": LAYER3_2}
        if self.name not in mapping:
            raise ValueError(f"layer '{self.name}' is not offloadable to the PL part")
        return mapping[self.name]


# Note on conv1 MACs: the expression in `macs` simplifies to
# out_ch*in_ch*k^2*H*W for the "conv" kind; it is written via out_elements to
# keep a single code path for strided layers.
NETWORK_LAYERS: Dict[str, LayerGeometry] = {
    "conv1": LayerGeometry("conv1", "conv", INPUT_CHANNELS, 16, 32, 32, stride=1),
    "layer1": LayerGeometry("layer1", "block", 16, 16, 32, 32, stride=1),
    "layer2_1": LayerGeometry("layer2_1", "downsample_block", 16, 32, 16, 16, stride=2),
    "layer2_2": LayerGeometry("layer2_2", "block", 32, 32, 16, 16, stride=1),
    "layer3_1": LayerGeometry("layer3_1", "downsample_block", 32, 64, 8, 8, stride=2),
    "layer3_2": LayerGeometry("layer3_2", "block", 64, 64, 8, 8, stride=1),
    "fc": LayerGeometry("fc", "fc", 64, NUM_CLASSES, 1, 1, kernel=1),
}

LAYER_ORDER: Tuple[str, ...] = (
    "conv1",
    "layer1",
    "layer2_1",
    "layer2_2",
    "layer3_1",
    "layer3_2",
    "fc",
)

#: Layer groups that can be implemented on the PL part (Section 3.1).
OFFLOADABLE_LAYER_NAMES: Tuple[str, ...] = ("layer1", "layer2_2", "layer3_2")


def layer_geometry(name: str) -> LayerGeometry:
    """Look up a layer group by name."""

    try:
        return NETWORK_LAYERS[name]
    except KeyError as exc:
        raise KeyError(f"unknown layer '{name}'; expected one of {LAYER_ORDER}") from exc

"""Stage 1: screen the full space on the vectorized batch engine.

One :func:`repro.api.batch.sweep_batch` call evaluates every candidate's
analytic design point (~70x faster than looping, cacheable through
:class:`~repro.api.cache.ResultCache`), and this module turns the columnar
table into per-candidate metric dictionaries plus *sound* pruning decisions:

* **Structural metrics** (fabric usage, fits/timing flags, parameter sizes,
  accuracy, board price) are exact at screening for every fidelity — a
  structural constraint violation is a hard prune.
* **Latency metrics**: the analytic no-load latency is a *lower bound* on
  any simulated sojourn time under non-batched dispatch (contention only
  adds).  An upper-bound latency constraint whose bound is already beaten by
  the no-load latency (with a small safety margin) can never become
  feasible, so the candidate is pruned.  Batched dispatch overlaps DMA and
  may beat the no-load figure, so those candidates are never latency-pruned.
* Everything else (simulated energy, throughput under contention, SLO
  fractions) is only decidable at the chosen fidelity and passes through.

Pruning must be conservative: a pruned candidate is asserted infeasible in
the exhaustive reference runs of ``tests/opt`` and ``bench_optimize.py``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..api.batch import BatchResult, sweep_batch
from ..platform import get_board
from .constraints import Constraint
from .space import Candidate, SearchSpace

__all__ = [
    "STRUCTURAL_METRICS",
    "LATENCY_METRICS",
    "METRICS_FOR_FIDELITY",
    "screen_space",
    "analytic_metrics",
    "prune_reason",
]


#: Metrics that are exact at screening time regardless of fidelity: they are
#: functions of the design point alone, never of the traffic.
STRUCTURAL_METRICS: Tuple[str, ...] = (
    "bram", "dsp", "lut", "ff",
    "bram_pct", "dsp_pct", "lut_pct", "ff_pct",
    "fits_device", "meets_timing",
    "param_count", "param_bytes", "accuracy_pct",
    "board_price_usd",
)

#: The latency family: the analytic no-load ``latency_ms`` lower-bounds all
#: of them under non-batched dispatch (sojourn = wait + service >= service).
LATENCY_METRICS: Tuple[str, ...] = (
    "latency_ms", "mean_ms", "p50_ms", "p90_ms", "p95_ms", "p99_ms", "max_ms",
)

#: Analytic-only (single-inference, no traffic) metrics beyond the
#: structural set.
_ANALYTIC_ONLY: Tuple[str, ...] = (
    "latency_ms", "throughput_rps", "energy_per_request_J", "watts",
    "overall_speedup", "speedup_vs_resnet", "energy_ratio",
)

_SIM_ONLY: Tuple[str, ...] = (
    "mean_ms", "p50_ms", "p90_ms", "p95_ms", "p99_ms", "max_ms",
    "throughput_rps", "energy_per_request_J", "total_energy_J", "watts",
    "util_ps", "util_pl", "queue_mean", "slo_violation_fraction",
)

_FLEET_ONLY: Tuple[str, ...] = (
    "mean_ms", "p50_ms", "p90_ms", "p95_ms", "p99_ms", "max_ms",
    "throughput_rps", "energy_per_request_J", "total_energy_J", "watts",
    "rejected_fraction",
)

#: Metric names each evaluation fidelity can produce (structural metrics are
#: always available — they ride along from the screen).
METRICS_FOR_FIDELITY: Dict[str, Tuple[str, ...]] = {
    "analytic": STRUCTURAL_METRICS + _ANALYTIC_ONLY,
    "sim": STRUCTURAL_METRICS + _SIM_ONLY,
    "fleet": STRUCTURAL_METRICS + _FLEET_ONLY,
    "faults": STRUCTURAL_METRICS + _SIM_ONLY + ("expected_slo_violation",),
}

#: Safety margin on the latency lower-bound prune: the differential tests
#: pin contention-free sim within 1% of the analytic figure, so a no-load
#: latency 2% above an upper bound can never simulate under it.
LATENCY_PRUNE_MARGIN = 0.02


def _as_float(value: object) -> Optional[float]:
    if value is None:
        return None
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    out = float(value)
    return None if math.isnan(out) else out


def analytic_metrics(table: BatchResult, i: int) -> Dict[str, Optional[float]]:
    """Row ``i`` of the screening table as the optimizer's metric names."""

    rec = table.record(i)
    total_s = float(rec["total_w_pl_s"])
    out: Dict[str, Optional[float]] = {
        name: _as_float(rec[name])
        for name in STRUCTURAL_METRICS
        if name != "board_price_usd"
    }
    out["board_price_usd"] = _as_float(get_board(str(rec["board"])).price_usd)
    out["latency_ms"] = total_s * 1e3
    out["throughput_rps"] = 1.0 / total_s if total_s > 0 else None
    out["energy_per_request_J"] = _as_float(rec["energy_with_pl_J"])
    out["watts"] = (
        float(rec["energy_with_pl_J"]) / total_s if total_s > 0 else None
    )
    out["overall_speedup"] = _as_float(rec["overall_speedup"])
    out["speedup_vs_resnet"] = _as_float(rec["speedup_vs_resnet"])
    out["energy_ratio"] = _as_float(rec["energy_ratio"])
    return out


def screen_space(
    space: SearchSpace,
    candidates: Sequence[Candidate],
    cache=None,
) -> Tuple[BatchResult, List[Dict[str, Optional[float]]]]:
    """Batch-evaluate every candidate's design point; one metric dict each.

    Candidates that share a design point (serving axes differ) share one
    batch row — the table holds the *unique* design points, and the second
    return value maps each candidate to its analytic metrics.
    """

    scenarios = [space.scenario(c) for c in candidates]
    unique_index: Dict[object, int] = {}
    unique_scenarios = []
    rows: List[int] = []
    for s in scenarios:
        idx = unique_index.get(s)
        if idx is None:
            idx = len(unique_scenarios)
            unique_index[s] = idx
            unique_scenarios.append(s)
        rows.append(idx)
    table = sweep_batch(unique_scenarios, cache=cache)
    per_row = [analytic_metrics(table, i) for i in range(len(table))]
    return table, [per_row[i] for i in rows]


def prune_reason(
    candidate: Candidate,
    analytic: Dict[str, Optional[float]],
    constraints: Sequence[Constraint],
    fidelity: str,
) -> Optional[str]:
    """Why the screen can already rule a candidate out (``None`` = keep).

    Sound for every fidelity: structural constraints are exact here, and
    latency upper bounds use the no-load lower bound with
    :data:`LATENCY_PRUNE_MARGIN` headroom (skipped for batched dispatch,
    which may overlap DMA below the no-load figure).
    """

    for constraint in constraints:
        metric = constraint.metric
        if metric in STRUCTURAL_METRICS:
            if not constraint.satisfied(analytic.get(metric)):
                return f"structural constraint {constraint.spec} (value {analytic.get(metric)})"
        elif fidelity == "analytic":
            if not constraint.satisfied(analytic.get(metric)):
                return f"constraint {constraint.spec} (value {analytic.get(metric)})"
        elif metric in LATENCY_METRICS and constraint.op in ("<=", "<"):
            if candidate.get("policy", "fifo") == "batched":
                continue
            no_load = analytic.get("latency_ms")
            if no_load is not None and no_load > constraint.bound * (1.0 + LATENCY_PRUNE_MARGIN):
                return (
                    f"no-load latency {no_load:.4g} ms already exceeds "
                    f"{constraint.spec} (lower bound on {metric})"
                )
    return None

"""Constraint and objective expressions over the optimizer's metric names.

The CLI-facing grammar is deliberately tiny: a constraint is
``METRIC OP VALUE`` with ``OP`` one of ``<=``, ``>=``, ``<``, ``>``, ``==``
("p99_ms<=5", "watts<2.5", "fits_device==1"); an objective is a bare metric
name minimized by default, or ``min:METRIC`` / ``max:METRIC`` explicitly.
Parsing never consults the evaluation fidelity — syntax errors name the
offending token here (the BramPlan.region error style), and *metric-name*
validation happens in :func:`repro.opt.refine.optimize`, which knows which
metrics the chosen fidelity can produce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

__all__ = ["Constraint", "Objective", "parse_constraint", "parse_objective"]


#: Comparison operators, longest first so "<=" never parses as "<" + "=5".
_OPS: Tuple[str, ...] = ("<=", ">=", "==", "<", ">")


@dataclass(frozen=True)
class Constraint:
    """One bound on a metric: ``metric op bound``."""

    metric: str
    op: str
    bound: float

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown constraint operator '{self.op}'; expected one of {_OPS}")
        if not math.isfinite(self.bound):
            raise ValueError(f"constraint bound must be finite (got {self.bound!r})")

    @property
    def spec(self) -> str:
        return f"{self.metric}{self.op}{self.bound:g}"

    def satisfied(self, value: Optional[float]) -> bool:
        """Whether a metric value meets the bound.

        An unknown value (``None`` or NaN — e.g. ``energy_per_request_J``
        with zero completions) can never *prove* feasibility, so it fails.
        """

        if value is None:
            return False
        value = float(value)
        if math.isnan(value):
            return False
        if self.op == "<=":
            return value <= self.bound
        if self.op == ">=":
            return value >= self.bound
        if self.op == "<":
            return value < self.bound
        if self.op == ">":
            return value > self.bound
        return value == self.bound

    def as_dict(self) -> Dict[str, object]:
        return {"metric": self.metric, "op": self.op, "bound": self.bound}


@dataclass(frozen=True)
class Objective:
    """The scalar objective: one metric, minimized or maximized."""

    metric: str
    maximize: bool = False

    @property
    def spec(self) -> str:
        return f"{'max' if self.maximize else 'min'}:{self.metric}"

    def signed(self, value: Optional[float]) -> Optional[float]:
        """The value on the minimization scale (negated when maximizing)."""

        if value is None:
            return None
        value = float(value)
        if math.isnan(value):
            return None
        return -value if self.maximize else value

    def as_dict(self) -> Dict[str, object]:
        return {"metric": self.metric, "maximize": self.maximize}


def parse_constraint(spec: str) -> Constraint:
    """Parse ``"p99_ms<=5"`` into a :class:`Constraint`.

    Malformed specs raise :class:`ValueError` naming the offending token, so
    the CLI surfaces them as clean exit-2 errors.
    """

    text = str(spec).strip()
    for op in _OPS:
        if op in text:
            metric, _, bound_text = text.partition(op)
            metric = metric.strip()
            bound_text = bound_text.strip()
            if not metric:
                raise ValueError(
                    f"bad constraint '{spec}': missing metric name before '{op}'"
                )
            if any(o in metric for o in _OPS) or any(o in bound_text for o in _OPS):
                raise ValueError(
                    f"bad constraint '{spec}': more than one comparison operator"
                )
            try:
                bound = float(bound_text)
            except ValueError:
                raise ValueError(
                    f"bad constraint '{spec}': bound '{bound_text}' is not a number"
                ) from None
            return Constraint(metric=metric, op=op, bound=bound)
    raise ValueError(
        f"bad constraint '{spec}': expected METRIC OP VALUE with OP one of "
        f"{', '.join(_OPS)} (e.g. 'p99_ms<=5')"
    )


def parse_objective(spec: str) -> Objective:
    """Parse ``"watts"`` / ``"min:watts"`` / ``"max:throughput_rps"``."""

    text = str(spec).strip()
    if ":" in text:
        direction, _, metric = text.partition(":")
        direction = direction.strip().lower()
        metric = metric.strip()
        if direction not in ("min", "max"):
            raise ValueError(
                f"bad objective '{spec}': direction '{direction}' must be 'min' or 'max'"
            )
        if not metric:
            raise ValueError(f"bad objective '{spec}': missing metric name after ':'")
        return Objective(metric=metric, maximize=direction == "max")
    if not text:
        raise ValueError("bad objective '': empty metric name")
    if any(op in text for op in _OPS):
        raise ValueError(
            f"bad objective '{spec}': comparison operators belong in --constraint"
        )
    return Objective(metric=text)

"""The declarative :class:`SearchSpace`: joint discrete axes over the design
and serving knobs.

A search space is the optimizer's input contract: a mapping of axis names to
candidate values (``board``, ``qformat``, ``depth``, ``policy`` ... plus the
integer serving axes ``replicas``, ``batch_size``, ``cells``) and a ``fixed``
mapping for every knob that is *not* searched (the offered traffic, the SLO,
the PL clock).  It enumerates deterministically — axes in canonical order,
values in the order given — so every optimizer run visits candidates in the
same sequence and per-candidate seeds are stable.

A :class:`Candidate` is one joint assignment, frozen and hashable, with a
stable string ``key`` ("board=PYNQ-Z2|n_units=16|qformat=16:8") that names it
in reports, caches and seed derivations.  The space also knows how to realise
a candidate at every evaluation fidelity: :meth:`SearchSpace.scenario` (the
analytic design point), :meth:`SearchSpace.sim_scenario` (one board under
traffic) and :meth:`SearchSpace.fleet_scenario` (a cluster of ``count``
boards of the candidate's type).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..api.scenario import Scenario
from ..fixedpoint.qformat import QFormat
from ..fleet.cluster import BoardGroup, FleetScenario, canonical_board
from ..ode.solvers import available_methods
from ..platform import PYNQ_Z2
from ..sim.policies import POLICY_NAMES
from ..sim.scenario import SimScenario

__all__ = ["AXIS_ORDER", "Candidate", "SearchSpace"]


#: Canonical axis order: design knobs first, then the serving-system knobs.
#: Enumeration nests in this order (first axis outermost), so candidate
#: sequences — and therefore per-candidate seeds and tie-breaks — are stable.
AXIS_ORDER: Tuple[str, ...] = (
    "model",
    "depth",
    "n_units",
    "qformat",
    "solver",
    "board",
    "replicas",
    "policy",
    "batch_size",
    "cells",
)

#: Axes that only exist for serving fidelities (sim / fleet / faults); the
#: analytic design point ignores them.
SERVING_AXES: Tuple[str, ...] = ("replicas", "policy", "batch_size", "cells")

#: Fixed (non-searched) knobs a space accepts.  Design knobs flow into every
#: scenario; traffic/system knobs only into the serving fidelities; ``count``
#: is the fleet inventory size (boards of the candidate's type per cell set).
FIXED_KEYS: Tuple[str, ...] = (
    "pl_clock_hz",
    "arrival",
    "arrival_rate_hz",
    "n_requests",
    "duration_s",
    "slo_s",
    "warmup_s",
    "ps_cores",
    "dma_channels",
    "exact",
    "count",
    "routing",
    "admission",
)

#: Fixed knobs that are part of the analytic design point.
_DESIGN_FIXED: Tuple[str, ...] = ("pl_clock_hz",)

#: Fixed knobs forwarded to :class:`SimScenario` (beyond the design point).
_SIM_FIXED: Tuple[str, ...] = (
    "arrival", "arrival_rate_hz", "n_requests", "duration_s", "slo_s",
    "warmup_s", "ps_cores", "dma_channels", "exact",
)

#: Fixed knobs forwarded to :class:`FleetScenario`.
_FLEET_FIXED: Tuple[str, ...] = (
    "arrival", "arrival_rate_hz", "n_requests", "duration_s", "slo_s",
    "routing", "admission", "ps_cores", "dma_channels", "exact",
)


def _axis_value_str(name: str, value: object) -> str:
    """Render one axis value for candidate keys ("qformat" -> "16:8")."""

    if name == "qformat":
        wl, fb = value  # type: ignore[misc]
        return f"{wl}:{fb}"
    return str(value)


@dataclass(frozen=True)
class Candidate:
    """One joint axis assignment (frozen, hashable, canonically ordered)."""

    values: Tuple[Tuple[str, object], ...]

    @property
    def key(self) -> str:
        """Stable string identity: "axis=value|axis=value" in canonical order.

        This is the candidate's name everywhere — report rows, tie-breaking,
        and the entropy fed into the per-candidate RNG stream.
        """

        return "|".join(f"{n}={_axis_value_str(n, v)}" for n, v in self.values)

    def get(self, name: str, default: object = None) -> object:
        for n, v in self.values:
            if n == name:
                return v
        return default

    def as_dict(self) -> Dict[str, object]:
        """The assignment as a plain dict (qformat rendered "WL:FB")."""

        return {n: _axis_value_str(n, v) if n == "qformat" else v for n, v in self.values}


def _validate_axis(name: str, values: Sequence[object]) -> Tuple[object, ...]:
    """Eagerly validate one axis's values (fail at construction, not mid-run)."""

    if not len(values):
        raise ValueError(f"axis '{name}' has no values")
    out: List[object] = []
    for value in values:
        if name == "qformat":
            if isinstance(value, str):
                wl, _, fb = value.partition(":")
                if not _:
                    raise ValueError(
                        f"axis 'qformat' value '{value}' must be 'WL:FB' (e.g. '16:8')"
                    )
            else:
                wl, fb = value  # raises on a malformed pair
            QFormat(int(wl), int(fb))
            value = (int(wl), int(fb))
        elif name in ("depth", "n_units", "batch_size", "cells"):
            if not isinstance(value, int) or value < 1:
                raise ValueError(
                    f"axis '{name}' values must be positive integers (got {value!r})"
                )
        elif name == "replicas":
            if not isinstance(value, int) or value < 0:
                raise ValueError(
                    f"axis 'replicas' values must be non-negative integers "
                    f"(0 = auto-size; got {value!r})"
                )
        elif name == "policy":
            if value not in POLICY_NAMES:
                raise ValueError(
                    f"axis 'policy' value '{value}' unknown; expected one of {POLICY_NAMES}"
                )
        elif name == "solver":
            if str(value).lower() not in available_methods():
                raise ValueError(
                    f"axis 'solver' value '{value}' unknown; "
                    f"available: {', '.join(available_methods())}"
                )
            value = str(value).lower()
        elif name == "board":
            value = canonical_board(str(value))
        if value in out:
            raise ValueError(f"axis '{name}' repeats value {value!r}")
        out.append(value)
    return tuple(out)


class SearchSpace:
    """Joint discrete axes plus the fixed knobs of every realised scenario.

    >>> space = SearchSpace(
    ...     axes={"board": ["PYNQ-Z2", "ZCU104"], "qformat": [(32, 20), (16, 8)]},
    ...     fixed={"arrival": "deterministic", "arrival_rate_hz": 5.0,
    ...            "n_requests": 200},
    ... )
    >>> space.size
    4

    Unknown axis names, empty/duplicate axis values, and unknown fixed keys
    all raise :class:`ValueError` at construction.
    """

    def __init__(
        self,
        axes: Mapping[str, Sequence[object]],
        fixed: Optional[Mapping[str, object]] = None,
    ) -> None:
        if not axes:
            raise ValueError("a search space needs at least one axis")
        unknown = [name for name in axes if name not in AXIS_ORDER]
        if unknown:
            raise ValueError(
                f"unknown axis '{unknown[0]}'; known axes: {', '.join(AXIS_ORDER)}"
            )
        self.axes: Dict[str, Tuple[object, ...]] = {
            name: _validate_axis(name, list(axes[name])) for name in AXIS_ORDER if name in axes
        }
        fixed = dict(fixed or {})
        bad = [key for key in fixed if key not in FIXED_KEYS]
        if bad:
            raise ValueError(
                f"unknown fixed knob '{bad[0]}'; known: {', '.join(FIXED_KEYS)}"
            )
        clash = [key for key in fixed if key in self.axes]
        if clash:
            raise ValueError(f"'{clash[0]}' is both an axis and a fixed knob")
        self.fixed: Dict[str, object] = fixed
        # Fail fast on an unsatisfiable joint assignment: the first candidate
        # exercises Scenario validation for the fixed design knobs.
        self.scenario(self.candidates()[0])

    # -- enumeration -------------------------------------------------------------------

    @property
    def axis_names(self) -> Tuple[str, ...]:
        return tuple(self.axes)

    @property
    def size(self) -> int:
        out = 1
        for values in self.axes.values():
            out *= len(values)
        return out

    def candidates(self) -> List[Candidate]:
        """Every candidate, in deterministic nested-loop order."""

        names = list(self.axes)
        return [
            Candidate(values=tuple(zip(names, combo)))
            for combo in itertools.product(*(self.axes[n] for n in names))
        ]

    def neighbors(self, candidate: Candidate) -> List[Candidate]:
        """Candidates one step away along exactly one axis (±1 value index).

        The local-search move set: deterministic order (axes in canonical
        order, minus-step before plus-step), so a neighborhood walk is
        reproducible.
        """

        assignment = dict(candidate.values)
        out: List[Candidate] = []
        for name, values in self.axes.items():
            idx = values.index(assignment[name])
            for step in (-1, 1):
                j = idx + step
                if 0 <= j < len(values):
                    moved = dict(assignment)
                    moved[name] = values[j]
                    out.append(Candidate(values=tuple((n, moved[n]) for n in self.axes)))
        return out

    # -- candidate -> scenario builders ------------------------------------------------

    def _design_kwargs(self, candidate: Candidate) -> Dict[str, object]:
        kwargs: Dict[str, object] = {}
        for name in ("model", "depth", "n_units", "solver", "board"):
            value = candidate.get(name)
            if value is not None:
                kwargs[name] = value
        qf = candidate.get("qformat")
        if qf is not None:
            kwargs["word_length"], kwargs["fraction_bits"] = qf
        for key in _DESIGN_FIXED:
            if key in self.fixed:
                kwargs[key] = self.fixed[key]
        return kwargs

    def scenario(self, candidate: Candidate) -> Scenario:
        """The candidate's analytic design point (serving axes ignored)."""

        return Scenario(**self._design_kwargs(candidate))

    def _scale_stop(self, kwargs: Dict[str, object], fraction: float, default_n: int) -> None:
        """Scale the run's stop condition by ``fraction`` (halving rungs)."""

        if fraction >= 1.0:
            if "n_requests" not in kwargs and "duration_s" not in kwargs:
                kwargs["n_requests"] = default_n
            return
        if "n_requests" in kwargs and kwargs["n_requests"] is not None:
            kwargs["n_requests"] = max(1, int(round(kwargs["n_requests"] * fraction)))
        elif "duration_s" in kwargs and kwargs["duration_s"] is not None:
            kwargs["duration_s"] = kwargs["duration_s"] * fraction
        else:
            kwargs["n_requests"] = max(1, int(round(default_n * fraction)))

    def sim_scenario(
        self, candidate: Candidate, seed: int = 0, fraction: float = 1.0
    ) -> SimScenario:
        """The candidate under the space's traffic, on one board.

        ``fraction`` scales the stop condition (``n_requests`` or
        ``duration_s``) — the successive-halving rung lengths.  ``seed`` is
        the per-candidate stream the optimizer derives; it never comes from
        the fixed knobs.
        """

        kwargs = self._design_kwargs(candidate)
        for key in _SIM_FIXED:
            if key in self.fixed:
                kwargs[key] = self.fixed[key]
        for name in ("replicas", "policy", "batch_size"):
            value = candidate.get(name)
            if value is not None:
                kwargs[name] = value
        self._scale_stop(kwargs, fraction, default_n=100)
        return SimScenario(seed=seed, **kwargs)

    def fleet_scenario(
        self, candidate: Candidate, seed: int = 0, fraction: float = 1.0
    ) -> FleetScenario:
        """The candidate as a homogeneous fleet of ``fixed["count"]`` boards."""

        design = self._design_kwargs(candidate)
        board = design.pop("board", PYNQ_Z2.name)
        design.pop("pl_clock_hz", None)  # FleetScenario has no PL-clock override
        count = int(self.fixed.get("count", 1))
        kwargs: Dict[str, object] = dict(design)
        for key in _FLEET_FIXED:
            if key in self.fixed:
                kwargs[key] = self.fixed[key]
        for name in ("replicas", "policy", "batch_size", "cells"):
            value = candidate.get(name)
            if value is not None:
                kwargs[name] = value
        self._scale_stop(kwargs, fraction, default_n=1000)
        return FleetScenario(boards=(BoardGroup(board, count),), seed=seed, **kwargs)

    # -- serialisation -----------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "axes": {
                name: [_axis_value_str(name, v) if name == "qformat" else v for v in values]
                for name, values in self.axes.items()
            },
            "fixed": dict(self.fixed),
            "size": self.size,
        }

"""The :class:`OptReport`: full provenance of one optimizer run.

Search results are only trustworthy when every candidate's fate is
accounted for, so the report is a *trace*, not just a winner: one record per
candidate (in enumeration order) with the stage it reached, its status, why
it was pruned or halved, the budget it consumed and every metric known about
it.  ``best`` is the constrained optimum (or ``None`` with a ``note`` line
when the whole space is infeasible — JSON null semantics, never an
exception), and Pareto fronts over the fully-evaluated candidates reuse
:func:`repro.api.batch.pareto_indices`.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis import format_records
from ..api.batch import BatchResult, pareto_indices
from ..sim.metrics import _json_safe

__all__ = ["CandidateRecord", "OptReport"]


#: Candidate statuses, in the order they are decided.
STATUSES: Tuple[str, ...] = (
    "pruned",      # ruled out at screening (structural / latency lower bound)
    "halved",      # killed on a successive-halving rung
    "skipped",     # never evaluated: the budget ran out first
    "infeasible",  # fully evaluated; a constraint fails at full fidelity
    "feasible",    # fully evaluated; all constraints hold
    "best",        # the feasible candidate with the optimal objective
)


@dataclass
class CandidateRecord:
    """One candidate's fate: stage reached, status, cost, metrics."""

    key: str
    values: Dict[str, object]
    stage: str              # "screen" | "halving" | "final" | "neighborhood"
    status: str
    reason: Optional[str]   # why pruned / halved / skipped (None otherwise)
    cost: float             # budget units consumed by this candidate
    objective: Optional[float]
    feasible: Optional[bool]
    metrics: Dict[str, Optional[float]]
    rungs: List[Dict[str, object]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "values": dict(self.values),
            "stage": self.stage,
            "status": self.status,
            "reason": self.reason,
            "cost": self.cost,
            "objective": self.objective,
            "feasible": self.feasible,
            "metrics": dict(self.metrics),
            "rungs": [dict(r) for r in self.rungs],
        }


@dataclass
class OptReport:
    """The full outcome of one :func:`repro.opt.optimize` run."""

    fidelity: str
    objective: Dict[str, object]
    constraints: List[Dict[str, object]]
    seed: int
    space: Dict[str, object]
    budget: float
    budget_spent: float
    evaluations: int
    candidates: List[CandidateRecord]
    best: Optional[Dict[str, object]]
    note: Optional[str] = None
    #: The screening table over the unique design points (not serialised) —
    #: ``pareto_fronts`` and any column math stay available downstream.
    screen: Optional[BatchResult] = field(default=None, repr=False, compare=False)

    # -- views -------------------------------------------------------------------------

    def by_status(self, status: str) -> List[CandidateRecord]:
        return [c for c in self.candidates if c.status == status]

    def evaluated(self) -> List[CandidateRecord]:
        """Candidates with full-fidelity metrics (feasible/infeasible/best)."""

        return [c for c in self.candidates if c.status in ("feasible", "infeasible", "best")]

    def pareto_front(
        self,
        x: str,
        y: str,
        maximize_x: bool = False,
        maximize_y: bool = False,
    ) -> List[CandidateRecord]:
        """Undominated fully-evaluated candidates over metrics ``x``, ``y``."""

        records = [
            c for c in self.evaluated()
            if c.metrics.get(x) is not None and c.metrics.get(y) is not None
        ]
        if not records:
            return []
        idx = pareto_indices(
            [c.metrics[x] for c in records],
            [c.metrics[y] for c in records],
            maximize_x=maximize_x,
            maximize_y=maximize_y,
        )
        return [records[i] for i in idx]

    # -- serialisation -----------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "fidelity": self.fidelity,
            "objective": dict(self.objective),
            "constraints": [dict(c) for c in self.constraints],
            "seed": self.seed,
            "space": dict(self.space),
            "budget": self.budget,
            "budget_spent": self.budget_spent,
            "evaluations": self.evaluations,
            "best": dict(self.best) if self.best is not None else None,
            "candidates": [c.as_dict() for c in self.candidates],
        }
        if self.note is not None:
            out["note"] = self.note
        return _json_safe(out)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def _trace_rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for c in self.candidates:
            row: Dict[str, object] = dict(c.values)
            row.update(
                {
                    "stage": c.stage,
                    "status": c.status,
                    "cost": round(c.cost, 6),
                    "objective": c.objective,
                    "feasible": c.feasible,
                    "reason": c.reason or "",
                }
            )
            rows.append(row)
        return rows

    def to_csv(self) -> str:
        """Header + one trace row per candidate (enumeration order)."""

        rows = self._trace_rows()
        if not rows:
            return ""
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(list(rows[0].keys()))
        for row in rows:
            writer.writerow(list(row.values()))
        return buf.getvalue().rstrip("\n")

    def render(self) -> str:
        """Multi-section plain text (the ``optimize`` subcommand output)."""

        obj = self.objective
        direction = "max" if obj.get("maximize") else "min"
        lines: List[str] = [
            f"Constrained search: {direction}:{obj['metric']} over "
            f"{self.space['size']} candidates "
            f"({', '.join(self.space['axes'])}) at fidelity={self.fidelity}"
        ]
        if self.constraints:
            specs = ", ".join(
                f"{c['metric']}{c['op']}{c['bound']:g}" for c in self.constraints
            )
            lines.append(f"[constraints] {specs}")
        counts: Dict[str, int] = {}
        for c in self.candidates:
            counts[c.status] = counts.get(c.status, 0) + 1
        summary = ", ".join(f"{counts[s]} {s}" for s in STATUSES if s in counts)
        lines.append(
            f"[budget] spent {self.budget_spent:.3g} of {self.budget:.3g} "
            f"full-evaluation units ({self.evaluations} evaluation(s)); {summary}"
        )
        if self.best is not None:
            lines.append("[best]")
            for name, value in self.best["values"].items():
                lines.append(f"  {name:<18}: {value}")
            lines.append(f"  {'objective':<18}: {self.best['objective']:.6g}")
            shown = [
                (k, v) for k, v in self.best["metrics"].items() if v is not None
            ]
            lines.append("[best metrics]")
            for k, v in shown:
                lines.append(f"  {k:<18}: {v:.6g}")
        else:
            lines.append(f"[note] {self.note or 'no feasible candidate'}")
        evaluated = self.evaluated()
        if evaluated:
            rows = []
            sign = -1.0 if obj.get("maximize") else 1.0
            for c in sorted(
                evaluated,
                key=lambda c: (
                    c.objective is None,
                    sign * c.objective if c.objective is not None else 0.0,
                    c.key,
                ),
            ):
                row = dict(c.values)
                row["status"] = c.status
                row["objective"] = (
                    f"{c.objective:.6g}" if c.objective is not None else "n/a"
                )
                rows.append(row)
            lines.append("")
            lines.append(
                format_records(rows, title=f"Fully evaluated candidates ({len(rows)})")
            )
        return "\n".join(lines)

"""repro.opt — constrained design-space optimization: search, not sweep.

The sweep machinery answers "what does every point look like?"; this package
answers "which point should I build?" without paying for the whole grid.  A
declarative :class:`SearchSpace` enumerates candidates, stage 1 screens all
of them on the vectorized batch engine (structural and latency-lower-bound
violations are pruned for free), and stage 2 refines the survivors with
short, seeded simulation runs — successive halving plus a local neighborhood
walk — under an explicit budget in full-evaluation units.  The result is an
:class:`OptReport` carrying the constrained optimum *and* the full
provenance trace: every candidate, the stage it reached, and why it was
pruned.  Surfaced as :func:`repro.api.optimize` and the ``optimize`` CLI
subcommand.
"""

from .constraints import Constraint, Objective, parse_constraint, parse_objective
from .refine import FIDELITY_NAMES, RUNG_FRACTIONS, candidate_seeds, optimize
from .report import CandidateRecord, OptReport
from .screen import (
    LATENCY_METRICS,
    METRICS_FOR_FIDELITY,
    STRUCTURAL_METRICS,
    analytic_metrics,
    prune_reason,
    screen_space,
)
from .space import AXIS_ORDER, Candidate, SearchSpace

__all__ = [
    "AXIS_ORDER",
    "Candidate",
    "CandidateRecord",
    "Constraint",
    "FIDELITY_NAMES",
    "LATENCY_METRICS",
    "METRICS_FOR_FIDELITY",
    "Objective",
    "OptReport",
    "RUNG_FRACTIONS",
    "STRUCTURAL_METRICS",
    "SearchSpace",
    "analytic_metrics",
    "candidate_seeds",
    "optimize",
    "parse_constraint",
    "parse_objective",
    "prune_reason",
    "screen_space",
]

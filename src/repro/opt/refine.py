"""Stage 2 and the :func:`optimize` driver: search, not sweep.

The two-stage engine over a :class:`~repro.opt.space.SearchSpace`:

1. **Screen** the full space on the vectorized batch engine
   (:mod:`repro.opt.screen`): structural constraint violations and
   latency-lower-bound violations are pruned for free.
2. **Refine** the survivors with short, seeded simulation runs —
   successive halving (rungs at 1/4, 1/2 and the full run length; the
   worse half dies at each rung) followed by a local neighborhood walk
   around the incumbent at full fidelity.

The evaluation budget is denominated in **full-evaluation units**: one unit
is one full-length run at the chosen fidelity (a ``simulate`` run, a
``simulate_fleet`` run, or a whole ``run_fmea`` study), and a rung at a
quarter of the run length costs 0.25.  An exhaustive search costs
``space.size`` units; the default budget is 20% of that (never less than
one full evaluation).  When the survivor
set is small enough to evaluate exhaustively within the halving share of
the budget, halving is skipped and every survivor runs at full length —
which is what makes ``fidelity="analytic"``-style exactness carry over to
small spaces at sim fidelity.

Determinism: every candidate owns an RNG stream derived as
``default_rng((seed, sha256(candidate.key)))`` — independent of enumeration
order, worker count and rung — and all tie-breaking (halving ranks, best
selection) falls back to the candidate key.  Seeded runs are bit-identical
for any ``workers`` value.
"""

from __future__ import annotations

import hashlib
import math
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..api.evaluator import Evaluator
from .constraints import Constraint, Objective, parse_constraint, parse_objective
from .report import CandidateRecord, OptReport
from .screen import (
    LATENCY_METRICS,
    METRICS_FOR_FIDELITY,
    STRUCTURAL_METRICS,
    prune_reason,
    screen_space,
)
from .space import Candidate, SearchSpace

__all__ = ["FIDELITY_NAMES", "RUNG_FRACTIONS", "candidate_seeds", "optimize"]


#: Evaluation fidelities, cheapest first.
FIDELITY_NAMES: Tuple[str, ...] = ("analytic", "sim", "fleet", "faults")

#: Successive-halving rung lengths as fractions of the full run.
RUNG_FRACTIONS: Tuple[float, ...] = (0.25, 0.5, 1.0)

#: Share of the budget reserved for the neighborhood walk after halving.
_NEIGHBORHOOD_SHARE = 0.2


def candidate_seeds(seed: int, key: str) -> Tuple[int, int]:
    """The candidate's (sim seed, fault seed): a deterministic pure function
    of the run seed and the candidate key.

    The key is hashed into integer entropy and spawned through
    ``default_rng((seed, entropy))``, so streams are independent across
    candidates, stable across enumeration-order changes, and identical for
    any worker count.
    """

    entropy = int.from_bytes(hashlib.sha256(key.encode("utf-8")).digest()[:8], "big")
    rng = np.random.default_rng((int(seed) & 0xFFFFFFFFFFFFFFFF, entropy))
    pair = rng.integers(0, 2**31 - 1, size=2)
    return int(pair[0]), int(pair[1])


def _clean(value: object) -> Optional[float]:
    if value is None:
        return None
    out = float(value)
    return None if math.isnan(out) else out


def _sim_metrics(report) -> Dict[str, Optional[float]]:
    """A :class:`~repro.sim.metrics.SimReport` as optimizer metric names."""

    lat = report.latency
    out: Dict[str, Optional[float]] = {
        "mean_ms": _clean(lat.mean * 1e3 if lat.count else None),
        "max_ms": _clean(lat.maximum * 1e3 if lat.count else None),
        "throughput_rps": _clean(report.throughput_rps),
        "energy_per_request_J": _clean(report.energy.get("energy_per_request_J")),
        "total_energy_J": _clean(report.energy.get("total_energy_J")),
        "watts": _clean(report.energy.get("average_power_W")),
        "util_ps": _clean(report.utilization.get("ps")),
        "util_pl": _clean(report.utilization.get("accelerator_mean")),
        "queue_mean": _clean(report.queue.get("mean_depth")),
    }
    for q, value in lat.percentiles.items():
        out[f"p{q}_ms"] = _clean(value * 1e3 if lat.count else None)
    if report.slo is not None:
        out["slo_violation_fraction"] = _clean(report.slo.get("violation_fraction"))
    return out


def _fleet_metrics(report) -> Dict[str, Optional[float]]:
    """A :class:`~repro.fleet.report.FleetReport` as optimizer metric names."""

    lat = report.latency
    offered = report.requests.get("offered", 0)
    out: Dict[str, Optional[float]] = {
        "mean_ms": _clean(lat.mean * 1e3 if lat.count else None),
        "max_ms": _clean(lat.maximum * 1e3 if lat.count else None),
        "throughput_rps": _clean(report.throughput_rps),
        "energy_per_request_J": _clean(report.energy.get("energy_per_request_J")),
        "total_energy_J": _clean(report.energy.get("total_energy_J")),
        "watts": _clean(report.energy.get("average_power_W")),
        "rejected_fraction": _clean(
            report.requests.get("rejected", 0) / offered if offered else None
        ),
    }
    for q, value in lat.percentiles.items():
        out[f"p{q}_ms"] = _clean(value * 1e3 if lat.count else None)
    return out


def _evaluate_payload(payload) -> Dict[str, Optional[float]]:
    """Evaluate one (fidelity, scenario, faults...) payload.

    Module-level so a :class:`ProcessPoolExecutor` can pickle it; each pool
    worker builds its own :class:`Evaluator` (pure memoization — results are
    identical to the inline path).
    """

    fidelity, scenario, modes, fault_samples, fault_seed = payload
    return _evaluate_scenario(fidelity, scenario, Evaluator(), modes, fault_samples, fault_seed)


def _evaluate_scenario(
    fidelity: str,
    scenario,
    evaluator: Evaluator,
    modes,
    fault_samples: int,
    fault_seed: int,
) -> Dict[str, Optional[float]]:
    if fidelity == "fleet":
        from ..fleet import simulate_fleet

        return _fleet_metrics(simulate_fleet(scenario, evaluator=evaluator))
    from ..sim import simulate

    if fidelity == "faults":
        from ..faults import run_fmea

        study = run_fmea(
            scenario,
            modes,
            evaluator=evaluator,
            n_samples=fault_samples,
            fault_seed=fault_seed,
        )
        out = _sim_metrics(study.nominal)
        out["expected_slo_violation"] = _clean(study.expected_slo_violation)
        return out
    return _sim_metrics(simulate(scenario, evaluator=evaluator))


#: Analytic proxies used only to *order* survivors for rung-0 admission
#: (never to prune): which analytic metric approximates each sim metric.
_PROXY_OF: Dict[str, str] = {
    **{name: "latency_ms" for name in LATENCY_METRICS},
    "energy_per_request_J": "energy_per_request_J",
    "total_energy_J": "energy_per_request_J",
    "watts": "watts",
    "throughput_rps": "throughput_rps",
}


class _Search:
    """One optimize() run's mutable state (records, budget, evaluation fan-out)."""

    def __init__(
        self,
        space: SearchSpace,
        objective: Objective,
        constraints: Sequence[Constraint],
        fidelity: str,
        budget: float,
        seed: int,
        workers: int,
        evaluator: Evaluator,
        modes,
        fault_samples: int,
    ) -> None:
        self.space = space
        self.objective = objective
        self.constraints = list(constraints)
        self.fidelity = fidelity
        self.budget = budget
        self.seed = seed
        self.workers = workers
        self.evaluator = evaluator
        self.modes = modes
        self.fault_samples = fault_samples
        self.spent = 0.0
        self.evaluations = 0
        self.candidates = space.candidates()
        self.index = {c.key: i for i, c in enumerate(self.candidates)}
        self.records: List[CandidateRecord] = []

    # -- budget ------------------------------------------------------------------------

    def affordable(self, cost: float) -> bool:
        return self.spent + cost <= self.budget + 1e-9

    # -- evaluation fan-out ------------------------------------------------------------

    def _payload(self, candidate: Candidate, fraction: float):
        sim_seed, fault_seed = candidate_seeds(self.seed, candidate.key)
        if self.fidelity == "fleet":
            scenario = self.space.fleet_scenario(candidate, seed=sim_seed, fraction=fraction)
        else:
            scenario = self.space.sim_scenario(candidate, seed=sim_seed, fraction=fraction)
        return (self.fidelity, scenario, self.modes, self.fault_samples, fault_seed)

    def evaluate(
        self, cohort: Sequence[Candidate], fraction: float
    ) -> List[Dict[str, Optional[float]]]:
        """Evaluate a cohort at one rung length, charging the budget.

        Results come back in cohort order whether they ran inline or over a
        process pool, so the worker count never changes the outcome.
        """

        payloads = [self._payload(c, fraction) for c in cohort]
        if self.workers > 1 and len(payloads) > 1:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                results = list(pool.map(_evaluate_payload, payloads))
        else:
            results = [
                _evaluate_scenario(
                    self.fidelity, scenario, self.evaluator, modes, samples, fault_seed
                )
                for (_, scenario, modes, samples, fault_seed) in payloads
            ]
        for candidate, metrics in zip(cohort, results):
            record = self.records[self.index[candidate.key]]
            record.cost += fraction
            record.rungs.append(
                {
                    "fraction": fraction,
                    "objective": metrics.get(self.objective.metric),
                    "metrics": dict(metrics),
                }
            )
            self.spent += fraction
            self.evaluations += 1
        return results

    # -- ranking -----------------------------------------------------------------------

    def rank_key(self, feasible: bool, value: Optional[float], key: str):
        signed = self.objective.signed(value)
        return (not feasible, signed is None, signed if signed is not None else 0.0, key)

    def finalize(self, candidate: Candidate, metrics: Dict[str, Optional[float]], stage: str) -> None:
        """Install a full-length evaluation as the candidate's final word."""

        record = self.records[self.index[candidate.key]]
        merged = dict(record.metrics)
        merged.update(metrics)
        record.metrics = merged
        record.stage = stage
        value = merged.get(self.objective.metric)
        feasible = all(c.satisfied(merged.get(c.metric)) for c in self.constraints)
        record.objective = _clean(value)
        if feasible and record.objective is None:
            feasible = False
            record.reason = f"objective {self.objective.metric} undefined on this run"
        record.feasible = feasible
        record.status = "feasible" if feasible else "infeasible"


def _halving_cost(cohort: int) -> float:
    """Budget units consumed by a full halving schedule over ``cohort``."""

    cost = 0.0
    n = cohort
    for i, fraction in enumerate(RUNG_FRACTIONS):
        cost += fraction * n
        if i < len(RUNG_FRACTIONS) - 1:
            n = max(1, n // 2)
    return cost


def _resolve_objective(objective: Union[str, Objective]) -> Objective:
    return objective if isinstance(objective, Objective) else parse_objective(objective)


def _resolve_constraints(
    constraints: Sequence[Union[str, Constraint]]
) -> List[Constraint]:
    return [
        c if isinstance(c, Constraint) else parse_constraint(c) for c in constraints
    ]


def optimize(
    space: SearchSpace,
    objective: Union[str, Objective],
    constraints: Sequence[Union[str, Constraint]] = (),
    fidelity: str = "analytic",
    budget: Optional[float] = None,
    seed: int = 0,
    cache=None,
    workers: int = 1,
    evaluator: Optional[Evaluator] = None,
    faults: Optional[Sequence[object]] = None,
    fault_samples: int = 3,
) -> OptReport:
    """Find the constrained optimum of a search space — search, not sweep.

    Parameters
    ----------
    space:
        The :class:`~repro.opt.space.SearchSpace` to search.
    objective:
        Metric to optimize: ``"watts"``, ``"min:p99_ms"``, ``"max:throughput_rps"``
        or an :class:`~repro.opt.constraints.Objective`.
    constraints:
        Bounds every acceptable candidate must meet: ``"p99_ms<=5"`` strings
        or :class:`~repro.opt.constraints.Constraint` objects.
    fidelity:
        What one evaluation is: ``"analytic"`` (the batch engine row — the
        whole space is evaluated exactly and the result *is* the
        exhaustive constrained optimum), ``"sim"`` (one
        :func:`repro.sim.simulate` run), ``"fleet"`` (one
        :func:`repro.fleet.simulate_fleet` run of ``fixed["count"]``
        boards), or ``"faults"`` (one :func:`repro.faults.run_fmea` study;
        the metric set gains ``expected_slo_violation``).
    budget:
        Evaluation budget in full-evaluation units (one unit = one
        full-length run at the chosen fidelity; a quarter-length halving
        rung costs 0.25).  Default: 20% of the exhaustive budget
        (``max(1.0, 0.2 * space.size)``).  Ignored at analytic fidelity, where the
        screen already evaluates everything.
    seed:
        Run seed.  Each candidate's runs draw from
        ``default_rng((seed, sha256(candidate.key)))`` — bit-identical
        reruns for any worker count.
    cache:
        Optional :class:`~repro.api.cache.ResultCache` for the screening
        sweep.
    workers:
        Process-pool width for stage-2 evaluations (1 = inline).
    faults:
        Fault modes for ``fidelity="faults"``: ``KIND[:RATE[:PARAM]]`` spec
        strings or :class:`~repro.faults.FaultMode` objects (default: the
        whole registered domain).
    fault_samples:
        Injection-time samples per mode (``fidelity="faults"``).
    """

    obj = _resolve_objective(objective)
    cons = _resolve_constraints(constraints)
    if fidelity not in FIDELITY_NAMES:
        raise ValueError(
            f"unknown fidelity '{fidelity}'; expected one of {FIDELITY_NAMES}"
        )
    known = METRICS_FOR_FIDELITY[fidelity]
    for metric, where in [(obj.metric, f"objective '{obj.spec}'")] + [
        (c.metric, f"constraint '{c.spec}'") for c in cons
    ]:
        if metric not in known:
            raise ValueError(
                f"unknown metric '{metric}' in {where}; metrics at "
                f"fidelity={fidelity}: {', '.join(known)}"
            )
    referenced = {obj.metric} | {c.metric for c in cons}
    if fidelity == "sim" and "slo_violation_fraction" in referenced:
        if space.fixed.get("slo_s") is None:
            raise ValueError(
                "metric 'slo_violation_fraction' needs an SLO: pass "
                "fixed={'slo_s': ...} on the search space"
            )
    if not isinstance(workers, int) or workers < 1:
        raise ValueError(f"workers must be a positive integer (got {workers!r})")
    if budget is None:
        budget = max(1.0, 0.2 * space.size)
    budget = float(budget)
    if budget <= 0:
        raise ValueError(f"budget must be positive (got {budget!r})")
    if evaluator is None:
        evaluator = Evaluator()

    modes = None
    if fidelity == "faults":
        from ..faults import FaultMode, default_fault_domain, parse_fault_specs

        if faults is None:
            modes = list(default_fault_domain())
        elif all(isinstance(m, FaultMode) for m in faults):
            modes = list(faults)
        else:
            modes = parse_fault_specs([str(m) for m in faults])

    search = _Search(
        space, obj, cons, fidelity, budget, seed, workers, evaluator, modes, fault_samples
    )
    candidates = search.candidates
    table, analytic = screen_space(space, candidates, cache=cache)

    analytic_fidelity = fidelity == "analytic"
    for candidate, metrics in zip(candidates, analytic):
        base = (
            dict(metrics)
            if analytic_fidelity
            else {k: metrics.get(k) for k in STRUCTURAL_METRICS}
        )
        search.records.append(
            CandidateRecord(
                key=candidate.key,
                values=candidate.as_dict(),
                stage="screen",
                status="skipped",
                reason=None,
                cost=0.0,
                objective=None,
                feasible=None,
                metrics=base,
            )
        )

    if analytic_fidelity:
        # The screen *is* the evaluation: every candidate's metrics are exact,
        # so the result is by construction the exhaustive constrained optimum.
        for candidate, metrics, record in zip(candidates, analytic, search.records):
            record.objective = _clean(metrics.get(obj.metric))
            feasible = all(c.satisfied(metrics.get(c.metric)) for c in cons)
            if feasible and record.objective is None:
                feasible = False
                record.reason = f"objective {obj.metric} undefined"
            record.feasible = feasible
            record.status = "feasible" if feasible else "infeasible"
    else:
        survivors: List[Candidate] = []
        for candidate, metrics, record in zip(candidates, analytic, search.records):
            reason = prune_reason(candidate, metrics, cons, fidelity)
            if reason is not None:
                record.status = "pruned"
                record.reason = reason
                record.feasible = False
            else:
                survivors.append(candidate)

        halving_budget = budget * (1.0 - _NEIGHBORHOOD_SHARE)
        if survivors and len(survivors) <= halving_budget:
            # Small enough to evaluate exhaustively at full length — no
            # halving noise, the sim-fidelity answer is the sim-exhaustive
            # constrained optimum over the unpruned set.
            for candidate, metrics in zip(
                survivors, search.evaluate(survivors, 1.0)
            ):
                search.finalize(candidate, metrics, "final")
        elif survivors:
            # Rung-0 admission: order survivors by the analytic proxy of the
            # objective (exact for structural objectives), then fit the
            # largest cohort whose halving schedule the budget affords.
            proxy_name = (
                obj.metric if obj.metric in STRUCTURAL_METRICS else _PROXY_OF.get(obj.metric)
            )

            def proxy_rank(candidate: Candidate):
                metrics = analytic[search.index[candidate.key]]
                value = metrics.get(proxy_name) if proxy_name else None
                signed = obj.signed(value)
                return (signed is None, signed if signed is not None else 0.0, candidate.key)

            ordered = sorted(survivors, key=proxy_rank)
            cohort_size = 0
            for c in range(1, len(ordered) + 1):
                if _halving_cost(c) <= halving_budget + 1e-9:
                    cohort_size = c
            cohort = ordered[:cohort_size]
            for candidate in ordered[cohort_size:]:
                record = search.records[search.index[candidate.key]]
                record.reason = (
                    f"not admitted to halving (cohort {cohort_size} of "
                    f"{len(ordered)} survivors fits the budget)"
                )
            if not cohort:
                # Budget below one full halving schedule: full-length runs
                # for as many of the best-ranked survivors as fit.
                cohort = ordered[: max(1, int(halving_budget))]
                for candidate, metrics in zip(cohort, search.evaluate(cohort, 1.0)):
                    search.finalize(candidate, metrics, "final")
            else:
                for r, fraction in enumerate(RUNG_FRACTIONS):
                    results = search.evaluate(cohort, fraction)
                    if fraction >= 1.0:
                        for candidate, metrics in zip(cohort, results):
                            search.finalize(candidate, metrics, "final")
                        break
                    ranked = sorted(
                        zip(cohort, results),
                        key=lambda pair: search.rank_key(
                            all(
                                c.satisfied(pair[1].get(c.metric)) for c in cons
                            ),
                            pair[1].get(obj.metric),
                            pair[0].key,
                        ),
                    )
                    keep = max(1, len(ranked) // 2)
                    for rank, (candidate, _) in enumerate(ranked[keep:], start=keep):
                        record = search.records[search.index[candidate.key]]
                        record.stage = "halving"
                        record.status = "halved"
                        record.reason = (
                            f"ranked {rank + 1}/{len(ranked)} at rung {r} "
                            f"({fraction:g} of full length)"
                        )
                    cohort = [candidate for candidate, _ in ranked[:keep]]

        # Local neighborhood walk around the incumbent at full fidelity.
        incumbent = _current_best(search)
        while incumbent is not None and search.affordable(1.0):
            improved = False
            for neighbor in space.neighbors(incumbent):
                record = search.records[search.index[neighbor.key]]
                if record.status in ("feasible", "infeasible", "pruned"):
                    continue
                if not search.affordable(1.0):
                    break
                metrics = search.evaluate([neighbor], 1.0)[0]
                search.finalize(neighbor, metrics, "neighborhood")
                if record.feasible and search.rank_key(
                    True, record.objective, neighbor.key
                ) < _incumbent_rank(search, incumbent):
                    incumbent = neighbor
                    improved = True
                    break
            if not improved:
                break

    best_record = _select_best(search)
    best = None
    note = None
    if best_record is not None:
        best_record.status = "best"
        best = {
            "key": best_record.key,
            "values": dict(best_record.values),
            "objective": best_record.objective,
            "metrics": dict(best_record.metrics),
        }
    else:
        pruned = len([r for r in search.records if r.status == "pruned"])
        infeasible = len([r for r in search.records if r.status == "infeasible"])
        note = (
            f"no candidate satisfies the constraints at fidelity={fidelity} "
            f"({pruned} pruned at screening, {infeasible} infeasible when evaluated)"
        )

    return OptReport(
        fidelity=fidelity,
        objective=obj.as_dict(),
        constraints=[c.as_dict() for c in cons],
        seed=seed,
        space=space.as_dict(),
        budget=budget,
        budget_spent=search.spent,
        evaluations=search.evaluations,
        candidates=search.records,
        best=best,
        note=note,
        screen=table,
    )


def _current_best(search: _Search) -> Optional[Candidate]:
    """The feasible candidate with the best objective so far (or None)."""

    best_key = None
    best_rank = None
    for record in search.records:
        if record.feasible and record.objective is not None:
            rank = search.rank_key(True, record.objective, record.key)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_key = record.key
    if best_key is None:
        return None
    return search.candidates[search.index[best_key]]


def _incumbent_rank(search: _Search, incumbent: Candidate):
    record = search.records[search.index[incumbent.key]]
    return search.rank_key(True, record.objective, record.key)


def _select_best(search: _Search) -> Optional[CandidateRecord]:
    best = None
    best_rank = None
    for record in search.records:
        if record.feasible and record.objective is not None:
            rank = search.rank_key(True, record.objective, record.key)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best = record
    return best

"""Command-line interface for regenerating the paper's results.

Installed as the ``repro-odenet`` console script (see pyproject.toml), or run
as ``python -m repro.cli``.  Sub-commands map one-to-one onto the paper's
tables/figures plus the offload/energy/training design tools:

============  ==========================================================
sub-command    output
============  ==========================================================
table1         PYNQ-Z2 board specification
table2         ODENet layer structure and parameter sizes
table3         FPGA resource utilisation (published vs model)
table4         variant structures for a chosen depth
table5         execution times and speedups
figure5        parameter size vs depth series
figure6        accuracy vs depth series (paper-scale model)
offload        offload plan for one architecture (resources/timing/speedup)
energy         per-prediction energy with vs without the PL offload
training       projected training cost (future-work analysis)
============  ==========================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (
    accuracy_table,
    figure5_series,
    figure6_series,
    format_records,
    format_series,
    table1_records,
    table2_records,
    table3_records,
    table4_records,
    table5_records,
)
from .core import ExecutionTimeModel, OffloadPlanner, SUPPORTED_DEPTHS, VARIANT_NAMES
from .core.training_model import TrainingTimeModel
from .fpga.power import PowerModel
from .fpga.resources import ResourceEstimator

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the repro CLI."""

    parser = argparse.ArgumentParser(
        prog="repro-odenet",
        description="Regenerate results of 'Accelerating ODE-Based Neural Networks on Low-Cost FPGAs'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="PYNQ-Z2 board specification")
    sub.add_parser("table2", help="ODENet layer structure / parameter sizes")

    p3 = sub.add_parser("table3", help="FPGA resource utilisation")
    p3.add_argument("--no-estimates", action="store_true", help="omit the analytical model columns")

    p4 = sub.add_parser("table4", help="variant structures")
    p4.add_argument("--depth", type=int, default=56, choices=SUPPORTED_DEPTHS)

    p5 = sub.add_parser("table5", help="execution times and speedups")
    p5.add_argument("--depth", type=int, default=None, choices=SUPPORTED_DEPTHS)
    p5.add_argument("--n-units", type=int, default=16, help="MAC units of the PL design")

    sub.add_parser("figure5", help="parameter size vs depth")

    p6 = sub.add_parser("figure6", help="accuracy vs depth (paper-scale model)")
    p6.add_argument("--paper-only", action="store_true", help="only values quoted verbatim by the paper")
    p6.add_argument("--points", action="store_true", help="list every point with its source")

    po = sub.add_parser("offload", help="offload plan for one architecture")
    po.add_argument("model", choices=list(VARIANT_NAMES) + ["ODENet-3"])
    po.add_argument("--depth", type=int, default=56, choices=SUPPORTED_DEPTHS)
    po.add_argument("--n-units", type=int, default=16)

    pe = sub.add_parser("energy", help="per-prediction energy with vs without the PL")
    pe.add_argument("model", choices=list(VARIANT_NAMES) + ["ODENet-3"])
    pe.add_argument("--depth", type=int, default=56, choices=SUPPORTED_DEPTHS)
    pe.add_argument("--n-units", type=int, default=16)

    pt = sub.add_parser("training", help="projected training cost (future work)")
    pt.add_argument("--depth", type=int, default=56, choices=SUPPORTED_DEPTHS)
    pt.add_argument("--models", nargs="*", default=["ResNet", "rODENet-3"])

    return parser


def _cmd_table5(args) -> str:
    depths = (args.depth,) if args.depth else SUPPORTED_DEPTHS
    return format_records(table5_records(depths=depths, n_units=args.n_units), title="Table 5")


def _cmd_offload(args) -> str:
    planner = OffloadPlanner(n_units=args.n_units)
    decision = planner.plan(args.model, args.depth, n_units=args.n_units)
    lines = [f"Offload plan for {args.model}-{args.depth} (conv_x{args.n_units})"]
    lines.append(f"  targets          : {', '.join(decision.targets) or '(none)'}")
    lines.append(f"  PL resources     : {decision.resources.as_dict()}")
    lines.append(f"  fits XC7Z020     : {decision.fits_device}")
    lines.append(f"  meets 100 MHz    : {decision.meets_timing}")
    lines.append(f"  expected speedup : {decision.expected_speedup:.2f}x")
    return "\n".join(lines)


def _cmd_energy(args) -> str:
    execution = ExecutionTimeModel(n_units=args.n_units)
    planner = OffloadPlanner(n_units=args.n_units, execution_model=execution)
    decision = planner.plan(args.model, args.depth, n_units=args.n_units)
    power = PowerModel(execution_model=execution)
    comparison = power.compare(args.model, args.depth, decision.resources)
    records = [comparison]
    return format_records(records, title=f"Energy per prediction: {args.model}-{args.depth}")


def _cmd_training(args) -> str:
    model = TrainingTimeModel()
    rows = []
    for name in args.models:
        report = model.report(name, args.depth)
        row = report.as_dict()
        projections = model.epoch_table((name,), args.depth)[name]
        row.update({k: round(v, 3) for k, v in projections.items()})
        rows.append(row)
    return format_records(rows, title=f"Projected training cost at N={args.depth} (future-work model)")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""

    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "table1":
        output = format_records(table1_records(), title="Table 1: PYNQ-Z2 specification")
    elif args.command == "table2":
        output = format_records(table2_records(), title="Table 2: ODENet structure")
    elif args.command == "table3":
        output = format_records(
            table3_records(include_estimates=not args.no_estimates), title="Table 3: resource utilisation"
        )
    elif args.command == "table4":
        output = format_records(table4_records(args.depth), title=f"Table 4 (N={args.depth})")
    elif args.command == "table5":
        output = _cmd_table5(args)
    elif args.command == "figure5":
        output = format_series(figure5_series(), title="Figure 5: parameter size [kB]")
    elif args.command == "figure6":
        if args.points:
            output = format_records(accuracy_table(), title="Figure 6 points")
        else:
            output = format_series(
                figure6_series(paper_only=args.paper_only), title="Figure 6: accuracy [%]"
            )
    elif args.command == "offload":
        output = _cmd_offload(args)
    elif args.command == "energy":
        output = _cmd_energy(args)
    elif args.command == "training":
        output = _cmd_training(args)
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command}")
        return 2

    print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface for regenerating the paper's results.

Installed as the ``repro-odenet`` console script, or run as
``python -m repro.cli``.  Sub-commands map one-to-one onto the paper's
tables/figures plus the offload/energy/training design tools and the
design-space engine:

============  ==========================================================
sub-command    output
============  ==========================================================
table1         PYNQ-Z2 board specification
table2         ODENet layer structure and parameter sizes
table3         FPGA resource utilisation (published vs model)
table4         variant structures for a chosen depth
table5         execution times and speedups
figure5        parameter size vs depth series
figure6        accuracy vs depth series (paper-scale model)
offload        offload plan for one architecture (resources/timing/speedup)
energy         per-prediction energy with vs without the PL offload
training       projected training cost (future-work analysis)
eval           full structured report for one scenario
sweep          design-space grid (variants x depths x MAC units x ...)
sim            discrete-event serving simulation (arrivals/replicas/policies)
fleet          multi-board cluster serving (balancer/SLO admission/autoscale)
timing         timing-closure sweep over MAC-unit counts
accuracy-sweep accuracy-vs-Q-format-vs-latency frontier of the PL datapath
rtl            ODEBlock Verilog emission + vectors + structural/sim checks
============  ==========================================================

Every sub-command accepts ``--json`` to emit the structured result instead
of the formatted text tables.

The commands are registered with the :func:`command` decorator and all of
them are served by one :class:`repro.api.Evaluator`, so adding a new
analysis is a matter of writing a handler that maps parsed arguments to
scenarios — no dispatch chain to extend.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .analysis import format_records, format_series
from .api import (
    SCENARIO_MODELS,
    TRAINING_PROJECTION_KEYS,
    BatchResult,
    Evaluator,
    ResultCache,
    Scenario,
    fraction_bits_for,
    scenario_grid,
    sweep_batch,
)
from .api import sweep as run_sweep
from .api.sweep import SweepError
from .core import SUPPORTED_DEPTHS
from .ode.solvers import available_methods
from .platform import BOARDS, PYNQ_Z2

__all__ = ["build_parser", "main", "command", "registered_commands"]

#: Model names accepted by the scenario-driven sub-commands (the single
#: source of truth is what :class:`repro.api.Scenario` validates against).
MODEL_CHOICES: List[str] = list(SCENARIO_MODELS)


@dataclass(frozen=True)
class CommandOutput:
    """What a handler returns: rendered text plus the structured payload."""

    text: str
    data: object


@dataclass(frozen=True)
class CliCommand:
    """One registered sub-command."""

    name: str
    help: str
    configure: Optional[Callable[[argparse.ArgumentParser], None]]
    handler: Callable[[argparse.Namespace, Evaluator], CommandOutput]


_REGISTRY: Dict[str, CliCommand] = {}


def command(name: str, help: str = "", configure=None):
    """Register a sub-command handler (replaces the old if/elif dispatch)."""

    def decorator(fn):
        if name in _REGISTRY:
            raise ValueError(f"duplicate CLI command '{name}'")
        _REGISTRY[name] = CliCommand(name=name, help=help, configure=configure, handler=fn)
        return fn

    return decorator


def registered_commands() -> Dict[str, CliCommand]:
    """The command registry (read-only view for tests and tooling)."""

    return dict(_REGISTRY)


# -- table commands ---------------------------------------------------------------------


@command("table1", help="PYNQ-Z2 board specification")
def _cmd_table1(args, evaluator: Evaluator) -> CommandOutput:
    records = evaluator.table1_records()
    return CommandOutput(format_records(records, title="Table 1: PYNQ-Z2 specification"), records)


@command("table2", help="ODENet layer structure / parameter sizes")
def _cmd_table2(args, evaluator: Evaluator) -> CommandOutput:
    records = evaluator.table2_records()
    return CommandOutput(format_records(records, title="Table 2: ODENet structure"), records)


def _configure_table3(p: argparse.ArgumentParser) -> None:
    p.add_argument("--no-estimates", action="store_true", help="omit the analytical model columns")


@command("table3", help="FPGA resource utilisation", configure=_configure_table3)
def _cmd_table3(args, evaluator: Evaluator) -> CommandOutput:
    records = evaluator.table3_records(include_estimates=not args.no_estimates)
    return CommandOutput(format_records(records, title="Table 3: resource utilisation"), records)


def _configure_table4(p: argparse.ArgumentParser) -> None:
    p.add_argument("--depth", type=int, default=56, choices=SUPPORTED_DEPTHS)


@command("table4", help="variant structures", configure=_configure_table4)
def _cmd_table4(args, evaluator: Evaluator) -> CommandOutput:
    records = evaluator.table4_records(args.depth)
    return CommandOutput(format_records(records, title=f"Table 4 (N={args.depth})"), records)


def _configure_table5(p: argparse.ArgumentParser) -> None:
    p.add_argument("--depth", type=int, default=None, choices=SUPPORTED_DEPTHS)
    p.add_argument("--n-units", type=int, default=16, help="MAC units of the PL design")


@command("table5", help="execution times and speedups", configure=_configure_table5)
def _cmd_table5(args, evaluator: Evaluator) -> CommandOutput:
    depths = (args.depth,) if args.depth else SUPPORTED_DEPTHS
    records = evaluator.table5_records(depths=depths, n_units=args.n_units)
    return CommandOutput(format_records(records, title="Table 5"), records)


# -- figure commands --------------------------------------------------------------------


@command("figure5", help="parameter size vs depth")
def _cmd_figure5(args, evaluator: Evaluator) -> CommandOutput:
    series = evaluator.figure5_series()
    return CommandOutput(format_series(series, title="Figure 5: parameter size [kB]"), series)


def _configure_figure6(p: argparse.ArgumentParser) -> None:
    p.add_argument("--paper-only", action="store_true", help="only values quoted verbatim by the paper")
    p.add_argument("--points", action="store_true", help="list every point with its source")


@command("figure6", help="accuracy vs depth (paper-scale model)", configure=_configure_figure6)
def _cmd_figure6(args, evaluator: Evaluator) -> CommandOutput:
    if args.points:
        records = evaluator.accuracy_table()
        return CommandOutput(format_records(records, title="Figure 6 points"), records)
    series = evaluator.figure6_series(paper_only=args.paper_only)
    return CommandOutput(format_series(series, title="Figure 6: accuracy [%]"), series)


# -- platform commands ------------------------------------------------------------------


@command("boards", help="registered PS+PL boards (the platform registry)")
def _cmd_boards(args, evaluator: Evaluator) -> CommandOutput:
    records = []
    for name, b in BOARDS.items():
        records.append(
            {
                "board": name,
                "fpga": b.fpga.name,
                "bram36": b.fpga.bram36,
                "dsp": b.fpga.dsp,
                "lut": b.fpga.lut,
                "ff": b.fpga.ff,
                "ps": f"{b.ps_cores}x {b.ps_clock_mhz:.0f}MHz",
                "dram_mb": b.dram_mb,
                "pl_mhz": round(b.pl_clock_mhz, 1),
                "ps_active_w": b.power.ps_active_w,
                "pl_static_w": b.power.pl_static_w,
                "price_usd": b.price_usd,
            }
        )
    text = format_records(records, title=f"Registered boards ({len(records)})")
    return CommandOutput(text, records)


# -- scenario commands ------------------------------------------------------------------


def _configure_offload(p: argparse.ArgumentParser) -> None:
    p.add_argument("model", choices=MODEL_CHOICES)
    p.add_argument("--depth", type=int, default=56, choices=SUPPORTED_DEPTHS)
    p.add_argument("--n-units", type=int, default=16)


@command("offload", help="offload plan for one architecture", configure=_configure_offload)
def _cmd_offload(args, evaluator: Evaluator) -> CommandOutput:
    result = evaluator.evaluate(Scenario(model=args.model, depth=args.depth, n_units=args.n_units))
    lines = [f"Offload plan for {args.model}-{args.depth} (conv_x{args.n_units})"]
    lines.append(f"  targets          : {', '.join(result.resources['targets']) or '(none)'}")
    lines.append(f"  PL resources     : {result.resource_vector()}")
    lines.append(f"  fits XC7Z020     : {result.resources['fits_device']}")
    lines.append(f"  meets 100 MHz    : {result.resources['meets_timing']}")
    lines.append(f"  expected speedup : {result.timing['overall_speedup']:.2f}x")
    return CommandOutput("\n".join(lines), result.as_dict())


def _configure_energy(p: argparse.ArgumentParser) -> None:
    p.add_argument("model", choices=MODEL_CHOICES)
    p.add_argument("--depth", type=int, default=56, choices=SUPPORTED_DEPTHS)
    p.add_argument("--n-units", type=int, default=16)


@command("energy", help="per-prediction energy with vs without the PL", configure=_configure_energy)
def _cmd_energy(args, evaluator: Evaluator) -> CommandOutput:
    result = evaluator.evaluate(Scenario(model=args.model, depth=args.depth, n_units=args.n_units))
    text = format_records(
        [dict(result.energy)], title=f"Energy per prediction: {args.model}-{args.depth}"
    )
    return CommandOutput(text, result.as_dict())


def _configure_training(p: argparse.ArgumentParser) -> None:
    p.add_argument("--depth", type=int, default=56, choices=SUPPORTED_DEPTHS)
    p.add_argument("--models", nargs="*", default=["ResNet", "rODENet-3"], choices=MODEL_CHOICES)


@command("training", help="projected training cost (future work)", configure=_configure_training)
def _cmd_training(args, evaluator: Evaluator) -> CommandOutput:
    rows = []
    data = []
    for name in args.models:
        result = evaluator.evaluate(Scenario(model=name, depth=args.depth))
        row = dict(result.training)
        for key in TRAINING_PROJECTION_KEYS:
            row[key] = round(row[key], 3)
        rows.append(row)
        data.append(result.as_dict())
    text = format_records(rows, title=f"Projected training cost at N={args.depth} (future-work model)")
    return CommandOutput(text, data)


def _add_scenario_knobs(p: argparse.ArgumentParser) -> None:
    p.add_argument("--wordlength", type=int, default=32, help="fixed-point word length in bits")
    p.add_argument(
        "--fraction-bits",
        type=int,
        default=None,
        help="fixed-point fraction bits (defaults to the conventional Q-format)",
    )
    p.add_argument("--solver", choices=available_methods(), default="euler")
    p.add_argument(
        "--board",
        default=PYNQ_Z2.name,
        help="target board from the platform registry (see the 'boards' subcommand); "
        "the sim subcommand also accepts a comma-separated list to compare boards "
        "under the same trace",
    )


def _parse_board_names(value, flag: str) -> List[str]:
    """Split ``--boards``-style values (repeated and/or comma-separated)."""

    entries = value if isinstance(value, list) else [value]
    names = [name for entry in entries for name in str(entry).split(",") if name]
    if not names:
        raise ValueError(f"{flag} needs at least one board name")
    return names


def _configure_eval(p: argparse.ArgumentParser) -> None:
    p.add_argument("model", nargs="?", default="rODENet-3", choices=MODEL_CHOICES)
    p.add_argument("--depth", type=int, default=56)
    p.add_argument("--n-units", type=int, default=16)
    _add_scenario_knobs(p)


@command("eval", help="full structured report for one scenario", configure=_configure_eval)
def _cmd_eval(args, evaluator: Evaluator) -> CommandOutput:
    scenario = Scenario(
        model=args.model,
        depth=args.depth,
        n_units=args.n_units,
        word_length=args.wordlength,
        fraction_bits=fraction_bits_for(args.wordlength, args.fraction_bits),
        solver=args.solver,
        board=args.board,
    )
    result = evaluator.evaluate(scenario)
    return CommandOutput(result.render(), result.as_dict())


def _configure_sweep(p: argparse.ArgumentParser) -> None:
    p.add_argument("--models", nargs="*", default=None, choices=MODEL_CHOICES,
                   help="variants to sweep (default: all Table-5 rows)")
    p.add_argument("--depths", nargs="*", type=int, default=list(SUPPORTED_DEPTHS))
    p.add_argument("--n-units", nargs="*", type=int, default=[16])
    p.add_argument("--wordlengths", nargs="*", type=int, default=[32])
    p.add_argument(
        "--fraction-bits",
        type=int,
        default=None,
        help="fraction bits applied to every --wordlengths value "
        "(default: the conventional Q-format per word length)",
    )
    p.add_argument(
        "--qformats", nargs="*", default=None, metavar="WL:FB",
        help="explicit Q-format axis, e.g. 16:8 16:10 12:6 (replaces "
        "--wordlengths; lets both knobs vary independently)",
    )
    p.add_argument("--solvers", nargs="*", choices=available_methods(), default=["euler"])
    p.add_argument(
        "--boards", nargs="*", default=None, metavar="BOARD[,BOARD...]",
        help="board axis: registered board names, space- and/or comma-separated "
        "(see the 'boards' subcommand; default: PYNQ-Z2 only)",
    )
    p.add_argument("--workers", type=int, default=1, help="thread-pool width for the loop engine")
    p.add_argument(
        "--engine",
        choices=("loop", "batch"),
        default="loop",
        help="per-scenario loop engine (default) or the vectorized batch engine "
        "(identical results, much faster on large grids)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="persistent result-cache directory (batch engine): repeated sweeps "
        "only evaluate scenarios not seen before",
    )
    p.add_argument("--format", choices=("table", "csv", "json", "pareto"), default="table")
    p.add_argument(
        "--pareto-x",
        default="total_w_pl_s",
        help="x metric of the Pareto front (--format pareto; default: total_w_pl_s)",
    )
    p.add_argument(
        "--pareto-y",
        default="energy_with_pl_J",
        help="y metric of the Pareto front (--format pareto; default: energy_with_pl_J)",
    )
    p.add_argument("--maximize-x", action="store_true", help="maximize (not minimize) the x metric")
    p.add_argument("--maximize-y", action="store_true", help="maximize (not minimize) the y metric")
    p.add_argument(
        "--verbose",
        action="store_true",
        help="print cache diagnostics to stderr (with --cache-dir: hit-rate and footprint)",
    )


@command("sweep", help="design-space grid over variants/depths/units/formats", configure=_configure_sweep)
def _cmd_sweep(args, evaluator: Evaluator) -> CommandOutput:
    axes = dict(
        depths=args.depths,
        n_units=args.n_units,
        word_lengths=args.wordlengths,
        fraction_bits=args.fraction_bits,
        solvers=args.solvers,
    )
    if args.qformats is not None:
        if args.fraction_bits is not None:
            raise ValueError("pass either --qformats or --fraction-bits, not both")
        axes["qformats"] = _parse_formats(args.qformats, flag="--qformats")
        axes["fraction_bits"] = None
    if args.models is not None:
        axes["models"] = args.models
    if args.boards is not None:
        axes["boards"] = _parse_board_names(args.boards, flag="--boards")
    grid = scenario_grid(**axes)
    if args.cache_dir is not None and args.engine != "batch":
        raise ValueError("--cache-dir requires --engine batch")
    if args.engine == "batch" and args.workers != 1:
        raise ValueError("--workers applies to the loop engine; drop it with --engine batch")
    loop_rows = None
    if args.engine == "batch":
        cache = ResultCache(args.cache_dir) if args.cache_dir is not None else None
        table = sweep_batch(grid, cache=cache)
        if args.verbose and cache is not None:
            # Diagnostics go to stderr so every --format (json/csv included)
            # stays machine-readable on stdout.
            stats = cache.stats()
            print(
                f"[cache] {stats['hits']} hits / {stats['misses']} misses "
                f"({100.0 * stats['hit_rate']:.1f}% hit rate), "
                f"{stats['entries']} entries, {stats['bytes']} bytes on disk",
                file=sys.stderr,
            )
    else:
        # The engines are field-for-field identical, so the loop results feed
        # the same columnar table and share one output path.
        results = run_sweep(grid, evaluator=evaluator, workers=args.workers)
        loop_rows = [r.as_dict() for r in results]
        table = BatchResult.from_rows(grid, loop_rows)
    if args.format == "pareto":
        front = _pareto_front_or_error(
            table, args.pareto_x, args.pareto_y, args.maximize_x, args.maximize_y
        )
        text = format_records(
            front.records(),
            title=(
                f"Pareto front over ({args.pareto_x}, {args.pareto_y}): "
                f"{len(front)} of {len(table)} scenarios"
            ),
        )
        return CommandOutput(text, front.as_dicts())
    data = loop_rows if loop_rows is not None else table.as_dicts()
    if args.format == "csv":
        text = table.to_csv()
    elif args.format == "json":
        text = table.to_json()
    else:
        text = format_records(
            table.records(), title=f"Design-space sweep ({len(table)} scenarios)"
        )
    return CommandOutput(text, data)


def _configure_sim(p: argparse.ArgumentParser) -> None:
    p.add_argument("model", nargs="?", default="rODENet-3", choices=MODEL_CHOICES)
    p.add_argument("--depth", type=int, default=56)
    p.add_argument("--n-units", type=int, default=16)
    _add_scenario_knobs(p)
    p.add_argument(
        "--arrivals", choices=("poisson", "deterministic", "trace"), default="poisson",
        help="request arrival process",
    )
    p.add_argument("--rate", type=float, default=1.0, help="mean arrival rate [req/s]")
    p.add_argument(
        "--requests", type=int, default=None,
        help="number of requests to offer (default: the full trace, or the whole "
        "--duration, or 100 when neither bounds the run)",
    )
    p.add_argument(
        "--duration", type=float, default=None,
        help="stop offering arrivals after this much simulated time [s]",
    )
    p.add_argument(
        "--trace", nargs="*", type=float, default=None,
        help="explicit arrival timestamps (with --arrivals trace)",
    )
    p.add_argument(
        "--replicas", default="1",
        help="PL accelerator replicas, or 'auto' to size from the resource budget",
    )
    p.add_argument("--policy", choices=("fifo", "batched", "round_robin"), default="fifo")
    p.add_argument("--batch-size", type=int, default=4, help="max batch per replica (--policy batched)")
    p.add_argument("--seed", type=int, default=0, help="PRNG seed (Poisson arrivals, mix sampling)")
    p.add_argument(
        "--ps-cores", default="1",
        help="PS cores serving software phases, or 'auto' for the board's core count",
    )
    p.add_argument("--dma-channels", type=int, default=1, help="concurrent AXI DMA bursts")
    p.add_argument(
        "--warmup", type=float, default=0.0,
        help="drop requests arriving before this simulated time from the latency "
        "percentiles and measure utilisation/energy from there on (transient trim)",
    )
    p.add_argument(
        "--mix", nargs="*", default=None, metavar="MODEL:DEPTH[:WEIGHT]",
        help="weighted per-request architecture mix sharing the same PL hardware",
    )
    p.add_argument(
        "--slo-ms", type=float, default=None,
        help="per-request latency SLO [ms]; the report gains an SLO-violation "
        "summary (late or corrupted completions count)",
    )
    p.add_argument(
        "--faults", nargs="*", default=None, metavar="KIND[:RATE[:PARAM]]",
        help="run an FMEA over these fault modes (bare --faults uses the whole "
        "default domain; see the 'faults' subcommand for the registry)",
    )
    p.add_argument(
        "--fault-samples", type=int, default=3,
        help="sampled injection times per fault mode (--faults)",
    )
    p.add_argument(
        "--fault-sampling", choices=("even", "quadrature"), default="even",
        help="injection-time sampling rule (--faults)",
    )
    p.add_argument(
        "--fault-seed", type=int, default=0,
        help="fault RNG seed (bit-flip positions), independent of --seed",
    )
    p.add_argument(
        "--fault-duration", type=float, default=None,
        help="seconds until each injected fault self-clears (default: permanent)",
    )
    p.add_argument("--format", choices=("table", "json", "csv"), default="table")


def _parse_mix(entries, scenario) -> List:
    """Parse ``--mix MODEL:DEPTH[:WEIGHT]`` into (scenario, weight) pairs."""

    mix = []
    for entry in entries:
        parts = entry.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(f"bad --mix entry '{entry}'; expected MODEL:DEPTH[:WEIGHT]")
        model, depth = parts[0], int(parts[1])
        weight = float(parts[2]) if len(parts) == 3 else 1.0
        mix.append((scenario.design_point.replace(model=model, depth=depth), weight))
    return mix


@command(
    "sim",
    help="discrete-event simulation of multi-request PS+PL serving",
    configure=_configure_sim,
)
def _cmd_sim(args, evaluator: Evaluator) -> CommandOutput:
    from .sim import SimScenario, max_replicas, simulate

    if args.replicas == "auto":
        replicas = 0
    else:
        try:
            replicas = int(args.replicas)
        except ValueError:
            raise ValueError(
                f"--replicas must be a non-negative integer or 'auto' (got {args.replicas!r})"
            )
    if args.ps_cores == "auto":
        ps_cores = 0
    else:
        try:
            ps_cores = int(args.ps_cores)
        except ValueError:
            raise ValueError(
                f"--ps-cores must be a non-negative integer or 'auto' (got {args.ps_cores!r})"
            )
    boards = _parse_board_names(args.board, flag="--board")
    scenario = SimScenario(
        model=args.model,
        depth=args.depth,
        n_units=args.n_units,
        word_length=args.wordlength,
        fraction_bits=fraction_bits_for(args.wordlength, args.fraction_bits),
        solver=args.solver,
        board=boards[0],
        arrival=args.arrivals,
        arrival_rate_hz=args.rate,
        n_requests=args.requests,
        duration_s=args.duration,
        trace=tuple(args.trace) if args.trace is not None else None,
        replicas=replicas,
        policy=args.policy,
        batch_size=args.batch_size,
        seed=args.seed,
        ps_cores=ps_cores,
        dma_channels=args.dma_channels,
        warmup_s=args.warmup,
        slo_s=args.slo_ms / 1000.0 if args.slo_ms is not None else None,
    )
    if len(boards) > 1:
        if args.faults is not None:
            raise ValueError("--faults runs one board at a time; pass a single --board")
        return _sim_board_comparison(scenario, boards, args, evaluator)
    mix = _parse_mix(args.mix, scenario) if args.mix else None
    if args.faults is not None:
        return _sim_fmea(scenario, args, evaluator, mix)
    report = simulate(scenario, evaluator=evaluator, mix=mix)
    if args.format == "csv":
        text = report.to_csv()
    elif args.format == "json":
        text = json.dumps(report.as_dict(), indent=2)
    else:
        text = report.render()
    return CommandOutput(text, report.as_dict())


def _sim_fmea(scenario, args, evaluator: Evaluator, mix) -> CommandOutput:
    """The ``sim --faults`` path: expand, run and tabulate fault scenarios."""

    from .faults import parse_fault_specs, run_fmea

    modes = parse_fault_specs(args.faults, duration_s=args.fault_duration)
    study = run_fmea(
        scenario,
        modes,
        evaluator=evaluator,
        n_samples=args.fault_samples,
        method=args.fault_sampling,
        fault_seed=args.fault_seed,
        mix=mix,
    )
    if args.format == "csv":
        text = study.to_csv()
    elif args.format == "json":
        text = json.dumps(study.as_dict(), indent=2)
    else:
        text = study.render()
    return CommandOutput(text, study.as_dict())


def _configure_fleet(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--boards", default="pynq-z2:4", metavar="NAME[:COUNT],...",
        help="fleet inventory, e.g. 'pynq-z2:8,zcu104:4' (case-insensitive names)",
    )
    p.add_argument(
        "--classes", default=None, metavar="NAME[:WEIGHT[:KIND[:SLO]]],...",
        help="traffic classes, e.g. 'interactive:0.8:latency:50ms,nightly:0.2:batch'",
    )
    p.add_argument("--model", choices=MODEL_CHOICES, default="rODENet-3")
    p.add_argument("--depth", type=int, choices=SUPPORTED_DEPTHS, default=56)
    p.add_argument("--n-units", type=int, default=16, help="parallel MAC units per replica")
    p.add_argument(
        "--arrivals", choices=("poisson", "deterministic"), default="poisson",
        help="request arrival process",
    )
    p.add_argument("--rate", type=float, default=10.0, help="offered arrival rate [req/s]")
    p.add_argument(
        "--requests", type=int, default=None,
        help="number of requests to offer (default: the whole --duration, or "
        "1000 when neither bounds the run)",
    )
    p.add_argument(
        "--duration", type=float, default=None,
        help="stop offering arrivals after this much simulated time [s]",
    )
    p.add_argument(
        "--replicas", default="auto",
        help="PL replicas per board, or 'auto' to size each board from its fabric",
    )
    p.add_argument(
        "--routing", choices=("least_loaded", "round_robin", "weighted"),
        default="least_loaded", help="balancer routing policy",
    )
    p.add_argument(
        "--admission", choices=("none", "slo"), default="slo",
        help="admission control: 'slo' rejects latency-class requests whose "
        "predicted sojourn breaks their SLO",
    )
    p.add_argument(
        "--slo-ms", type=float, default=None,
        help="default SLO for latency classes without their own [ms]",
    )
    p.add_argument(
        "--autoscale", action="store_true",
        help="reactive power scaling: boards power up/down on windowed utilisation",
    )
    p.add_argument(
        "--autoscale-interval", type=float, default=60.0,
        help="autoscale control interval [simulated s]",
    )
    p.add_argument(
        "--cells", type=int, default=1,
        help="shared-nothing cells the inventory and traffic are dealt into "
        "(part of the scenario — changes the numbers)",
    )
    p.add_argument(
        "--shards", type=int, default=1,
        help="worker processes executing the cells (never changes the numbers)",
    )
    p.add_argument("--seed", type=int, default=0, help="PRNG seed")
    p.add_argument(
        "--fidelity", choices=("fast", "event"), default="fast",
        help="'fast' = analytic balancer kernel; 'event' = replay each board's "
        "assigned trace through the full transaction-level simulator",
    )
    p.add_argument(
        "--exact", action="store_true",
        help="keep exact per-request latencies (never spill the streaming sketches)",
    )
    p.add_argument("--format", choices=("table", "json"), default="table")


@command(
    "fleet",
    help="multi-board cluster serving behind a balancer (SLO admission, autoscale)",
    configure=_configure_fleet,
)
def _cmd_fleet(args, evaluator: Evaluator) -> CommandOutput:
    from .fleet import (
        FleetScenario,
        parse_board_groups,
        parse_traffic_classes,
        simulate_fleet,
    )

    if args.replicas == "auto":
        replicas = 0
    else:
        try:
            replicas = int(args.replicas)
        except ValueError:
            raise ValueError(
                f"--replicas must be a non-negative integer or 'auto' (got {args.replicas!r})"
            )
    scenario = FleetScenario(
        boards=parse_board_groups(args.boards),
        classes=(
            parse_traffic_classes(args.classes)
            if args.classes is not None
            else FleetScenario().classes
        ),
        model=args.model,
        depth=args.depth,
        n_units=args.n_units,
        arrival=args.arrivals,
        arrival_rate_hz=args.rate,
        n_requests=args.requests,
        duration_s=args.duration,
        replicas=replicas,
        routing=args.routing,
        admission=args.admission,
        slo_s=args.slo_ms / 1000.0 if args.slo_ms is not None else None,
        autoscale=args.autoscale,
        autoscale_interval_s=args.autoscale_interval,
        cells=args.cells,
        seed=args.seed,
        fidelity=args.fidelity,
        exact=args.exact,
    )
    report = simulate_fleet(scenario, shards=args.shards, evaluator=evaluator)
    if args.format == "json":
        text = json.dumps(report.as_dict(), indent=2)
    else:
        text = report.render()
    return CommandOutput(text, report.as_dict())


@command("faults", help="the registered fault modes usable with sim --faults")
def _cmd_faults(args, evaluator: Evaluator) -> CommandOutput:
    from .faults import default_fault_domain

    records = []
    for mode in default_fault_domain():
        params = mode.param_dict()
        value = next(iter(params.values())) if params else None
        records.append(
            {
                "kind": mode.kind,
                "default_rate_per_hour": mode.rate_per_hour,
                "parameter": next(iter(params)) if params else "-",
                "default": "auto" if value is None else value,
                "effect": mode.summary,
            }
        )
    text = format_records(
        records,
        title="Fault-mode registry (spec syntax: KIND[:RATE[:PARAM]])",
    )
    return CommandOutput(text, records)


def _configure_optimize(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--objective", default=None, metavar="[min:|max:]METRIC",
        help="metric to optimize (required), e.g. 'board_price_usd', "
        "'min:p99_ms', 'max:throughput_rps'",
    )
    p.add_argument(
        "--constraint", action="append", default=[], metavar="METRIC_OP_VALUE",
        help="bound every acceptable candidate must meet, e.g. 'p99_ms<=5' "
        "(repeatable)",
    )
    p.add_argument(
        "--fidelity", choices=("analytic", "sim", "fleet", "faults"), default="analytic",
        help="what one evaluation is: the analytic batch row, a simulate() run, "
        "a simulate_fleet() run of --count boards, or a run_fmea() study",
    )
    p.add_argument(
        "--budget", type=float, default=None,
        help="evaluation budget in full-evaluation units "
        "(default: 20%% of the exhaustive grid)",
    )
    p.add_argument("--seed", type=int, default=0, help="run seed (bit-identical reruns)")
    # search axes (an axis flag with several values becomes a searched axis)
    p.add_argument("--models", nargs="*", default=None, choices=MODEL_CHOICES)
    p.add_argument("--depths", nargs="*", type=int, default=None, choices=SUPPORTED_DEPTHS)
    p.add_argument("--n-units", nargs="*", type=int, default=None)
    p.add_argument("--qformats", nargs="*", default=None, metavar="WL:FB")
    p.add_argument("--solvers", nargs="*", default=None, choices=available_methods())
    p.add_argument(
        "--boards", nargs="*", default=None,
        help="boards to search over (default: every registered board)",
    )
    p.add_argument(
        "--replicas", nargs="*", type=int, default=None,
        help="PL replica counts to search over (serving fidelities)",
    )
    p.add_argument("--policies", nargs="*", default=None, help="dispatch policies to search over")
    p.add_argument("--batch-sizes", nargs="*", type=int, default=None)
    # fixed serving knobs (identical for every candidate)
    p.add_argument(
        "--arrivals", choices=("poisson", "deterministic"), default=None,
        help="arrival process for sim/fleet/faults evaluations",
    )
    p.add_argument("--rate", type=float, default=None, help="offered arrival rate [req/s]")
    p.add_argument("--requests", type=int, default=None, help="requests per full-length run")
    p.add_argument("--duration", type=float, default=None, help="full-length run horizon [s]")
    p.add_argument("--slo-ms", type=float, default=None, help="latency SLO [ms]")
    p.add_argument(
        "--count", type=int, default=None,
        help="boards per candidate at --fidelity fleet",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="process-pool width for stage-2 evaluations (never changes the numbers)",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result cache for the screening sweep",
    )
    p.add_argument("--format", choices=("table", "json", "csv"), default="table")


@command(
    "optimize",
    help="constrained design-space search (screen + successive halving), not a sweep",
    configure=_configure_optimize,
)
def _cmd_optimize(args, evaluator: Evaluator) -> CommandOutput:
    from .opt import SearchSpace, optimize

    if args.objective is None:
        raise ValueError("optimize needs --objective (e.g. --objective min:p99_ms)")
    axes: Dict[str, object] = {}
    if args.models:
        axes["model"] = args.models
    if args.depths:
        axes["depth"] = args.depths
    if args.n_units:
        axes["n_units"] = args.n_units
    if args.qformats:
        axes["qformat"] = _parse_formats(args.qformats, flag="--qformats")
    if args.solvers:
        axes["solver"] = args.solvers
    if args.boards is not None:
        axes["board"] = _parse_board_names(args.boards, "--boards")
    else:
        axes["board"] = list(BOARDS)
    if args.replicas:
        axes["replicas"] = args.replicas
    if args.policies:
        axes["policy"] = args.policies
    if args.batch_sizes:
        axes["batch_size"] = args.batch_sizes

    fixed: Dict[str, object] = {}
    if args.arrivals is not None:
        fixed["arrival"] = args.arrivals
    if args.rate is not None:
        fixed["arrival_rate_hz"] = args.rate
    if args.requests is not None:
        fixed["n_requests"] = args.requests
    if args.duration is not None:
        fixed["duration_s"] = args.duration
    if args.slo_ms is not None:
        fixed["slo_s"] = args.slo_ms / 1000.0
    if args.count is not None:
        fixed["count"] = args.count

    cache = ResultCache(args.cache_dir) if args.cache_dir is not None else None
    report = optimize(
        SearchSpace(axes=axes, fixed=fixed),
        objective=args.objective,
        constraints=args.constraint,
        fidelity=args.fidelity,
        budget=args.budget,
        seed=args.seed,
        cache=cache,
        workers=args.workers,
        evaluator=evaluator,
    )
    if args.format == "json":
        text = report.to_json()
    elif args.format == "csv":
        text = report.to_csv()
    else:
        text = report.render()
    return CommandOutput(text, report.as_dict())


def _sim_board_comparison(scenario, boards: List[str], args, evaluator: Evaluator) -> CommandOutput:
    """Run the same serving scenario on several boards and compare.

    Every run shares the scenario's seed, so deterministic and Poisson
    arrival processes offer *identical* request traces to each board — the
    comparison isolates the platform.
    """

    from .sim import simulate

    rows: List[Dict[str, object]] = []
    reports: List[Dict[str, object]] = []
    for name in boards:
        report = simulate(
            scenario.replace(board=name),
            evaluator=evaluator,
            mix=_parse_mix(args.mix, scenario.replace(board=name)) if args.mix else None,
        )
        s = report.scenario
        lat = report.latency
        rows.append(
            {
                "board": name,
                "replicas": s["replicas"],
                "ps_cores": s["ps_cores"],
                "completed": report.requests["completed"],
                "throughput_rps": round(report.throughput_rps, 4),
                "p50_s": round(lat.percentiles[50], 6),
                "p95_s": round(lat.percentiles[95], 6),
                "p99_s": round(lat.percentiles[99], 6),
                "util_ps": round(report.utilization["ps"], 3),
                "util_pl": round(report.utilization["accelerator_mean"], 3),
                "energy_per_req_J": (
                    round(report.energy["energy_per_request_J"], 4)
                    if report.energy["energy_per_request_J"] is not None
                    else None
                ),
            }
        )
        reports.append(report.as_dict())
    title = (
        f"Cross-board serving: {scenario.model}-{scenario.depth} under one "
        f"{scenario.arrival} trace (seed {scenario.seed})"
    )
    if args.format == "csv":
        import csv as _csv
        import io

        buf = io.StringIO()
        writer = _csv.writer(buf, lineterminator="\n")
        writer.writerow(list(rows[0].keys()))
        for row in rows:
            writer.writerow(list(row.values()))
        text = buf.getvalue().rstrip("\n")
    elif args.format == "json":
        text = json.dumps(reports, indent=2)
    else:
        text = format_records(rows, title=title)
    return CommandOutput(text, reports)


def _configure_timing(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--n-units", nargs="*", type=int, default=[1, 4, 8, 16, 32],
        help="MAC-unit counts to analyze",
    )
    p.add_argument(
        "--clock-mhz", type=float, default=None,
        help="target PL clock in MHz (default: the board's PL clock)",
    )
    p.add_argument(
        "--board", default=None,
        help="registered board whose fabric scale / clock target to analyze "
        "(default: the reference PYNQ-Z2)",
    )


@command("timing", help="timing-closure sweep over MAC-unit counts", configure=_configure_timing)
def _cmd_timing(args, evaluator: Evaluator) -> CommandOutput:
    if any(n < 1 for n in args.n_units):
        raise ValueError("--n-units entries must be positive integers")
    target_hz = args.clock_mhz * 1e6 if args.clock_mhz is not None else None
    try:
        reports = evaluator.timing_reports(args.n_units, target_hz=target_hz, board=args.board)
    except KeyError as exc:
        raise ValueError(exc.args[0] if exc.args else str(exc)) from exc
    lines = ["Timing closure (critical-path model)"]
    lines.extend(str(report) for report in reports)
    return CommandOutput("\n".join(lines), [report.as_dict() for report in reports])


def _configure_accuracy_sweep(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--block", choices=("layer1", "layer2_2", "layer3_2"), default="layer3_2",
        help="PL block whose datapath is swept",
    )
    p.add_argument(
        "--formats", nargs="*", default=None, metavar="WL:FB",
        help="explicit Q-formats, e.g. 16:8 12:6 (default: the built-in ladder)",
    )
    p.add_argument(
        "--wordlengths", nargs="*", type=int, default=None,
        help="word lengths resolved to their conventional fraction bits "
        "(alternative to --formats)",
    )
    p.add_argument("--n-units", nargs="*", type=int, default=[16])
    p.add_argument("--images", type=int, default=8, help="images per batched forward pass")
    p.add_argument("--seed", type=int, default=0, help="weight/input generator seed")
    p.add_argument(
        "--input-scale", type=float, default=0.5,
        help="input magnitude (larger values push narrow formats into saturation)",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the sharded sweep (requires --chunk-size; "
        "results are worker-count-invariant)",
    )
    p.add_argument(
        "--chunk-size", type=int, default=None, metavar="IMAGES",
        help="images per streamed chunk (per-chunk seeded streams, bounded "
        "peak memory; default: the legacy single-batch path)",
    )
    p.add_argument("--format", choices=("table", "csv", "json", "pareto"), default="table")
    p.add_argument("--pareto-x", default="latency_s", help="x metric of --format pareto")
    p.add_argument("--pareto-y", default="rms_error", help="y metric of --format pareto")


def _parse_formats(entries, flag: str = "--formats") -> List:
    """Parse ``WL:FB`` entries into (word_length, fraction_bits) pairs."""

    pairs = []
    for entry in entries:
        parts = entry.split(":")
        if len(parts) != 2:
            raise ValueError(f"bad {flag} entry '{entry}'; expected WL:FB (e.g. 16:8)")
        try:
            pairs.append((int(parts[0]), int(parts[1])))
        except ValueError:
            raise ValueError(f"bad {flag} entry '{entry}'; expected integers WL:FB")
    return pairs


@command(
    "accuracy-sweep",
    help="accuracy-vs-Q-format-vs-latency frontier of the PL datapath",
    configure=_configure_accuracy_sweep,
)
def _cmd_accuracy_sweep(args, evaluator: Evaluator) -> CommandOutput:
    if args.formats is not None and args.wordlengths is not None:
        raise ValueError("pass either --formats or --wordlengths, not both")
    formats = None
    if args.formats is not None:
        formats = _parse_formats(args.formats)
    elif args.wordlengths is not None:
        formats = [(wl, fraction_bits_for(wl)) for wl in args.wordlengths]
    result = evaluator.accuracy_sweep(
        block=args.block,
        formats=formats,
        n_units=args.n_units,
        images=args.images,
        seed=args.seed,
        input_scale=args.input_scale,
        workers=args.workers,
        chunk_size=args.chunk_size,
    )
    repro_line = "reproducibility: " + ", ".join(
        f"{key}={value}" for key, value in result.reproducibility.items()
    )
    if args.format == "pareto":
        try:
            front = result.pareto_front(args.pareto_x, args.pareto_y)
        except KeyError as exc:
            raise ValueError(f"unknown pareto metric: {exc.args[0] if exc.args else exc}")
        text = format_records(
            front.records(),
            title=(
                f"Accuracy/latency Pareto front over ({args.pareto_x}, {args.pareto_y}): "
                f"{len(front)} of {len(result)} points"
            ),
        )
        return CommandOutput(
            "\n".join([text, repro_line]),
            {"reproducibility": front.reproducibility, "points": front.records()},
        )
    if args.format == "csv":
        text = result.to_csv()
    elif args.format == "json":
        text = result.to_json()
    else:
        text = "\n".join(
            [
                format_records(
                    result.records(),
                    title=f"Accuracy-vs-format sweep: {args.block}, {args.images} images",
                ),
                repro_line,
            ]
        )
    return CommandOutput(text, {"reproducibility": result.reproducibility, "points": result.records()})


def _configure_rtl(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--block", default="layer3_2",
        help="offloadable block geometry to emit (layer1/layer2_2/layer3_2)",
    )
    p.add_argument("--board", default="PYNQ-Z2", help="board whose spec sizes the design")
    p.add_argument(
        "--qformat", default="32:20", metavar="WL:FB",
        help="fixed-point format of the datapath (default: the paper's Q20)",
    )
    p.add_argument(
        "--n-units", type=int, default=None,
        help="MAC-unit count (default: largest conv_xN that fits the board and closes timing)",
    )
    p.add_argument("--out", default="rtl_out", help="bundle output directory")
    p.add_argument(
        "--vectors", type=int, default=0, metavar="IMAGES",
        help="dump testbench vectors for this many stimulus images per iteration",
    )
    p.add_argument("--iterations", type=int, default=2, help="Euler iterations per vector image")
    p.add_argument("--seed", type=int, default=0, help="weight/stimulus PRNG seed")
    p.add_argument("--time-concat", action="store_true", help="emit the time-concat input channel")
    p.add_argument("--step-size", type=float, default=1.0, help="Euler step size h")
    p.add_argument(
        "--check", action="store_true",
        help="run the pure-Python structural checker on the emitted bundle",
    )
    p.add_argument(
        "--simulate", action="store_true",
        help="run the iverilog conformance testbench (skipped when not installed)",
    )


@command(
    "rtl",
    help="emit the ODEBlock Verilog bundle (+ vectors, structural check, simulation)",
    configure=_configure_rtl,
)
def _cmd_rtl(args, evaluator: Evaluator) -> CommandOutput:
    from .api.rtl import export_rtl

    (qformat,) = _parse_formats([args.qformat], flag="--qformat")
    if args.simulate and args.vectors <= 0:
        raise ValueError("--simulate needs --vectors N (there is nothing to replay otherwise)")
    summary = export_rtl(
        args.out,
        block=args.block,
        board=args.board,
        qformat=qformat,
        n_units=args.n_units,
        time_concat=args.time_concat,
        step_size=args.step_size,
        vectors=args.vectors,
        iterations=args.iterations,
        seed=args.seed,
        check=args.check,
        simulate=args.simulate,
    )
    lines = [
        f"RTL bundle: {summary['out_dir']}",
        f"  block     {summary['block']['name']} "
        f"({summary['block']['out_channels']}ch {summary['block']['height']}x{summary['block']['width']})",
        f"  qformat   {summary['qformat']['word_length']}:{summary['qformat']['fraction_bits']}",
        f"  board     {summary['board']['name']}",
        f"  n_units   {summary['n_units']} ({summary['n_banks']} weight banks)",
        f"  resources {summary['resources']['dsp']} DSP, {summary['resources']['bram_tiles']} BRAM tiles",
        f"  files     {len(summary['files'])}",
    ]
    if summary["vectors"] is not None:
        lines.append(
            f"  vectors   {summary['vectors']['records']} records "
            f"x {summary['vectors']['words_per_map']} words"
        )
    if summary["check"] is not None:
        lines.append(f"  check     {'ok' if summary['check']['ok'] else 'FAILED'}")
    sim = summary["simulation"]
    if sim is not None:
        if sim.get("skipped"):
            lines.append(f"  simulate  skipped ({sim['reason']})")
        else:
            lines.append(
                f"  simulate  {'PASS' if sim['passed'] else 'FAIL'} "
                f"({sim['vectors']} vectors, {sim['words']} words)"
            )
    return CommandOutput("\n".join(lines), summary)


def _pareto_front_or_error(table: BatchResult, x: str, y: str, maximize_x: bool, maximize_y: bool):
    """Extract a Pareto front, mapping metric mistakes to clean CLI errors."""

    try:
        return table.pareto_front(x, y, maximize_x=maximize_x, maximize_y=maximize_y)
    except KeyError as exc:
        raise ValueError(
            f"unknown pareto metric: {exc.args[0] if exc.args else exc}"
        ) from exc
    except (TypeError, ValueError) as exc:
        raise ValueError(
            f"pareto metrics must be numeric columns (got --pareto-x {x} --pareto-y {y}): {exc}"
        ) from exc


# -- parser / entry point ---------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser from the command registry."""

    parser = argparse.ArgumentParser(
        prog="repro-odenet",
        description="Regenerate results of 'Accelerating ODE-Based Neural Networks on Low-Cost FPGAs'",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for cmd in _REGISTRY.values():
        p = sub.add_parser(cmd.name, help=cmd.help)
        if cmd.configure is not None:
            cmd.configure(p)
        p.add_argument(
            "--json",
            action="store_true",
            help="emit the structured result as JSON instead of formatted text",
        )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""

    parser = build_parser()
    args = parser.parse_args(argv)
    cmd = _REGISTRY[args.command]
    evaluator = Evaluator()
    try:
        output = cmd.handler(args, evaluator)
    except SweepError as exc:
        # A design point blew up mid-grid: name it (and its index) cleanly
        # instead of dumping a worker-pool traceback.
        print(f"{parser.prog}: error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # Scenario/sweep validation errors (bad depth, n_units, workers, ...)
        # surface as clean CLI errors rather than tracebacks.
        print(f"{parser.prog}: error: {exc}", file=sys.stderr)
        return 2
    if getattr(args, "json", False):
        print(json.dumps(output.data, indent=2))
    else:
        print(output.text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

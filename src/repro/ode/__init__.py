"""ODE solver substrate: fixed-grid and adaptive solvers plus the adjoint method.

This package plays the role of ``torchdiffeq`` in the original work: it
provides ``ODESolve`` (Equation 4 of the paper), a torchdiffeq-style
``odeint`` front end, adaptive reference solvers, and adjoint-method
gradients (Equations 7–9).
"""

from .adaptive import AdaptiveResult, AdaptiveSolver, adaptive_integrate, dopri5, heun_euler
from .adjoint import adjoint_backward, odeint_adjoint, vjp
from .odeint import odeint, odesolve
from .solvers import (
    EULER,
    HEUN,
    MIDPOINT,
    RK4,
    ButcherTableau,
    FixedGridSolver,
    available_methods,
    get_solver,
    solver_order,
    steps_for_interval,
)

__all__ = [
    "ButcherTableau",
    "FixedGridSolver",
    "EULER",
    "MIDPOINT",
    "HEUN",
    "RK4",
    "get_solver",
    "available_methods",
    "solver_order",
    "steps_for_interval",
    "odesolve",
    "odeint",
    "odeint_adjoint",
    "adjoint_backward",
    "vjp",
    "AdaptiveSolver",
    "AdaptiveResult",
    "adaptive_integrate",
    "dopri5",
    "heun_euler",
]

"""Adaptive step-size ODE solvers.

The paper only evaluates fixed-step Euler on the FPGA, but its discussion of
solver choice (Section 2.3: "a fourth-order Runge-Kutta method is used for
training with high accuracy, while Euler method is used for prediction") and
the future-work section motivate an adaptive reference solver.  Two embedded
Runge–Kutta pairs are provided:

* ``rk12`` — Heun–Euler (order 2(1)), the cheapest adaptive pair.
* ``rk45`` — Dormand–Prince 5(4), the solver used by ``torchdiffeq``'s
  default ``dopri5`` method.

They operate on plain NumPy arrays (they are reference solvers for accuracy
comparisons and for validating the fixed-grid methods, not training paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

import numpy as np

__all__ = ["AdaptiveResult", "AdaptiveSolver", "heun_euler", "dopri5", "adaptive_integrate"]

DynamicsFn = Callable[[np.ndarray, float], np.ndarray]


@dataclass
class AdaptiveResult:
    """Outcome of an adaptive integration."""

    y: np.ndarray
    t: float
    num_steps: int
    num_rejected: int
    num_function_evals: int
    times: List[float] = field(default_factory=list)
    states: List[np.ndarray] = field(default_factory=list)


@dataclass(frozen=True)
class _EmbeddedTableau:
    name: str
    order: int
    a: Tuple[Tuple[float, ...], ...]
    b_high: Tuple[float, ...]
    b_low: Tuple[float, ...]
    c: Tuple[float, ...]

    @property
    def stages(self) -> int:
        return len(self.b_high)


_HEUN_EULER = _EmbeddedTableau(
    name="rk12",
    order=2,
    a=((), (1.0,)),
    b_high=(0.5, 0.5),
    b_low=(1.0, 0.0),
    c=(0.0, 1.0),
)

_DOPRI5 = _EmbeddedTableau(
    name="rk45",
    order=5,
    a=(
        (),
        (1 / 5,),
        (3 / 40, 9 / 40),
        (44 / 45, -56 / 15, 32 / 9),
        (19372 / 6561, -25360 / 2187, 64448 / 6561, -212 / 729),
        (9017 / 3168, -355 / 33, 46732 / 5247, 49 / 176, -5103 / 18656),
        (35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84),
    ),
    b_high=(35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84, 0.0),
    b_low=(
        5179 / 57600,
        0.0,
        7571 / 16695,
        393 / 640,
        -92097 / 339200,
        187 / 2100,
        1 / 40,
    ),
    c=(0.0, 1 / 5, 3 / 10, 4 / 5, 8 / 9, 1.0, 1.0),
)


class AdaptiveSolver:
    """Embedded Runge–Kutta pair with PI-free step-size control."""

    def __init__(
        self,
        tableau: _EmbeddedTableau,
        rtol: float = 1e-6,
        atol: float = 1e-8,
        safety: float = 0.9,
        min_factor: float = 0.2,
        max_factor: float = 5.0,
        max_steps: int = 100_000,
    ) -> None:
        self.tableau = tableau
        self.rtol = rtol
        self.atol = atol
        self.safety = safety
        self.min_factor = min_factor
        self.max_factor = max_factor
        self.max_steps = max_steps

    @property
    def name(self) -> str:
        return self.tableau.name

    def _error_norm(self, error: np.ndarray, y0: np.ndarray, y1: np.ndarray) -> float:
        scale = self.atol + self.rtol * np.maximum(np.abs(y0), np.abs(y1))
        return float(np.sqrt(np.mean((error / scale) ** 2)))

    def _step(
        self, func: DynamicsFn, y: np.ndarray, t: float, h: float
    ) -> Tuple[np.ndarray, float, int]:
        tab = self.tableau
        ks: List[np.ndarray] = []
        for i in range(tab.stages):
            yi = y.copy()
            for j, coeff in enumerate(tab.a[i]):
                if coeff != 0.0:
                    yi += h * coeff * ks[j]
            ks.append(np.asarray(func(yi, t + tab.c[i] * h)))
        y_high = y.copy()
        y_low = y.copy()
        for bh, bl, k in zip(tab.b_high, tab.b_low, ks):
            if bh != 0.0:
                y_high = y_high + h * bh * k
            if bl != 0.0:
                y_low = y_low + h * bl * k
        error = self._error_norm(y_high - y_low, y, y_high)
        return y_high, error, tab.stages

    def integrate(
        self,
        func: DynamicsFn,
        y0: np.ndarray,
        t0: float,
        t1: float,
        first_step: float | None = None,
        record: bool = False,
    ) -> AdaptiveResult:
        """Integrate from ``t0`` to ``t1`` with adaptive step-size control."""

        y = np.asarray(y0, dtype=np.float64).copy()
        direction = 1.0 if t1 >= t0 else -1.0
        span = abs(t1 - t0)
        if span == 0.0:
            return AdaptiveResult(y=y, t=t0, num_steps=0, num_rejected=0, num_function_evals=0)
        h = direction * (first_step if first_step is not None else span / 100.0)

        t = t0
        steps = 0
        rejected = 0
        fevals = 0
        times = [t0]
        states = [y.copy()]
        while (t - t1) * direction < 0.0:
            if steps + rejected > self.max_steps:
                raise RuntimeError("adaptive solver exceeded the maximum number of steps")
            if (t + h - t1) * direction > 0.0:
                h = t1 - t
            y_new, error, evals = self._step(func, y, t, h)
            fevals += evals
            if error <= 1.0 or abs(h) <= 1e-14 * span:
                t += h
                y = y_new
                steps += 1
                if record:
                    times.append(t)
                    states.append(y.copy())
            else:
                rejected += 1
            # Step-size update (standard controller).
            if error == 0.0:
                factor = self.max_factor
            else:
                factor = self.safety * error ** (-1.0 / self.tableau.order)
                factor = min(self.max_factor, max(self.min_factor, factor))
            h *= factor
        return AdaptiveResult(
            y=y,
            t=t,
            num_steps=steps,
            num_rejected=rejected,
            num_function_evals=fevals,
            times=times if record else [],
            states=states if record else [],
        )


def heun_euler(rtol: float = 1e-4, atol: float = 1e-6, **kwargs) -> AdaptiveSolver:
    """Adaptive Heun–Euler (RK2(1)) solver."""

    return AdaptiveSolver(_HEUN_EULER, rtol=rtol, atol=atol, **kwargs)


def dopri5(rtol: float = 1e-6, atol: float = 1e-8, **kwargs) -> AdaptiveSolver:
    """Adaptive Dormand–Prince 5(4) solver (torchdiffeq's default)."""

    return AdaptiveSolver(_DOPRI5, rtol=rtol, atol=atol, **kwargs)


def adaptive_integrate(
    func: DynamicsFn,
    y0: np.ndarray,
    t0: float,
    t1: float,
    method: str = "rk45",
    rtol: float = 1e-6,
    atol: float = 1e-8,
) -> AdaptiveResult:
    """Convenience wrapper selecting an adaptive solver by name."""

    method = method.lower()
    if method in ("rk12", "heun_euler", "adaptive_heun"):
        solver = heun_euler(rtol=rtol, atol=atol)
    elif method in ("rk45", "dopri5"):
        solver = dopri5(rtol=rtol, atol=atol)
    else:
        raise ValueError(f"unknown adaptive method '{method}'")
    return solver.integrate(func, y0, t0, t1)

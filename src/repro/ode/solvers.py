"""Fixed-grid ODE solvers (Euler, midpoint, Heun, RK4).

These implement the ``ODESolve`` function of the paper (Equation 4): the
integration range ``[t0, t1]`` is divided into fixed steps of size ``h`` and a
recurrence formula advances the state.  Euler (Equation 5) is the solver the
paper uses for prediction on the FPGA; second- and fourth-order Runge–Kutta
are implemented for the training-accuracy discussion and the solver ablation.

The steppers are generic: the state may be a plain ``numpy.ndarray`` *or* a
:class:`repro.nn.tensor.Tensor`, because all operations used (addition and
scalar multiplication) are defined for both.  When the state is a Tensor the
whole integration is recorded on the autograd graph, which is how
backpropagation-through-the-solver (the non-adjoint training mode) works.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "ButcherTableau",
    "EULER",
    "MIDPOINT",
    "HEUN",
    "RK4",
    "FixedGridSolver",
    "get_solver",
    "available_methods",
    "solver_order",
    "steps_for_interval",
]

State = Union[np.ndarray, "Tensor"]  # noqa: F821 - Tensor imported lazily
DynamicsFn = Callable[[State, float], State]


@dataclass(frozen=True)
class ButcherTableau:
    """Butcher tableau of an explicit Runge–Kutta method."""

    name: str
    order: int
    a: Tuple[Tuple[float, ...], ...]
    b: Tuple[float, ...]
    c: Tuple[float, ...]

    @property
    def stages(self) -> int:
        return len(self.b)


EULER = ButcherTableau(name="euler", order=1, a=((),), b=(1.0,), c=(0.0,))

MIDPOINT = ButcherTableau(
    name="midpoint",
    order=2,
    a=((), (0.5,)),
    b=(0.0, 1.0),
    c=(0.0, 0.5),
)

HEUN = ButcherTableau(
    name="heun",
    order=2,
    a=((), (1.0,)),
    b=(0.5, 0.5),
    c=(0.0, 1.0),
)

RK4 = ButcherTableau(
    name="rk4",
    order=4,
    a=((), (0.5,), (0.0, 0.5), (0.0, 0.0, 1.0)),
    b=(1.0 / 6.0, 1.0 / 3.0, 1.0 / 3.0, 1.0 / 6.0),
    c=(0.0, 0.5, 0.5, 1.0),
)

_TABLEAUS: Dict[str, ButcherTableau] = {
    "euler": EULER,
    "midpoint": MIDPOINT,
    "rk2": MIDPOINT,
    "heun": HEUN,
    "rk4": RK4,
}


def available_methods() -> List[str]:
    """Names accepted by :func:`get_solver` / :func:`repro.ode.odeint`."""

    return sorted(_TABLEAUS)


def solver_order(method: str) -> int:
    """Order of accuracy of the named fixed-grid method."""

    return _TABLEAUS[method.lower()].order


class FixedGridSolver:
    """Explicit Runge–Kutta integrator on a fixed time grid."""

    def __init__(self, tableau: ButcherTableau) -> None:
        self.tableau = tableau

    @property
    def name(self) -> str:
        return self.tableau.name

    @property
    def order(self) -> int:
        return self.tableau.order

    @property
    def stages_per_step(self) -> int:
        """Number of dynamics-function evaluations per step.

        This drives the execution-time model: the FPGA executes the ODEBlock
        body once per stage per step, so Euler costs one block execution per
        step while RK4 costs four.
        """

        return self.tableau.stages

    def step(self, func: DynamicsFn, z: State, t: float, h: float) -> State:
        """Advance the state by one step of size ``h``."""

        tab = self.tableau
        ks: List[State] = []
        for i in range(tab.stages):
            zi = z
            for j, coeff in enumerate(tab.a[i]):
                if coeff != 0.0:
                    zi = zi + (h * coeff) * ks[j]
            ks.append(func(zi, t + tab.c[i] * h))
        out = z
        for bi, ki in zip(tab.b, ks):
            if bi != 0.0:
                out = out + (h * bi) * ki
        return out

    def integrate(
        self,
        func: DynamicsFn,
        z0: State,
        t0: float,
        t1: float,
        num_steps: int,
        return_trajectory: bool = False,
    ) -> Union[State, Tuple[State, List[State]]]:
        """Integrate from ``t0`` to ``t1`` in ``num_steps`` equal steps.

        This is the paper's ``ODESolve(z(t0), t0, t1, f)``.  Negative
        direction (``t1 < t0``) is supported, which the adjoint method uses
        to integrate backwards in time.
        """

        if num_steps <= 0:
            raise ValueError("num_steps must be a positive integer")
        h = (t1 - t0) / num_steps
        z = z0
        trajectory = [z0]
        t = t0
        for _ in range(num_steps):
            z = self.step(func, z, t, h)
            t += h
            if return_trajectory:
                trajectory.append(z)
        if return_trajectory:
            return z, trajectory
        return z


def get_solver(method: str) -> FixedGridSolver:
    """Look up a fixed-grid solver by name (euler / midpoint / rk2 / heun / rk4)."""

    key = method.lower()
    if key not in _TABLEAUS:
        raise ValueError(
            f"unknown ODE solver '{method}'; available: {', '.join(available_methods())}"
        )
    return FixedGridSolver(_TABLEAUS[key])


def steps_for_interval(t0: float, t1: float, step_size: float) -> int:
    """Number of fixed steps of (approximately) ``step_size`` covering [t0, t1]."""

    span = abs(t1 - t0)
    if step_size <= 0:
        raise ValueError("step_size must be positive")
    return max(1, int(round(span / step_size)))

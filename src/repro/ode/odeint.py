"""Public ``odeint`` API (torchdiffeq-compatible surface).

Two entry points are provided:

* :func:`odesolve` — the paper's ``ODESolve(z(t0), t0, t1, f)`` (Equation 4):
  integrate once from ``t0`` to ``t1`` with a fixed number of steps.  Works on
  NumPy arrays and autograd Tensors; when the input is a Tensor the graph is
  recorded (backprop through the solver).
* :func:`odeint` — evaluate the solution at a sequence of time points, like
  ``torchdiffeq.odeint(func, y0, t)``, returning the stacked trajectory.

Use :func:`repro.ode.adjoint.odeint_adjoint` for constant-memory gradients.
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

import numpy as np

from ..nn.tensor import Tensor
from .adaptive import adaptive_integrate
from .solvers import FixedGridSolver, get_solver, steps_for_interval

__all__ = ["odesolve", "odeint"]

State = Union[np.ndarray, Tensor]
DynamicsFn = Callable[[State, float], State]


def odesolve(
    func: DynamicsFn,
    z0: State,
    t0: float,
    t1: float,
    method: str = "euler",
    num_steps: int | None = None,
    step_size: float | None = None,
) -> State:
    """Integrate ``dz/dt = f(z, t)`` from ``t0`` to ``t1``.

    Exactly one of ``num_steps`` / ``step_size`` may be given; by default a
    single step is taken (which for the Euler method is one ResNet building
    block, per the paper's Section 2.3 correspondence).
    """

    if num_steps is not None and step_size is not None:
        raise ValueError("pass either num_steps or step_size, not both")
    if num_steps is None:
        num_steps = (
            steps_for_interval(t0, t1, step_size) if step_size is not None else 1
        )
    solver = get_solver(method)
    return solver.integrate(func, z0, t0, t1, num_steps)


def odeint(
    func: DynamicsFn,
    y0: State,
    t: Sequence[float],
    method: str = "euler",
    steps_per_interval: int = 1,
    rtol: float = 1e-6,
    atol: float = 1e-8,
):
    """Evaluate the ODE solution at every time in ``t``.

    Parameters
    ----------
    func:
        Dynamics ``f(y, t)``.
    y0:
        Initial state (NumPy array or Tensor).
    t:
        Monotonic sequence of evaluation times; ``t[0]`` is the initial time.
    method:
        ``euler`` / ``midpoint`` / ``heun`` / ``rk4`` for fixed-grid
        integration, or ``rk12`` / ``rk45`` for adaptive integration
        (adaptive methods require NumPy-array states).
    steps_per_interval:
        Number of fixed steps between consecutive requested times.

    Returns
    -------
    Tensor or numpy.ndarray
        Stacked states with shape ``(len(t), *y0.shape)``; a Tensor when the
        input was a Tensor (so gradients flow), else an ndarray.
    """

    times = [float(x) for x in t]
    if len(times) < 2:
        raise ValueError("odeint requires at least two time points")
    diffs = np.diff(times)
    if not (np.all(diffs > 0) or np.all(diffs < 0)):
        raise ValueError("odeint time points must be strictly monotonic")

    method_l = method.lower()
    is_tensor = isinstance(y0, Tensor)

    if method_l in ("rk12", "rk45", "dopri5", "heun_euler", "adaptive_heun"):
        if is_tensor:
            raise TypeError("adaptive methods operate on NumPy arrays, not Tensors")
        y = np.asarray(y0, dtype=np.float64)
        outputs = [y.copy()]
        for ta, tb in zip(times[:-1], times[1:]):
            result = adaptive_integrate(func, y, ta, tb, method=method_l, rtol=rtol, atol=atol)
            y = result.y
            outputs.append(y.copy())
        return np.stack(outputs, axis=0)

    solver: FixedGridSolver = get_solver(method_l)
    state: State = y0
    outputs = [state]
    for ta, tb in zip(times[:-1], times[1:]):
        state = solver.integrate(func, state, ta, tb, steps_per_interval)
        outputs.append(state)

    if is_tensor:
        return Tensor.stack(outputs, axis=0)
    return np.stack([np.asarray(o) for o in outputs], axis=0)

"""Adjoint-method gradients for Neural ODEs (Equations 7–9 of the paper).

Rather than back-propagating through every unrolled solver step (which stores
the whole trajectory), the adjoint method integrates the augmented system

.. math::

    \\frac{d}{dt}\\begin{bmatrix} z \\\\ a \\\\ g_\\theta \\end{bmatrix}
    = \\begin{bmatrix} f(z, t, \\theta) \\\\
        -a^\\top \\partial f / \\partial z \\\\
        -a^\\top \\partial f / \\partial \\theta \\end{bmatrix}

backwards in time from :math:`t_1` to :math:`t_0`, starting from the loss
gradient :math:`a(t_1) = \\partial L / \\partial z(t_1)`, exactly as the
paper's Equation 9 describes.  Memory use is O(1) in the number of solver
steps, which is the property the paper highlights.

:func:`odeint_adjoint` plugs this into the in-repo autograd: the forward pass
runs the plain (graph-free) solver, and the recorded backward closure runs the
augmented backward integration when the output gradient arrives.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.tensor import Tensor, no_grad
from .solvers import FixedGridSolver, get_solver

__all__ = ["vjp", "adjoint_backward", "odeint_adjoint"]

# A dynamics function that maps (Tensor state, time) -> Tensor derivative and
# whose trainable parameters are given explicitly.
TensorDynamics = Callable[[Tensor, float], Tensor]


def vjp(
    func: TensorDynamics,
    z: np.ndarray,
    t: float,
    adjoint: np.ndarray,
    params: Sequence[Tensor],
) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray]]:
    """Vector–Jacobian products of the dynamics.

    Returns ``(f(z, t), a^T ∂f/∂z, [a^T ∂f/∂θ_i ...])`` evaluated with the
    in-repo autograd.  ``params`` gradients are *not* accumulated into the
    parameter tensors; fresh arrays are returned instead so the adjoint
    integration can manage its own accumulator.
    """

    z_t = Tensor(np.asarray(z, dtype=np.float64), requires_grad=True)
    # Stash and clear existing gradients so this local backward pass does not
    # pollute the training accumulators.
    saved_grads = [p.grad for p in params]
    for p in params:
        p.grad = None

    out = func(z_t, t)
    out.backward(adjoint)

    f_value = out.data.copy()
    grad_z = z_t.grad.copy() if z_t.grad is not None else np.zeros_like(z_t.data)
    grad_params = [
        (p.grad.copy() if p.grad is not None else np.zeros_like(p.data)) for p in params
    ]

    for p, saved in zip(params, saved_grads):
        p.grad = saved
    return f_value, grad_z, grad_params


def adjoint_backward(
    func: TensorDynamics,
    z1: np.ndarray,
    grad_z1: np.ndarray,
    t0: float,
    t1: float,
    num_steps: int,
    params: Sequence[Tensor],
    solver: Optional[FixedGridSolver] = None,
) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray]]:
    """Run the augmented backward integration of Equation 9.

    Parameters
    ----------
    func:
        Dynamics ``f(z, t)`` (parameters captured in ``params``).
    z1:
        State at the end of the forward integration, ``z(t1)``.
    grad_z1:
        Loss gradient with respect to ``z(t1)`` (the adjoint initial value).
    t0, t1, num_steps:
        The forward integration interval and number of solver steps; the
        backward pass uses the same grid in reverse.
    params:
        Parameter tensors of the dynamics.
    solver:
        Fixed-grid solver used for the backward integration (defaults to the
        Euler solver, matching the paper's prediction configuration).

    Returns
    -------
    (z0, grad_z0, grad_params):
        The reconstructed initial state, the loss gradient with respect to
        the initial state, and the loss gradient for every parameter.
    """

    solver = solver or get_solver("euler")
    z1 = np.asarray(z1, dtype=np.float64)
    grad_z1 = np.asarray(grad_z1, dtype=np.float64)
    param_shapes = [p.data.shape for p in params]
    param_sizes = [p.data.size for p in params]
    total_param = int(sum(param_sizes))

    state_size = z1.size
    aug0 = np.concatenate(
        [z1.reshape(-1), grad_z1.reshape(-1), np.zeros(total_param)]
    )

    def augmented(aug: np.ndarray, t: float) -> np.ndarray:
        z = aug[:state_size].reshape(z1.shape)
        a = aug[state_size : 2 * state_size].reshape(z1.shape)
        with no_grad():
            pass  # graph construction handled inside vjp per-call
        f_val, grad_z, grad_params = vjp(func, z, t, a, params)
        flat_grads = (
            np.concatenate([g.reshape(-1) for g in grad_params])
            if grad_params
            else np.zeros(0)
        )
        return np.concatenate([f_val.reshape(-1), -grad_z.reshape(-1), -flat_grads])

    aug_final = solver.integrate(augmented, aug0, t1, t0, num_steps)

    z0 = aug_final[:state_size].reshape(z1.shape)
    grad_z0 = aug_final[state_size : 2 * state_size].reshape(z1.shape)
    flat_param_grad = aug_final[2 * state_size :]
    grad_params: List[np.ndarray] = []
    offset = 0
    for shape, size in zip(param_shapes, param_sizes):
        grad_params.append(flat_param_grad[offset : offset + size].reshape(shape))
        offset += size
    return z0, grad_z0, grad_params


def odeint_adjoint(
    func: TensorDynamics,
    z0: Tensor,
    t0: float,
    t1: float,
    num_steps: int,
    params: Sequence[Tensor],
    method: str = "euler",
    backward_method: Optional[str] = None,
) -> Tensor:
    """Integrate ``dz/dt = f(z, t)`` with adjoint-method gradients.

    The forward pass runs without building an autograd graph (constant
    memory); the backward pass integrates the augmented adjoint system.
    Gradients are accumulated into ``z0`` (if it requires grad) and into every
    tensor in ``params``.
    """

    solver = get_solver(method)
    bwd_solver = get_solver(backward_method or method)
    z0 = z0 if isinstance(z0, Tensor) else Tensor(z0)

    def numpy_dynamics(z: np.ndarray, t: float) -> np.ndarray:
        with no_grad():
            out = func(Tensor(z), t)
        return out.data

    with no_grad():
        z1_data = solver.integrate(numpy_dynamics, z0.data.copy(), t0, t1, num_steps)

    parents: List[Tensor] = [z0] + list(params)

    def backward(grad: np.ndarray) -> None:
        _, grad_z0, grad_params = adjoint_backward(
            func,
            z1_data,
            grad,
            t0,
            t1,
            num_steps,
            params,
            solver=bwd_solver,
        )
        z0._accumulate(grad_z0)
        for p, g in zip(params, grad_params):
            p._accumulate(g)

    return Tensor._make(np.asarray(z1_data), parents, backward)

#!/usr/bin/env python
"""Benchmark: the optimizer finds the exhaustive optimum at a fraction of the cost.

Two claims, both *asserted*, never just printed:

1. **Analytic anchor** — at ``fidelity="analytic"`` the optimizer returns
   exactly the constrained argmin of an exhaustive ``sweep_batch`` grid
   (computed here independently from the raw batch columns).
2. **Budget claim** — at ``fidelity="sim"`` on a 16-candidate serving space,
   the search returns the same winner as a full-length seeded simulation of
   *every* candidate while spending **<= 20%** of that exhaustive budget
   (screening prunes provably-infeasible candidates for free; the survivors
   run at full length under the optimizer's own per-candidate seed streams,
   so the comparison is exact, not statistical).

Emits ``BENCH_optimize.json`` (machine-readable trajectory record) next to
the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_optimize.py            # full
    PYTHONPATH=src python benchmarks/bench_optimize.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.api import Evaluator, simulate, sweep_batch
from repro.opt import SearchSpace, optimize
from repro.opt.refine import candidate_seeds
from repro.platform import get_board, list_boards

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The sim-fidelity serving space: every registered board x MAC units x
#: replicas, under one deterministic arrival trace.
SIM_AXES = {"n_units": [16, 32], "replicas": [1, 2]}
P95_BOUND_MS = 215.0


def bench_analytic() -> dict:
    """Claim 1: optimize() == the exhaustive sweep_batch constrained argmin."""

    space = SearchSpace(
        axes={
            "board": list_boards(),
            "qformat": ["16:8", "32:20"],
            "n_units": [16, 32],
        },
    )
    t0 = time.perf_counter()
    report = optimize(
        space,
        objective="board_price_usd",
        constraints=("latency_ms<=500", "meets_timing==1"),
    )
    elapsed = time.perf_counter() - t0

    # Independent exhaustive reference from the raw batch columns.
    candidates = space.candidates()
    table = sweep_batch([space.scenario(c) for c in candidates])
    best = None
    for i, c in enumerate(candidates):
        rec = table.record(i)
        if float(rec["total_w_pl_s"]) * 1e3 > 500 or not bool(rec["meets_timing"]):
            continue
        entry = (get_board(str(rec["board"])).price_usd, c.key)
        if best is None or entry < best:
            best = entry

    match = report.best is not None and best is not None and report.best["key"] == best[1]
    print(f"analytic space          : {space.size} candidates")
    print(f"analytic search         : {elapsed:8.4f} s")
    print(f"analytic winner         : {report.best['key'] if report.best else None}")
    print(f"exhaustive argmin       : {best[1] if best else None}")
    print(f"analytic anchor holds   : {match}")
    return {
        "space_size": space.size,
        "winner": report.best["key"] if report.best else None,
        "exhaustive_winner": best[1] if best else None,
        "matches_exhaustive": match,
        "seconds": round(elapsed, 4),
    }


def bench_sim(quick: bool, seed: int) -> dict:
    """Claim 2: the sim-fidelity winner at <= 20% of the exhaustive budget."""

    n_requests = 30 if quick else 100
    space = SearchSpace(
        axes={"board": list_boards(), **SIM_AXES},
        fixed={
            "arrival": "deterministic",
            "arrival_rate_hz": 1.0,
            "n_requests": n_requests,
        },
    )
    objective = "min:energy_per_request_J"
    constraint = f"p95_ms<={P95_BOUND_MS:g}"

    t0 = time.perf_counter()
    report = optimize(space, objective, (constraint,), fidelity="sim", seed=seed)
    search_s = time.perf_counter() - t0

    # Exhaustive reference: full-length simulate() of every candidate under
    # the optimizer's own per-candidate seed streams.
    evaluator = Evaluator()
    t0 = time.perf_counter()
    best = None
    for c in space.candidates():
        sim_seed, _ = candidate_seeds(seed, c.key)
        rep = simulate(space.sim_scenario(c, seed=sim_seed), evaluator=evaluator)
        if rep.latency.percentiles[95] * 1e3 > P95_BOUND_MS:
            continue
        energy = rep.energy["energy_per_request_J"]
        if energy is None:
            continue
        entry = (energy, c.key)
        if best is None or entry < best:
            best = entry
    exhaustive_s = time.perf_counter() - t0

    exhaustive_units = float(space.size)
    spent_fraction = report.budget_spent / exhaustive_units
    match = report.best is not None and best is not None and report.best["key"] == best[1]
    statuses = {}
    for c in report.candidates:
        statuses[c.status] = statuses.get(c.status, 0) + 1

    print(f"sim space               : {space.size} candidates x {n_requests} requests")
    print(f"search                  : {search_s:8.4f} s, "
          f"{report.budget_spent:.3g} of {exhaustive_units:g} units "
          f"({100 * spent_fraction:.1f}% of exhaustive), "
          f"{report.evaluations} evaluation(s)")
    print(f"exhaustive reference    : {exhaustive_s:8.4f} s, {exhaustive_units:g} units")
    print(f"candidate fates         : {statuses}")
    print(f"search winner           : {report.best['key'] if report.best else None}")
    print(f"exhaustive winner       : {best[1] if best else None}")
    print(f"winner matches          : {match}")
    return {
        "space_size": space.size,
        "n_requests": n_requests,
        "objective": objective,
        "constraint": constraint,
        "seed": seed,
        "exhaustive_units": exhaustive_units,
        "budget_units": report.budget,
        "spent_units": report.budget_spent,
        "spent_fraction": round(spent_fraction, 4),
        "evaluations": report.evaluations,
        "statuses": statuses,
        "winner": report.best["key"] if report.best else None,
        "exhaustive_winner": best[1] if best else None,
        "matches_exhaustive": match,
        "search_seconds": round(search_s, 4),
        "exhaustive_seconds": round(exhaustive_s, 4),
    }


def bench(quick: bool, seed: int, output: Path) -> int:
    analytic = bench_analytic()
    print()
    sim = bench_sim(quick, seed)

    payload = {
        "benchmark": "bench_optimize",
        "quick": quick,
        "analytic": analytic,
        "sim": sim,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {output}")

    if not analytic["matches_exhaustive"]:
        print("FAIL: analytic winner differs from the exhaustive sweep_batch argmin",
              file=sys.stderr)
        return 1
    if not sim["matches_exhaustive"]:
        print("FAIL: sim winner differs from the exhaustive seeded argmin",
              file=sys.stderr)
        return 1
    if sim["spent_units"] > 0.2 * sim["exhaustive_units"] + 1e-9:
        print(f"FAIL: spent {sim['spent_units']:g} units, above 20% of the "
              f"exhaustive {sim['exhaustive_units']:g}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="short full-length runs (30 requests instead of 100; CI smoke)",
    )
    parser.add_argument("--seed", type=int, default=20, help="run seed")
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_optimize.json",
        help="machine-readable result file (default: repo root)",
    )
    args = parser.parse_args(argv)
    return bench(quick=args.quick, seed=args.seed, output=args.output)


if __name__ == "__main__":
    sys.exit(main())

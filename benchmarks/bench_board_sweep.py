#!/usr/bin/env python
"""Benchmark: the board axis through the batch engine vs the loop engine.

The platform refactor made the board a first-class sweep axis: the batch
engine broadcasts every board-derived quantity (PS/PL clocks, fabric totals,
delay scale, wattages) as per-board columns instead of falling back to the
scalar evaluator.  This benchmark measures that claim on a multi-board grid
(every registered board crossed with models x depths x units x formats):

1. results must be **field-for-field identical** to the loop engine
   (checked before any timing is trusted), and
2. the batch engine must be **>= 10x faster** (asserted in full mode; the
   gap is orders of magnitude).

It also prints the cross-board Pareto fronts (latency vs energy per board)
as a quick sanity view of what the axis buys.

Usage::

    PYTHONPATH=src python benchmarks/bench_board_sweep.py            # full
    PYTHONPATH=src python benchmarks/bench_board_sweep.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.api import Evaluator, scenario_grid, sweep, sweep_batch
from repro.api.batch import clear_context_cache
from repro.platform import list_boards


def bench(quick: bool, repeats: int, min_speedup: float | None) -> int:
    boards = list_boards()
    if quick:
        axes = dict(
            models=("rODENet-3",), depths=(20, 56), n_units=(8, 16),
            boards=boards,
        )
    else:
        axes = dict(
            models=("ResNet", "rODENet-1", "rODENet-2", "rODENet-1+2", "rODENet-3", "Hybrid-3"),
            depths=(20, 32, 44, 56),
            n_units=(1, 4, 8, 16, 32),
            word_lengths=(32, 16, 12, 8),
            boards=boards,
        )
    grid = scenario_grid(**axes)
    print(f"\nboard-axis grid         : {len(grid)} scenarios over {len(boards)} boards")

    loop_best = batch_best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        loop_results = sweep(grid, evaluator=Evaluator())
        loop_best = min(loop_best, time.perf_counter() - t0)

        clear_context_cache()
        t0 = time.perf_counter()
        batch_results = sweep_batch(grid)
        batch_best = min(batch_best, time.perf_counter() - t0)

    identical = batch_results.to_results() == loop_results
    speedup = loop_best / batch_best
    print(f"loop engine             : {loop_best:8.4f} s  ({len(grid) / loop_best:10.0f} scenarios/s)")
    print(f"batch engine            : {batch_best:8.4f} s  ({len(grid) / batch_best:10.0f} scenarios/s)")
    print(f"board-axis speedup      : {speedup:8.1f} x")
    print(f"field-for-field identical results: {identical}")

    fronts = batch_results.pareto_fronts("total_w_pl_s", "energy_with_pl_J")
    print("cross-board Pareto fronts (latency vs energy):")
    for name, front in fronts.items():
        best = front.record(0)
        print(
            f"  {name:<12}: {len(front)} undominated point(s); fastest "
            f"{best['model']}-{best['depth']} conv_x{best['n_units']} at "
            f"{best['total_w_pl_s']:.4f} s / {best['energy_with_pl_J']:.4f} J"
        )

    if not identical:
        print("FAIL: engines disagree on the board axis", file=sys.stderr)
        return 1
    if min_speedup is not None and speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below the required {min_speedup:.0f}x", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small axes, single repeat, no speedup assertion (CI smoke)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="required full-mode batch-vs-loop speedup (default: 10)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        return bench(quick=True, repeats=1, min_speedup=None)
    return bench(quick=False, repeats=args.repeats, min_speedup=args.min_speedup)


if __name__ == "__main__":
    sys.exit(main())

"""Ablation E9: end-to-end speedup versus the number of multiply-add units.

The paper fixes conv_x16 for its end-to-end numbers; this ablation sweeps the
MAC-unit count for rODENet-3-56 to show where the knee of the speedup curve
is (BN time and software layers bound the benefit — Amdahl's law), and why
conv_x32 would not help even if it closed timing.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_records
from repro.api import Evaluator, scenario_grid
from repro.api import sweep as run_sweep
from repro.core import OffloadPlanner

from conftest import print_report


def test_parallelism_speedup_ablation(benchmark):
    grid = scenario_grid(
        models=("rODENet-3",), depths=(56,), n_units=(1, 2, 4, 8, 16, 32, 64)
    )

    def sweep():
        # Fresh evaluator per round: time the models, not the memo.
        rows = []
        for result in run_sweep(grid, evaluator=Evaluator()):
            rows.append(
                {
                    "n_units": result.scenario.n_units,
                    "target_w_PL_s": round(sum(result.timing["target_w_pl_s"]), 3),
                    "total_w_PL_s": round(result.timing["total_w_pl_s"], 3),
                    "overall_speedup": round(result.timing["overall_speedup"], 2),
                    "meets_100MHz": result.resources["meets_timing"],
                }
            )
        return rows

    rows = benchmark(sweep)
    print_report("Ablation E9: rODENet-3-56 speedup vs MAC-unit count", format_records(rows))

    speedups = [r["overall_speedup"] for r in rows]
    assert all(a <= b + 1e-9 for a, b in zip(speedups, speedups[1:]))
    # Diminishing returns (Amdahl): the speedup multiplier earned by each
    # further doubling of the MAC units shrinks monotonically, because the BN
    # step and the software-resident layers do not scale with the units.
    ratios = [b / a for a, b in zip(speedups, speedups[1:])]
    assert all(r1 >= r2 - 1e-9 for r1, r2 in zip(ratios, ratios[1:]))
    # The conv_x16 configuration (the paper's choice) achieves ~2.66x.
    by_units = {r["n_units"]: r for r in rows}
    assert by_units[16]["overall_speedup"] == pytest.approx(2.66, abs=0.06)
    # Offloading with a single MAC unit would actually be slower than software.
    assert by_units[1]["overall_speedup"] < 1.0


def test_max_feasible_parallelism(benchmark):
    planner = OffloadPlanner()
    best = benchmark(planner.max_feasible_parallelism, ("layer3_2",))
    assert best == 16

"""Benchmark / regeneration of Table 5: execution times and overall speedup.

Regenerates all 28 rows (7 models x 4 depths) of Table 5 from the calibrated
PS software model, the PL cycle model and the AXI transfer assumption, prints
them next to the published times, and asserts the headline comparisons.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_records
from repro.api import Evaluator, scenario_grid
from repro.core import SUPPORTED_DEPTHS, TABLE5_MODELS

from conftest import print_report

#: Published Table 5 anchors: (model, N) -> (total w/o PL, total speedup).
PAPER_TABLE5_ANCHORS = {
    ("ResNet", 20): (0.54, None),
    ("ResNet", 56): (1.58, None),
    ("rODENet-1", 56): (1.67, 2.45),
    ("rODENet-2", 56): (1.52, 2.40),
    ("rODENet-1+2", 56): (1.60, 2.52),
    ("rODENet-3", 20): (0.54, 1.85),
    ("rODENet-3", 56): (1.57, 2.66),
    ("ODENet-3", 56): (1.60, 1.26),
    ("Hybrid-3", 20): (0.53, 1.19),
    ("Hybrid-3", 56): (1.56, 1.27),
}


def test_table5_regeneration(benchmark):
    grid = scenario_grid(models=TABLE5_MODELS, depths=SUPPORTED_DEPTHS)

    def build_rows():
        # Fresh evaluator per round so the benchmark times model evaluation,
        # not memo lookups; only the execution report is needed for Table 5.
        evaluator = Evaluator()
        rows = []
        for scenario in grid:
            report = evaluator.execution_report(scenario)
            rows.append(
                {
                    "model": report.model,
                    "N": report.depth,
                    "offload": "/".join(report.offload_targets) or "-",
                    "total_wo_PL_s": round(report.total_without_pl, 3),
                    "target_wo_PL_s": " / ".join(f"{t:.2f}" for t in report.target_without_pl) or "-",
                    "ratio_%": " / ".join(f"{t:.1f}" for t in report.target_ratio_percent) or "-",
                    "target_w_PL_s": " / ".join(f"{t:.2f}" for t in report.target_with_pl) or "-",
                    "total_w_PL_s": round(report.total_with_pl, 3),
                    "speedup": round(report.overall_speedup, 2),
                }
            )
        return rows

    rows = benchmark(build_rows)
    print_report("Table 5: execution time of ResNet, ODENet and rODENet variants", format_records(rows))

    by_key = {(r["model"], r["N"]): r for r in rows}
    for key, (total, speedup) in PAPER_TABLE5_ANCHORS.items():
        assert by_key[key]["total_wo_PL_s"] == pytest.approx(total, rel=0.08)
        if speedup is not None:
            assert by_key[key]["speedup"] == pytest.approx(speedup, rel=0.08)


def test_headline_speedup(benchmark):
    """Abstract / Section 4.4: up to 2.66x (2.67x vs software ResNet-56)."""

    from repro.api import Scenario

    result = benchmark(lambda: Evaluator().evaluate(Scenario(model="rODENet-3", depth=56)))
    assert result.timing["overall_speedup"] == pytest.approx(2.66, abs=0.05)
    assert result.timing["speedup_vs_resnet"] == pytest.approx(2.67, rel=0.05)

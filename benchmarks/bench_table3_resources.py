"""Benchmark / regeneration of Table 3: FPGA resource utilisation.

Prints the published Vivado utilisations of layer1 / layer2_2 / layer3_2 for
conv_x1..x16 next to the analytical resource model's estimates, and checks
the model-level claims (exact DSP counts, BRAM ordering, feasibility).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_records, table3_records
from repro.fpga import PUBLISHED_TABLE3, ResourceEstimator, ZYNQ_XC7Z020

from conftest import print_report


def test_table3_regeneration(benchmark):
    records = benchmark(table3_records, True)
    print_report(
        "Table 3: resource utilisation on Zynq XC7Z020 (published vs analytical model)",
        format_records(records),
    )

    estimator = ResourceEstimator()
    for (layer, n_units), published in PUBLISHED_TABLE3.items():
        estimate = estimator.estimate(layer, n_units=n_units).resources
        # DSP counts are exact; LUT/FF within the documented model tolerance.
        assert estimate.dsp == published.dsp
        assert estimate.lut == pytest.approx(published.lut, rel=0.45)


def test_offload_feasibility_sweep(benchmark):
    """Time the Section-3.2 feasibility reasoning over all combinations."""

    estimator = ResourceEstimator()

    def feasibility():
        return {
            "layer1": estimator.estimate("layer1", 16).fits(),
            "layer2_2": estimator.estimate("layer2_2", 16).fits(),
            "layer1+layer2_2": estimator.estimate_combination(["layer1", "layer2_2"], 16).fits(ZYNQ_XC7Z020),
            "layer3_2": estimator.estimate("layer3_2", 16).fits(),
        }

    result = benchmark(feasibility)
    assert all(result.values())

"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper (or one
ablation) and prints it next to the published values, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the paper's evaluation section end to end.
"""

from __future__ import annotations

import pytest


def print_report(title: str, body: str) -> None:
    """Print a benchmark's regenerated table under a visible banner."""

    print()
    print("#" * 78)
    print(f"# {title}")
    print("#" * 78)
    print(body)

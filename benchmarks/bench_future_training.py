"""Ablation E13: projected training-offload benefit (the paper's future work).

Section 5: "we are planning to offload the training process of the rODENet
variants to FPGA devices."  This benchmark projects what that would buy using
the training-time model: per-image SGD-step time in pure software versus with
the forward *and* backward passes of the offload target on the PL, plus
epoch-level projections that make the motivation obvious (training CIFAR-100
on the embedded CPU alone is a months-long proposition).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_records
from repro.core import TrainingTimeModel

from conftest import print_report

MODELS = ("ResNet", "rODENet-1", "rODENet-2", "rODENet-3", "Hybrid-3")


def test_training_offload_projection(benchmark):
    model = TrainingTimeModel()

    def sweep():
        rows = []
        for name in MODELS:
            report = model.report(name, 56)
            projections = model.epoch_table((name,), 56)[name]
            rows.append(
                {
                    "model": f"{name}-56",
                    "train_step_sw_s": round(report.step_seconds_software, 2),
                    "train_step_offloaded_s": round(report.step_seconds_offloaded, 2),
                    "target_share_%": round(report.target_share_percent, 1),
                    "step_speedup": round(report.step_speedup, 2),
                    "epoch_hours_sw": round(projections["epoch_hours_software"], 1),
                    "epoch_hours_offloaded": round(projections["epoch_hours_offloaded"], 1),
                }
            )
        return rows

    rows = benchmark(sweep)
    print_report("Ablation E13: projected training-step times with the PL offload (N=56)", format_records(rows))

    by_model = {r["model"]: r for r in rows}
    # The training-step speedup tracks the prediction speedup of Table 5.
    assert by_model["rODENet-3-56"]["step_speedup"] == pytest.approx(2.66, abs=0.15)
    assert by_model["ResNet-56"]["step_speedup"] == pytest.approx(1.0)
    # Heavy reuse of the offloaded block is what creates the opportunity.
    assert by_model["rODENet-3-56"]["target_share_%"] > 80
    assert by_model["Hybrid-3-56"]["target_share_%"] < 35

#!/usr/bin/env python
"""Benchmark: the fast bit-accurate forward path (split-limb GEMM + sharding).

Three measurements, each value-checked before timing is trusted:

1. **Exact GEMM kernel** — the Q20 32-bit CIFAR-scale conv GEMM of the
   layer3_2 datapath (K = C*KH*KW + 1 = 577, N = 64 channels), run once
   through NumPy's ``int64`` matmul (no BLAS backend, generic inner loop)
   and once through the split-limb :class:`repro.fpga.PlannedGemm`.  The
   results must be **bit-identical** and the split-limb path >= 5x faster
   single-core (asserted in every mode; BLAS threads are pinned to 1
   before NumPy is imported).

2. **Sharded accuracy_sweep scaling** — the streamed sweep at 1, 2 and 4
   workers over the same chunk grid.  Worker-count invariance is asserted
   (records bit-identical across worker counts); the wall-clock curve is
   reported.

3. **Bounded-memory streaming** (full mode) — ``accuracy_sweep`` over
   >= 1,024 CIFAR-scale images x 4 Q-formats under ``tracemalloc``: peak
   traced allocation must stay bounded by the chunk size, far below the
   whole-batch footprint the legacy path would need.

Usage::

    PYTHONPATH=src python benchmarks/bench_fx_forward.py            # full
    PYTHONPATH=src python benchmarks/bench_fx_forward.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import os
import sys
import time

# Single-core discipline: pin every BLAS/threadpool knob BEFORE NumPy loads,
# so the asserted kernel speedup is a one-core-vs-one-core comparison.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS", "VECLIB_MAXIMUM_THREADS"):
    os.environ.setdefault(_var, "1")

import numpy as np  # noqa: E402

from repro.api.accuracy import accuracy_sweep  # noqa: E402
from repro.fpga.gemm import PlannedGemm, _magnitude  # noqa: E402
from repro.fpga.ops import DEFAULT_ROW_CHUNK  # noqa: E402

#: The layer3_2 conv GEMM shape with the time-concat channel: 64 output
#: channels over 8x8 maps, K = 64*9 + 1.
K_LAYER3_2 = 577
N_CHANNELS = 64
ROWS_PER_IMAGE = 64

SWEEP_FORMATS = [(32, 20), (24, 12), (16, 8), (12, 6)]


def bench_kernel(images: int, repeats: int, min_speedup: float) -> int:
    """int64 matmul vs the split-limb GEMM on the Q20 conv shape."""

    rng = np.random.default_rng(0)
    m = images * ROWS_PER_IMAGE
    # Q20 activations span the full 32-bit word; weights at the sweep's
    # scale-0.1 magnitude occupy ~17 bits — the planner's 2-limb regime.
    a = rng.integers(-(2**31), 2**31, size=(m, K_LAYER3_2), dtype=np.int64)
    b = rng.integers(-(2**17), 2**17, size=(K_LAYER3_2, N_CHANNELS), dtype=np.int64)

    gemm = PlannedGemm(b, a_max=_magnitude(a))
    print(f"GEMM shape              : ({m} x {K_LAYER3_2}) @ ({K_LAYER3_2} x {N_CHANNELS})")
    print(f"plan                    : split={gemm.plan.split}, "
          f"{gemm.plan.n_limbs} limb(s) x {gemm.plan.limb_bits} bits")

    # The conv pipeline materialises the left operand in the plan's dtype for
    # free (im2col's fused gather+cast writes float64 directly), so the
    # kernel comparison feeds each path its own natural operand layout.
    a_planned = a.astype(gemm.a_dtype)
    got = np.empty((m, N_CHANNELS), dtype=np.int64)

    def split_path() -> np.ndarray:
        # Exactly what hw_conv2d does: stream bounded row chunks through the
        # planned GEMM (one BLAS call each) into a preallocated accumulator.
        # Chunking also keeps the working set cache-resident at dataset scale.
        for start in range(0, m, DEFAULT_ROW_CHUNK):
            got[start : start + DEFAULT_ROW_CHUNK] = gemm(
                a_planned[start : start + DEFAULT_ROW_CHUNK]
            )
        return got

    # Warm up both paths at full size off the clock: BLAS initialisation,
    # first-touch page faults of the temporaries, and CPU frequency ramp all
    # land here instead of in the first timed repeat.
    _ = a @ b
    _ = split_path()

    int64_best = split_best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        want = a @ b
        int64_best = min(int64_best, time.perf_counter() - t0)

        t0 = time.perf_counter()
        got = split_path()
        split_best = min(split_best, time.perf_counter() - t0)

    identical = np.array_equal(want, got)
    speedup = int64_best / split_best
    print(f"int64 matmul            : {int64_best:8.4f} s")
    print(f"split-limb GEMM         : {split_best:8.4f} s")
    print(f"kernel speedup          : {speedup:8.1f} x")
    print(f"bit-identical results   : {identical}")
    if not identical:
        print("FAIL: split-limb GEMM disagrees with the int64 matmul", file=sys.stderr)
        return 1
    if speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below the required {min_speedup:.0f}x",
              file=sys.stderr)
        return 1
    return 0


def bench_sweep_scaling(images: int, chunk_size: int, worker_counts) -> int:
    """Sharded accuracy_sweep wall-clock curve + worker-count invariance."""

    print(f"\nsweep                   : layer3_2, {images} images x "
          f"{len(SWEEP_FORMATS)} formats, chunk_size={chunk_size} "
          f"({os.cpu_count()} CPU(s) visible)")
    # The asserted property is worker-count *invariance* of the numbers; the
    # wall-clock curve only bends on multi-core hosts.
    baseline = None
    base_time = None
    for workers in worker_counts:
        t0 = time.perf_counter()
        result = accuracy_sweep(
            block="layer3_2", formats=SWEEP_FORMATS, images=images,
            seed=0, chunk_size=chunk_size, workers=workers,
        )
        elapsed = time.perf_counter() - t0
        records = result.records()
        if baseline is None:
            baseline, base_time = records, elapsed
            scale = ""
        else:
            scale = f"  ({base_time / elapsed:4.2f}x vs workers=1)"
            if records != baseline:
                print(f"FAIL: workers={workers} changed the results", file=sys.stderr)
                return 1
        print(f"workers={workers:<2d}              : {elapsed:8.2f} s{scale}")
    print("worker-count invariant  : True")
    return 0


def bench_bounded_memory(images: int, chunk_size: int, budget_mb: float) -> int:
    """Dataset-scale streaming under a tracemalloc peak-allocation budget."""

    import tracemalloc

    print(f"\nstreaming memory check  : {images} images, chunk_size={chunk_size}, "
          f"budget {budget_mb:.0f} MB")
    tracemalloc.start()
    tracemalloc.reset_peak()
    accuracy_sweep(
        block="layer3_2", formats=SWEEP_FORMATS, images=images,
        seed=0, chunk_size=chunk_size, workers=1,
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    peak_mb = peak / 2**20
    # What the legacy path would hold at once: six pipeline stages of the
    # whole batch, reference + fixed-point, before the im2col expansion.
    batch_mb = images * N_CHANNELS * 64 * 8 * 12 / 2**20
    print(f"peak traced allocation  : {peak_mb:8.1f} MB "
          f"(whole-batch stages alone would be ~{batch_mb:.0f} MB)")
    if peak_mb > budget_mb:
        print(f"FAIL: peak {peak_mb:.1f} MB exceeds the {budget_mb:.0f} MB budget",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small batch, 2 worker points, no memory phase (CI smoke)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    parser.add_argument(
        "--min-speedup", type=float, default=5.0,
        help="required single-core kernel speedup (default: 5, asserted in every mode)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        rc = bench_kernel(images=256, repeats=2, min_speedup=args.min_speedup)
        return rc or bench_sweep_scaling(images=64, chunk_size=16, worker_counts=(1, 2))
    rc = bench_kernel(images=2048, repeats=args.repeats, min_speedup=args.min_speedup)
    rc = rc or bench_sweep_scaling(images=1024, chunk_size=64, worker_counts=(1, 2, 4))
    return rc or bench_bounded_memory(images=1024, chunk_size=64, budget_mb=256.0)


if __name__ == "__main__":
    sys.exit(main())

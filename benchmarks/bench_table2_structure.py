"""Benchmark / regeneration of Table 2: ODENet network structure.

Regenerates the per-layer parameter sizes of Table 2 and times the analytical
parameter model (it is evaluated inside design-space sweeps, so its cost
matters for the offload planner).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_records, table2_records
from repro.core import variant_parameter_bytes

from conftest import print_report

#: Table 2's published parameter sizes in kB.
PAPER_TABLE2_KB = {
    "conv1": 1.86,
    "layer1": 19.84,
    "layer2_1": 55.81,
    "layer2_2": 76.54,
    "layer3_1": 222.21,
    "layer3_2": 300.54,
    "fc": 26.00,
}


def test_table2_regeneration(benchmark):
    """Regenerate Table 2 and check every row against the paper."""

    records = benchmark(table2_records)

    rows = []
    for record in records:
        paper = PAPER_TABLE2_KB[record["layer"]]
        rows.append(
            {
                "layer": record["layer"],
                "output_size": record["output_size"],
                "paper_kB": paper,
                "repro_kB": round(record["parameter_kB"], 2),
                "executions": record["executions_per_block"],
            }
        )
    print_report("Table 2: network structure of ODENet (parameter size per layer)", format_records(rows))

    for row in rows:
        assert row["repro_kB"] == pytest.approx(row["paper_kB"], abs=0.01)


def test_total_parameter_size_odenet(benchmark):
    """Time the total-parameter-size computation used across the sweeps."""

    total = benchmark(variant_parameter_bytes, "ODENet", 56)
    assert total == pytest.approx(702_800, rel=0.001)

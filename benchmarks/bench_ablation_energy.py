"""Ablation E12: energy per prediction with and without the PL offload.

The paper motivates FPGAs as "an energy-efficient solution" but reports no
power numbers.  This ablation combines the Table-5 execution-time model with
the documented Zynq-7000 power figures (see ``repro.fpga.power``) to estimate
the per-prediction energy of each architecture, answering whether the offload
saves energy as well as time.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_records
from repro.core import ExecutionTimeModel
from repro.fpga import PowerModel, ResourceEstimator, ResourceVector

from conftest import print_report

MODELS = ("ResNet", "rODENet-1", "rODENet-2", "rODENet-3", "ODENet-3", "Hybrid-3")


def test_energy_per_prediction(benchmark):
    execution = ExecutionTimeModel(n_units=16)
    power = PowerModel(execution_model=execution)
    estimator = ResourceEstimator()

    def sweep():
        rows = []
        for name in MODELS:
            report = execution.report(name, 56)
            if report.offload_targets:
                resources = ResourceVector()
                for target in report.offload_targets:
                    resources = resources + estimator.estimate(target, 16).resources
            else:
                resources = ResourceVector()
            comparison = power.compare(name, 56, resources)
            rows.append(
                {
                    "model": f"{name}-56",
                    "energy_sw_J": round(comparison["energy_without_pl_J"], 3),
                    "energy_offloaded_J": round(comparison["energy_with_pl_J"], 3),
                    "energy_ratio": round(comparison["energy_ratio"], 2),
                    "time_speedup": round(comparison["time_speedup"], 2),
                }
            )
        return rows

    rows = benchmark(sweep)
    print_report("Ablation E12: energy per prediction at N=56 (modelled)", format_records(rows))

    by_model = {r["model"]: r for r in rows}
    # The offload saves energy for every variant that benefits in time ...
    for name in ("rODENet-1-56", "rODENet-2-56", "rODENet-3-56"):
        assert by_model[name]["energy_ratio"] > 2.0
        # ... and the energy ratio beats the time speedup because the PS
        # idles while the PL computes.
        assert by_model[name]["energy_ratio"] > by_model[name]["time_speedup"]
    # rODENet-3 is the most energy-efficient of the evaluated designs.
    best = max(rows, key=lambda r: r["energy_ratio"])
    assert best["model"] in ("rODENet-3-56", "rODENet-1-56")

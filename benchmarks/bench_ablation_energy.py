"""Ablation E12: energy per prediction with and without the PL offload.

The paper motivates FPGAs as "an energy-efficient solution" but reports no
power numbers.  This ablation combines the Table-5 execution-time model with
the documented Zynq-7000 power figures (see ``repro.fpga.power``) to estimate
the per-prediction energy of each architecture, answering whether the offload
saves energy as well as time.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_records
from repro.api import Evaluator, scenario_grid
from repro.api import sweep as run_sweep

from conftest import print_report

MODELS = ("ResNet", "rODENet-1", "rODENet-2", "rODENet-3", "ODENet-3", "Hybrid-3")


def test_energy_per_prediction(benchmark):
    grid = scenario_grid(models=MODELS, depths=(56,))

    def sweep():
        # Fresh evaluator per round: time the models, not the memo.
        rows = []
        for result in run_sweep(grid, evaluator=Evaluator(), workers=4):
            rows.append(
                {
                    "model": result.scenario.full_name,
                    "energy_sw_J": round(result.energy["energy_without_pl_J"], 3),
                    "energy_offloaded_J": round(result.energy["energy_with_pl_J"], 3),
                    "energy_ratio": round(result.energy["energy_ratio"], 2),
                    "time_speedup": round(result.energy["time_speedup"], 2),
                }
            )
        return rows

    rows = benchmark(sweep)
    print_report("Ablation E12: energy per prediction at N=56 (modelled)", format_records(rows))

    by_model = {r["model"]: r for r in rows}
    # The offload saves energy for every variant that benefits in time ...
    for name in ("rODENet-1-56", "rODENet-2-56", "rODENet-3-56"):
        assert by_model[name]["energy_ratio"] > 2.0
        # ... and the energy ratio beats the time speedup because the PS
        # idles while the PL computes.
        assert by_model[name]["energy_ratio"] > by_model[name]["time_speedup"]
    # rODENet-3 is the most energy-efficient of the evaluated designs.
    best = max(rows, key=lambda r: r["energy_ratio"])
    assert best["model"] in ("rODENet-3-56", "rODENet-1-56")

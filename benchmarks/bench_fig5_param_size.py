"""Benchmark / regeneration of Figure 5: parameter size versus depth N.

Regenerates the per-variant parameter-size curves and checks the reduction
percentages quoted in Section 4.2 exactly.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_series
from repro.core import SUPPORTED_DEPTHS, VARIANT_NAMES, figure5_series, parameter_reduction_percent

from conftest import print_report

PAPER_REDUCTIONS = [
    ("ODENet", 20, 36.24),
    ("rODENet-3", 20, 43.29),
    ("ODENet", 56, 79.54),
    ("rODENet-3", 56, 81.80),
    ("Hybrid-3", 20, 26.43),
    ("Hybrid-3", 56, 60.16),
]


def test_figure5_regeneration(benchmark):
    series = benchmark(figure5_series)
    print_report("Figure 5: parameter size [kB] of ResNet, ODENet and rODENet variants", format_series(series, x_label="N"))

    # Shape: ResNet/Hybrid grow with N; ODE variants are flat; ResNet largest.
    for depth in SUPPORTED_DEPTHS:
        assert series["ResNet"][depth] == max(series[v][depth] for v in VARIANT_NAMES)
    assert len({round(series["ODENet"][d], 6) for d in SUPPORTED_DEPTHS}) == 1
    assert series["Hybrid-3"][56] > series["Hybrid-3"][20]


def test_section42_reduction_percentages(benchmark):
    def reductions():
        return {(v, d): parameter_reduction_percent(v, d) for v, d, _ in PAPER_REDUCTIONS}

    results = benchmark(reductions)
    rows = [
        {"variant": v, "N": d, "paper_%": expected, "repro_%": round(results[(v, d)], 2)}
        for v, d, expected in PAPER_REDUCTIONS
    ]
    print_report("Section 4.2: parameter-size reduction vs ResNet-N", "\n".join(str(r) for r in rows))
    for v, d, expected in PAPER_REDUCTIONS:
        assert results[(v, d)] == pytest.approx(expected, abs=0.01)

"""Benchmark / regeneration of the Section-3.1 conv_xN cycle-count scaling.

Regenerates the layer3_2 execution-cycle counts for conv_x1 / x4 / x8 / x16 /
x32 (23.78M / 6.07M / 3.12M / 1.64M / 0.90M in the paper) and benchmarks one
actual fixed-point ODEBlock execution of the simulated PL datapath.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_records
from repro.fpga import (
    LAYER3_2,
    PAPER_LAYER3_2_CYCLES,
    BlockWeights,
    HardwareODEBlock,
    OdeBlockCycleModel,
    TimingModel,
)
from repro.fpga.geometry import BlockGeometry

from conftest import print_report


def test_conv_parallelism_cycle_scaling(benchmark):
    cycle_model = OdeBlockCycleModel()
    timing = TimingModel()

    def sweep():
        rows = []
        for n_units, published in sorted(PAPER_LAYER3_2_CYCLES.items()):
            breakdown = cycle_model.block_cycles(LAYER3_2, n_units)
            rows.append(
                {
                    "config": f"conv_x{n_units}",
                    "paper_Mcycles": round(published / 1e6, 2),
                    "repro_Mcycles": round(breakdown.total / 1e6, 2),
                    "conv_Mcycles": round(breakdown.conv_cycles / 1e6, 2),
                    "bn_Mcycles": round(breakdown.bn_cycles / 1e6, 2),
                    "time_ms_at_100MHz": round(breakdown.time_seconds(100e6) * 1e3, 2),
                    "meets_100MHz": timing.analyze(n_units).meets_timing,
                }
            )
        return rows

    rows = benchmark(sweep)
    print_report("Section 3.1: layer3_2 execution cycles vs multiply-add units", format_records(rows))

    for row, (n_units, published) in zip(rows, sorted(PAPER_LAYER3_2_CYCLES.items())):
        assert row["repro_Mcycles"] == pytest.approx(published / 1e6, rel=0.02)
    assert rows[-1]["meets_100MHz"] is False  # conv_x32
    assert all(r["meets_100MHz"] for r in rows[:-1])


def test_simulated_pl_datapath_throughput(benchmark):
    """Wall-clock cost of one bit-accurate Q20 ODEBlock execution (small block)."""

    geometry = BlockGeometry(name="layer3_2", in_channels=16, out_channels=16, height=8, width=8)
    rng = np.random.default_rng(0)
    hw = HardwareODEBlock(geometry, BlockWeights.random(geometry, rng), n_units=16)
    z = rng.normal(0, 0.3, size=(16, 8, 8))

    out, report = benchmark(hw.execute, z)
    assert out.shape == z.shape
    assert report.compute_seconds > 0

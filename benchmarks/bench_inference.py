"""Microbenchmarks of the software inference substrate itself.

These are not a table in the paper; they track the cost of the NumPy software
path (the "PS part" stand-in) so regressions in the substrate are visible,
and they benchmark the hardware/software co-execution runtime end to end on
a reduced model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_network
from repro.hwsw import HwSwRuntime, Partition
from repro.nn import Tensor, no_grad
from repro.nn import functional as F
from repro.nn.layers import Parameter


def test_conv2d_forward_speed(benchmark, rng):
    x = Tensor(rng.normal(size=(8, 16, 32, 32)))
    w = Parameter(rng.normal(size=(16, 16, 3, 3)) * 0.1)
    result = benchmark(lambda: F.conv2d(x, w, stride=1, padding=1))
    assert result.shape == (8, 16, 32, 32)


def test_small_model_software_inference(benchmark, rng):
    model = build_network("rODENet-3", 20, num_classes=10, base_width=8, seed=0)
    model.eval()
    x = Tensor(rng.normal(size=(4, 3, 32, 32)))

    def run():
        with no_grad():
            return model(x)

    logits = benchmark(run)
    assert logits.shape == (4, 10)


def test_hwsw_runtime_prediction(benchmark, rng):
    model = build_network("rODENet-3", 20, num_classes=10, base_width=4, seed=0)
    model.eval()
    runtime = HwSwRuntime(model, Partition.offload("layer3_2"), n_units=16)
    batch = rng.normal(0, 0.4, size=(1, 3, 16, 16))

    logits, report = benchmark(runtime.predict, batch)
    assert logits.shape == (1, 10)
    assert report.pl_invocations["layer3_2"] == 6


@pytest.fixture
def rng():
    return np.random.default_rng(0)

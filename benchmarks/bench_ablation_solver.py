"""Ablation E10: ODE-solver choice (Euler vs RK2 vs RK4).

Section 2.3: "a fourth-order Runge-Kutta method is used for training with
high accuracy, while Euler method is used for prediction tasks for low
latency and simplicity. We can strike a balance between accuracy and
performance by selecting a proper solver."

This ablation quantifies that trade-off on the execution-time model (each RK
stage is one more ODEBlock execution on the PL part) and on a reference ODE
whose exact solution is known (solution fidelity per stage).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_records
from repro.core import ExecutionTimeModel, variant_spec
from repro.ode import get_solver, solver_order

from conftest import print_report


def test_solver_cost_fidelity_tradeoff(benchmark):
    exec_model = ExecutionTimeModel()
    spec = variant_spec("rODENet-3", 56)
    executions = spec.plan("layer3_2").executions_per_block
    pl_seconds = exec_model.pl_layer_seconds("layer3_2")

    def sweep():
        rows = []
        for method in ("euler", "midpoint", "rk4"):
            solver = get_solver(method)
            stages = solver.stages_per_step
            # Reference problem: dz/dt = -z over the block's [0, M] span,
            # M steps (the paper's one-step-per-block correspondence).
            z1 = solver.integrate(lambda z, t: -0.05 * z, np.array([1.0]), 0.0, float(executions), executions)
            exact = np.exp(-0.05 * executions)
            rows.append(
                {
                    "solver": method,
                    "order": solver_order(method),
                    "stages_per_step": stages,
                    "pl_time_per_image_s": round(pl_seconds * executions * stages, 3),
                    "relative_solution_error": float(abs(z1[0] - exact) / exact),
                }
            )
        return rows

    rows = benchmark(sweep)
    print_report("Ablation E10: ODE solver choice for the offloaded ODEBlock (rODENet-3-56)", format_records(rows))

    euler, midpoint, rk4 = rows
    # Cost grows linearly with the number of stages (values are rounded to ms
    # in the report, hence the loose tolerance) ...
    assert midpoint["pl_time_per_image_s"] == pytest.approx(2 * euler["pl_time_per_image_s"], rel=5e-3)
    assert rk4["pl_time_per_image_s"] == pytest.approx(4 * euler["pl_time_per_image_s"], rel=5e-3)
    # ... while the solution error shrinks by orders of magnitude.
    assert euler["relative_solution_error"] > midpoint["relative_solution_error"] > rk4["relative_solution_error"]


def test_prediction_output_drift_between_solvers(benchmark):
    """How much an ODEBlock's output changes when the prediction solver changes."""

    from repro.core.odeblock import ODEBlock
    from repro.nn import Tensor

    rng = np.random.default_rng(0)
    euler_block = ODEBlock(8, num_steps=4, method="euler", rng=np.random.default_rng(1))
    rk4_block = ODEBlock(8, num_steps=4, method="rk4", rng=np.random.default_rng(1))
    rk4_block.load_state_dict(euler_block.state_dict())
    euler_block.eval(), rk4_block.eval()
    x = Tensor(rng.normal(0, 0.3, size=(1, 8, 6, 6)))

    def drift():
        return float(np.max(np.abs(euler_block(x).data - rk4_block(x).data)))

    value = benchmark(drift)
    assert value > 0.0

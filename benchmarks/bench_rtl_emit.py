#!/usr/bin/env python
"""Benchmark: RTL emission + structural check + vector generation throughput.

Value-checked before timing is trusted: every emitted bundle must pass the
structural checker, emission must be deterministic (identical bundles for
identical inputs), and the golden saturation vectors must regenerate
byte-identically.  The timing rows then report emit / check / vector rates
over the (block x qformat x n_units) axis.

Usage::

    PYTHONPATH=src python benchmarks/bench_rtl_emit.py            # full
    PYTHONPATH=src python benchmarks/bench_rtl_emit.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

from repro.fixedpoint import QFormat
from repro.fpga.geometry import BlockGeometry, block_geometry
from repro.rtl import (
    GOLDEN_CASES,
    check_bundle,
    emit_odeblock,
    generate_vectors,
    golden_vectors,
    random_block_weights,
)

TINY = BlockGeometry(name="tiny", in_channels=4, out_channels=4, height=4, width=4)


def bench_emit_check(points, vector_images: int) -> int:
    """Emit + check every design point; report rates; fail on any check error."""

    n_emit = n_check = 0
    t_emit = t_check = t_vec = 0.0
    vec_words = 0
    with tempfile.TemporaryDirectory() as tmp:
        for i, (block, qformat, n_units) in enumerate(points):
            geometry = block if isinstance(block, BlockGeometry) else block_geometry(block)
            t0 = time.perf_counter()
            bundle = emit_odeblock(geometry, qformat=qformat, n_units=n_units, seed=i)
            again = emit_odeblock(geometry, qformat=qformat, n_units=n_units, seed=i)
            t_emit += time.perf_counter() - t0
            if bundle.files != again.files:
                print("FAIL: emission is not deterministic", file=sys.stderr)
                return 1
            n_emit += 1

            out = Path(tmp) / f"p{i}"
            bundle.write(out)
            t0 = time.perf_counter()
            report = check_bundle(out)
            t_check += time.perf_counter() - t0
            if not report["ok"]:
                print(f"FAIL: structural check failed for point {i}", file=sys.stderr)
                return 1
            n_check += 1

            if vector_images > 0 and geometry.height <= 8:
                weights = random_block_weights(geometry, seed=i, scale=0.5)
                t0 = time.perf_counter()
                vec = generate_vectors(
                    geometry, weights, qformat=qformat,
                    images=vector_images, iterations=2, seed=i,
                )
                t_vec += time.perf_counter() - t0
                vec_words += len(vec.records) * vec.words_per_map

    print(f"design points emitted   : {n_emit} (x2 for the determinism cross-check)")
    print(f"emit                    : {t_emit:8.4f} s  ({2 * n_emit / t_emit:8.1f} bundles/s)")
    print(f"structural check        : {t_check:8.4f} s  ({n_check / t_check:8.1f} bundles/s)")
    if vec_words:
        print(f"vector generation       : {t_vec:8.4f} s  ({vec_words / t_vec:10.0f} words/s)")
    return 0


def bench_goldens() -> int:
    """Golden saturation vectors must regenerate byte-identically."""

    t0 = time.perf_counter()
    for name in sorted(GOLDEN_CASES):
        first = golden_vectors(name)[1].to_bytes()
        second = golden_vectors(name)[1].to_bytes()
        if first != second:
            print(f"FAIL: golden case {name} is not reproducible", file=sys.stderr)
            return 1
    dt = time.perf_counter() - t0
    print(f"golden regeneration     : {dt:8.4f} s  ({len(GOLDEN_CASES)} cases, byte-identical)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="two small design points + goldens only (CI smoke)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        points = [
            (TINY, QFormat(16, 8), 2),
            (TINY, QFormat(8, 4), 4),
        ]
        rc = bench_emit_check(points, vector_images=1)
    else:
        blocks = ["layer1", "layer2_2", "layer3_2", TINY]
        formats = [QFormat(32, 20), QFormat(16, 8), QFormat(8, 4)]
        points = [(b, f, n) for b in blocks for f in formats for n in (1, 4, 16)]
        rc = bench_emit_check(points, vector_images=2)
    return rc or bench_goldens()


if __name__ == "__main__":
    sys.exit(main())

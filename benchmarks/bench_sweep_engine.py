#!/usr/bin/env python
"""Benchmark: vectorized batch sweep engine vs the per-scenario loop engine.

Builds a large design-space grid (7 models x 4 depths x 10 MAC-unit counts x
4 word lengths x 2 solvers = 2,240 scenarios by default), evaluates it with
both engines, verifies the results are field-for-field identical, and prints
the throughput of each.  The batch engine must be at least 10x faster on the
full grid (asserted unless ``--quick``).

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep_engine.py            # full
    PYTHONPATH=src python benchmarks/bench_sweep_engine.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.api import Evaluator, scenario_grid, sweep, sweep_batch
from repro.api.batch import clear_context_cache
from repro.core import SUPPORTED_DEPTHS
from repro.core.execution_model import TABLE5_MODELS

FULL_AXES = dict(
    models=TABLE5_MODELS,
    depths=SUPPORTED_DEPTHS,
    n_units=(1, 2, 4, 8, 12, 16, 24, 32, 48, 64),
    word_lengths=(8, 12, 16, 32),
    solvers=("euler", "rk4"),
)

QUICK_AXES = dict(
    models=TABLE5_MODELS,
    depths=SUPPORTED_DEPTHS,
    n_units=(8, 16),
    word_lengths=(32,),
    solvers=("euler",),
)


def run(axes: dict, repeats: int, min_speedup: float | None) -> int:
    grid = scenario_grid(**axes)
    print(f"design-space grid: {len(grid)} scenarios")

    loop_best = batch_best = float("inf")
    for _ in range(repeats):
        # Cold starts on both sides: a fresh Evaluator for the loop engine
        # and a dropped per-unique-key context for the batch engine.
        t0 = time.perf_counter()
        loop_results = sweep(grid, evaluator=Evaluator())
        loop_best = min(loop_best, time.perf_counter() - t0)

        clear_context_cache()
        t0 = time.perf_counter()
        batch_results = sweep_batch(grid)
        batch_best = min(batch_best, time.perf_counter() - t0)

    identical = batch_results.to_results() == loop_results
    speedup = loop_best / batch_best
    print(f"loop engine  : {loop_best:8.4f} s  ({len(grid) / loop_best:10.0f} scenarios/s)")
    print(f"batch engine : {batch_best:8.4f} s  ({len(grid) / batch_best:10.0f} scenarios/s)")
    print(f"speedup      : {speedup:8.1f} x")
    print(f"field-for-field identical results: {identical}")

    if not identical:
        print("FAIL: engines disagree", file=sys.stderr)
        return 1
    if min_speedup is not None and speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below the required {min_speedup:.0f}x", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small grid, single repeat, no speedup assertion (CI smoke test)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="required batch/loop speedup on the full grid (default: 10)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        return run(QUICK_AXES, repeats=1, min_speedup=None)
    return run(FULL_AXES, repeats=args.repeats, min_speedup=args.min_speedup)


if __name__ == "__main__":
    sys.exit(main())

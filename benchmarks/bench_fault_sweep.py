#!/usr/bin/env python
"""Benchmark: the fault-injection axis of the serving simulator.

The ``repro.faults`` subsystem threads fault hooks through the dispatcher,
the bus and the runner.  This benchmark measures what that costs and what
it buys:

1. **inert-path identity** — a zero-fault run under the fault plumbing must
   be bit-identical to the nominal path (checked before any timing is
   trusted), and the wall-clock overhead of the inert hooks must stay
   below a few percent (asserted in full mode);
2. **FMEA throughput** — fault scenarios per second over the default fault
   domain (each FMEA row is ``n_samples`` full simulations);
3. **the resilience knee** — expected SLO damage of a replica death must
   fall monotonically as replicas are added (the headline FMEA claim).

Usage::

    PYTHONPATH=src python benchmarks/bench_fault_sweep.py            # full
    PYTHONPATH=src python benchmarks/bench_fault_sweep.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.api import Evaluator
from repro.faults import ReplicaDeath, default_fault_domain, run_fmea
from repro.sim import SimScenario, simulate


#: SLO for the knee study: tight enough that the PS software fallback misses
#: it (~1.4x the no-load PL service time), so a replica death shows up even
#: at quick-mode request counts.
KNEE_SLO_S = 0.40


def scenario(n_requests: int, replicas: int = 2, slo_s: float | None = None) -> SimScenario:
    return SimScenario(
        model="rODENet-3", depth=20, arrival="poisson", arrival_rate_hz=3.0,
        n_requests=n_requests, replicas=replicas, ps_cores=2, seed=0, slo_s=slo_s,
    )


def bench(quick: bool, repeats: int, max_overhead: float | None) -> int:
    ev = Evaluator()
    n_requests = 12 if quick else 40
    n_samples = 1 if quick else 3
    base = scenario(n_requests)

    # 1. Inert-path identity: the acceptance bar for every fault hook.
    nominal = simulate(base, evaluator=ev)
    armed = simulate(base, evaluator=ev, faults=[])
    identical = armed.as_dict() == nominal.as_dict()
    print(f"\nzero-fault run bit-identical to nominal: {identical}")
    if not identical:
        print("FAIL: inert fault plumbing changed the nominal run", file=sys.stderr)
        return 1

    nominal_best = armed_best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        simulate(base, evaluator=ev)
        nominal_best = min(nominal_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        simulate(base, evaluator=ev, faults=[])
        armed_best = min(armed_best, time.perf_counter() - t0)
    overhead = armed_best / nominal_best
    print(f"nominal path            : {nominal_best * 1e3:8.3f} ms/run")
    print(f"inert fault path        : {armed_best * 1e3:8.3f} ms/run  ({overhead:5.3f}x)")

    # 2. FMEA throughput over the whole default domain.
    domain = default_fault_domain()
    t0 = time.perf_counter()
    study = run_fmea(base, domain, evaluator=ev, n_samples=n_samples)
    elapsed = time.perf_counter() - t0
    runs = 1 + n_samples * len(domain)  # nominal + every fault scenario
    print(
        f"FMEA (default domain)   : {elapsed:8.4f} s for {runs} simulations "
        f"({runs / elapsed:6.1f} scenarios/s)"
    )
    for row in study.rows:
        print(
            f"  {row['mode']:<16}: E[violation] {row['expected_slo_violation']:.6f}, "
            f"d_p95 {row['d_p95_ms']:+8.3f} ms, d_energy {row['d_energy_J']:+8.4f} J"
        )

    # 3. The resilience knee: replica death hurts less with more replicas.
    knee = []
    for replicas in (1, 2) if quick else (1, 2, 3):
        s = run_fmea(
            scenario(n_requests, replicas=replicas, slo_s=KNEE_SLO_S),
            [ReplicaDeath(rate_per_hour=60.0)],
            evaluator=ev, n_samples=n_samples,
        )
        knee.append((replicas, s.rows[0]["expected_slo_violation"]))
    print("replica-death knee      : " + ", ".join(
        f"{r} replica(s) -> {v:.6f}" for r, v in knee
    ))
    monotone = all(a[1] >= b[1] for a, b in zip(knee, knee[1:])) and knee[0][1] > knee[1][1]
    print(f"expected SLO damage falls with replicas: {monotone}")

    if not monotone:
        print("FAIL: replica-death damage is not monotone in replicas", file=sys.stderr)
        return 1
    if max_overhead is not None and overhead > max_overhead:
        print(
            f"FAIL: inert fault-path overhead {overhead:.3f}x above the "
            f"allowed {max_overhead:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scenario, single repeat, no overhead assertion (CI smoke)",
    )
    parser.add_argument("--repeats", type=int, default=5, help="timing repeats (best-of)")
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=1.10,
        help="allowed inert-fault-path slowdown vs nominal (default: 1.10x)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        return bench(quick=True, repeats=1, max_overhead=None)
    return bench(quick=False, repeats=args.repeats, max_overhead=args.max_overhead)


if __name__ == "__main__":
    sys.exit(main())

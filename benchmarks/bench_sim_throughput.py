#!/usr/bin/env python
"""Benchmark: discrete-event engine throughput and serving saturation curves.

Two measurements:

1. **Engine events/sec** — a microbenchmark of the raw kernel (timeout chains
   through many concurrent processes, the dominant event pattern in serving
   runs).  The engine must sustain at least 100k events/sec (asserted unless
   ``--quick``), which keeps even million-event serving studies interactive.

2. **Saturation throughput** — Poisson serving runs of rODENet-3-20 at
   increasing arrival rates for 1 and 2 PL replicas, printing delivered
   throughput and p95 latency per point.  The knee — where p95 departs from
   the no-load service time — is the number the analytic model cannot
   produce; the curve printed here is the quantitative answer to "how much
   traffic can one board take?".

3. **Fleet throughput** (``--fleet``) — a day-length (86 400 s) Poisson trace
   of more than a million requests over a mixed 8x PYNQ-Z2 + 4x ZCU104
   fleet through :func:`repro.fleet.simulate_fleet`.  Asserts the fast
   kernel's events/sec floor (the tentpole claim: million-request day
   traces in seconds of wall clock) and that the streaming quantile
   sketch's p50/p90/p95/p99 land within 1 % of the exact (stored-sample)
   percentiles on the same run.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py            # engine+saturation
    PYTHONPATH=src python benchmarks/bench_sim_throughput.py --fleet    # fleet bench
    PYTHONPATH=src python benchmarks/bench_sim_throughput.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.api import Evaluator
from repro.sim import SimScenario, Simulator, simulate

MIN_EVENTS_PER_SEC = 100_000.0

#: The fleet kernel's asserted floor (full run; --quick uses half).  The
#: reference container sustains ~350k events/sec on the day-length trace.
MIN_FLEET_EVENTS_PER_SEC = 100_000.0

#: Maximum relative error of the streaming sketch vs exact percentiles.
MAX_SKETCH_RELATIVE_ERROR = 0.01


def bench_engine(n_processes: int, hops: int) -> float:
    """Events/sec of the raw kernel: ``n_processes`` timeout chains."""

    sim = Simulator()

    def chain(offset: float):
        for k in range(hops):
            yield sim.timeout(0.001 + offset)

    for i in range(n_processes):
        sim.process(chain(i * 1e-6))
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return sim.events_processed / elapsed


def bench_saturation(rates, replicas_list, n_requests: int) -> None:
    evaluator = Evaluator()
    base = SimScenario(
        model="rODENet-3",
        depth=20,
        arrival="poisson",
        n_requests=n_requests,
        policy="batched",
        batch_size=4,
        ps_cores=2,
        seed=0,
    )
    service = simulate(
        base.replace(arrival="deterministic", n_requests=1), evaluator=evaluator
    ).latency.mean
    print(f"\nsaturation curves (no-load service time {service * 1e3:.1f} ms):")
    print(f"{'replicas':>8} {'offered rps':>12} {'delivered rps':>14} "
          f"{'p95 [ms]':>10} {'PS util':>8} {'PL util':>8}")
    for replicas in replicas_list:
        for rate in rates:
            report = simulate(
                base.replace(replicas=replicas, arrival_rate_hz=rate),
                evaluator=evaluator,
            )
            print(
                f"{replicas:>8} {rate:>12.1f} {report.throughput_rps:>14.2f} "
                f"{report.latency.percentiles[95] * 1e3:>10.1f} "
                f"{report.utilization['ps']:>8.2f} "
                f"{report.utilization['accelerator_mean']:>8.2f}"
            )


def bench_fleet(quick: bool) -> int:
    """Day-length fleet run: events/sec floor + sketch-vs-exact differential."""

    from repro.fleet import BoardGroup, FleetScenario, TrafficClass, simulate_fleet

    duration_s = 7_200.0 if quick else 86_400.0
    floor = MIN_FLEET_EVENTS_PER_SEC / 2 if quick else MIN_FLEET_EVENTS_PER_SEC
    scenario = FleetScenario(
        boards=(BoardGroup("PYNQ-Z2", 8), BoardGroup("ZCU104", 4)),
        classes=(
            TrafficClass("interactive", weight=0.9),
            TrafficClass("nightly", weight=0.1, kind="batch"),
        ),
        arrival_rate_hz=12.0,
        duration_s=duration_s,
        cells=4,
        seed=0,
    )

    start = time.perf_counter()
    report = simulate_fleet(scenario)
    elapsed = time.perf_counter() - start
    eps = report.events_processed / elapsed
    offered = report.requests["offered"]
    print(
        f"fleet: {offered:,} requests over {duration_s / 3600.0:.0f} h on "
        f"8x PYNQ-Z2 + 4x ZCU104 -> {elapsed:.2f} s wall, {eps:,.0f} events/sec"
    )
    print(
        f"       completed {report.requests['completed']:,}, "
        f"rejected {report.requests['rejected']:,}, "
        f"p99 {report.latency.percentiles[99] * 1e3:.1f} ms, "
        f"sketch bins {report.latency_sketch.bins_used}"
    )
    ok = True
    if not quick and offered < 1_000_000:
        print(f"FAIL: expected >= 1M offered requests (got {offered:,})", file=sys.stderr)
        ok = False
    if eps < floor:
        print(f"FAIL: fleet kernel below {floor:,.0f} events/sec", file=sys.stderr)
        ok = False

    # Differential: the same scenario with exact (stored-sample) percentiles.
    exact = simulate_fleet(scenario.replace(exact=True))
    print("sketch vs exact percentiles:")
    for q in (50, 90, 95, 99):
        approx = report.latency.percentiles[q]
        truth = exact.latency.percentiles[q]
        rel = abs(approx - truth) / truth if truth else 0.0
        print(f"  p{q:<3}: sketch {approx:.6g} s, exact {truth:.6g} s, rel err {rel:.4%}")
        if rel > MAX_SKETCH_RELATIVE_ERROR:
            print(
                f"FAIL: sketch p{q} off by {rel:.4%} "
                f"(> {MAX_SKETCH_RELATIVE_ERROR:.0%})",
                file=sys.stderr,
            )
            ok = False
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke (small runs, no floor)")
    parser.add_argument(
        "--fleet", action="store_true",
        help="run the fleet benchmark (events/sec floor + sketch differential)",
    )
    args = parser.parse_args(argv)

    if args.fleet:
        code = bench_fleet(args.quick)
        print("\nok" if code == 0 else "\nFAILED")
        return code

    if args.quick:
        n_processes, hops = 200, 20
        rates, replicas_list, n_requests = (2.0, 8.0), (1,), 30
    else:
        n_processes, hops = 2_000, 100
        rates, replicas_list, n_requests = (1.0, 2.0, 4.0, 6.0, 8.0, 12.0), (1, 2), 200

    eps = bench_engine(n_processes, hops)
    print(f"engine: {n_processes} processes x {hops} hops -> {eps:,.0f} events/sec")
    if not args.quick and eps < MIN_EVENTS_PER_SEC:
        print(f"FAIL: engine below {MIN_EVENTS_PER_SEC:,.0f} events/sec", file=sys.stderr)
        return 1

    bench_saturation(rates, replicas_list, n_requests)
    print("\nok")
    return 0


if __name__ == "__main__":
    sys.exit(main())

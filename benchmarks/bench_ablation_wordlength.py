"""Ablation E11: fixed-point word length (footnote 2 of the paper).

"Although we used 32-bit fixed-point numbers, using reduced bit widths (e.g.,
16-bit or less) can implement more layers in PL part."

This ablation sweeps the word length of the stored weights / feature maps and
reports (a) the BRAM needed for each offloadable layer and whether more than
one layer fits simultaneously, and (b) the numerical error the narrower
datapath introduces on the ODEBlock output.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_records
from repro.api import Evaluator, scenario_grid
from repro.api import sweep as run_sweep
from repro.fixedpoint import Q8, Q12, Q16, Q20
from repro.fpga import BlockWeights, HardwareODEBlock, ZYNQ_XC7Z020
from repro.fpga.geometry import BlockGeometry

from conftest import print_report

FORMATS = (Q20, Q16, Q12, Q8)

#: rODENet-1 / -2 / -3 offload layer1 / layer2_2 / layer3_2 respectively, so
#: one scenario per (variant, word length) yields every per-layer BRAM demand.
LAYER_PROBES = ("rODENet-1", "rODENet-2", "rODENet-3")


def test_wordlength_bram_sweep(benchmark):
    grid = scenario_grid(
        models=LAYER_PROBES,
        depths=(56,),
        word_lengths=tuple(fmt.word_length for fmt in FORMATS),
    )

    def sweep():
        # Fresh evaluator per round: time the models, not the memo.
        results = run_sweep(grid, evaluator=Evaluator(), workers=4)
        tiles = {
            # BRAM demand is a tile count; int() undoes ResourceVector's
            # float arithmetic for display.
            (r.resources["targets"][0], r.scenario.word_length): int(r.resources["bram"])
            for r in results
        }
        rows = []
        for fmt in FORMATS:
            wl = fmt.word_length
            total_all = tiles["layer1", wl] + tiles["layer2_2", wl] + tiles["layer3_2", wl]
            rows.append(
                {
                    "format": fmt.name,
                    "layer1_bram": tiles["layer1", wl],
                    "layer2_2_bram": tiles["layer2_2", wl],
                    "layer3_2_bram": tiles["layer3_2", wl],
                    "all_three_bram": total_all,
                    "all_three_fit": total_all <= ZYNQ_XC7Z020.bram36,
                }
            )
        return rows

    rows = benchmark(sweep)
    print_report("Ablation E11: BRAM demand vs fixed-point word length", format_records(rows))

    # Narrower words need monotonically less BRAM ...
    totals = [r["all_three_bram"] for r in rows]
    assert all(a >= b for a, b in zip(totals, totals[1:]))
    # ... and the footnote's promise holds: at 32-bit all three layers do NOT
    # fit together, at 16-bit (or less) they do.
    assert rows[0]["all_three_fit"] is False
    assert rows[1]["all_three_fit"] is True


def test_wordlength_numerical_error(benchmark):
    """Output error of the fixed-point ODEBlock vs word length."""

    geometry = BlockGeometry(name="layer3_2", in_channels=8, out_channels=8, height=6, width=6)
    rng = np.random.default_rng(0)
    weights = BlockWeights.random(geometry, rng, scale=0.1)
    z = rng.normal(0, 0.3, size=(8, 6, 6))
    reference = HardwareODEBlock(geometry, weights, qformat=Q20).dynamics(z)

    def sweep():
        errors = {}
        for fmt in (Q16, Q12, Q8):
            out = HardwareODEBlock(geometry, weights, qformat=fmt).dynamics(z)
            errors[fmt.word_length] = float(np.max(np.abs(out - reference)))
        return errors

    errors = benchmark(sweep)
    rows = [
        {"word_length": bits, "max_abs_error_vs_Q20": round(err, 5)}
        for bits, err in sorted(errors.items(), reverse=True)
    ]
    print_report("Ablation E11: ODEBlock output error vs word length", format_records(rows))

    # Narrower datapaths are strictly less accurate.
    assert errors[8] > errors[16]
    assert errors[12] >= errors[16]

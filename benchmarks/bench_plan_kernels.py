#!/usr/bin/env python
"""Benchmark: closed-form plan/timing kernels vs the scalar code path.

Two measurements, both value-checked before timing is trusted:

1. **Kernel throughput** — BRAM plans and timing closure evaluated over a
   large format x unit-count axis, once by looping the scalar planner
   (``plan_block_allocation`` / ``TimingModel.analyze``) and once with the
   array kernels (``bram_tiles_kernel`` / ``TimingModel.analyze_batch``).
   The kernels must agree element-for-element and be >= 10x faster
   (asserted in every mode — the gap is orders of magnitude).

2. **Sweep engine under plan pressure** — ``sweep_batch`` vs the loop engine
   over a grid whose Q-format / n_units axes produce >= 1,000 distinct plan
   keys (the regime the phase-2 vectorization targets: before it, every key
   took a scalar planner call).  Results must be field-for-field identical;
   the full run also asserts the >= 10x speedup of the acceptance criterion.

Usage::

    PYTHONPATH=src python benchmarks/bench_plan_kernels.py            # full
    PYTHONPATH=src python benchmarks/bench_plan_kernels.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.api import Evaluator, scenario_grid, sweep, sweep_batch
from repro.api.batch import clear_context_cache
from repro.fixedpoint import QFormat
from repro.fpga import TimingModel, plan_block_allocation
from repro.fpga.bram import bram_tiles_kernel
from repro.fpga.geometry import OFFLOADABLE_BLOCKS


def bench_kernels(n_formats: int, n_units: int, min_speedup: float) -> int:
    """Scalar loop vs array kernels over a formats x units axis."""

    rng = np.random.default_rng(0)
    word_lengths = rng.integers(2, 65, size=n_formats)
    formats = [QFormat(int(wl), int(rng.integers(0, wl))) for wl in word_lengths]
    units = rng.integers(1, 129, size=n_units)
    clocks = rng.choice([50e6, 100e6, 142e6, 200e6], size=n_units)
    geometries = list(OFFLOADABLE_BLOCKS.values())
    timing_model = TimingModel()

    t0 = time.perf_counter()
    scalar_tiles = [
        plan_block_allocation(geom, qformat=fmt).total_tiles
        for geom in geometries
        for fmt in formats
    ]
    scalar_timing = [
        timing_model.analyze(int(n), target_hz=float(hz)).meets_timing
        for n, hz in zip(units, clocks)
    ]
    t_scalar = time.perf_counter() - t0

    bpv = np.array([fmt.bytes_per_value for fmt in formats], dtype=np.int64)
    t0 = time.perf_counter()
    kernel_tiles = np.concatenate([bram_tiles_kernel(geom, bpv) for geom in geometries])
    kernel_timing = timing_model.analyze_batch(units, clocks)["meets_timing"]
    t_kernel = time.perf_counter() - t0

    identical = (
        kernel_tiles.tolist() == scalar_tiles and kernel_timing.tolist() == scalar_timing
    )
    speedup = t_scalar / t_kernel
    n_evals = len(scalar_tiles) + len(scalar_timing)
    print(f"plan/timing evaluations : {n_evals}")
    print(f"scalar loop             : {t_scalar:8.4f} s  ({n_evals / t_scalar:12.0f} plans/s)")
    print(f"array kernels           : {t_kernel:8.4f} s  ({n_evals / t_kernel:12.0f} plans/s)")
    print(f"kernel speedup          : {speedup:8.1f} x")
    print(f"element-for-element identical: {identical}")
    if not identical:
        print("FAIL: kernels disagree with the scalar planner", file=sys.stderr)
        return 1
    if speedup < min_speedup:
        print(f"FAIL: kernel speedup {speedup:.1f}x below {min_speedup:.0f}x", file=sys.stderr)
        return 1
    return 0


def bench_sweep(quick: bool, repeats: int, min_speedup: float | None) -> int:
    """sweep_batch vs the loop engine on a plan-key-dense grid."""

    if quick:
        formats = [(wl, wl // 2) for wl in range(4, 33, 4)]
        axes = dict(models=("rODENet-3",), depths=(20,), n_units=(8, 16), qformats=formats)
    else:
        formats = [(wl, wl // 2) for wl in range(2, 65)] + [(wl, wl - 1) for wl in range(2, 65)]
        axes = dict(
            models=("rODENet-3", "ODENet"),
            depths=(20, 56),
            n_units=(4, 8, 16, 32),
            qformats=formats,
        )
    grid = scenario_grid(**axes)
    plan_keys = {
        (layer, s.word_length, s.fraction_bits, s.n_units)
        for s in grid
        for layer in OFFLOADABLE_BLOCKS
    }
    print(f"\nsweep grid              : {len(grid)} scenarios, {len(plan_keys)} distinct plan keys")
    if not quick and len(plan_keys) < 1000:
        print("FAIL: full grid must exercise >= 1,000 distinct plan keys", file=sys.stderr)
        return 1

    loop_best = batch_best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        loop_results = sweep(grid, evaluator=Evaluator())
        loop_best = min(loop_best, time.perf_counter() - t0)

        clear_context_cache()
        t0 = time.perf_counter()
        batch_results = sweep_batch(grid)
        batch_best = min(batch_best, time.perf_counter() - t0)

    identical = batch_results.to_results() == loop_results
    speedup = loop_best / batch_best
    print(f"loop engine             : {loop_best:8.4f} s  ({len(grid) / loop_best:10.0f} scenarios/s)")
    print(f"batch engine            : {batch_best:8.4f} s  ({len(grid) / batch_best:10.0f} scenarios/s)")
    print(f"sweep speedup           : {speedup:8.1f} x")
    print(f"field-for-field identical results: {identical}")
    if not identical:
        print("FAIL: engines disagree", file=sys.stderr)
        return 1
    if min_speedup is not None and speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below the required {min_speedup:.0f}x", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small axes, single repeat, no sweep-speedup assertion (CI smoke)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=10.0,
        help="required kernel and (full-mode) sweep speedup (default: 10)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        rc = bench_kernels(n_formats=200, n_units=400, min_speedup=args.min_speedup)
        return rc or bench_sweep(quick=True, repeats=1, min_speedup=None)
    rc = bench_kernels(n_formats=2000, n_units=4000, min_speedup=args.min_speedup)
    return rc or bench_sweep(quick=False, repeats=args.repeats, min_speedup=args.min_speedup)


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark / regeneration of Table 4: variant structures.

Regenerates the stacked-blocks / executions-per-block table for every
architecture and depth, and validates the execution-budget invariant the
rODENet construction relies on.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_records, table4_records
from repro.core import SUPPORTED_DEPTHS, VARIANT_NAMES, variant_spec

from conftest import print_report

#: Table 4 cells for N=56 (stacked / executions), spot-checked below.
PAPER_TABLE4_N56 = {
    ("layer1", "ResNet"): "9 / 1",
    ("layer1", "ODENet"): "1 / 9",
    ("layer1", "rODENet-1"): "1 / 25",
    ("layer2_2", "rODENet-2"): "1 / 24",
    ("layer1", "rODENet-1+2"): "1 / 13",
    ("layer2_2", "rODENet-1+2"): "1 / 12",
    ("layer3_2", "rODENet-3"): "1 / 24",
    ("layer3_2", "Hybrid-3"): "1 / 8",
    ("layer2_2", "rODENet-3"): "0 / 0",
}


def test_table4_regeneration(benchmark):
    records = benchmark(table4_records, 56)
    print_report("Table 4: network structure of ResNet, ODENet and rODENet variants (N=56)", format_records(records))

    by_layer = {r["layer"]: r for r in records}
    for (layer, variant), expected in PAPER_TABLE4_N56.items():
        assert by_layer[layer][variant] == expected


def test_execution_budget_invariant(benchmark):
    """All variants execute the same number of building blocks as ResNet-N."""

    def check_all():
        results = {}
        for depth in SUPPORTED_DEPTHS:
            baseline = variant_spec("ResNet", depth).total_block_executions
            for name in VARIANT_NAMES:
                results[(name, depth)] = variant_spec(name, depth).total_block_executions == baseline
        return results

    results = benchmark(check_all)
    assert all(results.values())

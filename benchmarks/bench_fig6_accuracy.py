"""Benchmark / regeneration of Figure 6: accuracy of the seven architectures.

Two parts:

* the paper-scale series from the calibrated accuracy model (the CIFAR-100
  numbers quoted in Section 4.3 plus the qualitative trends), and
* a *measured* small-scale functional proxy: the actual repro.nn training
  loop run for a few epochs on the synthetic dataset with reduced-width
  ResNet-20 and rODENet-3-20 models, checking the qualitative ordering
  (ResNet >= rODENet-3 >= chance) that Figure 6 shows at N=20.

The functional proxy is intentionally tiny so the benchmark stays in CPU
budget; ``examples/train_variants.py`` runs the larger version.
"""

from __future__ import annotations

import pytest

from repro.analysis import figure6_series, format_series
from repro.core import SUPPORTED_DEPTHS, VARIANT_NAMES, build_network
from repro.data import make_synthetic_cifar, train_test_split
from repro.train import PaperTrainingSchedule, Trainer, evaluate

from conftest import print_report


def test_figure6_paper_scale_series(benchmark):
    series = benchmark(figure6_series)
    print_report("Figure 6: CIFAR-100 accuracy [%] (calibrated paper-scale model)", format_series(series, x_label="N"))

    # Qualitative shape asserted by the paper's Section 4.3.
    for depth in SUPPORTED_DEPTHS:
        assert series["ResNet"][depth] == max(series[v][depth] for v in VARIANT_NAMES)
    for depth in (20, 32):
        runner_up = sorted((series[v][depth] for v in VARIANT_NAMES), reverse=True)[1]
        assert series["rODENet-3"][depth] == runner_up
    assert series["Hybrid-3"][56] > series["ODENet"][56]
    assert series["rODENet-1"][56] < series["rODENet-3"][56]


def _train_small(variant: str, train_set, test_set, epochs: int = 3) -> float:
    model = build_network(variant, 20, num_classes=train_set.num_classes, base_width=4, seed=0)
    schedule = PaperTrainingSchedule(epochs=epochs, base_lr=0.05, milestones=(epochs,), batch_size=32)
    Trainer(model, train_set, schedule=schedule, seed=0).fit()
    _, accuracy = evaluate(model, test_set)
    return accuracy


def test_figure6_functional_proxy(benchmark):
    """Small-scale measured proxy: the same training code path, tiny data."""

    dataset = make_synthetic_cifar(num_samples=160, num_classes=4, image_size=16, difficulty=0.4, seed=3)
    train_set, test_set = train_test_split(dataset, test_fraction=0.25, seed=0)

    accuracies = benchmark.pedantic(
        lambda: {
            "ResNet": _train_small("ResNet", train_set, test_set),
            "rODENet-3": _train_small("rODENet-3", train_set, test_set),
        },
        iterations=1,
        rounds=1,
    )

    rows = "\n".join(f"{name:12s} measured proxy accuracy: {acc:.3f}" for name, acc in accuracies.items())
    print_report("Figure 6 (functional proxy, synthetic 4-class data, N=20 reduced width)", rows)

    chance = 0.25
    assert accuracies["ResNet"] > chance + 0.1
    assert accuracies["rODENet-3"] > chance + 0.1

#!/usr/bin/env python3
"""Serving study: where is the knee of the latency curve?

The analytic models say one rODENet-3-20 prediction takes ~0.29 s on the
PYNQ-Z2 with the layer3_2 ODEBlock offloaded.  A deployment engineer's
question is different: *at what request rate does the board stop keeping
up, and does a second PL replica (or a second PS core) move that knee?*

This example answers it with the discrete-event simulator (``repro.sim``):
for each (replicas, PS cores) system variant it sweeps the Poisson arrival
rate, measures the p95 latency, and reports the **knee** — the highest
offered rate whose p95 stays within 2x the no-load service time.  The same
sweep prints utilisation so you can see *which* resource saturates first
(the PS core, not the PL, for shallow networks — exactly the kind of
system-level fact the closed-form model cannot express).

Run:  PYTHONPATH=src python examples/serving_study.py [--quick]
"""

from __future__ import annotations

import argparse

from repro.analysis import format_records
from repro.api import Evaluator
from repro.sim import SimScenario, max_replicas, simulate

EVALUATOR = Evaluator()

#: Knee criterion: p95 latency within this factor of the no-load service time.
KNEE_FACTOR = 2.0


def study(model: str, depth: int, rates, systems, n_requests: int) -> None:
    base = SimScenario(
        model=model,
        depth=depth,
        arrival="poisson",
        n_requests=n_requests,
        policy="batched",
        batch_size=4,
        seed=0,
    )
    service = simulate(
        base.replace(arrival="deterministic", n_requests=1), evaluator=EVALUATOR
    ).latency.mean
    budget = max_replicas(base.design_point, evaluator=EVALUATOR)
    print(f"=== {model}-{depth}: no-load latency {service * 1e3:.1f} ms, "
          f"device budget {budget} replica(s) ===")

    rows = []
    knees = []
    for replicas, ps_cores in systems:
        knee = None
        for rate in rates:
            report = simulate(
                base.replace(replicas=replicas, ps_cores=ps_cores, arrival_rate_hz=rate),
                evaluator=EVALUATOR,
            )
            p95 = report.latency.percentiles[95]
            rows.append(
                {
                    "replicas": replicas,
                    "ps_cores": ps_cores,
                    "offered_rps": rate,
                    "delivered_rps": round(report.throughput_rps, 2),
                    "p95_ms": round(p95 * 1e3, 1),
                    "ps_util_%": round(100 * report.utilization["ps"], 1),
                    "pl_util_%": round(100 * report.utilization["accelerator_mean"], 1),
                    "mean_batch": round(report.batch_sizes.get("mean", 1.0), 2),
                }
            )
            if p95 <= KNEE_FACTOR * service:
                knee = rate
        knees.append(
            {
                "replicas": replicas,
                "ps_cores": ps_cores,
                "knee_rps": knee if knee is not None else "< min rate",
            }
        )
    print(format_records(rows))
    print(format_records(knees, title=f"Knee (highest rate with p95 <= {KNEE_FACTOR}x no-load)"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller runs (CI smoke)")
    args = parser.parse_args()

    if args.quick:
        rates = (1.0, 4.0, 8.0)
        systems = ((1, 1), (1, 2))
        n_requests = 40
    else:
        rates = (0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 12.0)
        systems = ((1, 1), (1, 2), (2, 2))
        n_requests = 250

    study("rODENet-3", 20, rates, systems, n_requests)
    print()
    # layer1's small footprint actually fits multiple replicas on the device.
    study("rODENet-1", 20, rates, systems, n_requests)


if __name__ == "__main__":
    main()

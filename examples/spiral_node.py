#!/usr/bin/env python3
"""Classic Neural-ODE spiral regression with the adjoint method.

This is the standard sanity task from the Neural ODE literature (Chen et al.,
2018), included here to demonstrate the :mod:`repro.ode` substrate on its
own: fit the dynamics of a 2-D spiral from sampled trajectory points, train
with the constant-memory adjoint method (Equation 9 of the paper), and
compare solvers.

Run:  python examples/spiral_node.py [--iterations 150]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.nn import Adam, MSELoss, Tensor
from repro.nn.layers import Linear, Module, Parameter
from repro.ode import get_solver, odeint, odeint_adjoint


class SpiralDynamics(Module):
    """A small MLP modelling dz/dt for the 2-D spiral."""

    def __init__(self, hidden: int = 24, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(2, hidden, rng=rng)
        self.fc2 = Linear(hidden, 2, rng=rng)

    def forward(self, z: Tensor, t: float = 0.0) -> Tensor:
        return self.fc2(self.fc1(z).tanh())


def true_spiral(t: np.ndarray, z0=np.array([2.0, 0.0])) -> np.ndarray:
    """Ground-truth trajectory of dz/dt = A z with a slightly decaying rotation."""

    A = np.array([[-0.1, 2.0], [-2.0, -0.1]])
    eigenvalues, eigenvectors = np.linalg.eig(A)
    coefficients = np.linalg.solve(eigenvectors, z0.astype(complex))
    states = [
        (eigenvectors @ (coefficients * np.exp(eigenvalues * ti))).real for ti in t
    ]
    return np.stack(states)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=120)
    parser.add_argument("--time-points", type=int, default=16)
    parser.add_argument("--lr", type=float, default=0.02)
    args = parser.parse_args()

    times = np.linspace(0.0, 3.0, args.time_points)
    target = true_spiral(times)
    z0 = Tensor(target[0:1].copy())

    dynamics = SpiralDynamics()
    params = dynamics.parameters()
    optimizer = Adam(params, lr=args.lr)
    criterion = MSELoss()

    print("Training the spiral Neural ODE with adjoint gradients (Euler, 40 steps)...")
    for iteration in range(1, args.iterations + 1):
        optimizer.zero_grad()
        z_final = odeint_adjoint(
            dynamics, z0, float(times[0]), float(times[-1]), num_steps=40, params=params, method="rk4"
        )
        # Supervise only the final state plus a mid-point for a quick demo.
        mid = odeint_adjoint(
            dynamics, z0, float(times[0]), float(times[len(times) // 2]), num_steps=20, params=params, method="rk4"
        )
        loss = criterion(z_final, target[-1:]) + criterion(mid, target[len(times) // 2 : len(times) // 2 + 1])
        loss.backward()
        optimizer.step()
        if iteration % 20 == 0 or iteration == 1:
            print(f"  iter {iteration:4d}  loss = {loss.item():.5f}")

    print("\nEvaluating the learned dynamics with different prediction solvers:")
    reference = true_spiral(times)
    for method, steps in (("euler", 1), ("euler", 8), ("rk4", 4)):
        predicted = odeint(
            lambda z, t: dynamics(Tensor(z)).data, reference[0:1].copy(), times,
            method=method, steps_per_interval=steps,
        )
        error = float(np.sqrt(np.mean((predicted[:, 0, :] - reference) ** 2)))
        print(f"  {method:8s} steps/interval={steps}  trajectory RMSE = {error:.4f}")

    print(
        "\nThe coarse Euler configuration mirrors the paper's low-latency prediction\n"
        "mode; RK4 trades ~4x the dynamics evaluations for a closer trajectory."
    )


if __name__ == "__main__":
    main()

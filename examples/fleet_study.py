#!/usr/bin/env python3
"""Fleet study: where is the p99 knee, and what does heterogeneity buy?

The single-board serving study (``examples/serving_study.py``) finds the
rate at which one board stops keeping up.  The deployment question one
level up is: *given a rack budget, how should it be populated?*  Twelve
cheap PYNQ-Z2s, a few fat ZCU104s, or a mix — and where does each fleet's
p99 latency leave the floor as offered load grows?

This example sweeps the offered Poisson rate over three same-size fleets
through :func:`repro.fleet.simulate_fleet` (fast analytic kernel, SLO
admission off so queueing is visible) and prints delivered throughput and
p99 latency per point, then each fleet's **knee** — the highest offered
rate whose p99 stays within ``KNEE_FACTOR`` x its no-load p99.  The mixed
fleet's knee sits between the homogeneous ones, but its energy per request
stays near the cheap fleet's — the quantitative version of the paper's
low-cost-FPGA deployment story.

Run:  PYTHONPATH=src python examples/fleet_study.py [--quick]
"""

from __future__ import annotations

import argparse

from repro.analysis import format_records
from repro.api import Evaluator
from repro.fleet import BoardGroup, FleetScenario, simulate_fleet

EVALUATOR = Evaluator()

#: Knee criterion: p99 latency within this factor of the fleet's no-load p99.
KNEE_FACTOR = 2.0

#: Same-slot-count fleets to compare (12 boards each).
FLEETS = (
    ("12x PYNQ-Z2", (BoardGroup("PYNQ-Z2", 12),)),
    ("12x ZCU104", (BoardGroup("ZCU104", 12),)),
    ("8x PYNQ-Z2 + 4x ZCU104", (BoardGroup("PYNQ-Z2", 8), BoardGroup("ZCU104", 4))),
)


def study(rates, n_requests: int, cells: int) -> None:
    rows = []
    knees = []
    for label, boards in FLEETS:
        base = FleetScenario(
            boards=boards,
            arrival_rate_hz=rates[0],
            n_requests=n_requests,
            cells=cells,
            admission="none",
            seed=0,
        )
        noload = simulate_fleet(
            base.replace(arrival="deterministic", arrival_rate_hz=0.1,
                         n_requests=max(cells, 10)),
            evaluator=EVALUATOR,
        ).latency.percentiles[99]
        knee = None
        for rate in rates:
            report = simulate_fleet(
                base.replace(arrival_rate_hz=rate), evaluator=EVALUATOR
            )
            p99 = report.latency.percentiles[99]
            per_request = report.energy["energy_per_request_J"]
            rows.append(
                {
                    "fleet": label,
                    "offered_rps": rate,
                    "delivered_rps": round(report.throughput_rps, 2),
                    "p99_ms": round(p99 * 1e3, 1),
                    "energy_per_req_J": round(per_request, 4),
                }
            )
            if p99 <= KNEE_FACTOR * noload:
                knee = rate
        knees.append(
            {
                "fleet": label,
                "no_load_p99_ms": round(noload * 1e3, 1),
                "knee_rps": knee if knee is not None else "< min rate",
            }
        )
    print(format_records(rows, title="p99 latency vs offered load"))
    print()
    print(format_records(knees, title=f"Knee (highest rate with p99 <= {KNEE_FACTOR}x no-load)"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller runs (CI smoke)")
    args = parser.parse_args()

    if args.quick:
        rates = (10.0, 40.0)
        n_requests, cells = 2_000, 2
    else:
        rates = (5.0, 10.0, 20.0, 30.0, 40.0, 60.0, 80.0, 120.0)
        n_requests, cells = 20_000, 4

    study(rates, n_requests, cells)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: build an rODENet, inspect it, and estimate its FPGA offload.

This walks through the paper's main flow in under a minute of CPU time:

1. build the rODENet-3-56 architecture (Table 4);
2. look at its parameter size versus ResNet-56 (Figure 5 / Section 4.2);
3. plan the FPGA offload of its heavily-used layer3_2 ODEBlock
   (resource + timing feasibility, Section 3.2);
4. reproduce the headline execution-time result: 2.66x overall speedup on
   the PYNQ-Z2 when layer3_2 runs on the programmable logic (Table 5);
5. run an actual prediction through the hardware/software co-execution
   runtime (reduced-width model so it is fast on a laptop CPU).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_records
from repro.core import (
    ExecutionTimeModel,
    OffloadPlanner,
    build_network,
    count_block_executions,
    parameter_reduction_percent,
    variant_parameter_bytes,
    variant_spec,
)
from repro.hwsw import HwSwRuntime, Partition


def main() -> None:
    # ------------------------------------------------------------------ 1
    spec = variant_spec("rODENet-3", 56)
    print("=== rODENet-3-56 structure (Table 4) ===")
    for plan in spec:
        print(f"  {plan.layer:10s} {plan.realization:10s} stacked/executions = {plan.as_table_cell()}")

    # ------------------------------------------------------------------ 2
    resnet_bytes = variant_parameter_bytes("ResNet", 56)
    rodenet_bytes = variant_parameter_bytes("rODENet-3", 56)
    reduction = parameter_reduction_percent("rODENet-3", 56)
    print("\n=== Parameter size (Section 4.2) ===")
    print(f"  ResNet-56    : {resnet_bytes / 1e6:.2f} MB")
    print(f"  rODENet-3-56 : {rodenet_bytes / 1e6:.2f} MB  ({reduction:.2f}% smaller; paper: 81.80%)")

    # ------------------------------------------------------------------ 3
    planner = OffloadPlanner(n_units=16)
    decision = planner.plan("rODENet-3", 56)
    print("\n=== Offload plan (Section 3.2) ===")
    print(f"  targets        : {decision.targets}")
    print(f"  PL resources   : {decision.resources.as_dict()}")
    print(f"  fits XC7Z020   : {decision.fits_device}")
    print(f"  closes 100 MHz : {decision.meets_timing}")

    # ------------------------------------------------------------------ 4
    model = ExecutionTimeModel(n_units=16)
    rows = []
    for name in ("ResNet", "rODENet-3"):
        report = model.report(name, 56)
        rows.append(
            {
                "model": f"{name}-56",
                "total w/o PL [s]": round(report.total_without_pl, 2),
                "total w/ PL [s]": round(report.total_with_pl, 2),
                "overall speedup": round(report.overall_speedup, 2),
            }
        )
    print("\n=== Execution time (Table 5) ===")
    print(format_records(rows))
    print(f"  vs software ResNet-56: {model.speedup_vs_resnet('rODENet-3', 56):.2f}x  (paper: 2.67x)")

    # ------------------------------------------------------------------ 5
    print("\n=== Co-execution prediction (reduced-width functional model) ===")
    small = build_network("rODENet-3", 20, num_classes=10, base_width=4, seed=0)
    small.eval()
    print(f"  block executions per image: {count_block_executions(small)}")
    runtime = HwSwRuntime(small, Partition.offload("layer3_2"), n_units=16)
    images = np.random.default_rng(0).normal(0, 0.5, size=(2, 3, 32, 32))
    logits, report = runtime.predict(images)
    fidelity = runtime.fidelity(images)
    print(f"  predicted classes          : {logits.argmax(axis=1).tolist()}")
    print(f"  layer3_2 PL invocations    : {report.pl_invocations}")
    print(f"  modelled speedup (board)   : {report.modeled_speedup:.2f}x")
    print(f"  max logit diff HW vs SW    : {fidelity['max_logit_diff']:.2e}")
    print(f"  top-1 agreement HW vs SW   : {fidelity['top1_agreement']:.2f}")


if __name__ == "__main__":
    main()

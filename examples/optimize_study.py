#!/usr/bin/env python
"""Constrained search study: the cheapest board that meets a latency SLO.

The question every deployment starts with — "which board should I buy?" —
phrased as a constrained search instead of a grid sweep: over every
registered board x Q-format x MAC-unit count, find the **cheapest** design
whose simulated p95 latency meets an SLO at the target request rate.  The
optimizer screens the whole grid analytically (structural violations and
latency lower bounds are pruned for free) and spends its simulation budget
only on the survivors, so the study costs a fraction of the exhaustive grid
while returning the same winner.

Printed along the way:

* the winning design and what it costs,
* the price-vs-p95 Pareto frontier over the fully-evaluated candidates,
* total evaluations vs the grid size (the point of *search, not sweep*).

Usage::

    PYTHONPATH=src python examples/optimize_study.py            # full
    PYTHONPATH=src python examples/optimize_study.py --quick    # smoke
"""

from __future__ import annotations

import argparse

from repro.api import SearchSpace, optimize
from repro.platform import list_boards


def study(quick: bool) -> None:
    n_requests = 30 if quick else 120
    slo_ms = 360.0
    rate_hz = 1.5
    space = SearchSpace(
        axes={
            "board": list_boards(),
            "qformat": ["16:8", "32:20"],
            "n_units": [16] if quick else [16, 32],
        },
        fixed={
            "arrival": "deterministic",
            "arrival_rate_hz": rate_hz,
            "n_requests": n_requests,
            "slo_s": slo_ms / 1e3,
        },
    )
    print(f"== search space: {space.size} candidates "
          f"({', '.join(space.axis_names)}) ==")
    print(f"question: cheapest board meeting p95 <= {slo_ms:g} ms at {rate_hz:g} req/s\n")

    report = optimize(
        space,
        objective="board_price_usd",
        constraints=(f"p95_ms<={slo_ms:g}", "meets_timing==1"),
        fidelity="sim",
        seed=7,
    )
    print(report.render())

    print("\n== price vs p95 Pareto frontier (fully evaluated candidates) ==")
    front = report.pareto_front("board_price_usd", "p95_ms")
    for record in front:
        values = record.values
        print(f"  {values['board']:<12} {values['qformat']:>6} "
              f"conv_x{values['n_units']:<3} "
              f"${record.metrics['board_price_usd']:7.0f}  "
              f"p95 {record.metrics['p95_ms']:8.2f} ms")

    print(f"\n== evaluations vs grid size ==")
    print(f"  grid size            : {space.size} full-length runs if swept")
    print(f"  simulations run      : {report.evaluations} "
          f"({report.budget_spent:g} full-evaluation units)")
    print(f"  budget saved         : "
          f"{100 * (1 - report.budget_spent / space.size):.1f}%")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="smaller space, shorter runs")
    args = parser.parse_args(argv)
    study(quick=args.quick)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

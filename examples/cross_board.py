#!/usr/bin/env python
"""Cross-board design-space study: which board serves rODENet best?

Three questions the platform layer answers in one script:

1. **Design space per board** — sweep models x depths x MAC units over every
   registered board on the batch engine and print each board's Pareto front
   (prediction latency vs per-prediction energy).
2. **Feasibility frontier** — the largest MAC-unit count that fits and
   closes timing per board (the XC7Z020 tops out where the paper says;
   bigger/faster fabrics go further).
3. **Serving under identical traffic** — the same Poisson trace offered to
   each board with auto-sized replicas and cores (the `repro.sim` budget is
   per-board), comparing p95 latency and energy per request.

Usage::

    PYTHONPATH=src python examples/cross_board.py            # full
    PYTHONPATH=src python examples/cross_board.py --quick    # smoke
"""

from __future__ import annotations

import argparse

from repro.api import Evaluator, Scenario, SimScenario, scenario_grid, simulate, sweep_batch
from repro.platform import get_board, list_boards


def design_space(quick: bool) -> None:
    boards = list_boards()
    grid = scenario_grid(
        models=("rODENet-3", "Hybrid-3") if quick else ("rODENet-1", "rODENet-1+2", "rODENet-3", "Hybrid-3"),
        depths=(20, 56) if quick else (20, 32, 44, 56),
        n_units=(8, 16) if quick else (1, 4, 8, 16, 32, 64),
        boards=boards,
    )
    table = sweep_batch(grid)
    print(f"== design space: {len(grid)} scenarios over {len(boards)} boards ==")
    fronts = table.pareto_fronts("total_w_pl_s", "energy_with_pl_J")
    for name, front in fronts.items():
        spec = get_board(name)
        best = front.record(0)
        print(
            f"{name:<12} ({spec.fpga.name:<22}): {len(front)} Pareto point(s); "
            f"fastest {best['model']}-{best['depth']} conv_x{best['n_units']}: "
            f"{best['total_w_pl_s']:.3f} s, {best['energy_with_pl_J']:.3f} J, "
            f"feasible={bool(best['fits_device'] and best['meets_timing'])}"
        )


def feasibility(quick: bool) -> None:
    ev = Evaluator()
    candidates = (8, 16, 32) if quick else (1, 2, 4, 8, 16, 32, 64)
    print("\n== feasibility: largest conv_xN that fits and closes timing ==")
    for name in list_boards():
        feasible = [
            n
            for n in candidates
            if (r := ev.evaluate(Scenario(n_units=n, board=name))).resources["fits_device"]
            and r.resources["meets_timing"]
        ]
        print(f"{name:<12}: conv_x{max(feasible)}" if feasible else f"{name:<12}: none")


def serving(quick: bool) -> None:
    ev = Evaluator()
    n_requests = 40 if quick else 300
    print(f"\n== serving: one Poisson trace ({n_requests} requests @ 4 req/s) per board ==")
    for name in list_boards():
        report = simulate(
            SimScenario(
                model="rODENet-1", depth=20, board=name,
                arrival="poisson", arrival_rate_hz=4.0, n_requests=n_requests,
                replicas=0, ps_cores=0, policy="batched", seed=42,
                warmup_s=0.0 if quick else 5.0,
            ),
            evaluator=ev,
        )
        s = report.scenario
        print(
            f"{name:<12}: {s['replicas']} replica(s), {s['ps_cores']} core(s); "
            f"p95 {report.latency.percentiles[95]:.3f} s, "
            f"throughput {report.throughput_rps:.2f} req/s, "
            f"{report.energy['energy_per_request_J']:.3f} J/req"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small axes (CI smoke)")
    args = parser.parse_args()
    design_space(args.quick)
    feasibility(args.quick)
    serving(args.quick)


if __name__ == "__main__":
    main()

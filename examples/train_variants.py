#!/usr/bin/env python3
"""Functional training of the paper's architectures (small-scale Figure 6 proxy).

The paper trains ResNet-N, ODENet-N, the rODENet variants and Hybrid-3-N on
CIFAR-100 for 200 epochs (Section 4.3).  That is far outside a CPU budget, so
this example runs the *same code path* at reduced scale: reduced-width models
(base_width 8 instead of 16), the synthetic CIFAR substitute, and a shortened
version of the paper's SGD schedule.  It reports the measured proxy accuracy
of each variant next to the paper's CIFAR-100 accuracy so the qualitative
comparison of Figure 6 can be eyeballed.

Run:  python examples/train_variants.py [--epochs 6] [--variants ResNet rODENet-3]
"""

from __future__ import annotations

import argparse
import time

from repro.analysis import accuracy_model, format_records
from repro.core import VARIANT_NAMES, build_network
from repro.data import make_synthetic_cifar, train_test_split
from repro.train import PaperTrainingSchedule, Trainer, evaluate


def train_one(variant: str, depth: int, train_set, test_set, epochs: int, width: int) -> dict:
    model = build_network(
        variant, depth, num_classes=train_set.num_classes, base_width=width, seed=0
    )
    schedule = PaperTrainingSchedule(
        epochs=epochs,
        base_lr=0.05,
        milestones=(max(1, epochs // 2), max(2, 3 * epochs // 4)),
        batch_size=32,
    )
    start = time.time()
    trainer = Trainer(model, train_set, test_set, schedule=schedule, augment=False, seed=1)
    history = trainer.fit()
    _, test_acc = evaluate(model, test_set)
    paper = accuracy_model(variant, depth)
    return {
        "variant": f"{variant}-{depth}",
        "params": model.num_parameters(),
        "final_train_acc": round(history.final.train_accuracy, 3),
        "proxy_test_acc": round(test_acc, 3),
        "paper_cifar100_acc_%": paper.accuracy_percent,
        "paper_stable": paper.stable,
        "train_seconds": round(time.time() - start, 1),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=4, help="training epochs per variant")
    parser.add_argument("--depth", type=int, default=20, help="network depth N")
    parser.add_argument("--width", type=int, default=8, help="base channel width (paper: 16)")
    parser.add_argument("--samples", type=int, default=400, help="synthetic dataset size")
    parser.add_argument("--classes", type=int, default=10, help="number of classes")
    parser.add_argument(
        "--variants",
        nargs="*",
        default=["ResNet", "ODENet", "rODENet-3", "Hybrid-3"],
        choices=list(VARIANT_NAMES),
        help="architectures to train",
    )
    args = parser.parse_args()

    print(f"Generating synthetic dataset: {args.samples} samples, {args.classes} classes, 16x16 images")
    dataset = make_synthetic_cifar(
        num_samples=args.samples,
        num_classes=args.classes,
        image_size=16,
        difficulty=0.4,
        seed=0,
    )
    train_set, test_set = train_test_split(dataset, test_fraction=0.2, seed=1)

    rows = []
    for variant in args.variants:
        print(f"\nTraining {variant}-{args.depth} (width {args.width}) for {args.epochs} epochs ...")
        rows.append(train_one(variant, args.depth, train_set, test_set, args.epochs, args.width))
        print(f"  -> proxy test accuracy {rows[-1]['proxy_test_acc']}")

    print("\n=== Small-scale functional proxy vs paper-scale CIFAR-100 accuracy (Figure 6) ===")
    print(format_records(rows))
    print(
        "\nNote: proxy accuracies are on the synthetic dataset and are not comparable in\n"
        "absolute terms to CIFAR-100; the point is that every variant trains through the\n"
        "identical code path (ODE solvers, parameter sharing, SGD schedule)."
    )


if __name__ == "__main__":
    main()

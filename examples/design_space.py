#!/usr/bin/env python3
"""Design-space exploration across variants, depths, parallelism and word length.

The paper evaluates one design point in detail (rODENet-3-N with conv_x16 and
32-bit Q20).  This example drives the unified scenario API
(``Scenario -> Evaluator -> Result``, see ``repro.api``) across the wider
design space a deployment engineer would care about:

* every architecture and depth: parameter size, modelled accuracy, modelled
  prediction time with its paper offload target, and overall speedup;
* for the best trade-off (rODENet-3), the MAC-unit parallelism sweep and the
  word-length sweep, including whether multiple layers could share the PL.

Every table below is one :func:`repro.api.sweep` call over a scenario grid —
the same engine behind ``repro-odenet sweep``.

Run:  python examples/design_space.py
"""

from __future__ import annotations

from repro.analysis import format_records
from repro.api import DEFAULT_FRACTION_BITS, Evaluator, Scenario, scenario_grid, sweep
from repro.core import SUPPORTED_DEPTHS, TABLE5_MODELS
from repro.fpga import ZYNQ_XC7Z020

# One evaluator serves every sweep; scenarios that share knobs share models.
EVALUATOR = Evaluator()


def sweep_architectures() -> None:
    print("=== Architecture / depth sweep (parameter size, accuracy, speedup) ===")
    results = sweep(
        scenario_grid(models=TABLE5_MODELS, depths=SUPPORTED_DEPTHS),
        evaluator=EVALUATOR,
        workers=4,
    )
    rows = [
        {
            "model": r.scenario.full_name,
            "params_MB": round(r.parameters["param_bytes"] / 1e6, 2),
            "cifar100_acc_%": r.parameters["accuracy_pct"],
            "stable": r.parameters["accuracy_stable"],
            "offload": "/".join(r.resources["targets"]) or "-",
            "time_w_PL_s": round(r.timing["total_w_pl_s"], 2),
            "speedup": round(r.timing["overall_speedup"], 2),
        }
        for r in results
    ]
    print(format_records(rows))


def sweep_parallelism() -> None:
    print("\n=== rODENet-3-56: MAC-unit parallelism sweep ===")
    results = sweep(
        scenario_grid(models=("rODENet-3",), depths=(56,), n_units=(1, 2, 4, 8, 16, 32)),
        evaluator=EVALUATOR,
    )
    rows = [
        {
            "n_units": r.scenario.n_units,
            "speedup": round(r.timing["overall_speedup"], 2),
            "dsp": r.resources["dsp"],
            "fits": r.resources["fits_device"],
            "meets_100MHz": r.resources["meets_timing"],
        }
        for r in results
    ]
    print(format_records(rows))
    feasible = [r.scenario.n_units for r in results
                if r.resources["fits_device"] and r.resources["meets_timing"]]
    print(f"  -> largest feasible parallelism for layer3_2: conv_x{max(feasible)}"
          " (the paper uses conv_x16)")


def sweep_wordlength() -> None:
    print("\n=== Word-length sweep (footnote 2): can more layers share the PL? ===")
    # rODENet-1 / -2 / -3 offload layer1 / layer2_2 / layer3_2 respectively,
    # so one sweep per word length yields every per-layer BRAM demand.
    rows = []
    for wl in (32, 16, 12, 8):
        per_layer = {}
        for model in ("rODENet-1", "rODENet-2", "rODENet-3"):
            scenario = Scenario(model=model, depth=56, word_length=wl,
                                fraction_bits=DEFAULT_FRACTION_BITS[wl])
            result = EVALUATOR.evaluate(scenario)
            per_layer[result.resources["targets"][0]] = int(result.resources["bram"])
        rows.append(
            {
                "word_length": wl,
                "layer1+layer2_2_fit": per_layer["layer1"] + per_layer["layer2_2"]
                <= ZYNQ_XC7Z020.bram36,
                "layer1+layer3_2_fit": per_layer["layer1"] + per_layer["layer3_2"]
                <= ZYNQ_XC7Z020.bram36,
                "all_three_fit": sum(per_layer.values()) <= ZYNQ_XC7Z020.bram36,
                "total_bram": sum(per_layer.values()),
            }
        )
    print(format_records(rows))


def main() -> None:
    sweep_architectures()
    sweep_parallelism()
    sweep_wordlength()
    print(
        "\nSummary: rODENet-3 keeps the accuracy/stability of the deeper variants with a\n"
        "~5x parameter reduction and the best end-to-end speedup once layer3_2 is on the\n"
        "PL part — the same conclusion the paper draws in Section 4.4."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Design-space exploration across variants, depths, parallelism and word length.

The paper evaluates one design point in detail (rODENet-3-N with conv_x16 and
32-bit Q20).  This example uses the analytical models to sweep the wider
design space a deployment engineer would care about:

* every architecture and depth: parameter size, modelled accuracy, modelled
  prediction time with its paper offload target, and overall speedup;
* for the best trade-off (rODENet-3), the MAC-unit parallelism sweep and the
  word-length sweep, including whether multiple layers could share the PL.

Run:  python examples/design_space.py
"""

from __future__ import annotations

from repro.analysis import accuracy_model, format_records
from repro.core import (
    SUPPORTED_DEPTHS,
    ExecutionTimeModel,
    OffloadPlanner,
    PAPER_OFFLOAD_TARGETS,
    TABLE5_MODELS,
    variant_parameter_bytes,
)
from repro.fixedpoint import Q8, Q12, Q16, Q20
from repro.fpga import ZYNQ_XC7Z020, plan_block_allocation
from repro.fpga.geometry import LAYER1, LAYER2_2, LAYER3_2


def sweep_architectures() -> None:
    print("=== Architecture / depth sweep (parameter size, accuracy, speedup) ===")
    exec_model = ExecutionTimeModel(n_units=16)
    rows = []
    for name in TABLE5_MODELS:
        variant = "ODENet" if name == "ODENet-3" else name
        for depth in SUPPORTED_DEPTHS:
            report = exec_model.report(name, depth)
            acc = accuracy_model(variant, depth)
            rows.append(
                {
                    "model": f"{name}-{depth}",
                    "params_MB": round(variant_parameter_bytes(variant, depth) / 1e6, 2),
                    "cifar100_acc_%": acc.accuracy_percent,
                    "stable": acc.stable,
                    "offload": "/".join(report.offload_targets) or "-",
                    "time_w_PL_s": round(report.total_with_pl, 2),
                    "speedup": round(report.overall_speedup, 2),
                }
            )
    print(format_records(rows))


def sweep_parallelism() -> None:
    print("\n=== rODENet-3-56: MAC-unit parallelism sweep ===")
    planner = OffloadPlanner()
    rows = []
    for n in (1, 2, 4, 8, 16, 32):
        decision = planner.plan("rODENet-3", 56, n_units=n)
        rows.append(
            {
                "n_units": n,
                "speedup": round(decision.expected_speedup, 2),
                "dsp": decision.resources.dsp,
                "fits": decision.fits_device,
                "meets_100MHz": decision.meets_timing,
            }
        )
    print(format_records(rows))
    best = planner.max_feasible_parallelism(("layer3_2",))
    print(f"  -> largest feasible parallelism for layer3_2: conv_x{best} (the paper uses conv_x16)")


def sweep_wordlength() -> None:
    print("\n=== Word-length sweep (footnote 2): can more layers share the PL? ===")
    rows = []
    for fmt in (Q20, Q16, Q12, Q8):
        tiles = {
            geom.name: plan_block_allocation(geom, n_units=16, qformat=fmt).total_tiles
            for geom in (LAYER1, LAYER2_2, LAYER3_2)
        }
        rows.append(
            {
                "format": fmt.name,
                "layer1+layer2_2_fit": tiles["layer1"] + tiles["layer2_2"] <= ZYNQ_XC7Z020.bram36,
                "layer1+layer3_2_fit": tiles["layer1"] + tiles["layer3_2"] <= ZYNQ_XC7Z020.bram36,
                "all_three_fit": sum(tiles.values()) <= ZYNQ_XC7Z020.bram36,
                "total_bram": sum(tiles.values()),
            }
        )
    print(format_records(rows))


def main() -> None:
    sweep_architectures()
    sweep_parallelism()
    sweep_wordlength()
    print(
        "\nSummary: rODENet-3 keeps the accuracy/stability of the deeper variants with a\n"
        "~5x parameter reduction and the best end-to-end speedup once layer3_2 is on the\n"
        "PL part — the same conclusion the paper draws in Section 4.4."
    )


if __name__ == "__main__":
    main()

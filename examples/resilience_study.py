#!/usr/bin/env python3
"""Resilience study: how many replicas buy how much fault tolerance?

The serving study (``examples/serving_study.py``) sizes the system for
*nominal* traffic.  A deployment engineer's next question is about the bad
days: *when a PL replica dies mid-run, the AXI link renegotiates narrow, a
PS core shuts down or DMA bursts start flipping bits — how much SLO damage
do we take, and does another replica actually help?*

This example answers it with the fault-injection workbench (``repro.faults``):
for each system variant it runs a full FMEA over the default fault domain —
every mode injected at several sampled times, deltas weighted fmdtools-style
and scaled by the mode's occurrence rate — and prints

1. the per-mode FMEA table for the smallest system (which fault dominates),
2. the survivability matrix: expected SLO-violation fraction added per mode
   as replicas are added (the replica-death column shows the knee), and
3. the degraded-mode machinery at work: a run with a dead fleet still
   completes every request on the PS software fallback.

Run:  PYTHONPATH=src python examples/resilience_study.py [--quick]
"""

from __future__ import annotations

import argparse

from repro.analysis import format_records
from repro.api import Evaluator
from repro.faults import ReplicaDeath, default_fault_domain, run_fmea
from repro.sim import SimScenario, simulate

EVALUATOR = Evaluator()

#: SLO for the study: ~1.4x the no-load service time of rODENet-3-20, tight
#: enough that the PS software fallback misses it.
SLO_S = 0.40


def base_scenario(n_requests: int, **overrides) -> SimScenario:
    kw = dict(
        model="rODENet-3",
        depth=20,
        arrival="poisson",
        arrival_rate_hz=3.0,
        n_requests=n_requests,
        replicas=1,
        ps_cores=2,
        seed=0,
        slo_s=SLO_S,
    )
    kw.update(overrides)
    return SimScenario(**kw)


def fmea_table(n_requests: int, n_samples: int) -> None:
    scenario = base_scenario(n_requests)
    study = run_fmea(
        scenario, default_fault_domain(), evaluator=EVALUATOR, n_samples=n_samples
    )
    print(study.render())
    print()


def survivability_matrix(n_requests: int, n_samples: int, fleets) -> None:
    rows = []
    for replicas in fleets:
        study = run_fmea(
            base_scenario(n_requests, replicas=replicas),
            default_fault_domain(),
            evaluator=EVALUATOR,
            n_samples=n_samples,
        )
        row = {"replicas": replicas}
        for r in study.rows:
            row[r["mode"]] = round(float(r["expected_slo_violation"]), 6)
        row["total"] = round(float(study.expected_slo_violation), 6)
        rows.append(row)
    print(format_records(
        rows,
        title="Survivability: expected SLO-violation fraction added per mode",
    ))
    print()


def dead_fleet_demo(n_requests: int) -> None:
    scenario = base_scenario(n_requests)
    nominal = simulate(scenario, evaluator=EVALUATOR)
    dead = simulate(
        scenario, evaluator=EVALUATOR,
        faults=[(ReplicaDeath(rate_per_hour=60.0), 1.0)],
    )
    print("Degraded-mode dispatch: the only replica dies at t=1s ->")
    print(
        f"  completed {dead.requests['completed']}/{dead.requests['offered']} "
        f"({dead.faults['ps_fallback_served']} PL blocks served by the PS "
        f"software fallback)"
    )
    print(
        f"  p95 latency {dead.latency.percentiles[95] * 1e3:.1f} ms "
        f"(nominal {nominal.latency.percentiles[95] * 1e3:.1f} ms), "
        f"SLO-violation fraction {dead.slo['violation_fraction']:.3f} "
        f"(nominal {nominal.slo['violation_fraction']:.3f})"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller runs (CI smoke)")
    args = parser.parse_args()

    if args.quick:
        n_requests, n_samples, fleets = 20, 1, (1, 2)
    else:
        n_requests, n_samples, fleets = 80, 3, (1, 2, 3, 4)

    fmea_table(n_requests, n_samples)
    survivability_matrix(n_requests, n_samples, fleets)
    dead_fleet_demo(n_requests)


if __name__ == "__main__":
    main()

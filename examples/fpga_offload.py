#!/usr/bin/env python3
"""FPGA offload walkthrough: resources, timing, cycles and fidelity.

Reproduces the hardware-facing part of the paper on the simulated PYNQ-Z2:

* Table 3  — resource utilisation of layer1 / layer2_2 / layer3_2 for
  conv_x1..x16 (published Vivado numbers next to the analytical model);
* Section 3.1 — layer3_2 execution cycles versus the MAC-unit count, and the
  timing-closure observation that conv_x32 misses 100 MHz;
* Section 4.4 — per-invocation PL time including the 1-cycle-per-float32 DMA
  assumption;
* a functional check: a trained (random-weight) ODEBlock executed on the
  bit-accurate Q20 datapath against its float reference.

Run:  python examples/fpga_offload.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_records, table3_records
from repro.fpga import (
    LAYER1,
    LAYER2_2,
    LAYER3_2,
    PYNQ_Z2,
    AxiTransferModel,
    BlockWeights,
    HardwareODEBlock,
    OdeBlockCycleModel,
    TimingModel,
)


def show_table3() -> None:
    print("=== Table 3: resource utilisation (published vs analytical model) ===")
    print(format_records(table3_records(include_estimates=True)))


def show_cycle_scaling() -> None:
    print("\n=== Section 3.1: layer3_2 cycles vs multiply-add units ===")
    cycles = OdeBlockCycleModel()
    timing = TimingModel()
    rows = []
    for n in (1, 4, 8, 16, 32):
        breakdown = cycles.block_cycles(LAYER3_2, n)
        rows.append(
            {
                "config": f"conv_x{n}",
                "Mcycles": round(breakdown.total / 1e6, 2),
                "ms @ 100MHz": round(breakdown.time_seconds(PYNQ_Z2.pl_clock_hz) * 1e3, 2),
                "fmax [MHz]": round(timing.fmax_hz(n) / 1e6, 1),
                "meets 100MHz": timing.analyze(n).meets_timing,
            }
        )
    print(format_records(rows))
    print("  (paper: 23.78M / 6.07M / 3.12M / 1.64M / 0.90M cycles; conv_x32 misses timing)")


def show_per_block_latency() -> None:
    print("\n=== Per-invocation PL latency (compute + DMA) at conv_x16 ===")
    cycles = OdeBlockCycleModel()
    axi = AxiTransferModel()
    rows = []
    for geom in (LAYER1, LAYER2_2, LAYER3_2):
        compute = cycles.block_time_seconds(geom, 16, PYNQ_Z2.pl_clock_hz)
        transfer = axi.block_round_trip(geom).seconds
        rows.append(
            {
                "layer": geom.name,
                "compute [ms]": round(compute * 1e3, 2),
                "DMA [ms]": round(transfer * 1e3, 3),
                "total [ms]": round((compute + transfer) * 1e3, 2),
            }
        )
    print(format_records(rows))


def show_fixed_point_fidelity() -> None:
    print("\n=== Q20 fixed-point ODEBlock vs float reference (functional check) ===")
    rng = np.random.default_rng(0)
    weights = BlockWeights.random(LAYER3_2, rng, scale=0.05)
    hw = HardwareODEBlock(LAYER3_2, weights, n_units=16)
    z = rng.normal(0, 0.4, size=(64, 8, 8))
    out, report = hw.execute(z)
    print(f"  input feature map   : {z.shape}")
    print(f"  output feature map  : {out.shape}")
    print(f"  modelled PL compute : {report.compute_seconds * 1e3:.2f} ms")
    print(f"  modelled DMA        : {report.transfer_seconds * 1e6:.1f} µs")
    print(f"  output value range  : [{out.min():.3f}, {out.max():.3f}]")
    est = hw.resource_estimate()
    print(f"  resource estimate   : {est.resources.as_dict()} (fits: {est.fits()})")
    print(f"  timing at 100 MHz   : meets={hw.timing_report().meets_timing}")


def main() -> None:
    show_table3()
    show_cycle_scaling()
    show_per_block_latency()
    show_fixed_point_fidelity()


if __name__ == "__main__":
    main()

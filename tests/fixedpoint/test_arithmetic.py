"""Tests for the integer fixed-point arithmetic primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint import Q8, Q20, QFormat
from repro.fixedpoint.arithmetic import (
    fx_add,
    fx_div,
    fx_mac,
    fx_mean,
    fx_mul,
    fx_relu,
    fx_sqrt,
    fx_sub,
    fx_var,
)

F = Q20


def to_fx(x):
    return F.to_fixed(x)


def to_float(x):
    return F.to_float(x)


class TestBasicOps:
    def test_add_sub(self):
        a, b = to_fx(1.5), to_fx(2.25)
        assert to_float(fx_add(a, b, F)) == pytest.approx(3.75)
        assert to_float(fx_sub(a, b, F)) == pytest.approx(-0.75)

    def test_mul(self):
        a, b = to_fx(1.5), to_fx(-2.0)
        assert to_float(fx_mul(a, b, F)) == pytest.approx(-3.0, abs=F.resolution)

    def test_mul_truncation_error_bounded(self, rng):
        values_a = rng.uniform(-10, 10, 200)
        values_b = rng.uniform(-10, 10, 200)
        result = to_float(fx_mul(to_fx(values_a), to_fx(values_b), F))
        np.testing.assert_allclose(result, values_a * values_b, atol=3e-5)

    def test_mac(self):
        acc = to_fx(1.0)
        out = fx_mac(acc, to_fx(2.0), to_fx(3.0), F)
        assert to_float(out) == pytest.approx(7.0, abs=F.resolution)

    def test_add_saturates(self):
        out = fx_add(F.max_int, F.max_int, F)
        assert out == F.max_int

    def test_div(self):
        out = fx_div(to_fx(3.0), to_fx(2.0), F)
        assert to_float(out) == pytest.approx(1.5, abs=F.resolution)

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            fx_div(to_fx(1.0), 0, F)

    def test_div_sign_handling(self):
        assert to_float(fx_div(to_fx(-3.0), to_fx(2.0), F)) == pytest.approx(-1.5, abs=2 * F.resolution)
        assert to_float(fx_div(to_fx(3.0), to_fx(-2.0), F)) == pytest.approx(-1.5, abs=2 * F.resolution)

    def test_relu(self):
        values = to_fx(np.array([-1.0, 0.0, 2.5]))
        np.testing.assert_allclose(to_float(fx_relu(values, F)), [0.0, 0.0, 2.5])


class TestSqrt:
    @pytest.mark.parametrize("value", [0.0, 1.0, 2.0, 4.0, 100.0, 0.25, 1e-3])
    def test_matches_float_sqrt(self, value):
        result = to_float(fx_sqrt(to_fx(value), F))
        # The input is quantised before the square root, so the error bound
        # includes the quantisation error amplified by d(sqrt)/dx = 1/(2*sqrt).
        tolerance = 2 * F.resolution
        if value > 0:
            tolerance += F.resolution / (2.0 * np.sqrt(value))
        assert result == pytest.approx(np.sqrt(value), abs=tolerance)

    def test_vectorised(self, rng):
        values = rng.uniform(0, 50, size=32)
        result = to_float(fx_sqrt(to_fx(values), F))
        np.testing.assert_allclose(result, np.sqrt(values), atol=1e-4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fx_sqrt(to_fx(-1.0), F)

    @given(st.floats(0, 1000, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_sqrt_squared_close_to_input(self, value):
        root = fx_sqrt(to_fx(value), F)
        squared = to_float(fx_mul(root, root, F))
        assert squared == pytest.approx(value, abs=max(4 * F.resolution, 4 * F.resolution * np.sqrt(value)))


class TestStatistics:
    def test_mean_matches_float(self, rng):
        values = rng.uniform(-5, 5, size=(4, 100))
        result = to_float(fx_mean(to_fx(values), F, axis=1))
        np.testing.assert_allclose(result, values.mean(axis=1), atol=1e-4)

    def test_mean_global(self, rng):
        values = rng.uniform(-5, 5, size=50)
        assert to_float(fx_mean(to_fx(values), F)) == pytest.approx(values.mean(), abs=1e-4)

    def test_var_matches_float(self, rng):
        values = rng.uniform(-2, 2, size=(3, 200))
        result = to_float(fx_var(to_fx(values), F, axis=1))
        np.testing.assert_allclose(result, values.var(axis=1), atol=1e-3)

    def test_var_nonnegative(self, rng):
        values = rng.uniform(-1, 1, size=(5, 64))
        assert np.all(fx_var(to_fx(values), F, axis=1) >= 0)


class TestLowPrecisionBehaviour:
    def test_q8_coarser_than_q20(self):
        value = 1.2345
        err8 = abs(Q8.to_float(fx_mul(Q8.to_fixed(value), Q8.to_fixed(value), Q8)) - value ** 2)
        err20 = abs(to_float(fx_mul(to_fx(value), to_fx(value), F)) - value ** 2)
        assert err8 > err20

    @given(st.floats(-5, 5, allow_nan=False), st.floats(-5, 5, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_mul_commutative(self, a, b):
        x, y = to_fx(a), to_fx(b)
        assert fx_mul(x, y, F) == fx_mul(y, x, F)

    @given(st.floats(-100, 100, allow_nan=False), st.floats(-100, 100, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_add_matches_float_within_lsb(self, a, b):
        result = to_float(fx_add(to_fx(a), to_fx(b), F))
        assert result == pytest.approx(a + b, abs=2 * F.resolution)

"""Tests for the Q-format fixed-point specification."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint import Q8, Q12, Q16, Q20, OverflowMode, QFormat


class TestQ20Paper:
    """The paper's 32-bit Q20 format."""

    def test_basic_properties(self):
        assert Q20.word_length == 32
        assert Q20.fraction_bits == 20
        assert Q20.integer_bits == 11
        assert Q20.scale == 2 ** 20
        assert Q20.bytes_per_value == 4

    def test_resolution(self):
        assert Q20.resolution == pytest.approx(2 ** -20)

    def test_range(self):
        assert Q20.max_value == pytest.approx(2 ** 11, rel=1e-6)
        assert Q20.min_value == pytest.approx(-(2 ** 11))

    def test_name(self):
        assert Q20.name == "Q20 (32-bit)"


class TestQFormatValidation:
    def test_rejects_bad_word_length(self):
        with pytest.raises(ValueError):
            QFormat(1, 0)
        with pytest.raises(ValueError):
            QFormat(128, 20)

    def test_rejects_bad_fraction_bits(self):
        with pytest.raises(ValueError):
            QFormat(16, 16)
        with pytest.raises(ValueError):
            QFormat(16, -1)

    def test_is_hashable_and_frozen(self):
        assert hash(QFormat(32, 20)) == hash(Q20)
        with pytest.raises(Exception):
            Q20.fraction_bits = 5  # type: ignore[misc]


class TestConversion:
    def test_roundtrip_of_representable_values(self):
        values = np.array([0.0, 1.0, -1.0, 0.5, -0.25, 1000.0, -2047.5])
        np.testing.assert_allclose(Q20.quantize(values), values)

    def test_quantisation_error_bounded_by_half_lsb(self, rng):
        values = rng.uniform(-100, 100, size=1000)
        error = Q20.quantization_error(values)
        assert np.max(np.abs(error)) <= Q20.resolution / 2 + 1e-12

    def test_saturation(self):
        big = np.array([1e6, -1e6])
        quantised = Q20.quantize(big)
        assert quantised[0] == pytest.approx(Q20.max_value)
        assert quantised[1] == pytest.approx(Q20.min_value)

    def test_wrap_mode_wraps(self):
        wrapped = Q20.to_fixed(Q20.max_value + 1.0, mode=OverflowMode.WRAP)
        assert wrapped < 0  # two's-complement wrap-around

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Q20.to_fixed(1.0, mode="clamp")

    def test_representable_mask(self):
        values = np.array([0.0, 3000.0, -3000.0, 5.0])
        mask = Q20.representable(values)
        assert mask.tolist() == [True, False, False, True]

    def test_reduced_formats_are_coarser(self):
        value = 0.123456789
        errors = [abs(fmt.quantize(value) - value) for fmt in (Q20, Q16, Q12, Q8)]
        assert errors == sorted(errors)


class TestQFormatProperties:
    @given(
        st.integers(4, 32),
        st.data(),
        st.floats(-100, 100, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_quantize_idempotent(self, word, data, value):
        frac = data.draw(st.integers(0, word - 1))
        fmt = QFormat(word, frac)
        once = fmt.quantize(value)
        twice = fmt.quantize(once)
        assert float(once) == float(twice)

    @given(st.floats(-1000, 1000, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_error_bounded_for_in_range_values(self, value):
        if not Q20.representable(value):
            return
        assert abs(Q20.quantize(value) - value) <= Q20.resolution / 2 + 1e-12

    @given(st.floats(-2000, 2000, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_quantize_monotone(self, value):
        assert Q20.quantize(value) <= Q20.quantize(value + 0.1) + 1e-12

"""Tests for the vectorised FxArray type."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fixedpoint import FxArray, Q8, Q16, Q20


class TestConstruction:
    def test_from_float_roundtrip(self, rng):
        values = rng.uniform(-10, 10, size=(3, 4))
        arr = FxArray.from_float(values, Q20)
        np.testing.assert_allclose(arr.to_float(), values, atol=Q20.resolution)

    def test_zeros(self):
        arr = FxArray.zeros((2, 3))
        assert arr.shape == (2, 3)
        assert np.all(arr.raw == 0)

    def test_shape_size_ndim_len(self):
        arr = FxArray.zeros((4, 5))
        assert arr.shape == (4, 5) and arr.size == 20 and arr.ndim == 2 and len(arr) == 4

    def test_reshape_and_getitem(self, rng):
        arr = FxArray.from_float(rng.normal(size=(2, 6)))
        reshaped = arr.reshape(3, 4)
        assert reshaped.shape == (3, 4)
        sliced = arr[0]
        assert sliced.shape == (6,)

    def test_astype_changes_format(self):
        arr = FxArray.from_float(np.array([1.2345]), Q20)
        coarse = arr.astype(Q8)
        assert coarse.fmt == Q8
        assert abs(coarse.to_float()[0] - 1.2345) <= Q8.resolution


class TestArithmetic:
    def test_add_sub_mul(self, rng):
        a_values = rng.uniform(-5, 5, 20)
        b_values = rng.uniform(-5, 5, 20)
        a, b = FxArray.from_float(a_values), FxArray.from_float(b_values)
        np.testing.assert_allclose((a + b).to_float(), a_values + b_values, atol=1e-5)
        np.testing.assert_allclose((a - b).to_float(), a_values - b_values, atol=1e-5)
        np.testing.assert_allclose((a * b).to_float(), a_values * b_values, atol=1e-4)

    def test_scalar_operands(self):
        a = FxArray.from_float(np.array([1.0, 2.0]))
        np.testing.assert_allclose((a + 0.5).to_float(), [1.5, 2.5])
        np.testing.assert_allclose((2.0 * a).to_float(), [2.0, 4.0], atol=1e-5)
        np.testing.assert_allclose((1.0 - a).to_float(), [0.0, -1.0])

    def test_neg(self):
        a = FxArray.from_float(np.array([1.5, -2.0]))
        np.testing.assert_allclose((-a).to_float(), [-1.5, 2.0])

    def test_division(self):
        a = FxArray.from_float(np.array([3.0]))
        b = FxArray.from_float(np.array([2.0]))
        assert (a / b).to_float()[0] == pytest.approx(1.5, abs=1e-5)

    def test_format_mismatch_rejected(self):
        a = FxArray.from_float(np.array([1.0]), Q20)
        b = FxArray.from_float(np.array([1.0]), Q16)
        with pytest.raises(ValueError, match="format mismatch"):
            a + b

    def test_equality_and_hash(self):
        a = FxArray.from_float(np.array([1.0]))
        b = FxArray.from_float(np.array([1.0]))
        assert a == b
        with pytest.raises(TypeError):
            hash(a)


class TestElementwise:
    def test_relu(self):
        a = FxArray.from_float(np.array([-1.0, 2.0]))
        np.testing.assert_allclose(a.relu().to_float(), [0.0, 2.0])

    def test_sqrt(self):
        a = FxArray.from_float(np.array([4.0, 9.0]))
        np.testing.assert_allclose(a.sqrt().to_float(), [2.0, 3.0], atol=1e-5)

    def test_mean_var_sum(self, rng):
        values = rng.uniform(-3, 3, size=(4, 64))
        arr = FxArray.from_float(values)
        np.testing.assert_allclose(arr.mean(axis=1).to_float(), values.mean(axis=1), atol=1e-4)
        np.testing.assert_allclose(arr.var(axis=1).to_float(), values.var(axis=1), atol=1e-3)
        np.testing.assert_allclose(arr.sum(axis=1).to_float(), values.sum(axis=1), atol=1e-3)

    def test_matmul_float(self, rng):
        x = rng.uniform(-1, 1, size=(5, 8))
        w = rng.uniform(-1, 1, size=(3, 8))
        result = FxArray.from_float(x).matmul_float(w)
        np.testing.assert_allclose(result.to_float(), x @ w.T, atol=1e-4)

    def test_max_abs_error(self, rng):
        values = rng.uniform(-1, 1, size=100)
        arr = FxArray.from_float(values, Q8)
        err = arr.max_abs_error(values)
        assert 0 <= err <= Q8.resolution

"""Tests for the quantisation-error analysis utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fixedpoint import Q8, Q16, Q20, analyze_quantization, sqnr_db, sweep_wordlengths


class TestAnalyzeQuantization:
    def test_report_fields(self, rng):
        values = rng.normal(size=1000)
        report = analyze_quantization(values, Q20)
        assert report.fmt == Q20
        assert 0 <= report.max_abs_error <= Q20.resolution / 2 + 1e-12
        assert report.mean_abs_error <= report.max_abs_error
        assert report.rms_error <= report.max_abs_error
        assert report.overflow_fraction == 0.0
        assert report.sqnr_db > 80  # Q20 on unit-scale data is very precise

    def test_overflow_fraction(self):
        values = np.array([0.0, 5000.0, -5000.0, 1.0])
        report = analyze_quantization(values, Q20)
        assert report.overflow_fraction == pytest.approx(0.5)

    def test_as_dict_keys(self, rng):
        report = analyze_quantization(rng.normal(size=10), Q16)
        d = report.as_dict()
        assert d["word_length"] == 16 and d["fraction_bits"] == 8
        assert set(d) >= {"max_abs_error", "rms_error", "sqnr_db", "overflow_fraction"}

    def test_coarser_formats_have_lower_sqnr(self, rng):
        values = rng.normal(size=2000)
        reports = sweep_wordlengths(values, [Q20, Q16, Q8])
        sqnrs = [reports[f.name].sqnr_db for f in (Q20, Q16, Q8)]
        assert sqnrs[0] > sqnrs[1] > sqnrs[2]


class TestSqnr:
    def test_zero_noise_is_infinite(self):
        assert sqnr_db(np.ones(10), np.zeros(10)) == float("inf")

    def test_zero_signal_is_negative_infinite(self):
        assert sqnr_db(np.zeros(10), np.ones(10)) == float("-inf")

    def test_known_value(self):
        signal = np.full(10, 2.0)
        noise = np.full(10, 0.2)
        assert sqnr_db(signal, noise) == pytest.approx(20.0)
